// Federated search end to end: the scenario from the paper's introduction.
//
// A selection service faces several searchable databases it does not
// control. It (1) learns a language model for each by query-based
// sampling, (2) ranks the databases for a user query with CORI, and
// (3) forwards the query to the best database and returns documents.
//
// Build & run:  ./build/examples/federated_search [query]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "sampling/sampler.h"
#include "selection/db_selection.h"
#include "text/stopwords.h"

namespace {

// Builds one themed database. Different seeds = different topic mixes.
std::unique_ptr<qbs::SearchEngine> BuildDb(const std::string& name,
                                           uint64_t seed,
                                           std::vector<std::string> themes) {
  qbs::SyntheticCorpusSpec spec;
  spec.name = name;
  spec.num_docs = 1'500;
  spec.vocab_size = 80'000;
  spec.num_topics = 4;
  spec.topic_mix = 0.45;
  spec.theme_terms = std::move(themes);
  spec.theme_prob = 0.15;
  spec.seed = seed;
  auto engine = qbs::BuildSyntheticEngine(spec);
  if (!engine.ok()) {
    std::fprintf(stderr, "failed to build %s: %s\n", name.c_str(),
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*engine);
}

}  // namespace

int main(int argc, char** argv) {
  std::string query = argc > 1 ? argv[1] : "orbit telescope";

  // --- The federation (each DB only exposes RunQuery/FetchDocument). ---
  std::vector<std::unique_ptr<qbs::SearchEngine>> dbs;
  dbs.push_back(BuildDb("astronomy-db", 101,
                        {"telescope", "orbit", "galaxy", "stellar",
                         "astronomy", "planet", "comet"}));
  dbs.push_back(BuildDb("cooking-db", 202,
                        {"recipe", "flour", "oven", "saute", "butter",
                         "simmer", "seasoning"}));
  dbs.push_back(BuildDb("law-db", 303,
                        {"appeal", "statute", "plaintiff", "verdict",
                         "litigation", "court", "ruling"}));
  std::printf("Federation: %zu databases.\n\n", dbs.size());

  // --- Learn a language model per database by sampling. ---
  qbs::DatabaseCollection learned;
  for (auto& db : dbs) {
    qbs::SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = 200;
    // Bootstrap the first query from the database's own content: in a real
    // deployment any dictionary word works (failed queries are cheap).
    qbs::LanguageModel actual = db->ActualLanguageModel();
    qbs::Rng rng(11);
    auto initial = qbs::RandomEligibleTerm(actual, qbs::TermFilter{}, rng);
    opts.initial_term = initial.value_or("information");

    auto result = qbs::QueryBasedSampler(db.get(), opts).Run();
    if (!result.ok()) {
      std::fprintf(stderr, "sampling %s failed: %s\n", db->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("Sampled %-13s: %zu docs, %zu queries, %zu learned terms\n",
                db->name().c_str(), result->documents_examined,
                result->queries_run, result->learned.vocabulary_size());
    learned.Add(db->name(), result->learned_stemmed.WithoutStopwords(
                                qbs::StopwordList::DefaultStemmed()));
  }

  // --- Select databases for the user query. ---
  qbs::CoriRanker ranker(&learned);
  // CORI consumes terms in the learned models' term space (stemmed).
  qbs::Analyzer query_analyzer = qbs::Analyzer::InqueryLike();
  std::vector<std::string> query_terms = query_analyzer.Analyze(query);

  std::printf("\nQuery: \"%s\"\nDatabase ranking (CORI over learned models):\n",
              query.c_str());
  auto ranking = ranker.Rank(query_terms);
  for (size_t i = 0; i < ranking.size(); ++i) {
    std::printf("  %zu. %-13s  belief=%.4f\n", i + 1,
                ranking[i].db_name.c_str(), ranking[i].score);
  }

  // --- Forward the query to the winning database. ---
  qbs::SearchEngine* best = nullptr;
  for (auto& db : dbs) {
    if (db->name() == ranking[0].db_name) best = db.get();
  }
  auto hits = best->RunQuery(query, 3);
  if (!hits.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 hits.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTop documents from %s:\n", best->name().c_str());
  for (const auto& hit : *hits) {
    auto text = best->FetchDocument(hit.handle);
    std::string preview =
        text.ok() ? text->substr(0, 72) : std::string("<fetch failed>");
    std::printf("  [%.3f] %s: %s...\n", hit.score, hit.handle.c_str(),
                preview.c_str());
  }
  return 0;
}

// Quickstart: learn a language model for a text database you cannot see
// inside, using only queries and document retrieval.
//
//   1. Stand up a searchable database (here: a small synthetic corpus).
//   2. Point the QueryBasedSampler at its TextDatabase interface.
//   3. Sample a few hundred documents.
//   4. Inspect the learned model and (since we own the database in this
//      demo) score it against the actual index statistics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "corpus/synthetic.h"
#include "lm/metrics.h"
#include "sampling/sampler.h"

int main() {
  // --- 1. A database (pretend it's remote: only RunQuery/FetchDocument). ---
  qbs::SyntheticCorpusSpec spec;
  spec.name = "demo-db";
  spec.num_docs = 2'000;
  spec.vocab_size = 100'000;
  spec.num_topics = 8;
  spec.seed = 7;
  auto engine = qbs::BuildSyntheticEngine(spec);
  if (!engine.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  qbs::TextDatabase* db = engine->get();
  std::printf("Database '%s' is up with %u documents.\n\n",
              db->name().c_str(), (*engine)->num_docs());

  // --- 2-3. Sample it. ---
  qbs::SamplerOptions options;
  options.docs_per_query = 4;                  // the paper's baseline N
  options.stopping.max_documents = 300;        // the paper's budget
  options.initial_term = "information";        // any plausible word works
  // The synthetic vocabulary is pseudo-words; fall back to a term we know
  // retrieves something if the seed word misses.
  {
    auto probe = db->RunQuery(options.initial_term, 1);
    if (probe.ok() && probe->empty()) {
      qbs::LanguageModel actual = (*engine)->ActualLanguageModel();
      qbs::Rng rng(1);
      auto term = qbs::RandomEligibleTerm(actual, qbs::TermFilter{}, rng);
      if (term.has_value()) options.initial_term = *term;
    }
  }

  qbs::QueryBasedSampler sampler(db, options);
  auto result = sampler.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Sampled %zu documents with %zu single-term queries "
              "(%zu returned nothing, %zu duplicate hits).\n",
              result->documents_examined, result->queries_run,
              result->failed_queries, result->duplicate_hits);
  std::printf("Learned vocabulary: %zu terms, %llu occurrences.\n\n",
              result->learned.vocabulary_size(),
              static_cast<unsigned long long>(
                  result->learned.total_term_count()));

  // --- 4. Score against ground truth (possible only in a demo). ---
  qbs::LanguageModel actual = (*engine)->ActualLanguageModel();
  qbs::LmComparison cmp =
      qbs::CompareLanguageModels(result->learned_stemmed, actual);
  std::printf("Against the database's true index statistics:\n");
  std::printf("  vocabulary learned : %.1f%% of terms\n",
              cmp.pct_vocab_learned * 100.0);
  std::printf("  ctf ratio          : %.1f%% of term occurrences\n",
              cmp.ctf_ratio * 100.0);
  std::printf("  Spearman (df rank) : %.3f over %zu common terms\n",
              cmp.spearman_df, cmp.common_terms);
  std::printf(
      "\nThe headline: a few hundred sampled documents cover most of the "
      "database's term mass,\nwithout any cooperation from the database.\n");
  return 0;
}

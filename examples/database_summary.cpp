// "A peek inside" (paper §7): summarize an unfamiliar database for a human
// by sampling it and ranking the learned terms — no cooperation, no index
// access, just queries and documents.
//
// Build & run:  ./build/examples/database_summary
#include <cstdio>

#include "corpus/synthetic.h"
#include "sampling/sampler.h"
#include "summarize/summarizer.h"

int main() {
  // A product-support knowledge base we supposedly know nothing about.
  qbs::SyntheticCorpusSpec spec = qbs::SupportKbLikeSpec();
  spec.num_docs = 3'000;  // demo-sized
  auto engine = qbs::BuildSyntheticEngine(spec);
  if (!engine.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  qbs::TextDatabase* db = engine->get();
  std::printf("Mystery database: '%s'. Sampling...\n\n", db->name().c_str());

  qbs::SamplerOptions opts;
  opts.docs_per_query = 25;  // the paper's protocol for this use case
  opts.stopping.max_documents = 250;
  opts.initial_term = "error";  // any plausible support-ish word
  {
    auto probe = db->RunQuery(opts.initial_term, 1);
    if (probe.ok() && probe->empty()) {
      qbs::LanguageModel actual = (*engine)->ActualLanguageModel();
      qbs::Rng rng(3);
      auto term = qbs::RandomEligibleTerm(actual, qbs::TermFilter{}, rng);
      if (term.has_value()) opts.initial_term = *term;
    }
  }
  auto result = qbs::QueryBasedSampler(db, opts).Run();
  if (!result.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Examined %zu documents via %zu queries.\n\n",
              result->documents_examined, result->queries_run);

  // Summaries under all three ranking metrics, as in the paper's Table 4
  // discussion (avg_tf was the most informative).
  for (qbs::TermMetric metric :
       {qbs::TermMetric::kAvgTf, qbs::TermMetric::kDf, qbs::TermMetric::kCtf}) {
    qbs::SummaryOptions sopts;
    sopts.metric = metric;
    sopts.top_k = 15;
    qbs::DatabaseSummary summary =
        qbs::SummarizeDatabase(db->name(), result->learned, sopts);
    std::printf("Top %zu terms by %s:\n  ", summary.terms.size(),
                qbs::TermMetricName(metric));
    for (size_t i = 0; i < summary.terms.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "", summary.terms[i].first.c_str());
    }
    std::printf("\n\n");
  }
  std::printf(
      "The avg_tf list should read like a product-support database "
      "(windows, excel, server, ...),\nexactly how the paper summarized "
      "the Microsoft Customer Support database.\n");
  return 0;
}

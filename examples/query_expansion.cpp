// Co-occurrence query expansion from the union of samples (paper §8).
//
// Sampling databases for selection leaves the service holding a valuable
// by-product: the sampled documents themselves. Their union is an
// unbiased corpus for query expansion during database selection.
//
// Build & run:  ./build/examples/query_expansion
#include <cstdio>
#include <memory>
#include <vector>

#include "corpus/synthetic.h"
#include "expansion/cooccurrence.h"
#include "sampling/sampler.h"

int main() {
  // Three databases with distinct themes.
  struct Db {
    const char* name;
    uint64_t seed;
    std::vector<std::string> themes;
  };
  Db db_specs[] = {
      {"politics-db", 11, {"president", "senate", "election", "policy",
                           "congress", "campaign"}},
      {"medicine-db", 22, {"patient", "clinical", "diagnosis", "therapy",
                           "dosage", "symptom"}},
      {"finance-db", 33, {"stocks", "bonds", "portfolio", "dividend",
                          "market", "equity"}},
  };

  // Sample each database, keeping the raw sampled documents.
  qbs::CooccurrenceModel union_model;
  for (const Db& d : db_specs) {
    qbs::SyntheticCorpusSpec spec;
    spec.name = d.name;
    spec.num_docs = 1'200;
    spec.vocab_size = 60'000;
    spec.num_topics = 3;
    spec.theme_terms = d.themes;
    spec.theme_prob = 0.25;
    spec.topic_mix = 0.5;
    spec.seed = d.seed;
    auto engine = qbs::BuildSyntheticEngine(spec);
    if (!engine.ok()) {
      std::fprintf(stderr, "corpus build failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }

    qbs::SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = 150;
    opts.collect_documents = true;  // keep text for the expansion corpus
    qbs::LanguageModel actual = (*engine)->ActualLanguageModel();
    qbs::Rng rng(d.seed);
    auto initial = qbs::RandomEligibleTerm(actual, qbs::TermFilter{}, rng);
    opts.initial_term = initial.value_or("information");

    auto result = qbs::QueryBasedSampler(engine->get(), opts).Run();
    if (!result.ok()) {
      std::fprintf(stderr, "sampling %s failed: %s\n", d.name,
                   result.status().ToString().c_str());
      return 1;
    }
    for (const std::string& text : result->sampled_documents) {
      union_model.AddDocument(text);
    }
    std::printf("Sampled %-12s -> %zu documents into the union corpus\n",
                d.name, result->sampled_documents.size());
  }
  std::printf("Union expansion corpus: %zu documents.\n\n",
              union_model.num_docs());

  // Expand a few queries. Terms are shown in the stemmed term space.
  qbs::QueryExpander expander(&union_model);
  for (const char* query : {"president", "patient therapy", "stocks"}) {
    auto expanded = expander.Expand(query, 5);
    std::printf("Query \"%s\" expands to:", query);
    for (const auto& term : expanded) std::printf(" %s", term.c_str());
    std::printf("\n");
  }
  std::printf(
      "\nExpansion terms come from document-level co-occurrence (EMIM) in "
      "the union of samples,\nso no single database biases the expanded "
      "query (paper §8).\n");
  return 0;
}

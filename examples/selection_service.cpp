// The deployable shape of the paper: a SamplingService that manages a
// federation — samples every database in parallel, persists the learned
// models, answers selection queries, and survives restarts by
// warm-starting from the model store.
//
// Build & run:  ./build/examples/selection_service
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "corpus/synthetic.h"
#include "service/sampling_service.h"

namespace {

std::unique_ptr<qbs::SearchEngine> BuildDb(const std::string& name,
                                           uint64_t seed,
                                           std::vector<std::string> themes) {
  qbs::SyntheticCorpusSpec spec;
  spec.name = name;
  spec.num_docs = 1'200;
  spec.vocab_size = 70'000;
  spec.num_topics = 3;
  spec.topic_mix = 0.5;
  spec.theme_terms = std::move(themes);
  spec.theme_prob = 0.2;
  spec.seed = seed;
  auto engine = qbs::BuildSyntheticEngine(spec);
  if (!engine.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*engine);
}

std::vector<std::unique_ptr<qbs::TextDatabase>> BuildFederation() {
  std::vector<std::unique_ptr<qbs::TextDatabase>> dbs;
  dbs.push_back(BuildDb("medicine-db", 501,
                        {"patient", "clinical", "diagnosis", "therapy",
                         "dosage", "vaccine"}));
  dbs.push_back(BuildDb("finance-db", 502,
                        {"portfolio", "dividend", "equity", "market",
                         "hedge", "bond"}));
  dbs.push_back(BuildDb("gaming-db", 503,
                        {"console", "multiplayer", "quest", "arcade",
                         "leaderboard", "loot"}));
  return dbs;
}

}  // namespace

int main() {
  std::filesystem::path model_dir =
      std::filesystem::temp_directory_path() / "qbs_service_demo_models";
  std::filesystem::remove_all(model_dir);

  qbs::ServiceOptions options;
  options.sampler.stopping.max_documents = 200;
  options.num_threads = 3;
  options.model_dir = model_dir.string();
  // Seed words the service tries for its first query on each database:
  // the themes above make plausible bootstrap vocabulary.
  options.seed_terms = {"patient", "portfolio", "console",
                        "market",  "therapy",   "quest"};

  {
    qbs::SamplingService service(options);
    // The owning AddDatabase overload: the service keeps each database
    // alive, so the federation needs no separate storage on our side.
    for (auto& db : BuildFederation()) {
      qbs::Status s = service.AddDatabase(std::move(db));
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    std::printf("Sampling %zu databases in parallel...\n", service.size());
    qbs::Status s = service.RefreshAll();
    if (!s.ok()) {
      std::fprintf(stderr, "refresh failed: %s\n", s.ToString().c_str());
      return 1;
    }
    for (const qbs::DatabaseState& state : service.state()) {
      std::printf("  %-12s %zu docs via %zu queries, %zu learned terms\n",
                  state.name.c_str(), state.documents_examined,
                  state.queries_run, state.learned.vocabulary_size());
    }

    for (const char* query :
         {"vaccine dosage", "dividend portfolio", "multiplayer quest"}) {
      auto ranking = service.Select(query);
      if (!ranking.ok()) {
        std::fprintf(stderr, "%s\n", ranking.status().ToString().c_str());
        return 1;
      }
      std::printf("\nquery \"%s\" -> %s (belief %.4f)\n", query,
                  (*ranking)[0].db_name.c_str(), (*ranking)[0].score);
    }
  }

  // A fresh service instance (e.g. after a restart) warm-starts from the
  // persisted models — zero queries to the databases.
  {
    qbs::SamplingService service(options);
    for (auto& db : BuildFederation()) {
      (void)service.AddDatabase(std::move(db));
    }
    qbs::Status s = service.LoadModels();
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    auto ranking = service.Select("clinical therapy");
    std::printf("\nAfter restart (models loaded from %s):\n",
                model_dir.string().c_str());
    if (ranking.ok()) {
      std::printf("query \"clinical therapy\" -> %s\n",
                  (*ranking)[0].db_name.c_str());
    }
  }
  std::filesystem::remove_all(model_dir);
  return 0;
}

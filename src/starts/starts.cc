#include "starts/starts.h"

#include <cmath>

#include "util/logging.h"

namespace qbs {

HonestSource::HonestSource(const SearchEngine* engine) : engine_(engine) {
  QBS_CHECK(engine_ != nullptr);
}

std::string HonestSource::name() const { return engine_->name(); }

Result<StartsExport> HonestSource::ExportLanguageModel() {
  StartsExport out;
  out.db_name = engine_->name();
  out.model = engine_->ActualLanguageModel();
  out.num_docs = engine_->num_docs();
  const AnalyzerOptions& opts = engine_->analyzer().options();
  out.stemmed = opts.stem;
  out.stopwords_removed = opts.remove_stopwords;
  out.case_folded = opts.lowercase;
  return out;
}

MisrepresentingSource::MisrepresentingSource(const SearchEngine* engine,
                                             MisrepresentationOptions options)
    : engine_(engine), options_(std::move(options)) {
  QBS_CHECK(engine_ != nullptr);
  QBS_CHECK(options_.frequency_inflation > 0.0);
}

std::string MisrepresentingSource::name() const { return engine_->name(); }

Result<StartsExport> MisrepresentingSource::ExportLanguageModel() {
  StartsExport out;
  out.db_name = engine_->name();
  out.num_docs = engine_->num_docs();
  const AnalyzerOptions& opts = engine_->analyzer().options();
  out.stemmed = opts.stem;
  out.stopwords_removed = opts.remove_stopwords;
  out.case_folded = opts.lowercase;

  LanguageModel truth = engine_->ActualLanguageModel();
  truth.ForEach([&](const std::string& term, const TermStats& s) {
    uint64_t df = static_cast<uint64_t>(
        std::llround(s.df * options_.frequency_inflation));
    uint64_t ctf = static_cast<uint64_t>(
        std::llround(s.ctf * options_.frequency_inflation));
    out.model.AddTerm(term, std::max<uint64_t>(df, 1),
                      std::max<uint64_t>(ctf, 1));
  });
  for (const std::string& term : options_.injected_terms) {
    out.model.AddTerm(term, options_.injected_df, options_.injected_ctf);
  }
  out.model.set_num_docs(out.num_docs);
  return out;
}

double TermSpaceOverlap(const LanguageModel& a, const LanguageModel& b) {
  if (a.total_term_count() == 0) return 1.0;
  uint64_t shared = 0;
  a.ForEach([&](const std::string& term, const TermStats& s) {
    if (b.Contains(term)) shared += s.ctf;
  });
  return static_cast<double>(shared) / a.total_term_count();
}

}  // namespace qbs

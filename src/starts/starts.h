// A STARTS-style cooperative language-model exchange (paper §2.2), built as
// the baseline query-based sampling is measured against.
//
// STARTS (Gravano et al.) has each database export its index terms and
// frequencies plus a little corpus metadata. The paper identifies three
// failure modes, all modeled here:
//   1. databases that *can't* cooperate (legacy systems)       -> RefusingSource
//   2. databases that *misrepresent* their contents            -> MisrepresentingSource
//   3. exports in *incomparable term spaces* (different
//      stemming / stopword / case conventions per database)    -> metadata + TermSpaceOverlap
#ifndef QBS_STARTS_STARTS_H_
#define QBS_STARTS_STARTS_H_

#include <memory>
#include <string>
#include <vector>

#include "lm/language_model.h"
#include "search/search_engine.h"
#include "util/status.h"

namespace qbs {

/// What a cooperative database publishes: its language model in its *own*
/// term space, plus indexing metadata (STARTS "meta-data attributes").
struct StartsExport {
  std::string db_name;
  LanguageModel model;
  uint64_t num_docs = 0;
  /// Indexing conventions, as self-reported by the database.
  bool stemmed = false;
  bool stopwords_removed = false;
  bool case_folded = false;
};

/// A database's cooperative endpoint.
class CooperativeSource {
 public:
  virtual ~CooperativeSource() = default;

  /// Database name.
  virtual std::string name() const = 0;

  /// Returns the database's published language model, or an error when the
  /// database cannot / will not cooperate.
  virtual Result<StartsExport> ExportLanguageModel() = 0;
};

/// A database that cooperates honestly: exports its true index statistics.
class HonestSource : public CooperativeSource {
 public:
  /// `engine` must outlive the source.
  explicit HonestSource(const SearchEngine* engine);

  std::string name() const override;
  Result<StartsExport> ExportLanguageModel() override;

 private:
  const SearchEngine* engine_;
};

/// A legacy or hostile database: refuses every export request. Query-based
/// sampling still works on the underlying engine; STARTS does not.
class RefusingSource : public CooperativeSource {
 public:
  explicit RefusingSource(std::string name, std::string reason = "legacy system")
      : name_(std::move(name)), reason_(std::move(reason)) {}

  std::string name() const override { return name_; }
  Result<StartsExport> ExportLanguageModel() override {
    return Status::Unimplemented(name_ + " does not support export: " +
                                 reason_);
  }

 private:
  std::string name_;
  std::string reason_;
};

/// Controls how a misrepresenting database lies.
struct MisrepresentationOptions {
  /// Multiplies every exported df and ctf (a database inflating its
  /// apparent coverage).
  double frequency_inflation = 1.0;
  /// Terms injected with high frequencies even though the database does
  /// not contain them (spamming selection services to attract traffic).
  std::vector<std::string> injected_terms;
  /// df assigned to each injected term.
  uint64_t injected_df = 1'000;
  /// ctf assigned to each injected term.
  uint64_t injected_ctf = 10'000;
};

/// A database that cooperates but misrepresents its contents. The paper:
/// "It is not uncommon for information providers on the Internet to
/// misrepresent their services... STARTS offers no protection."
class MisrepresentingSource : public CooperativeSource {
 public:
  MisrepresentingSource(const SearchEngine* engine,
                        MisrepresentationOptions options);

  std::string name() const override;
  Result<StartsExport> ExportLanguageModel() override;

 private:
  const SearchEngine* engine_;
  MisrepresentationOptions options_;
};

/// Fraction of `a`'s term *occurrences* (ctf mass) carried by terms that
/// also exist in `b`'s vocabulary. Near 1.0 for same-convention exports;
/// drops sharply when one side stems/stops and the other does not — the
/// incomparability problem that makes cooperative statistics hard to merge
/// (paper §2.2).
double TermSpaceOverlap(const LanguageModel& a, const LanguageModel& b);

}  // namespace qbs

#endif  // QBS_STARTS_STARTS_H_

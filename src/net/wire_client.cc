#include "net/wire_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "net/socket.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace qbs {

namespace {

struct ClientMetrics {
  Counter* calls;
  Counter* errors;
  Counter* retries;
  Counter* connects;
  Gauge* pool_idle;
  Histogram* call_latency_us;

  static const ClientMetrics& Get() {
    static const ClientMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      ClientMetrics m;
      m.calls = r.GetCounter("qbs_net_client_calls_total",
                             "RPCs issued by wire-protocol clients (attempts "
                             "are counted under qbs_net_retry_total)");
      m.errors = r.GetCounter(
          "qbs_net_client_errors_total",
          "RPCs that failed after exhausting retries (transient) or "
          "immediately (permanent)");
      m.retries = r.GetCounter(
          "qbs_net_retry_total",
          "Transient RPC failures retried with backoff by the client");
      m.connects = r.GetCounter("qbs_net_client_connects_total",
                                "Connections dialed by wire-protocol clients");
      m.pool_idle = r.GetGauge("qbs_net_client_pool_idle",
                               "Idle pooled connections across all wire "
                               "clients");
      m.call_latency_us = r.GetHistogram(
          "qbs_net_client_call_latency_us", Histogram::LatencyBoundsUs(),
          "End-to-end RPC latency including retries and backoff");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

uint64_t NextGlobalRequestId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

WireClient::WireClient(WireClientOptions options)
    : options_(std::move(options)) {}

WireClient::~WireClient() {
  MutexLock lock(mu_);
  ClientMetrics::Get().pool_idle->Add(-static_cast<double>(idle_.size()));
  idle_.clear();
}

std::string WireClient::server_name() const {
  MutexLock lock(mu_);
  return server_name_;
}

Status WireClient::Connect() {
  // Offer the highest version this client speaks; an old server answers
  // FailedPrecondition (naming its own version) but keeps serving the
  // connection, so re-offering one version lower each round walks down
  // to the highest version both sides speak instead of failing the
  // client.
  const uint32_t my_max = std::clamp<uint32_t>(options_.max_protocol_version,
                                               1, kWireProtocolVersion);
  uint32_t offered = my_max;
  Result<WireResponse> response = Status::Internal("negotiation never ran");
  while (true) {
    WireRequest request;
    request.method = WireMethod::kServerInfo;
    request.protocol_version = offered;
    response = Call(std::move(request));
    if (response.ok() || offered == 1 ||
        !response.status().IsFailedPrecondition()) {
      break;
    }
    QBS_LOG(DEBUG) << "WireClient(" << options_.host << ":" << options_.port
                   << "): version " << offered << " refused ("
                   << response.status().message() << "); downgrading to "
                   << offered - 1;
    --offered;
  }
  QBS_RETURN_IF_ERROR(response.status());
  const uint32_t negotiated = response->server_protocol_version;
  if (negotiated < 1 || negotiated > offered) {
    return Status::FailedPrecondition(
        "server at " + options_.host + ":" + std::to_string(options_.port) +
        " negotiated unusable protocol version " +
        std::to_string(negotiated) + " (client offered " +
        std::to_string(offered) + ")");
  }
  MutexLock lock(mu_);
  server_name_ = response->server_name;
  negotiated_version_ = negotiated;
  return Status::OK();
}

uint32_t WireClient::negotiated_version() const {
  MutexLock lock(mu_);
  return negotiated_version_;
}

Result<uint32_t> WireClient::EnsureNegotiated() {
  {
    MutexLock lock(mu_);
    if (negotiated_version_ != 0) return negotiated_version_;
  }
  QBS_RETURN_IF_ERROR(Connect());
  MutexLock lock(mu_);
  return negotiated_version_;
}

Result<std::unique_ptr<ByteStream>> WireClient::AcquireConnection() {
  {
    MutexLock lock(mu_);
    if (!idle_.empty()) {
      std::unique_ptr<ByteStream> conn = std::move(idle_.back());
      idle_.pop_back();
      ClientMetrics::Get().pool_idle->Add(-1.0);
      return conn;
    }
  }
  ClientMetrics::Get().connects->Increment();
  if (options_.connector) return options_.connector();
  auto stream = SocketStream::Dial(options_.host, options_.port,
                                   options_.connect_timeout_us);
  QBS_RETURN_IF_ERROR(stream.status());
  return std::unique_ptr<ByteStream>(std::move(*stream));
}

void WireClient::ReleaseConnection(std::unique_ptr<ByteStream> conn) {
  conn->SetDeadlineMicros(0);
  MutexLock lock(mu_);
  if (idle_.size() < options_.max_idle_connections) {
    idle_.push_back(std::move(conn));
    ClientMetrics::Get().pool_idle->Add(1.0);
  }
  // else: surplus connection closes as `conn` goes out of scope.
}

Result<WireResponse> WireClient::CallOnce(ByteStream& conn,
                                          const WireRequest& request) {
  // Honor the tighter of the per-attempt timeout and the remaining
  // ambient deadline budget, so a deadline set upstream bounds this
  // whole RPC even when the peer predates the v4 trace trailer.
  uint64_t timeout_us = options_.call_timeout_us;
  uint64_t budget_us = CurrentTraceContext().deadline_budget_us;
  if (budget_us > 0 && (timeout_us == 0 || budget_us < timeout_us)) {
    timeout_us = budget_us;
  }
  conn.SetDeadlineMicros(timeout_us == 0 ? 0
                                         : MonotonicMicros() + timeout_us);
  QBS_RETURN_IF_ERROR(WriteFrame(conn, EncodeRequest(request)));
  auto payload = ReadFrame(conn, options_.max_frame_bytes);
  QBS_RETURN_IF_ERROR(payload.status());
  auto response = DecodeResponse(*payload);
  QBS_RETURN_IF_ERROR(response.status());
  if (response->request_id != request.request_id ||
      response->method != request.method) {
    // A response to some other request means the stream is out of sync
    // (this cannot happen on a connection we never reuse after an
    // error, but check anyway — it is the invariant reuse relies on).
    return Status::Corruption("wire: response does not match request");
  }
  return response;
}

Result<WireResponse> WireClient::Call(WireRequest request) {
  const ClientMetrics& metrics = ClientMetrics::Get();
  request.request_id = NextGlobalRequestId();
  // The span carries the request id in its detail so logs, traces, and
  // wire frames join on one key; it also becomes the remote parent of
  // the server's spans when the context is attached below.
  QBS_TRACE_SPAN("net.rpc", WireMethodName(request.method),
                 request.request_id);
  if (negotiated_version() >= kTraceContextMinVersion) {
    TraceContext ambient = CurrentTraceContext();
    if (ambient.valid()) {
      // Never promise the server more time than this call will wait.
      if (options_.call_timeout_us > 0 &&
          (ambient.deadline_budget_us == 0 ||
           ambient.deadline_budget_us > options_.call_timeout_us)) {
        ambient.deadline_budget_us = options_.call_timeout_us;
      }
      request.trace = ambient;
      request.protocol_version =
          std::max(request.protocol_version, kTraceContextMinVersion);
    }
  }
  ScopedTimerUs timer(metrics.call_latency_us);
  metrics.calls->Increment();
  rpcs_.fetch_add(1, std::memory_order_relaxed);
  // Deterministic per-call jitter stream: reproducible tests, decorrelated
  // calls.
  Rng jitter(options_.jitter_seed ^ request.request_id);

  Status last_error = Status::OK();
  for (size_t attempt = 0; attempt < std::max<size_t>(options_.max_attempts, 1);
       ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      metrics.retries->Increment();
      double scale =
          std::pow(options_.backoff_multiplier,
                   static_cast<double>(attempt - 1));
      uint64_t backoff = static_cast<uint64_t>(std::min(
          static_cast<double>(options_.backoff_initial_us) * scale,
          static_cast<double>(options_.backoff_max_us)));
      backoff = static_cast<uint64_t>(
          static_cast<double>(backoff) * (0.5 + 0.5 * jitter.UniformDouble()));
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      }
    }

    auto conn = AcquireConnection();
    if (!conn.ok()) {
      last_error = conn.status();
      if (last_error.IsTransient()) continue;
      break;
    }
    auto response = CallOnce(**conn, request);
    if (response.ok()) {
      // The connection is healthy; pool it. The *server's* status may
      // still be an error — that is the remote operation's outcome, and
      // only its transient subset is worth another attempt.
      ReleaseConnection(std::move(*conn));
      if (response->status.ok()) return response;
      if (!response->status.IsTransient()) {
        // Permanent server-side outcome (NotFound, InvalidArgument...):
        // pass it through verbatim, with no retries burned.
        return response->status;
      }
      last_error = response->status;
      continue;
    }
    // Transport or framing failure: the connection is suspect, drop it.
    (*conn)->Close();
    last_error = response.status();
    if (!last_error.IsTransient()) break;
  }
  metrics.errors->Increment();
  QBS_LOG(WARNING) << "WireClient(" << options_.host << ":" << options_.port
                   << "): " << WireMethodName(request.method)
                   << " failed after " << options_.max_attempts
                   << " attempt(s): " << last_error.ToString();
  return last_error;
}

}  // namespace qbs

#include "net/transport.h"

#include <chrono>
#include <thread>

namespace qbs {

FaultyTransport::FaultyTransport(std::unique_ptr<ByteStream> inner,
                                 FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan) {}

Status FaultyTransport::WriteAll(const uint8_t* data, size_t n) {
  ++writes_;
  if (plan_.drop_every_n_writes != 0 &&
      writes_ % plan_.drop_every_n_writes == 0) {
    ++writes_dropped_;
    return Status::OK();  // the caller believes the frame went out
  }
  if (plan_.truncate_every_n_writes != 0 &&
      writes_ % plan_.truncate_every_n_writes == 0) {
    ++writes_truncated_;
    QBS_RETURN_IF_ERROR(inner_->WriteAll(data, n / 2));
    return Status::OK();  // the rest of the frame never leaves
  }
  return inner_->WriteAll(data, n);
}

Status FaultyTransport::ReadFull(uint8_t* data, size_t n) {
  ++reads_;
  if (plan_.delay_every_n_reads != 0 &&
      reads_ % plan_.delay_every_n_reads == 0 && plan_.delay_us > 0) {
    ++reads_delayed_;
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_us));
  }
  if (plan_.fail_every_n_reads != 0 &&
      reads_ % plan_.fail_every_n_reads == 0) {
    ++reads_failed_;
    return Status::IOError("injected read failure");
  }
  return inner_->ReadFull(data, n);
}

void FaultyTransport::SetDeadlineMicros(uint64_t deadline_us) {
  inner_->SetDeadlineMicros(deadline_us);
}

void FaultyTransport::Close() { inner_->Close(); }

}  // namespace qbs

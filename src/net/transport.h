// The byte-transport seam of the network layer.
//
// Everything above this interface (framing, the wire protocol, the RPC
// client and server) is deterministic and testable without a kernel
// socket: tests substitute in-memory streams or wrap a real stream in
// FaultyTransport to inject drops, delays, and truncation at the byte
// layer — the failure modes a remote, uncooperative database actually
// exhibits (paper §3 assumes nothing about the far side's reliability).
#ifndef QBS_NET_TRANSPORT_H_
#define QBS_NET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace qbs {

/// A bidirectional, connection-oriented byte stream.
///
/// Implementations must make WriteAll/ReadFull all-or-error: partial
/// transfers surface as a non-OK Status, never as a short count. Error
/// taxonomy contract: peer-gone and connection failures map to
/// Unavailable, an expired deadline to DeadlineExceeded, other transport
/// faults to IOError — exactly the codes Status::IsTransient() covers,
/// so retry policies need no transport-specific knowledge.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Writes exactly `n` bytes or fails.
  virtual Status WriteAll(const uint8_t* data, size_t n) = 0;

  /// Reads exactly `n` bytes or fails. A connection cleanly closed by
  /// the peer before `n` bytes arrive is Unavailable.
  virtual Status ReadFull(uint8_t* data, size_t n) = 0;

  /// Sets an absolute deadline (MonotonicMicros() timebase) applied to
  /// every subsequent read and write; 0 clears it (block forever).
  virtual void SetDeadlineMicros(uint64_t deadline_us) = 0;

  /// Shuts the stream down; blocked and future operations fail. Safe to
  /// call from another thread (this is how servers interrupt readers).
  virtual void Close() = 0;
};

/// Deterministic fault schedule for FaultyTransport. Periods count calls
/// on this wrapper: frame writers emit one WriteAll per frame, so
/// `drop_every_n_writes = 3` drops every third frame sent.
struct FaultPlan {
  /// Every Nth WriteAll is silently swallowed (0 = never): the caller
  /// sees success, the peer sees nothing — a lost frame.
  size_t drop_every_n_writes = 0;
  /// Every Nth WriteAll sends only the first half of the buffer and then
  /// reports success — a truncated frame (the peer blocks on the rest).
  size_t truncate_every_n_writes = 0;
  /// Every Nth ReadFull fails with IOError (0 = never).
  size_t fail_every_n_reads = 0;
  /// Every Nth ReadFull sleeps `delay_us` before delegating (0 = never).
  size_t delay_every_n_reads = 0;
  uint64_t delay_us = 0;
};

/// Wraps a stream and injects faults on the deterministic FaultPlan
/// schedule. Not thread-safe (use one per connection, like any stream).
class FaultyTransport : public ByteStream {
 public:
  /// Takes ownership of `inner`.
  FaultyTransport(std::unique_ptr<ByteStream> inner, FaultPlan plan);

  Status WriteAll(const uint8_t* data, size_t n) override;
  Status ReadFull(uint8_t* data, size_t n) override;
  void SetDeadlineMicros(uint64_t deadline_us) override;
  void Close() override;

  /// Faults injected so far (for test assertions).
  size_t writes_dropped() const { return writes_dropped_; }
  size_t writes_truncated() const { return writes_truncated_; }
  size_t reads_failed() const { return reads_failed_; }
  size_t reads_delayed() const { return reads_delayed_; }

 private:
  std::unique_ptr<ByteStream> inner_;
  FaultPlan plan_;
  size_t writes_ = 0;
  size_t reads_ = 0;
  size_t writes_dropped_ = 0;
  size_t writes_truncated_ = 0;
  size_t reads_failed_ = 0;
  size_t reads_delayed_ = 0;
};

}  // namespace qbs

#endif  // QBS_NET_TRANSPORT_H_

// EventLoop: a single-threaded, non-blocking epoll readiness loop — the
// core the C10K-scale servers (net/frame_server.h) run on.
//
// One thread calls Run(); everything the loop owns (fd watches, the
// deadline wheel) is *loop-affine*: touched only from that thread, so
// it needs no lock and no atomic. The two cross-thread entry points are
// Post() (run a closure on the loop thread; a mutex-guarded FIFO plus
// an eventfd wake) and Stop(). Everything else documents its affinity
// and is enforced by convention plus the OnLoopThread() assertions in
// debug builds.
//
// Watches are level-triggered and keyed by an opaque monotonically
// increasing token, NOT by fd: a callback that closes its fd mid-batch
// lets the kernel reuse the fd number within the same epoll batch, and
// a stale event must miss the table instead of firing into the new
// owner's callback.
//
// Timers are a hashed deadline wheel (fixed tick, power-of-two slots):
// arming, re-arming, and cancelling are O(1), expiry is amortized O(1)
// per tick — no thread per timer, no priority-queue rebalancing on the
// hot path. Precision is one tick (~10ms), which is what admission and
// idle deadlines need; it is not a high-resolution timer.
#ifndef QBS_NET_EVENT_LOOP_H_
#define QBS_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/fd.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace qbs {

class EventLoop {
 public:
  /// Receives the ready epoll event mask (EPOLLIN/EPOLLOUT/EPOLLHUP...).
  using FdCallback = std::function<void(uint32_t events)>;
  /// Handle for a wheel deadline; kInvalidTimer is never issued.
  using TimerId = uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  /// Deadline-wheel granularity. A deadline fires within one tick after
  /// it expires, never before it.
  static constexpr uint64_t kTickUs = 10'000;

  EventLoop();
  /// The loop must not be running (Run() returned or never called).
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wake eventfd. Call once, before
  /// Run() / any watch registration.
  Status Init();

  /// The loop body: blocks in epoll_wait, dispatches fd events, runs
  /// posted tasks, expires wheel deadlines — until Stop(). Call from
  /// exactly one thread; that thread becomes the loop thread.
  void Run();

  /// Asks Run() to return after the current iteration. Thread-safe and
  /// idempotent. Posted tasks already queued still run before exit;
  /// tasks posted after Run() returned are dropped (their work must
  /// already be unreachable — see FrameServer::Stop()'s ordering).
  void Stop();

  /// Runs `task` on the loop thread, FIFO with other posted tasks.
  /// Thread-safe; callable from the loop thread itself (the task runs
  /// later in the same iteration, not inline).
  void Post(std::function<void()> task) QBS_EXCLUDES(mu_);

  /// Registers `fd` for level-triggered `events`. Returns the watch
  /// token for ModifyWatch/RemoveWatch. Loop-affine (or before Run()).
  Result<uint64_t> AddWatch(int fd, uint32_t events, FdCallback callback);

  /// Changes the event mask of a live watch. Loop-affine.
  Status ModifyWatch(uint64_t token, uint32_t events);

  /// Deregisters a watch; the fd itself stays open (the caller owns
  /// it). Safe against already-removed tokens. Loop-affine.
  void RemoveWatch(uint64_t token);

  /// Arms a wheel deadline: `callback` runs on the loop thread within
  /// one tick after `deadline_us` (MonotonicMicros timebase). One-shot;
  /// re-arm from the callback for periodic behavior. Loop-affine.
  TimerId AddDeadline(uint64_t deadline_us, std::function<void()> callback);

  /// Cancels an armed deadline; a no-op for fired/cancelled ids.
  /// Loop-affine.
  void CancelDeadline(TimerId id);

  /// True when called from the thread currently inside Run().
  bool OnLoopThread() const;

  /// Watches currently registered (loop-affine; for tests/statusz).
  size_t num_watches() const { return watches_.size(); }

  /// Deadlines currently armed (loop-affine; for tests/statusz).
  size_t num_deadlines() const { return deadlines_.size(); }

 private:
  static constexpr size_t kWheelSlots = 512;  // power of two; ~5.1s/turn

  struct Watch {
    int fd = -1;
    // Shared so a callback erasing its own watch entry mid-invocation
    // does not destroy the closure it is executing.
    std::shared_ptr<FdCallback> callback;
  };

  struct Deadline {
    uint64_t deadline_us = 0;
    std::function<void()> callback;
  };

  void Wake();
  void RunPostedTasks() QBS_EXCLUDES(mu_);
  /// Fires every due deadline in the slots between the last processed
  /// tick and `now_us`.
  void ExpireDeadlines(uint64_t now_us);
  /// Milliseconds epoll_wait may block given the armed deadlines.
  int PollTimeoutMs() const;

  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;

  // --- loop-affine state (only the Run() thread touches these) -------
  std::unordered_map<uint64_t, Watch> watches_;
  uint64_t next_token_ = 1;
  std::unordered_map<TimerId, Deadline> deadlines_;
  TimerId next_timer_ = 1;
  // wheel_[slot] holds candidate timer ids; a slot is rescanned each
  // rotation, so an entry whose deadline is a rotation away just stays.
  std::vector<std::vector<TimerId>> wheel_;
  uint64_t last_tick_ = 0;

  // --- cross-thread state --------------------------------------------
  mutable Mutex mu_;
  std::deque<std::function<void()>> posted_ QBS_GUARDED_BY(mu_);
  bool stop_requested_ QBS_GUARDED_BY(mu_) = false;
  std::atomic<std::thread::id> loop_thread_id_{};
};

}  // namespace qbs

#endif  // QBS_NET_EVENT_LOOP_H_

#include "net/socket.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "obs/trace.h"

namespace qbs {

namespace {

std::string ErrnoMessage(const char* what, int err) {
  return std::string(what) + ": " +
         std::error_code(err, std::generic_category()).message();
}

// The taxonomy ByteStream promises: peer-gone errors are Unavailable
// (transient), everything else at this layer is IOError (also
// transient, but distinguishable in metrics and logs).
Status SocketError(const char* what, int err) {
  switch (err) {
    case ECONNREFUSED:
    case ECONNRESET:
    case ECONNABORTED:
    case EPIPE:
    case ENETUNREACH:
    case EHOSTUNREACH:
      return Status::Unavailable(ErrnoMessage(what, err));
    default:
      return Status::IOError(ErrnoMessage(what, err));
  }
}

}  // namespace

Status SetNonBlocking(int fd, bool enable) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return SocketError("fcntl(F_GETFL)", errno);
  int desired = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (desired != flags && ::fcntl(fd, F_SETFL, desired) < 0) {
    return SocketError("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

Result<size_t> NonBlockingRead(int fd, uint8_t* data, size_t n) {
  while (true) {
    ssize_t r = ::recv(fd, data, n, 0);
    if (r > 0) return static_cast<size_t>(r);
    if (r == 0) return Status::Unavailable("connection closed by peer");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::WouldBlock("recv would block");
    }
    return SocketError("recv", errno);
  }
}

Result<size_t> NonBlockingWrite(int fd, const uint8_t* data, size_t n) {
  while (true) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w >= 0) return static_cast<size_t>(w);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::WouldBlock("send would block");
    }
    return SocketError("send", errno);
  }
}

SocketStream::SocketStream(UniqueFd fd) : fd_(std::move(fd)) {}

SocketStream::~SocketStream() = default;

Status SocketStream::PollReady(short events) {
  while (true) {
    uint64_t deadline = deadline_us_.load(std::memory_order_relaxed);
    int timeout_ms = -1;
    if (deadline != 0) {
      uint64_t now = MonotonicMicros();
      if (now >= deadline) {
        return Status::DeadlineExceeded("socket deadline expired");
      }
      // Round up so a sub-millisecond remainder does not spin.
      timeout_ms = static_cast<int>((deadline - now + 999) / 1000);
    }
    pollfd pfd{};
    pfd.fd = fd_.get();
    pfd.events = events;
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return Status::OK();
    if (ready == 0) continue;  // timeout slice elapsed; recheck deadline
    if (errno == EINTR) continue;
    return SocketError("poll", errno);
  }
}

Status SocketStream::WriteAll(const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    QBS_RETURN_IF_ERROR(PollReady(POLLOUT));
    ssize_t w = ::send(fd_.get(), data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return SocketError("send", errno);
  }
  return Status::OK();
}

Status SocketStream::ReadFull(uint8_t* data, size_t n) {
  size_t received = 0;
  while (received < n) {
    QBS_RETURN_IF_ERROR(PollReady(POLLIN));
    ssize_t r = ::recv(fd_.get(), data + received, n - received, 0);
    if (r > 0) {
      received += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      return Status::Unavailable("connection closed by peer");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return SocketError("recv", errno);
  }
  return Status::OK();
}

void SocketStream::SetDeadlineMicros(uint64_t deadline_us) {
  deadline_us_.store(deadline_us, std::memory_order_relaxed);
}

void SocketStream::Close() {
  // Shutdown, not close: another thread may be blocked in recv/poll on
  // this descriptor, and closing would let the fd number be reused under
  // it. The descriptor itself is released by the UniqueFd destructor.
  ::shutdown(fd_.get(), SHUT_RDWR);
}

Result<std::unique_ptr<SocketStream>> SocketStream::Dial(
    const std::string& host, uint16_t port, uint64_t connect_timeout_us) {
  QBS_TRACE_SPAN("net.connect", host);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host + ": " +
                               ::gai_strerror(rc));
  }
  Status last_error =
      Status::Unavailable("no addresses resolved for " + host);
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    UniqueFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_error = SocketError("socket", errno);
      continue;
    }
    // Non-blocking connect so the timeout is enforceable via poll.
    int flags = ::fcntl(fd.get(), F_GETFL, 0);
    ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
    rc = ::connect(fd.get(), ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS) {
      last_error = SocketError("connect", errno);
      continue;
    }
    if (rc != 0) {
      auto stream = std::make_unique<SocketStream>(std::move(fd));
      stream->SetDeadlineMicros(
          connect_timeout_us == 0 ? 0 : MonotonicMicros() + connect_timeout_us);
      Status ready = stream->PollReady(POLLOUT);
      if (!ready.ok()) {
        last_error = std::move(ready);
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(stream->fd_.get(), SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        last_error = SocketError("connect", so_error);
        continue;
      }
      fd = std::move(stream->fd_);
    }
    flags = ::fcntl(fd.get(), F_GETFL, 0);
    ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK);
    // RPC frames are small; Nagle would add 40ms stalls to every call.
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(results);
    return std::make_unique<SocketStream>(std::move(fd));
  }
  ::freeaddrinfo(results);
  return last_error;
}

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(
    const std::string& host, uint16_t port, int backlog) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                         service.c_str(), &hints, &results);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host + ": " +
                               ::gai_strerror(rc));
  }
  Status last_error = Status::Unavailable("no addresses resolved");
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    UniqueFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_error = SocketError("socket", errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last_error = SocketError("bind", errno);
      continue;
    }
    if (::listen(fd.get(), backlog) != 0) {
      last_error = SocketError("listen", errno);
      continue;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      last_error = SocketError("getsockname", errno);
      continue;
    }
    uint16_t bound_port = ntohs(bound.sin_port);
    ::freeaddrinfo(results);
    return std::unique_ptr<TcpListener>(
        // analyze:allow(rawnew): private ctor; adopted by unique_ptr here
        new TcpListener(std::move(fd), bound_port));
  }
  ::freeaddrinfo(results);
  return last_error;
}

Result<UniqueFd> TcpListener::Accept() {
  while (!closed_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = fd_.get();
    pfd.events = POLLIN;
    // Finite slices so CloseListener() is observed promptly even if the
    // shutdown() wake-up is not delivered on this platform.
    int ready = ::poll(&pfd, 1, 50);
    if (ready < 0 && errno != EINTR) return SocketError("poll", errno);
    if (ready <= 0) continue;
    int conn = ::accept(fd_.get(), nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK || errno == EINVAL) {
        continue;
      }
      return SocketError("accept", errno);
    }
    int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return UniqueFd(conn);
  }
  return Status::Unavailable("listener closed");
}

Result<UniqueFd> TcpListener::AcceptNonBlocking() {
  while (true) {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("listener closed");
    }
    int conn = ::accept(fd_.get(), nullptr, nullptr);
    if (conn < 0) {
      // A connection that died between the kernel queue and our accept
      // (ECONNABORTED) is not "nothing pending" — try the next one.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::WouldBlock("no connection pending");
      }
      // EINVAL: the listener was shut down under us (CloseListener).
      if (errno == EINVAL) return Status::Unavailable("listener closed");
      return SocketError("accept", errno);
    }
    int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return UniqueFd(conn);
  }
}

void TcpListener::CloseListener() {
  closed_.store(true, std::memory_order_release);
  // Best-effort wake of a blocked Accept (the poll slice is the fallback).
  ::shutdown(fd_.get(), SHUT_RDWR);
}

}  // namespace qbs

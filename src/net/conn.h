// Conn: the per-connection state machine of the epoll frame servers.
//
// One Conn owns one accepted non-blocking socket and turns readiness
// events into whole protocol frames (incremental reassembly of the
// 4-byte length prefix + payload, however the bytes are sliced by the
// peer or the kernel) and queued response frames into writes (a bounded
// write queue with backpressure: a connection whose responses back up
// past the high watermark stops being read until the queue drains, so a
// peer that never reads cannot balloon server memory).
//
// Thread model: every method is loop-affine — called only from the
// owning EventLoop's thread — so Conn holds no lock. Cross-thread work
// (handler completions from the ThreadPool) reaches a Conn exclusively
// via EventLoop::Post in FrameServer; this is the invariant that makes
// the no-lock design sound, and it is documented rather than
// lock-enforced on purpose (a mutex here would serialize the loop
// against 10k peers' worth of handler completions).
#ifndef QBS_NET_CONN_H_
#define QBS_NET_CONN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/event_loop.h"
#include "util/fd.h"
#include "util/status.h"

namespace qbs {

struct ConnOptions {
  /// Inbound frames larger than this are a protocol violation; the
  /// read side reports Corruption and the server drops the connection.
  size_t max_frame_bytes = 64u << 20;
  /// Write-queue high watermark: above it reads pause (backpressure);
  /// they resume once the queue drains below half of it.
  size_t max_write_queue_bytes = 4u << 20;
};

class Conn {
 public:
  /// A complete inbound frame payload (length prefix stripped).
  using FrameCallback = std::function<void(std::vector<uint8_t> payload)>;
  /// The read side ended: clean EOF surfaces Unavailable, a garbled or
  /// oversized frame Corruption, other socket failures IOError. The
  /// owner decides between draining queued responses and closing now.
  using ReadEndCallback = std::function<void(Status reason)>;
  /// The connection is fully closed (fd released, watch removed).
  /// Fired exactly once, from inside a Conn method — the owner must
  /// defer destruction of this Conn (EventLoop::Post), not delete it
  /// re-entrantly.
  using ClosedCallback = std::function<void()>;

  /// `fd` must already be O_NONBLOCK. Callbacks run on the loop thread.
  Conn(uint64_t id, UniqueFd fd, EventLoop* loop, ConnOptions options,
       FrameCallback on_frame, ReadEndCallback on_read_end,
       ClosedCallback on_closed);
  /// Removes the watch and closes the fd if still open (without firing
  /// on_closed — destruction is the owner already knowing).
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Registers with the loop for reads. Call once after construction.
  Status Register();

  /// Queues one already-length-prefixed frame and flushes as much as
  /// the socket accepts now; the rest goes out on EPOLLOUT. No-op after
  /// close.
  void SendFrame(std::vector<uint8_t> frame);

  /// Owner-side flow control (e.g. too many pipelined requests from
  /// this peer are already queued for the pool). Nests with the
  /// internal write-backpressure pause; reads resume only when both
  /// reasons clear.
  void PauseReads();
  void ResumeReads();

  /// Stops reading and closes once the write queue has flushed (now,
  /// if it is already empty). The graceful-shutdown path.
  void StartDrain();

  /// Closes immediately: discards unsent responses, removes the watch,
  /// closes the fd, fires on_closed. Idempotent.
  void CloseNow();

  uint64_t id() const { return id_; }
  bool closed() const { return closed_; }
  /// True once the peer's read side ended (EOF or error seen).
  bool read_ended() const { return read_ended_; }
  size_t write_queue_bytes() const { return write_queue_bytes_; }
  /// MonotonicMicros of the last byte read or written; idle-deadline
  /// bookkeeping for the owner's wheel timer.
  uint64_t last_activity_us() const { return last_activity_us_; }

 private:
  void OnEvents(uint32_t events);
  void ReadSome();
  void FlushWrites();
  /// Re-derives the epoll mask from the pause/drain/queue state.
  void UpdateWatchMask();
  bool reads_enabled() const {
    return !read_ended_ && !draining_ && !owner_paused_ && !write_paused_;
  }
  void EndRead(Status reason);

  const uint64_t id_;
  UniqueFd fd_;
  EventLoop* loop_;
  const ConnOptions options_;
  FrameCallback on_frame_;
  ReadEndCallback on_read_end_;
  ClosedCallback on_closed_;

  uint64_t watch_token_ = 0;
  uint32_t watch_mask_ = 0;

  // Inbound frame reassembly.
  uint8_t header_[4] = {0, 0, 0, 0};
  size_t header_filled_ = 0;
  std::vector<uint8_t> payload_;
  size_t payload_filled_ = 0;
  bool in_payload_ = false;

  // Outbound queue; front frame is sent from write_offset_ onward.
  std::deque<std::vector<uint8_t>> write_queue_;
  size_t write_offset_ = 0;
  size_t write_queue_bytes_ = 0;

  bool owner_paused_ = false;
  bool write_paused_ = false;
  bool read_ended_ = false;
  bool draining_ = false;
  bool closed_ = false;
  uint64_t last_activity_us_ = 0;
};

}  // namespace qbs

#endif  // QBS_NET_CONN_H_

#include "net/frame_server.h"

#include <algorithm>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {

namespace {

struct ServerMetrics {
  Counter* connections_total;
  Gauge* active_connections;
  Counter* errors;
  Histogram* request_latency_us;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      ServerMetrics m;
      m.connections_total =
          r.GetCounter("qbs_net_server_connections_total",
                       "Connections accepted by wire-protocol servers");
      m.active_connections =
          r.GetGauge("qbs_net_server_active_connections",
                     "Connections currently being served");
      m.errors = r.GetCounter(
          "qbs_net_server_errors_total",
          "Undecodable frames and transport failures on the server side");
      m.request_latency_us = r.GetHistogram(
          "qbs_net_server_request_latency_us", Histogram::LatencyBoundsUs(),
          "Server-side request handling latency, handler included");
      return m;
    }();
    return metrics;
  }

  static Counter* Requests(WireMethod method) {
    // One labeled series per method; registration is locked, so look
    // each up once. Indexed by the wire method value, which is dense
    // and starts at 1.
    static Counter* const per_method[] = {
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method", "ping"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "server_info"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method", "run_query"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "fetch_document"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "query_and_fetch"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "fetch_batch"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method", "select"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "broker_status"),
            "Requests served, by method"),
    };
    static_assert(sizeof(per_method) / sizeof(per_method[0]) ==
                  static_cast<uint32_t>(WireMethod::kBrokerStatus));
    return per_method[static_cast<uint32_t>(method) - 1];
  }
};

}  // namespace

FrameServer::FrameServer(std::string description, FrameServerOptions options)
    : description_(std::move(description)),
      options_(std::move(options)),
      spoken_version_(
          std::min(std::max<uint32_t>(options_.max_protocol_version, 1),
                   kWireProtocolVersion)) {}

FrameServer::~FrameServer() {
  // Safety net only — subclasses stop in their own destructor, while
  // their Handle() state is still alive.
  Stop();
}

bool FrameServer::running() const {
  MutexLock lock(mu_);
  return running_;
}

std::string FrameServer::address() const {
  return options_.host + ":" + std::to_string(port_);
}

size_t FrameServer::active_connections() const {
  MutexLock lock(mu_);
  return active_.size();
}

void FrameServer::AddStatusProvider(std::string key,
                                    std::function<std::string()> value) {
  MutexLock lock(mu_);
  status_providers_.emplace_back(std::move(key), std::move(value));
}

Status FrameServer::Start() {
  MutexLock lock(mu_);
  if (running_) {
    return Status::FailedPrecondition(description_ + " already started");
  }
  auto listener = TcpListener::Listen(options_.host, options_.port);
  QBS_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  port_ = listener_->port();
  if (options_.admin_port >= 0) {
    AdminServerOptions admin_options;
    admin_options.host = options_.admin_host;
    admin_options.port = static_cast<uint16_t>(options_.admin_port);
    admin_ = std::make_unique<AdminServer>(std::move(admin_options));
    admin_->AddStatus("server", [this] { return description_; });
    admin_->AddStatus("address", [this] { return address(); });
    admin_->AddStatus("protocol_version", [this] {
      return std::to_string(spoken_version_);
    });
    admin_->AddStatus("active_connections", [this] {
      return std::to_string(active_connections());
    });
    for (auto& [key, value] : status_providers_) {
      admin_->AddStatus(key, std::move(value));
    }
    status_providers_.clear();
    Status admin_started = admin_->Start();
    if (!admin_started.ok()) {
      listener_->CloseListener();
      listener_.reset();
      admin_.reset();
      return admin_started;
    }
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  QBS_LOG(INFO) << description_ << ": serving on " << options_.host << ":"
                << port_;
  return Status::OK();
}

void FrameServer::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    // Stop the intake first: no new connections reach the pool.
    listener_->CloseListener();
    // Wake every blocked connection reader; their tasks then drain.
    for (SocketStream* stream : active_) stream->Close();
  }
  accept_thread_.join();
  // Queued-but-unserved connections run their task post-Close and exit
  // immediately on the first read; Shutdown drains them all.
  pool_->Shutdown();
  // The admin endpoint outlives the request path on purpose (a /statusz
  // during drain still answers); it goes down last.
  if (admin_ != nullptr) admin_->Stop();
  QBS_LOG(INFO) << description_ << ": port " << port_ << " stopped";
}

void FrameServer::AcceptLoop() {
  const ServerMetrics& metrics = ServerMetrics::Get();
  while (true) {
    auto conn = listener_->Accept();
    if (!conn.ok()) return;  // listener closed (or irrecoverable)
    metrics.connections_total->Increment();
    auto stream = std::make_shared<SocketStream>(std::move(*conn));
    {
      MutexLock lock(mu_);
      if (!running_) {
        stream->Close();
        return;
      }
      active_.insert(stream.get());
    }
    bool accepted =
        pool_->Submit([this, stream] { ServeConnection(stream); });
    if (!accepted) {
      // Shutdown raced the accept; the connection is dropped.
      MutexLock lock(mu_);
      active_.erase(stream.get());
      stream->Close();
    }
  }
}

void FrameServer::ServeConnection(std::shared_ptr<SocketStream> stream) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  GaugeGuard active_guard(metrics.active_connections);
  while (true) {
    auto payload = ReadFrame(*stream, options_.max_frame_bytes);
    if (!payload.ok()) {
      // Peer hung up (the normal end of a connection), shutdown woke us,
      // or the frame was oversized/garbled. Only the latter is an error.
      if (payload.status().IsCorruption()) {
        metrics.errors->Increment();
        QBS_LOG(WARNING) << description_ << ": dropping connection: "
                         << payload.status().ToString();
      }
      break;
    }
    auto request = DecodeRequest(*payload);
    if (!request.ok()) {
      // Without a decoded header there is no request id to answer to;
      // the stream is out of sync, so drop the connection.
      metrics.errors->Increment();
      QBS_LOG(WARNING) << description_ << ": undecodable request: "
                       << request.status().ToString();
      break;
    }
    WireResponse response;
    {
      // Adopt the caller's trace (v4 trailer) for the whole handling
      // scope: the net.serve span below and everything under it —
      // handler spans, downstream RPCs — join the caller's trace_id and
      // parent under its net.rpc span.
      TraceContextScope trace_scope(request->trace, request->request_id);
      QBS_TRACE_SPAN("net.serve", WireMethodName(request->method),
                     request->request_id);
      ScopedTimerUs timer(metrics.request_latency_us);
      ServerMetrics::Requests(request->method)->Increment();
      response = Dispatch(*request);
    }
    Status sent = WriteFrame(*stream, EncodeResponse(response));
    if (!sent.ok()) {
      metrics.errors->Increment();
      break;
    }
  }
  MutexLock lock(mu_);
  active_.erase(stream.get());
}

WireResponse FrameServer::Dispatch(const WireRequest& request) {
  if (request.protocol_version > spoken_version_ ||
      request.protocol_version < MinVersionForMethod(request.method)) {
    WireResponse response;
    response.request_id = request.request_id;
    response.method = request.method;
    response.protocol_version = request.protocol_version;
    response.status = Status::FailedPrecondition(
        "protocol version " + std::to_string(request.protocol_version) +
        " not supported for " + WireMethodName(request.method) +
        "; server speaks version " + std::to_string(spoken_version_));
    return response;
  }
  return Handle(request);
}

}  // namespace qbs

#include "net/frame_server.h"

#include <sys/epoll.h>

#include <algorithm>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {

namespace {

struct ServerMetrics {
  Counter* connections_total;
  Gauge* open_connections;
  Gauge* active_connections;
  Counter* errors;
  Counter* queue_shed;
  Counter* idle_closed;
  Histogram* request_latency_us;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      ServerMetrics m;
      m.connections_total =
          r.GetCounter("qbs_net_server_connections_total",
                       "Connections accepted by wire-protocol servers");
      m.open_connections =
          r.GetGauge("qbs_net_connections",
                     "Connections currently open on event-loop servers");
      m.active_connections =
          r.GetGauge("qbs_net_server_active_connections",
                     "Connections currently being served");
      m.errors = r.GetCounter(
          "qbs_net_server_errors_total",
          "Undecodable frames and transport failures on the server side");
      m.queue_shed = r.GetCounter(
          "qbs_net_loop_queue_shed_total",
          "Requests answered with retryable Unavailable because they "
          "outwaited the server's admission deadline in the worker queue");
      m.idle_closed =
          r.GetCounter("qbs_net_loop_idle_closed_total",
                       "Connections dropped by the idle deadline");
      m.request_latency_us = r.GetHistogram(
          "qbs_net_server_request_latency_us", Histogram::LatencyBoundsUs(),
          "Server-side request handling latency, handler included");
      return m;
    }();
    return metrics;
  }

  static Counter* Requests(WireMethod method) {
    // One labeled series per method; registration is locked, so look
    // each up once. Indexed by the wire method value, which is dense
    // and starts at 1.
    static Counter* const per_method[] = {
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method", "ping"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "server_info"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method", "run_query"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "fetch_document"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "query_and_fetch"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "fetch_batch"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method", "select"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "broker_status"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "shard_info"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "snapshot_fetch"),
            "Requests served, by method"),
    };
    static_assert(sizeof(per_method) / sizeof(per_method[0]) ==
                  static_cast<uint32_t>(WireMethod::kSnapshotFetch));
    return per_method[static_cast<uint32_t>(method) - 1];
  }
};

/// Prepends the 4-byte little-endian length prefix — the same frame
/// layout WriteFrame produces on a blocking stream (net/transport.cc),
/// assembled here so the loop can queue it as one contiguous buffer.
std::vector<uint8_t> FrameBytes(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame(sizeof(uint32_t) + payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (size_t i = 0; i < sizeof(uint32_t); ++i) {
    frame[i] = static_cast<uint8_t>((length >> (8 * i)) & 0xFF);
  }
  std::copy(payload.begin(), payload.end(), frame.begin() + sizeof(uint32_t));
  return frame;
}

}  // namespace

FrameServer::FrameServer(std::string description, FrameServerOptions options)
    : description_(std::move(description)),
      options_(std::move(options)),
      spoken_version_(
          std::min(std::max<uint32_t>(options_.max_protocol_version, 1),
                   kWireProtocolVersion)) {}

FrameServer::~FrameServer() {
  // Safety net only — subclasses stop in their own destructor, while
  // their Handle() state is still alive.
  Stop();
}

bool FrameServer::running() const {
  MutexLock lock(mu_);
  return running_;
}

std::string FrameServer::address() const {
  return options_.host + ":" + std::to_string(port_);
}

void FrameServer::AddStatusProvider(std::string key,
                                    std::function<std::string()> value) {
  MutexLock lock(mu_);
  status_providers_.emplace_back(std::move(key), std::move(value));
}

Status FrameServer::Start() {
  MutexLock lock(mu_);
  if (running_) {
    return Status::FailedPrecondition(description_ + " already started");
  }
  auto listener = TcpListener::Listen(options_.host, options_.port);
  QBS_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  port_ = listener_->port();
  Status nonblocking = SetNonBlocking(listener_->fd(), true);
  if (!nonblocking.ok()) {
    listener_->CloseListener();
    listener_.reset();
    return nonblocking;
  }
  loop_ = std::make_unique<EventLoop>();
  Status loop_ready = loop_->Init();
  if (!loop_ready.ok()) {
    listener_->CloseListener();
    listener_.reset();
    loop_.reset();
    return loop_ready;
  }
  if (options_.admin_port >= 0) {
    AdminServerOptions admin_options;
    admin_options.host = options_.admin_host;
    admin_options.port = static_cast<uint16_t>(options_.admin_port);
    admin_ = std::make_unique<AdminServer>(std::move(admin_options));
    admin_->AddStatus("server", [this] { return description_; });
    admin_->AddStatus("address", [this] { return address(); });
    admin_->AddStatus("protocol_version", [this] {
      return std::to_string(spoken_version_);
    });
    admin_->AddStatus("active_connections", [this] {
      return std::to_string(active_connections());
    });
    for (auto& [key, value] : status_providers_) {
      admin_->AddStatus(key, std::move(value));
    }
    status_providers_.clear();
    Status admin_started = admin_->Start();
    if (!admin_started.ok()) {
      listener_->CloseListener();
      listener_.reset();
      loop_.reset();
      admin_.reset();
      return admin_started;
    }
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  // Loop-affine state is pristine here: conns_ drained to empty before
  // the previous Stop() returned.
  stopping_ = false;
  drained_ = false;
  next_conn_id_ = 1;
  auto watch = loop_->AddWatch(listener_->fd(), EPOLLIN,
                               [this](uint32_t) { OnAccept(); });
  if (!watch.ok()) {
    pool_->Shutdown();
    pool_.reset();
    if (admin_ != nullptr) admin_->Stop();
    admin_.reset();
    listener_->CloseListener();
    listener_.reset();
    loop_.reset();
    return watch.status();
  }
  listener_watch_ = *watch;
  running_ = true;
  loop_thread_ = std::thread([this] { loop_->Run(); });
  QBS_LOG(INFO) << description_ << ": serving on " << options_.host << ":"
                << port_;
  return Status::OK();
}

void FrameServer::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  // Phase 1: stop the intake. No new connections, no new requests read.
  loop_->Post([this] {
    stopping_ = true;
    if (listener_watch_ != 0) {
      loop_->RemoveWatch(listener_watch_);
      listener_watch_ = 0;
    }
    listener_->CloseListener();
    for (auto& [id, state] : conns_) state.conn->PauseReads();
  });
  // Phase 2: drain the in-flight requests. Every worker posts its
  // completion to the (still running) loop before Shutdown() returns,
  // so the responses are queued on their connections strictly before
  // phase 3's task — Post is FIFO.
  pool_->Shutdown();
  // Phase 3: flush and close. Connections with queued responses get
  // drain_timeout_us for their peers to read; stragglers are
  // force-closed by the wheel deadline. Pending-but-undispatched frames
  // are dropped, exactly like the old server's unserved reads.
  loop_->Post([this] {
    for (auto& [id, state] : conns_) {
      if (options_.drain_timeout_us == 0) {
        state.conn->CloseNow();
      } else {
        state.conn->StartDrain();
      }
    }
    if (!conns_.empty() && options_.drain_timeout_us > 0) {
      loop_->AddDeadline(
          MonotonicMicros() + options_.drain_timeout_us, [this] {
            for (auto& [id, state] : conns_) state.conn->CloseNow();
          });
    }
    CheckDrained();
  });
  {
    MutexLock lock(mu_);
    drained_cv_.Wait(mu_, [this]() QBS_REQUIRES(mu_) { return drained_; });
  }
  loop_->Stop();
  loop_thread_.join();
  // The admin endpoint outlives the request path on purpose (a /statusz
  // during drain still answers); it goes down last.
  if (admin_ != nullptr) admin_->Stop();
  QBS_LOG(INFO) << description_ << ": port " << port_ << " stopped";
}

void FrameServer::CheckDrained() {
  if (!stopping_ || !conns_.empty()) return;
  {
    MutexLock lock(mu_);
    drained_ = true;
  }
  drained_cv_.NotifyAll();
}

void FrameServer::OnAccept() {
  const ServerMetrics& metrics = ServerMetrics::Get();
  // Level-triggered: accept until would-block so one wakeup drains an
  // accept burst.
  while (true) {
    auto accepted = listener_->AcceptNonBlocking();
    if (!accepted.ok()) {
      if (accepted.status().IsWouldBlock()) return;
      if (accepted.status().IsUnavailable()) return;  // listener closed
      // Transient accept failure — EMFILE under fd pressure being the
      // canonical one. The listener stays level-ready, so spinning here
      // would peg the loop; unwatch it and come back after a beat.
      metrics.errors->Increment();
      QBS_LOG(WARNING) << description_
                       << ": accept: " << accepted.status().ToString();
      if (listener_watch_ != 0) {
        loop_->RemoveWatch(listener_watch_);
        listener_watch_ = 0;
        loop_->AddDeadline(MonotonicMicros() + 100'000, [this] {
          if (stopping_) return;
          auto rewatch = loop_->AddWatch(listener_->fd(), EPOLLIN,
                                         [this](uint32_t) { OnAccept(); });
          if (rewatch.ok()) listener_watch_ = *rewatch;
        });
      }
      return;
    }
    UniqueFd fd = std::move(*accepted);
    Status nonblocking = SetNonBlocking(fd.get(), true);
    if (!nonblocking.ok()) {
      metrics.errors->Increment();
      continue;  // the UniqueFd drops the connection
    }
    metrics.connections_total->Increment();
    const uint64_t conn_id = next_conn_id_++;
    ConnOptions conn_options;
    conn_options.max_frame_bytes = options_.max_frame_bytes;
    conn_options.max_write_queue_bytes = options_.max_write_queue_bytes;
    auto conn = std::make_unique<Conn>(
        conn_id, std::move(fd), loop_.get(), conn_options,
        [this, conn_id](std::vector<uint8_t> payload) {
          OnFrame(conn_id, std::move(payload));
        },
        [this, conn_id](Status reason) { OnReadEnd(conn_id, reason); },
        [this, conn_id] { OnConnClosed(conn_id); });
    Status registered = conn->Register();
    if (!registered.ok()) {
      metrics.errors->Increment();
      QBS_LOG(WARNING) << description_ << ": watch accepted connection: "
                       << registered.ToString();
      continue;
    }
    ConnState state;
    state.conn = std::move(conn);
    if (options_.idle_timeout_us > 0) {
      state.idle_timer = loop_->AddDeadline(
          MonotonicMicros() + options_.idle_timeout_us,
          [this, conn_id] { OnIdleDeadline(conn_id); });
    }
    conns_.emplace(conn_id, std::move(state));
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    metrics.open_connections->Add(1);
  }
}

void FrameServer::OnFrame(uint64_t conn_id, std::vector<uint8_t> payload) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ConnState& state = it->second;
  PendingFrame frame;
  frame.payload = std::move(payload);
  frame.enqueued_us = MonotonicMicros();
  state.pending.push_back(std::move(frame));
  if (state.pending.size() >= options_.max_pipelined_requests) {
    state.conn->PauseReads();
  }
  DispatchNext(conn_id, state);
}

void FrameServer::DispatchNext(uint64_t conn_id, ConnState& state) {
  if (state.busy || state.pending.empty() || stopping_) return;
  const ServerMetrics& metrics = ServerMetrics::Get();
  PendingFrame frame = std::move(state.pending.front());
  state.pending.pop_front();
  state.busy = true;
  metrics.active_connections->Add(1);
  bool accepted =
      pool_->Submit([this, conn_id, frame = std::move(frame)]() mutable {
        HandleFrameOnWorker(conn_id, std::move(frame));
      });
  if (!accepted) {
    // Shutdown raced the dispatch; flush what this connection was
    // already owed and close it.
    state.busy = false;
    metrics.active_connections->Add(-1);
    state.conn->StartDrain();
  }
}

void FrameServer::HandleFrameOnWorker(uint64_t conn_id, PendingFrame frame) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  auto request = DecodeRequest(frame.payload);
  if (!request.ok()) {
    // Without a decoded header there is no request id to answer to;
    // the stream is out of sync, so drop the connection.
    metrics.errors->Increment();
    QBS_LOG(WARNING) << description_ << ": undecodable request: "
                     << request.status().ToString();
    loop_->Post([this, conn_id] {
      OnHandlerDone(conn_id, std::vector<uint8_t>(), true);
    });
    return;
  }
  WireResponse response;
  if (options_.queue_timeout_us > 0 &&
      MonotonicMicros() - frame.enqueued_us > options_.queue_timeout_us) {
    // The admission deadline passed while this request sat behind its
    // connection's predecessors; shed it with the retryable contract
    // instead of serving it stale.
    metrics.queue_shed->Increment();
    response.request_id = request->request_id;
    response.method = request->method;
    response.protocol_version = request->protocol_version;
    response.status = Status::Unavailable(
        description_ + " overloaded: request outwaited the " +
        std::to_string(options_.queue_timeout_us) +
        "us admission deadline; retry with backoff");
  } else {
    // Adopt the caller's trace (v4 trailer) for the whole handling
    // scope: the net.serve span below and everything under it —
    // handler spans, downstream RPCs — join the caller's trace_id and
    // parent under its net.rpc span.
    TraceContextScope trace_scope(request->trace, request->request_id);
    QBS_TRACE_SPAN("net.serve", WireMethodName(request->method),
                   request->request_id);
    ScopedTimerUs timer(metrics.request_latency_us);
    ServerMetrics::Requests(request->method)->Increment();
    response = Dispatch(*request);
  }
  std::vector<uint8_t> out = FrameBytes(EncodeResponse(response));
  loop_->Post([this, conn_id, out = std::move(out)]() mutable {
    OnHandlerDone(conn_id, std::move(out), false);
  });
}

void FrameServer::OnHandlerDone(uint64_t conn_id,
                                std::vector<uint8_t> response_frame,
                                bool drop_connection) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // closed while the handler ran
  const ServerMetrics& metrics = ServerMetrics::Get();
  ConnState& state = it->second;
  state.busy = false;
  metrics.active_connections->Add(-1);
  Conn* conn = state.conn.get();
  if (drop_connection) {
    conn->CloseNow();
    return;
  }
  conn->SendFrame(std::move(response_frame));
  if (conn->closed()) return;  // write failed inside SendFrame
  if (state.pending.size() < options_.max_pipelined_requests / 2) {
    conn->ResumeReads();
  }
  DispatchNext(conn_id, state);
  if (!state.busy && state.pending.empty() && conn->read_ended()) {
    // The peer already half-closed; this response was the last word.
    conn->StartDrain();
  }
}

void FrameServer::OnReadEnd(uint64_t conn_id, const Status& reason) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ConnState& state = it->second;
  if (reason.IsCorruption()) {
    // Peer hung up (the normal end of a connection) or the transport
    // failed — only a garbled/oversized frame is an error.
    ServerMetrics::Get().errors->Increment();
    QBS_LOG(WARNING) << description_
                     << ": dropping connection: " << reason.ToString();
    state.conn->CloseNow();
    return;
  }
  if (!state.busy && state.pending.empty()) {
    state.conn->StartDrain();
  }
  // Otherwise requests are still in flight; the completion path drains
  // once the last response is queued.
}

void FrameServer::OnConnClosed(uint64_t conn_id) {
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  ServerMetrics::Get().open_connections->Add(-1);
  auto it = conns_.find(conn_id);
  if (it != conns_.end() &&
      it->second.idle_timer != EventLoop::kInvalidTimer) {
    loop_->CancelDeadline(it->second.idle_timer);
    it->second.idle_timer = EventLoop::kInvalidTimer;
  }
  // on_closed fires from inside a Conn method; destroy the Conn only
  // after its stack unwinds.
  loop_->Post([this, conn_id] {
    auto entry = conns_.find(conn_id);
    if (entry == conns_.end()) return;
    if (entry->second.busy) {
      // Its worker will finish into a missing conn; settle the gauge
      // here, once.
      ServerMetrics::Get().active_connections->Add(-1);
    }
    conns_.erase(entry);
    CheckDrained();
  });
}

void FrameServer::OnIdleDeadline(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ConnState& state = it->second;
  state.idle_timer = EventLoop::kInvalidTimer;
  const uint64_t now = MonotonicMicros();
  const uint64_t expires_at =
      state.conn->last_activity_us() + options_.idle_timeout_us;
  if (now >= expires_at && !state.busy && state.pending.empty()) {
    ServerMetrics::Get().idle_closed->Increment();
    state.conn->CloseNow();
    return;
  }
  // Activity (or an in-flight request) moved the horizon; re-arm for it.
  state.idle_timer =
      loop_->AddDeadline(std::max(expires_at, now + EventLoop::kTickUs),
                         [this, conn_id] { OnIdleDeadline(conn_id); });
}

WireResponse FrameServer::Dispatch(const WireRequest& request) {
  if (request.protocol_version > spoken_version_ ||
      request.protocol_version < MinVersionForMethod(request.method)) {
    WireResponse response;
    response.request_id = request.request_id;
    response.method = request.method;
    response.protocol_version = request.protocol_version;
    response.status = Status::FailedPrecondition(
        "protocol version " + std::to_string(request.protocol_version) +
        " not supported for " + WireMethodName(request.method) +
        "; server speaks version " + std::to_string(spoken_version_));
    return response;
  }
  return Handle(request);
}

}  // namespace qbs

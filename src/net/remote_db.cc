#include "net/remote_db.h"

#include <utility>

#include "obs/metrics.h"

namespace qbs {

namespace {

struct BatchMetrics {
  Counter* batch_rpcs;
  Counter* batch_docs;
  Counter* batch_fallbacks;

  static const BatchMetrics& Get() {
    static const BatchMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      BatchMetrics m;
      m.batch_rpcs = r.GetCounter(
          "qbs_net_batch_client_rpcs_total",
          "Batched RPCs (query_and_fetch, fetch_batch) issued to v2 "
          "servers");
      m.batch_docs = r.GetCounter(
          "qbs_net_batch_client_docs_total",
          "Documents received inside batched responses — each one a "
          "round trip saved against the v1 protocol");
      m.batch_fallbacks = r.GetCounter(
          "qbs_net_batch_fallback_total",
          "Batch calls served by single-shot v1 composition because the "
          "peer negotiated version 1 or batching is disabled");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

RemoteTextDatabase::RemoteTextDatabase(RemoteDatabaseOptions options)
    : client_(static_cast<WireClientOptions>(options)),
      enable_batching_(options.enable_batching) {}

RemoteTextDatabase::~RemoteTextDatabase() = default;

std::string RemoteTextDatabase::name() const {
  std::string server_name = client_.server_name();
  if (!server_name.empty()) return server_name;
  return "remote:" + client_.options().host + ":" +
         std::to_string(client_.options().port);
}

Status RemoteTextDatabase::Connect() { return client_.Connect(); }

Result<std::vector<SearchHit>> RemoteTextDatabase::RunQuery(
    std::string_view query, size_t max_results) {
  WireRequest request;
  request.method = WireMethod::kRunQuery;
  request.query.assign(query.data(), query.size());
  request.max_results = max_results;
  auto response = client_.Call(std::move(request));
  QBS_RETURN_IF_ERROR(response.status());
  return std::move(response->hits);
}

Result<std::string> RemoteTextDatabase::FetchDocument(
    std::string_view handle) {
  WireRequest request;
  request.method = WireMethod::kFetchDocument;
  request.handle.assign(handle.data(), handle.size());
  auto response = client_.Call(std::move(request));
  QBS_RETURN_IF_ERROR(response.status());
  return std::move(response->document);
}

Result<QueryAndFetchResult> RemoteTextDatabase::QueryAndFetch(
    std::string_view query, size_t max_results) {
  const BatchMetrics& metrics = BatchMetrics::Get();
  if (enable_batching_) {
    auto version = client_.EnsureNegotiated();
    if (version.ok() && *version >= 2) {
      WireRequest request;
      request.method = WireMethod::kQueryAndFetch;
      request.protocol_version = MinVersionForMethod(request.method);
      request.query.assign(query.data(), query.size());
      request.max_results = max_results;
      auto response = client_.Call(std::move(request));
      QBS_RETURN_IF_ERROR(response.status());
      metrics.batch_rpcs->Increment();
      metrics.batch_docs->Increment(response->documents.size());
      QueryAndFetchResult result;
      result.hits = std::move(response->hits);
      result.documents = std::move(response->documents);
      return result;
    }
    // Negotiation failed outright (server unreachable): let the
    // composed path surface the real transport error rather than the
    // negotiation's. A healthy v1 server simply lands here every call.
  }
  metrics.batch_fallbacks->Increment();
  return TextDatabase::QueryAndFetch(query, max_results);
}

Result<std::vector<FetchedDocument>> RemoteTextDatabase::FetchBatch(
    const std::vector<std::string>& handles) {
  const BatchMetrics& metrics = BatchMetrics::Get();
  if (enable_batching_ && !handles.empty()) {
    auto version = client_.EnsureNegotiated();
    if (version.ok() && *version >= 2) {
      WireRequest request;
      request.method = WireMethod::kFetchBatch;
      request.protocol_version = MinVersionForMethod(request.method);
      request.handles = handles;
      auto response = client_.Call(std::move(request));
      QBS_RETURN_IF_ERROR(response.status());
      if (response->documents.size() != handles.size()) {
        return Status::Corruption(
            "wire: fetch_batch returned " +
            std::to_string(response->documents.size()) + " documents for " +
            std::to_string(handles.size()) + " handles");
      }
      metrics.batch_rpcs->Increment();
      metrics.batch_docs->Increment(response->documents.size());
      // Handles travel only in the request; restore the alignment the
      // interface promises.
      for (size_t i = 0; i < handles.size(); ++i) {
        response->documents[i].handle = handles[i];
      }
      return std::move(response->documents);
    }
  }
  metrics.batch_fallbacks->Increment();
  return TextDatabase::FetchBatch(handles);
}

}  // namespace qbs

#include "net/wire.h"

#include <cstring>

#include "index/varint.h"

namespace qbs {

namespace {

// StatusCode <-> wire integer. Values are wire-stable and independent of
// the enum's in-memory order; extend only by appending.
uint32_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kOutOfRange:
      return 3;
    case StatusCode::kFailedPrecondition:
      return 4;
    case StatusCode::kIOError:
      return 5;
    case StatusCode::kCorruption:
      return 6;
    case StatusCode::kUnimplemented:
      return 7;
    case StatusCode::kInternal:
      return 8;
    case StatusCode::kUnavailable:
      return 9;
    case StatusCode::kDeadlineExceeded:
      return 10;
    case StatusCode::kWouldBlock:
      // A local readiness signal (EAGAIN) that must never describe an
      // RPC outcome; if one leaks into a response it degrades to
      // Internal so the peer sees a diagnosable server bug.
      return 8;
  }
  return 8;  // kInternal
}

StatusCode StatusCodeFromWire(uint32_t value) {
  switch (value) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kOutOfRange;
    case 4:
      return StatusCode::kFailedPrecondition;
    case 5:
      return StatusCode::kIOError;
    case 6:
      return StatusCode::kCorruption;
    case 7:
      return StatusCode::kUnimplemented;
    case 8:
      return StatusCode::kInternal;
    case 9:
      return StatusCode::kUnavailable;
    case 10:
      return StatusCode::kDeadlineExceeded;
    default:
      // A code from a future protocol revision: degrade to Internal
      // rather than failing the whole decode — the message text still
      // describes the error.
      return StatusCode::kInternal;
  }
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutVarint64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void PutFixed64(std::vector<uint8_t>& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

uint64_t DoubleToBits(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Status Truncated(const char* what) {
  return Status::Corruption(std::string("wire: truncated or malformed ") +
                            what);
}

bool GetString(const std::vector<uint8_t>& data, size_t* pos,
               std::string* out) {
  uint64_t length = 0;
  if (!GetVarint64(data, pos, &length)) return false;
  if (length > data.size() - *pos) return false;
  out->assign(reinterpret_cast<const char*>(data.data()) + *pos,
              static_cast<size_t>(length));
  *pos += static_cast<size_t>(length);
  return true;
}

bool GetFixed64(const std::vector<uint8_t>& data, size_t* pos,
                uint64_t* value) {
  if (data.size() - *pos < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data[*pos + static_cast<size_t>(i)])
         << (8 * i);
  }
  *pos += 8;
  *value = v;
  return true;
}

bool IsKnownMethod(uint32_t method) {
  return method >= static_cast<uint32_t>(WireMethod::kPing) &&
         method <= static_cast<uint32_t>(WireMethod::kSnapshotFetch);
}

// v5 collection-stats section: the three collection-wide counters, then
// one {cf, union_ctf} pair per analyzed query term.
void PutCollectionStats(std::vector<uint8_t>& out,
                        const CollectionStats& stats) {
  PutVarint64(out, stats.num_databases);
  PutVarint64(out, stats.sum_cw);
  PutVarint64(out, stats.union_total_terms);
  PutVarint64(out, stats.terms.size());
  for (const TermGlobalStats& term : stats.terms) {
    PutVarint64(out, term.cf);
    PutVarint64(out, term.union_ctf);
  }
}

bool GetCollectionStats(const std::vector<uint8_t>& data, size_t* pos,
                        CollectionStats* stats) {
  uint64_t count = 0;
  if (!GetVarint64(data, pos, &stats->num_databases) ||
      !GetVarint64(data, pos, &stats->sum_cw) ||
      !GetVarint64(data, pos, &stats->union_total_terms) ||
      !GetVarint64(data, pos, &count)) {
    return false;
  }
  // Each term entry is at least two 1-byte varints; a count the payload
  // could not hold is corrupt, not a reason to reserve.
  if (count > (data.size() - *pos) / 2 + 1) return false;
  stats->terms.resize(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    TermGlobalStats& term = stats->terms[static_cast<size_t>(i)];
    if (!GetVarint64(data, pos, &term.cf) ||
        !GetVarint64(data, pos, &term.union_ctf)) {
      return false;
    }
  }
  return true;
}

// Shared by the two batched responses: one document entry is its status
// (code + message) and, on OK, the text.
void PutFetchedDocument(std::vector<uint8_t>& out, const FetchedDocument& doc) {
  PutVarint32(out, StatusCodeToWire(doc.status.code()));
  PutString(out, doc.status.message());
  if (doc.status.ok()) PutString(out, doc.text);
}

bool GetFetchedDocument(const std::vector<uint8_t>& data, size_t* pos,
                        FetchedDocument* doc) {
  uint32_t code = 0;
  std::string message;
  if (!GetVarint32(data, pos, &code) || !GetString(data, pos, &message)) {
    return false;
  }
  StatusCode status_code = StatusCodeFromWire(code);
  doc->status = status_code == StatusCode::kOk
                    ? Status::OK()
                    : Status(status_code, std::move(message));
  if (doc->status.ok() && !GetString(data, pos, &doc->text)) return false;
  return true;
}

}  // namespace

const char* WireMethodName(WireMethod method) {
  switch (method) {
    case WireMethod::kPing:
      return "ping";
    case WireMethod::kServerInfo:
      return "server_info";
    case WireMethod::kRunQuery:
      return "run_query";
    case WireMethod::kFetchDocument:
      return "fetch_document";
    case WireMethod::kQueryAndFetch:
      return "query_and_fetch";
    case WireMethod::kFetchBatch:
      return "fetch_batch";
    case WireMethod::kSelect:
      return "select";
    case WireMethod::kBrokerStatus:
      return "broker_status";
    case WireMethod::kShardInfo:
      return "shard_info";
    case WireMethod::kSnapshotFetch:
      return "snapshot_fetch";
  }
  return "unknown";
}

uint32_t MinVersionForMethod(WireMethod method) {
  switch (method) {
    case WireMethod::kPing:
    case WireMethod::kServerInfo:
    case WireMethod::kRunQuery:
    case WireMethod::kFetchDocument:
      return 1;
    case WireMethod::kQueryAndFetch:
    case WireMethod::kFetchBatch:
      return 2;
    case WireMethod::kSelect:
    case WireMethod::kBrokerStatus:
      return 3;
    case WireMethod::kShardInfo:
    case WireMethod::kSnapshotFetch:
      return 5;
  }
  return kWireProtocolVersion;
}

std::vector<uint8_t> EncodeRequest(const WireRequest& request) {
  std::vector<uint8_t> out;
  PutVarint32(out, request.protocol_version);
  PutVarint64(out, request.request_id);
  PutVarint32(out, static_cast<uint32_t>(request.method));
  switch (request.method) {
    case WireMethod::kPing:
    case WireMethod::kServerInfo:
      break;
    case WireMethod::kRunQuery:
    case WireMethod::kQueryAndFetch:
      PutString(out, request.query);
      PutVarint64(out, request.max_results);
      break;
    case WireMethod::kFetchDocument:
      PutString(out, request.handle);
      break;
    case WireMethod::kFetchBatch:
      PutVarint64(out, request.handles.size());
      for (const std::string& handle : request.handles) {
        PutString(out, handle);
      }
      break;
    case WireMethod::kSelect:
      PutString(out, request.query);
      PutVarint64(out, request.max_results);
      PutString(out, request.ranker);
      // v5 federation extension: a mandatory flags varint once the
      // request declares >= 5, then the pinned epoch + aggregated stats
      // for has_stats requests. Plain selects keep declaring v3 and
      // never carry it.
      if (request.protocol_version >= kFederationMinVersion) {
        uint32_t flags = (request.stats_only ? 1u : 0u) |
                         (request.has_stats ? 2u : 0u);
        PutVarint32(out, flags);
        if (request.has_stats) {
          PutVarint64(out, request.pinned_epoch);
          PutCollectionStats(out, request.stats);
        }
      }
      break;
    case WireMethod::kBrokerStatus:
      break;
    case WireMethod::kShardInfo:
      break;
    case WireMethod::kSnapshotFetch:
      PutVarint64(out, request.snapshot_epoch);
      PutVarint64(out, request.snapshot_offset);
      PutVarint64(out, request.snapshot_chunk_bytes);
      break;
  }
  // v4 trace-context trailer, present only when the caller is tracing.
  // Pre-v4 decoders reject trailing bytes, so callers must not set
  // `trace` unless the peer negotiated >= kTraceContextMinVersion.
  if (request.trace.valid()) {
    PutFixed64(out, request.trace.trace_id_hi);
    PutFixed64(out, request.trace.trace_id_lo);
    PutFixed64(out, request.trace.parent_span_id);
    PutVarint32(out, request.trace.sampled ? 1 : 0);
    PutVarint64(out, request.trace.deadline_budget_us);
  }
  return out;
}

Result<WireRequest> DecodeRequest(const std::vector<uint8_t>& payload) {
  WireRequest request;
  size_t pos = 0;
  uint32_t method = 0;
  if (!GetVarint32(payload, &pos, &request.protocol_version) ||
      !GetVarint64(payload, &pos, &request.request_id) ||
      !GetVarint32(payload, &pos, &method)) {
    return Truncated("request header");
  }
  if (!IsKnownMethod(method)) {
    return Status::Corruption("wire: unknown request method " +
                              std::to_string(method));
  }
  request.method = static_cast<WireMethod>(method);
  switch (request.method) {
    case WireMethod::kPing:
    case WireMethod::kServerInfo:
      break;
    case WireMethod::kRunQuery:
    case WireMethod::kQueryAndFetch:
      if (!GetString(payload, &pos, &request.query) ||
          !GetVarint64(payload, &pos, &request.max_results)) {
        return Truncated("query request body");
      }
      break;
    case WireMethod::kFetchDocument:
      if (!GetString(payload, &pos, &request.handle)) {
        return Truncated("fetch_document request body");
      }
      break;
    case WireMethod::kFetchBatch: {
      uint64_t count = 0;
      if (!GetVarint64(payload, &pos, &count)) {
        return Truncated("fetch_batch handle count");
      }
      // Each handle costs at least its 1-byte length prefix; a count the
      // payload could not hold is corrupt, not a reason to reserve.
      if (count > payload.size() - pos + 1) {
        return Status::Corruption("wire: handle count exceeds payload");
      }
      request.handles.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        std::string handle;
        if (!GetString(payload, &pos, &handle)) {
          return Truncated("fetch_batch handle");
        }
        request.handles.push_back(std::move(handle));
      }
      break;
    }
    case WireMethod::kSelect:
      if (!GetString(payload, &pos, &request.query) ||
          !GetVarint64(payload, &pos, &request.max_results) ||
          !GetString(payload, &pos, &request.ranker)) {
        return Truncated("select request body");
      }
      if (request.protocol_version >= kFederationMinVersion) {
        uint32_t flags = 0;
        if (!GetVarint32(payload, &pos, &flags)) {
          return Truncated("select v5 extension");
        }
        request.stats_only = (flags & 1) != 0;
        request.has_stats = (flags & 2) != 0;
        if (request.stats_only && request.has_stats) {
          return Status::Corruption(
              "wire: select with both stats_only and has_stats");
        }
        if (request.has_stats) {
          if (!GetVarint64(payload, &pos, &request.pinned_epoch) ||
              !GetCollectionStats(payload, &pos, &request.stats)) {
            return Truncated("select stats section");
          }
        }
      }
      break;
    case WireMethod::kBrokerStatus:
      break;
    case WireMethod::kShardInfo:
      break;
    case WireMethod::kSnapshotFetch:
      if (!GetVarint64(payload, &pos, &request.snapshot_epoch) ||
          !GetVarint64(payload, &pos, &request.snapshot_offset) ||
          !GetVarint64(payload, &pos, &request.snapshot_chunk_bytes)) {
        return Truncated("snapshot_fetch request body");
      }
      break;
  }
  // Optional v4 trace-context trailer. A trailer that starts but does
  // not parse to exactly the end of the payload is corrupt — optional
  // never means "tolerate garbage".
  if (pos < payload.size()) {
    uint32_t flags = 0;
    if (!GetFixed64(payload, &pos, &request.trace.trace_id_hi) ||
        !GetFixed64(payload, &pos, &request.trace.trace_id_lo) ||
        !GetFixed64(payload, &pos, &request.trace.parent_span_id) ||
        !GetVarint32(payload, &pos, &flags) ||
        !GetVarint64(payload, &pos, &request.trace.deadline_budget_us)) {
      return Truncated("trace context trailer");
    }
    request.trace.sampled = (flags & 1) != 0;
    if (!request.trace.valid()) {
      return Status::Corruption("wire: trace context with zero trace id");
    }
  }
  if (pos != payload.size()) {
    return Status::Corruption("wire: trailing bytes after request");
  }
  return request;
}

std::vector<uint8_t> EncodeResponse(const WireResponse& response) {
  std::vector<uint8_t> out;
  PutVarint32(out, response.protocol_version);
  PutVarint64(out, response.request_id);
  PutVarint32(out, static_cast<uint32_t>(response.method));
  PutVarint32(out, StatusCodeToWire(response.status.code()));
  PutString(out, response.status.message());
  if (!response.status.ok()) return out;  // no body on error
  switch (response.method) {
    case WireMethod::kPing:
      break;
    case WireMethod::kServerInfo:
      PutString(out, response.server_name);
      PutVarint32(out, response.server_protocol_version);
      break;
    case WireMethod::kRunQuery:
      PutVarint64(out, response.hits.size());
      for (const SearchHit& hit : response.hits) {
        PutString(out, hit.handle);
        PutFixed64(out, DoubleToBits(hit.score));
      }
      break;
    case WireMethod::kFetchDocument:
      PutString(out, response.document);
      break;
    case WireMethod::kQueryAndFetch:
      // Hits exactly as run_query, then one document entry per hit.
      // Handles are not repeated in the document block.
      PutVarint64(out, response.hits.size());
      for (const SearchHit& hit : response.hits) {
        PutString(out, hit.handle);
        PutFixed64(out, DoubleToBits(hit.score));
      }
      for (const FetchedDocument& doc : response.documents) {
        PutFetchedDocument(out, doc);
      }
      break;
    case WireMethod::kFetchBatch:
      PutVarint64(out, response.documents.size());
      for (const FetchedDocument& doc : response.documents) {
        PutFetchedDocument(out, doc);
      }
      break;
    case WireMethod::kSelect:
      PutVarint64(out, response.epoch);
      PutVarint64(out, response.scores.size());
      for (const DatabaseScore& score : response.scores) {
        PutString(out, score.db_name);
        PutFixed64(out, DoubleToBits(score.score));
      }
      // v5 federation extension, mirrored from the request's declared
      // version (the response echoes it): partial/stats flags, the
      // stats section for stats_only answers, then the down-shard and
      // shard-epoch lists a federation server fills in.
      if (response.protocol_version >= kFederationMinVersion) {
        uint32_t flags = (response.partial ? 1u : 0u) |
                         (response.has_stats ? 2u : 0u);
        PutVarint32(out, flags);
        if (response.has_stats) PutCollectionStats(out, response.stats);
        PutVarint64(out, response.down_shards.size());
        for (const std::string& shard : response.down_shards) {
          PutString(out, shard);
        }
        PutVarint64(out, response.shard_epochs.size());
        for (const ShardEpoch& entry : response.shard_epochs) {
          PutString(out, entry.shard);
          PutVarint64(out, entry.epoch);
        }
      }
      break;
    case WireMethod::kBrokerStatus:
      PutVarint64(out, response.broker.epoch);
      PutVarint64(out, response.broker.databases);
      PutVarint64(out, response.broker.selects_total);
      PutVarint64(out, response.broker.shed_total);
      PutVarint64(out, response.broker.cache_hits);
      PutVarint64(out, response.broker.cache_misses);
      PutVarint64(out, response.broker.cache_evictions);
      break;
    case WireMethod::kShardInfo:
      PutVarint64(out, response.shard_map_version);
      PutVarint64(out, response.shards.size());
      for (const ShardStatusInfo& shard : response.shards) {
        PutString(out, shard.address);
        PutVarint64(out, shard.epoch);
        PutVarint32(out, shard.healthy ? 1 : 0);
        PutVarint64(out, shard.databases);
      }
      break;
    case WireMethod::kSnapshotFetch:
      PutVarint64(out, response.snapshot_epoch);
      PutVarint64(out, response.snapshot_total_bytes);
      PutVarint64(out, response.snapshot_offset);
      PutString(out, response.snapshot_data);
      break;
  }
  return out;
}

Result<WireResponse> DecodeResponse(const std::vector<uint8_t>& payload) {
  WireResponse response;
  size_t pos = 0;
  uint32_t method = 0;
  uint32_t code = 0;
  std::string message;
  if (!GetVarint32(payload, &pos, &response.protocol_version) ||
      !GetVarint64(payload, &pos, &response.request_id) ||
      !GetVarint32(payload, &pos, &method) ||
      !GetVarint32(payload, &pos, &code) ||
      !GetString(payload, &pos, &message)) {
    return Truncated("response header");
  }
  if (!IsKnownMethod(method)) {
    return Status::Corruption("wire: unknown response method " +
                              std::to_string(method));
  }
  response.method = static_cast<WireMethod>(method);
  StatusCode status_code = StatusCodeFromWire(code);
  response.status = status_code == StatusCode::kOk
                        ? Status::OK()
                        : Status(status_code, std::move(message));
  if (!response.status.ok()) {
    if (pos != payload.size()) {
      return Status::Corruption("wire: trailing bytes after error response");
    }
    return response;
  }
  switch (response.method) {
    case WireMethod::kPing:
      break;
    case WireMethod::kServerInfo:
      if (!GetString(payload, &pos, &response.server_name) ||
          !GetVarint32(payload, &pos, &response.server_protocol_version)) {
        return Truncated("server_info response body");
      }
      break;
    case WireMethod::kRunQuery: {
      uint64_t count = 0;
      if (!GetVarint64(payload, &pos, &count)) {
        return Truncated("run_query hit count");
      }
      // Each hit is at least 9 bytes (1-byte handle length + 8-byte
      // score); a count promising more hits than the payload could hold
      // is corrupt, not a reason to reserve gigabytes.
      if (count > (payload.size() - pos) / 9 + 1) {
        return Status::Corruption("wire: hit count exceeds payload");
      }
      response.hits.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        SearchHit hit;
        uint64_t score_bits = 0;
        if (!GetString(payload, &pos, &hit.handle) ||
            !GetFixed64(payload, &pos, &score_bits)) {
          return Truncated("run_query hit");
        }
        hit.score = DoubleFromBits(score_bits);
        response.hits.push_back(std::move(hit));
      }
      break;
    }
    case WireMethod::kFetchDocument:
      if (!GetString(payload, &pos, &response.document)) {
        return Truncated("fetch_document response body");
      }
      break;
    case WireMethod::kQueryAndFetch: {
      uint64_t count = 0;
      if (!GetVarint64(payload, &pos, &count)) {
        return Truncated("query_and_fetch hit count");
      }
      if (count > (payload.size() - pos) / 9 + 1) {
        return Status::Corruption("wire: hit count exceeds payload");
      }
      response.hits.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        SearchHit hit;
        uint64_t score_bits = 0;
        if (!GetString(payload, &pos, &hit.handle) ||
            !GetFixed64(payload, &pos, &score_bits)) {
          return Truncated("query_and_fetch hit");
        }
        hit.score = DoubleFromBits(score_bits);
        response.hits.push_back(std::move(hit));
      }
      response.documents.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        FetchedDocument doc;
        if (!GetFetchedDocument(payload, &pos, &doc)) {
          return Truncated("query_and_fetch document");
        }
        // The wire does not repeat handles; restore alignment here so
        // every decoder client sees self-describing entries.
        doc.handle = response.hits[static_cast<size_t>(i)].handle;
        response.documents.push_back(std::move(doc));
      }
      break;
    }
    case WireMethod::kFetchBatch: {
      uint64_t count = 0;
      if (!GetVarint64(payload, &pos, &count)) {
        return Truncated("fetch_batch document count");
      }
      // Each entry is at least 2 bytes (status code + empty message).
      if (count > (payload.size() - pos) / 2 + 1) {
        return Status::Corruption("wire: document count exceeds payload");
      }
      response.documents.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        FetchedDocument doc;
        if (!GetFetchedDocument(payload, &pos, &doc)) {
          return Truncated("fetch_batch document");
        }
        // Handles are implied by request order; the caller fills them in.
        response.documents.push_back(std::move(doc));
      }
      break;
    }
    case WireMethod::kSelect: {
      uint64_t count = 0;
      if (!GetVarint64(payload, &pos, &response.epoch) ||
          !GetVarint64(payload, &pos, &count)) {
        return Truncated("select response header");
      }
      // Each entry is at least 9 bytes (1-byte name length + 8-byte
      // score), same shape as a search hit.
      if (count > (payload.size() - pos) / 9 + 1) {
        return Status::Corruption("wire: score count exceeds payload");
      }
      response.scores.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        DatabaseScore score;
        uint64_t score_bits = 0;
        if (!GetString(payload, &pos, &score.db_name) ||
            !GetFixed64(payload, &pos, &score_bits)) {
          return Truncated("select score");
        }
        score.score = DoubleFromBits(score_bits);
        response.scores.push_back(std::move(score));
      }
      if (response.protocol_version >= kFederationMinVersion) {
        uint32_t flags = 0;
        if (!GetVarint32(payload, &pos, &flags)) {
          return Truncated("select v5 response extension");
        }
        response.partial = (flags & 1) != 0;
        response.has_stats = (flags & 2) != 0;
        if (response.has_stats &&
            !GetCollectionStats(payload, &pos, &response.stats)) {
          return Truncated("select response stats section");
        }
        uint64_t down = 0;
        if (!GetVarint64(payload, &pos, &down) ||
            down > payload.size() - pos + 1) {
          return Truncated("select down-shard list");
        }
        response.down_shards.reserve(static_cast<size_t>(down));
        for (uint64_t i = 0; i < down; ++i) {
          std::string shard;
          if (!GetString(payload, &pos, &shard)) {
            return Truncated("select down-shard entry");
          }
          response.down_shards.push_back(std::move(shard));
        }
        uint64_t epochs = 0;
        if (!GetVarint64(payload, &pos, &epochs) ||
            epochs > (payload.size() - pos) / 2 + 1) {
          return Truncated("select shard-epoch list");
        }
        response.shard_epochs.reserve(static_cast<size_t>(epochs));
        for (uint64_t i = 0; i < epochs; ++i) {
          ShardEpoch entry;
          if (!GetString(payload, &pos, &entry.shard) ||
              !GetVarint64(payload, &pos, &entry.epoch)) {
            return Truncated("select shard-epoch entry");
          }
          response.shard_epochs.push_back(std::move(entry));
        }
      }
      break;
    }
    case WireMethod::kBrokerStatus:
      if (!GetVarint64(payload, &pos, &response.broker.epoch) ||
          !GetVarint64(payload, &pos, &response.broker.databases) ||
          !GetVarint64(payload, &pos, &response.broker.selects_total) ||
          !GetVarint64(payload, &pos, &response.broker.shed_total) ||
          !GetVarint64(payload, &pos, &response.broker.cache_hits) ||
          !GetVarint64(payload, &pos, &response.broker.cache_misses) ||
          !GetVarint64(payload, &pos, &response.broker.cache_evictions)) {
        return Truncated("broker_status response body");
      }
      break;
    case WireMethod::kShardInfo: {
      uint64_t count = 0;
      if (!GetVarint64(payload, &pos, &response.shard_map_version) ||
          !GetVarint64(payload, &pos, &count)) {
        return Truncated("shard_info response header");
      }
      // Each row is at least 4 bytes (address length + three varints).
      if (count > (payload.size() - pos) / 4 + 1) {
        return Status::Corruption("wire: shard count exceeds payload");
      }
      response.shards.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        ShardStatusInfo shard;
        uint32_t healthy = 0;
        if (!GetString(payload, &pos, &shard.address) ||
            !GetVarint64(payload, &pos, &shard.epoch) ||
            !GetVarint32(payload, &pos, &healthy) ||
            !GetVarint64(payload, &pos, &shard.databases)) {
          return Truncated("shard_info row");
        }
        shard.healthy = healthy != 0;
        response.shards.push_back(std::move(shard));
      }
      break;
    }
    case WireMethod::kSnapshotFetch:
      if (!GetVarint64(payload, &pos, &response.snapshot_epoch) ||
          !GetVarint64(payload, &pos, &response.snapshot_total_bytes) ||
          !GetVarint64(payload, &pos, &response.snapshot_offset) ||
          !GetString(payload, &pos, &response.snapshot_data)) {
        return Truncated("snapshot_fetch response body");
      }
      break;
  }
  if (pos != payload.size()) {
    return Status::Corruption("wire: trailing bytes after response");
  }
  return response;
}

Status WriteFrame(ByteStream& stream, const std::vector<uint8_t>& payload) {
  // Header and payload go out in a single WriteAll so byte-layer fault
  // injection (and TCP packetization, mostly) acts on whole frames.
  std::vector<uint8_t> frame;
  frame.reserve(4 + payload.size());
  uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<uint8_t>(length >> (8 * i)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return stream.WriteAll(frame.data(), frame.size());
}

Result<std::vector<uint8_t>> ReadFrame(ByteStream& stream,
                                       size_t max_frame_bytes) {
  uint8_t header[4];
  QBS_RETURN_IF_ERROR(stream.ReadFull(header, sizeof(header)));
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (length > max_frame_bytes) {
    return Status::Corruption("wire: frame of " + std::to_string(length) +
                              " bytes exceeds limit of " +
                              std::to_string(max_frame_bytes));
  }
  std::vector<uint8_t> payload(length);
  if (length > 0) {
    QBS_RETURN_IF_ERROR(stream.ReadFull(payload.data(), payload.size()));
  }
  return payload;
}

}  // namespace qbs

#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {

namespace {

struct LoopMetrics {
  Counter* wakeups;
  Counter* events;
  Counter* tasks;
  Counter* deadlines_fired;

  static const LoopMetrics& Get() {
    static const LoopMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      LoopMetrics m;
      m.wakeups = r.GetCounter("qbs_net_loop_wakeups_total",
                               "epoll_wait returns in event-loop servers");
      m.events = r.GetCounter("qbs_net_loop_events_total",
                              "fd readiness events dispatched by the loop");
      m.tasks = r.GetCounter("qbs_net_loop_tasks_total",
                             "cross-thread tasks executed on the loop");
      m.deadlines_fired =
          r.GetCounter("qbs_net_loop_deadlines_fired_total",
                       "deadline-wheel timers fired (idle closes, drain "
                       "force-closes, admission deadlines)");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

EventLoop::EventLoop() : wheel_(kWheelSlots) {}

EventLoop::~EventLoop() {
  assert(loop_thread_id_.load(std::memory_order_relaxed) ==
             std::thread::id() &&
         "EventLoop destroyed while Run() is live");
}

Status EventLoop::Init() {
  if (epoll_fd_.valid()) {
    return Status::FailedPrecondition("EventLoop already initialized");
  }
  epoll_fd_.Reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_.Reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_fd_.valid()) {
    epoll_fd_.Reset();
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // token 0 is reserved for the wake fd
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) != 0) {
    Status status = Status::IOError(std::string("epoll_ctl(wake): ") +
                                    std::strerror(errno));
    epoll_fd_.Reset();
    wake_fd_.Reset();
    return status;
  }
  last_tick_ = MonotonicMicros() / kTickUs;
  return Status::OK();
}

bool EventLoop::OnLoopThread() const {
  return loop_thread_id_.load(std::memory_order_relaxed) ==
         std::this_thread::get_id();
}

void EventLoop::Wake() {
  uint64_t one = 1;
  // A full eventfd counter already guarantees a wake; short/failed
  // writes here are therefore harmless.
  [[maybe_unused]] ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void EventLoop::Post(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    posted_.push_back(std::move(task));
  }
  Wake();
}

void EventLoop::Stop() {
  {
    MutexLock lock(mu_);
    stop_requested_ = true;
  }
  Wake();
}

Result<uint64_t> EventLoop::AddWatch(int fd, uint32_t events,
                                     FdCallback callback) {
  const uint64_t token = next_token_++;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(add): ") +
                           std::strerror(errno));
  }
  watches_[token] =
      Watch{fd, std::make_shared<FdCallback>(std::move(callback))};
  return token;
}

Status EventLoop::ModifyWatch(uint64_t token, uint32_t events) {
  auto it = watches_.find(token);
  if (it == watches_.end()) {
    return Status::NotFound("no such watch");
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, it->second.fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(mod): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::RemoveWatch(uint64_t token) {
  auto it = watches_.find(token);
  if (it == watches_.end()) return;
  // Failure here (EBADF after the owner already closed the fd) still
  // leaves the table consistent; the token can never fire again.
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->second.fd, nullptr);
  watches_.erase(it);
}

EventLoop::TimerId EventLoop::AddDeadline(uint64_t deadline_us,
                                          std::function<void()> callback) {
  const TimerId id = next_timer_++;
  deadlines_[id] = Deadline{deadline_us, std::move(callback)};
  wheel_[(deadline_us / kTickUs) & (kWheelSlots - 1)].push_back(id);
  return id;
}

void EventLoop::CancelDeadline(TimerId id) {
  // The wheel slot keeps a stale id; expiry skips ids that miss the
  // table, so cancel is O(1) with no list surgery.
  deadlines_.erase(id);
}

int EventLoop::PollTimeoutMs() const {
  // With deadlines armed the loop must keep ticking the wheel; without
  // any it can sleep until an fd event or a Post() wake.
  return deadlines_.empty() ? -1 : static_cast<int>(kTickUs / 1000);
}

void EventLoop::ExpireDeadlines(uint64_t now_us) {
  if (deadlines_.empty()) {
    last_tick_ = now_us / kTickUs;
    return;
  }
  const LoopMetrics& metrics = LoopMetrics::Get();
  const uint64_t current_tick = now_us / kTickUs;
  // Scan each slot between the last processed tick and now — at most
  // one full rotation, after which every slot has been visited once.
  uint64_t from = last_tick_ + 1;
  if (current_tick >= from + kWheelSlots) from = current_tick - kWheelSlots + 1;
  for (uint64_t tick = from; tick <= current_tick; ++tick) {
    std::vector<TimerId>& slot = wheel_[tick & (kWheelSlots - 1)];
    size_t keep = 0;
    for (size_t i = 0; i < slot.size(); ++i) {
      const TimerId id = slot[i];
      auto it = deadlines_.find(id);
      if (it == deadlines_.end()) continue;  // cancelled
      if (it->second.deadline_us > now_us) {
        slot[keep++] = id;  // a rotation (or more) away; revisit later
        continue;
      }
      std::function<void()> callback = std::move(it->second.callback);
      deadlines_.erase(it);
      metrics.deadlines_fired->Increment();
      callback();
    }
    slot.resize(keep);
  }
  last_tick_ = current_tick;
}

void EventLoop::RunPostedTasks() {
  const LoopMetrics& metrics = LoopMetrics::Get();
  // Drain in FIFO batches. Tasks posted *by* these tasks run in the
  // same drain, so completion chains settle within one iteration;
  // termination is guaranteed by Stop()'s contract (no self-sustaining
  // post loops — FrameServer's completions are finite).
  while (true) {
    std::deque<std::function<void()>> batch;
    {
      MutexLock lock(mu_);
      if (posted_.empty()) return;
      batch.swap(posted_);
    }
    for (std::function<void()>& task : batch) {
      metrics.tasks->Increment();
      task();
    }
  }
}

void EventLoop::Run() {
  assert(epoll_fd_.valid() && "EventLoop::Run before Init");
  loop_thread_id_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
  const LoopMetrics& metrics = LoopMetrics::Get();
  std::vector<epoll_event> events(256);
  while (true) {
    {
      MutexLock lock(mu_);
      if (stop_requested_ && posted_.empty()) break;
    }
    int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                         static_cast<int>(events.size()), PollTimeoutMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      QBS_LOG(ERROR) << "EventLoop: epoll_wait: " << std::strerror(errno);
      break;
    }
    metrics.wakeups->Increment();
    if (n > 0) {
      QBS_TRACE_SPAN("net.loop", "dispatch");
      for (int i = 0; i < n; ++i) {
        const uint64_t token = events[static_cast<size_t>(i)].data.u64;
        if (token == 0) {
          uint64_t drained;
          while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        auto it = watches_.find(token);
        if (it == watches_.end()) continue;  // removed earlier this batch
        metrics.events->Increment();
        // Keep the closure alive across self-removal (see Watch).
        std::shared_ptr<FdCallback> callback = it->second.callback;
        (*callback)(events[static_cast<size_t>(i)].events);
      }
      if (n == static_cast<int>(events.size())) {
        events.resize(events.size() * 2);  // saturated batch: widen
      }
    }
    RunPostedTasks();
    ExpireDeadlines(MonotonicMicros());
  }
  RunPostedTasks();
  loop_thread_id_.store(std::thread::id(), std::memory_order_relaxed);
}

}  // namespace qbs

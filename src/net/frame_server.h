// FrameServer: the transport half of a blocking TCP wire-protocol
// server, shared by every server in the repo (DbServer serving a
// TextDatabase, BrokerServer serving selection queries).
//
// Model: one dedicated accept thread; each accepted connection is served
// as a ThreadPool task that loops request->response until the peer hangs
// up (connection-per-worker — at most `num_workers` connections are
// served concurrently; further accepted connections wait in the pool
// queue). Stop() is graceful: stop accepting, wake every blocked
// connection reader, drain the pool.
//
// The base class owns sockets, framing, decode, the protocol-version
// gate, and the qbs_net_server_* metrics; subclasses implement Handle()
// for the application half. Handle() may run on several pool workers at
// once, so subclass state it touches must be thread-safe.
#ifndef QBS_NET_FRAME_SERVER_H_
#define QBS_NET_FRAME_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "obs/admin_server.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace qbs {

struct FrameServerOptions {
  /// Bind address. The default serves loopback only; use "0.0.0.0" to
  /// accept remote peers.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads == maximum concurrently served connections.
  size_t num_workers = 4;
  /// Inbound frames larger than this are rejected and the connection
  /// dropped.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Highest protocol version this server speaks (clamped to
  /// [1, kWireProtocolVersion]). Lowering it makes the server behave
  /// exactly like an older build: newer requests are rejected with
  /// FailedPrecondition and server_info advertises the pinned version.
  /// An operational downgrade lever, and the test seam for
  /// new-client-against-old-server compatibility coverage.
  uint32_t max_protocol_version = kWireProtocolVersion;
  /// Embedded admin HTTP endpoint (/metrics, /statusz, /tracez): the
  /// port to bind, 0 for an ephemeral one, or negative (the default) to
  /// not start one.
  int32_t admin_port = -1;
  /// Bind address of the admin endpoint (loopback-only by default; the
  /// surface has no auth).
  std::string admin_host = "127.0.0.1";
};

/// A blocking TCP server speaking the qbs framed wire protocol.
/// Thread-safe. Subclasses MUST call Stop() in their destructor: the
/// base destructor also stops, but by then the subclass's Handle()
/// state is already gone.
class FrameServer {
 public:
  /// `description` names this server in logs ("DbServer 'cacm'").
  FrameServer(std::string description, FrameServerOptions options);
  virtual ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens, and starts accepting. Fails if the port is taken or
  /// the server was already started.
  Status Start() QBS_EXCLUDES(mu_);

  /// Graceful shutdown: stops accepting, unblocks every in-flight
  /// connection reader, and drains the worker pool. In-flight requests
  /// finish; idle connections are dropped. Idempotent.
  ///
  /// Lock-release order matters here and is machine-checked: the
  /// accept-thread join and pool drain are blocking waits on threads
  /// that themselves take mu_, so Stop() must release mu_ before either
  /// (holding it would deadlock) — hence QBS_EXCLUDES plus the
  /// analyzer's no-blocking-call-under-lock invariant.
  void Stop() QBS_EXCLUDES(mu_);

  /// The bound port (valid after Start() succeeded).
  uint16_t port() const { return port_; }

  /// True between a successful Start() and Stop().
  bool running() const QBS_EXCLUDES(mu_);

  /// host:port of this server (valid after Start()).
  std::string address() const;

  /// Connections currently tracked (being served or queued).
  size_t active_connections() const QBS_EXCLUDES(mu_);

  /// The embedded admin server, or null when options.admin_port < 0 or
  /// before Start(). Its port() gives the bound admin port.
  AdminServer* admin_server() const { return admin_.get(); }

 protected:
  /// Registers a /statusz line ("key: value()") on the embedded admin
  /// endpoint. Call before Start(); a no-op risk otherwise. Providers
  /// run on the admin thread and must be thread-safe.
  void AddStatusProvider(std::string key, std::function<std::string()> value)
      QBS_EXCLUDES(mu_);

  /// Answers one request. The version gate has already passed: the
  /// request's version is within [MinVersionForMethod, spoken_version()].
  /// Called concurrently from pool workers.
  virtual WireResponse Handle(const WireRequest& request) = 0;

  /// The highest protocol version this server speaks —
  /// options.max_protocol_version clamped to [1, kWireProtocolVersion].
  /// A server_info reply should advertise
  /// min(spoken_version(), request.protocol_version).
  uint32_t spoken_version() const { return spoken_version_; }

 private:
  void AcceptLoop() QBS_EXCLUDES(mu_);
  void ServeConnection(std::shared_ptr<SocketStream> stream)
      QBS_EXCLUDES(mu_);
  /// The version gate, then Handle().
  WireResponse Dispatch(const WireRequest& request);

  std::string description_;
  FrameServerOptions options_;
  uint32_t spoken_version_;
  uint16_t port_ = 0;

  // listener_, pool_, accept_thread_, admin_ are written once in Start()
  // (under mu_) and then used lock-free by the accept/serve threads;
  // the std::thread constructor's happens-before edge publishes them.
  // They are deliberately NOT guarded: AcceptLoop blocks in
  // listener_->Accept() for its whole lifetime, and Stop() joining the
  // pool must run unlocked (see Stop()).
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::unique_ptr<AdminServer> admin_;

  mutable Mutex mu_;
  // Status providers registered before Start(), handed to admin_ then.
  std::vector<std::pair<std::string, std::function<std::string()>>>
      status_providers_ QBS_GUARDED_BY(mu_);
  bool running_ QBS_GUARDED_BY(mu_) = false;
  // Streams of live connections, so Stop() can wake their readers.
  std::unordered_set<SocketStream*> active_ QBS_GUARDED_BY(mu_);
};

}  // namespace qbs

#endif  // QBS_NET_FRAME_SERVER_H_

// FrameServer: the transport half of every wire-protocol server in the
// repo (DbServer serving a TextDatabase, BrokerServer serving selection
// queries) — rebuilt on a non-blocking epoll event loop for C10K-scale
// connection counts.
//
// Model: one EventLoop thread owns the listener and every connection's
// state machine (net/conn.h): accepts, incremental frame reassembly,
// bounded write queues with backpressure, idle deadlines on a timer
// wheel. Request *execution* never runs on the loop — each complete
// frame is dispatched to a ThreadPool worker (decode, version gate,
// Handle(), encode) and the response is posted back to the loop for
// writing. Connections are therefore cheap (a few KB of buffered state,
// no thread), while handler concurrency stays bounded by num_workers
// exactly as before; requests on one connection are handled strictly in
// order, so the wire behavior is byte-identical to the old
// thread-per-connection server.
//
// Overload behavior: a peer that stops reading its responses is paused
// (its reads stop at the write-queue watermark) instead of ballooning
// memory; a peer that floods pipelined requests is paused at the
// pipeline bound; and with queue_timeout_us set, a request that waited
// longer than its admission deadline in the worker queue is answered
// with a retryable Unavailable instead of being served stale.
//
// The base class owns sockets, framing, decode, the protocol-version
// gate, and the qbs_net_* metrics; subclasses implement Handle() for
// the application half. Handle() may run on several pool workers at
// once, so subclass state it touches must be thread-safe.
#ifndef QBS_NET_FRAME_SERVER_H_
#define QBS_NET_FRAME_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/conn.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/admin_server.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace qbs {

struct FrameServerOptions {
  /// Bind address. The default serves loopback only; use "0.0.0.0" to
  /// accept remote peers.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Handler worker threads == maximum concurrently *executing*
  /// requests. Connections are no longer bounded by this: the event
  /// loop holds any number of them open.
  size_t num_workers = 4;
  /// Inbound frames larger than this are rejected and the connection
  /// dropped.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Highest protocol version this server speaks (clamped to
  /// [1, kWireProtocolVersion]). Lowering it makes the server behave
  /// exactly like an older build: newer requests are rejected with
  /// FailedPrecondition and server_info advertises the pinned version.
  /// An operational downgrade lever, and the test seam for
  /// new-client-against-old-server compatibility coverage.
  uint32_t max_protocol_version = kWireProtocolVersion;
  /// Embedded admin HTTP endpoint (/metrics, /statusz, /tracez): the
  /// port to bind, 0 for an ephemeral one, or negative (the default) to
  /// not start one.
  int32_t admin_port = -1;
  /// Bind address of the admin endpoint (loopback-only by default; the
  /// surface has no auth).
  std::string admin_host = "127.0.0.1";
  /// Per-connection write-queue high watermark: a connection whose
  /// unread responses exceed this stops being read (backpressure) until
  /// the peer drains below half of it.
  size_t max_write_queue_bytes = 4u << 20;
  /// Complete frames a single connection may have queued for the
  /// worker pool before its reads pause; resumes below half. Bounds the
  /// memory a pipelining flooder can pin per connection.
  size_t max_pipelined_requests = 64;
  /// Drop a connection after this long with no bytes in either
  /// direction and no request in flight (timer-wheel enforced, one-tick
  /// granularity). 0 (default) keeps idle connections forever — the
  /// pre-epoll behavior.
  uint64_t idle_timeout_us = 0;
  /// Admission deadline: a request that sat longer than this in the
  /// worker queue is answered with a retryable Unavailable instead of
  /// being served stale (same shedding contract as the broker's
  /// AdmissionController, one layer down). 0 (default) disables.
  uint64_t queue_timeout_us = 0;
  /// Graceful-shutdown flush budget: Stop() lets queued responses drain
  /// for up to this long before force-closing connections whose peers
  /// are not reading. 0 closes without flushing.
  uint64_t drain_timeout_us = 2'000'000;
};

/// A TCP server speaking the qbs framed wire protocol on an epoll event
/// loop. Thread-safe. Subclasses MUST call Stop() in their destructor:
/// the base destructor also stops, but by then the subclass's Handle()
/// state is already gone.
class FrameServer {
 public:
  /// `description` names this server in logs ("DbServer 'cacm'").
  FrameServer(std::string description, FrameServerOptions options);
  virtual ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens, and starts the loop. Fails if the port is taken or
  /// the server was already started.
  Status Start() QBS_EXCLUDES(mu_);

  /// Graceful shutdown: stops accepting and reading, drains every
  /// request already on the worker pool, flushes their responses (up to
  /// drain_timeout_us for peers that are not reading), then closes all
  /// connections and joins the loop. Idempotent.
  ///
  /// Lock-release order matters and is machine-checked: the pool drain
  /// and loop-thread join are blocking waits on threads that themselves
  /// post to this object, so Stop() must not hold mu_ across either —
  /// hence QBS_EXCLUDES plus the analyzer's no-blocking-call-under-lock
  /// invariant.
  void Stop() QBS_EXCLUDES(mu_);

  /// The bound port (valid after Start() succeeded).
  uint16_t port() const { return port_; }

  /// True between a successful Start() and Stop().
  bool running() const QBS_EXCLUDES(mu_);

  /// host:port of this server (valid after Start()).
  std::string address() const;

  /// Connections currently open on the loop.
  size_t active_connections() const {
    return open_conns_.load(std::memory_order_relaxed);
  }

  /// The embedded admin server, or null when options.admin_port < 0 or
  /// before Start(). Its port() gives the bound admin port.
  AdminServer* admin_server() const { return admin_.get(); }

 protected:
  /// Registers a /statusz line ("key: value()") on the embedded admin
  /// endpoint. Call before Start(); a no-op risk otherwise. Providers
  /// run on the admin thread and must be thread-safe.
  void AddStatusProvider(std::string key, std::function<std::string()> value)
      QBS_EXCLUDES(mu_);

  /// Answers one request. The version gate has already passed: the
  /// request's version is within [MinVersionForMethod, spoken_version()].
  /// Called concurrently from pool workers — never from the loop.
  virtual WireResponse Handle(const WireRequest& request) = 0;

  /// The highest protocol version this server speaks —
  /// options.max_protocol_version clamped to [1, kWireProtocolVersion].
  /// A server_info reply should advertise
  /// min(spoken_version(), request.protocol_version).
  uint32_t spoken_version() const { return spoken_version_; }

 private:
  /// A frame awaiting its turn on the worker pool, with its arrival
  /// time for the admission deadline.
  struct PendingFrame {
    std::vector<uint8_t> payload;
    uint64_t enqueued_us = 0;
  };

  /// Loop-affine per-connection bookkeeping around the Conn state
  /// machine: the in-order dispatch queue and the idle deadline.
  struct ConnState {
    std::unique_ptr<Conn> conn;
    std::deque<PendingFrame> pending;
    /// True while a frame from this connection is on the worker pool;
    /// at most one, preserving per-connection request order.
    bool busy = false;
    EventLoop::TimerId idle_timer = EventLoop::kInvalidTimer;
  };

  // All On*/Dispatch* methods below are loop-affine: they run only on
  // the EventLoop thread, which is why conns_ and the ConnState graph
  // carry no lock (see net/conn.h for the thread model). The worker
  // pool re-enters the loop exclusively through EventLoop::Post.
  void OnAccept();
  void OnFrame(uint64_t conn_id, std::vector<uint8_t> payload);
  void OnReadEnd(uint64_t conn_id, const Status& reason);
  void OnConnClosed(uint64_t conn_id);
  void OnIdleDeadline(uint64_t conn_id);
  void DispatchNext(uint64_t conn_id, ConnState& state);
  void OnHandlerDone(uint64_t conn_id, std::vector<uint8_t> response_frame,
                     bool drop_connection);
  /// Signals Stop() once draining has emptied conns_.
  void CheckDrained() QBS_EXCLUDES(mu_);

  /// Runs on a pool worker: decode, version gate, Handle, encode;
  /// posts the framed response (or a drop verdict) back to the loop.
  void HandleFrameOnWorker(uint64_t conn_id, PendingFrame frame);
  /// The version gate, then Handle().
  WireResponse Dispatch(const WireRequest& request);

  std::string description_;
  FrameServerOptions options_;
  uint32_t spoken_version_;
  uint16_t port_ = 0;

  // listener_, pool_, loop_thread_, admin_ are written once in Start()
  // (under mu_) and then used lock-free; the std::thread constructor's
  // happens-before edge publishes them to the loop thread, and Stop()
  // joins before teardown.
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<ThreadPool> pool_;
  // Heap-held and replaced on every Start() so a stopped server can be
  // started again with a pristine loop (epoll fd, wheel, token space).
  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  std::unique_ptr<AdminServer> admin_;

  // --- loop-affine state ---------------------------------------------
  uint64_t listener_watch_ = 0;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, ConnState> conns_;
  /// Set by Stop()'s first posted phase; no new work is dispatched.
  bool stopping_ = false;

  std::atomic<size_t> open_conns_{0};

  mutable Mutex mu_;
  // Status providers registered before Start(), handed to admin_ then.
  std::vector<std::pair<std::string, std::function<std::string()>>>
      status_providers_ QBS_GUARDED_BY(mu_);
  bool running_ QBS_GUARDED_BY(mu_) = false;
  /// Stop() handshake: the loop sets this once every connection is
  /// closed during shutdown.
  bool drained_ QBS_GUARDED_BY(mu_) = false;
  CondVar drained_cv_;
};

}  // namespace qbs

#endif  // QBS_NET_FRAME_SERVER_H_

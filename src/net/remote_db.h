// RemoteTextDatabase: a TextDatabase whose implementation lives on the
// far side of a qbs wire-protocol connection (net/db_server.h).
//
// This is the paper's actual deployment shape: the selection service
// learns language models from databases it can only reach through a
// remote query/fetch interface. Because this class *is* a TextDatabase,
// SamplingService and QueryBasedSampler drive remote databases with
// zero changes to the sampling logic.
//
// Pooling, deadlines, retry with backoff, and version negotiation live
// in the shared WireClient (net/wire_client.h); this class is only the
// TextDatabase surface plus the batched-vs-composed retrieval choice.
#ifndef QBS_NET_REMOTE_DB_H_
#define QBS_NET_REMOTE_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "net/wire_client.h"
#include "search/text_database.h"
#include "util/status.h"

namespace qbs {

struct RemoteDatabaseOptions : WireClientOptions {
  /// Prefer the batched v2 RPCs (query_and_fetch, fetch_batch) when the
  /// server negotiates protocol version >= 2. With batching off — or
  /// against a v1 server — batch calls are composed from the single-shot
  /// RPCs, so callers see identical semantics either way.
  bool enable_batching = true;
};

/// A TextDatabase served over the wire. Thread-safe: concurrent calls
/// share the connection pool and take separate connections.
class RemoteTextDatabase : public TextDatabase {
 public:
  explicit RemoteTextDatabase(RemoteDatabaseOptions options);
  ~RemoteTextDatabase() override;

  /// Performs the version-negotiating ServerInfo round trip: offers this
  /// client's highest protocol version, steps down one version at a time
  /// while an old server refuses, and caches the negotiated version plus
  /// the remote database's name. Optional — the first call that needs
  /// the negotiated version performs it on demand — but calling it up
  /// front turns "wrong port" into an immediate, attributable error.
  Status Connect();

  /// The remote database's name once known (Connect() or any successful
  /// ServerInfo); "remote:host:port" before that.
  std::string name() const override;

  Result<std::vector<SearchHit>> RunQuery(std::string_view query,
                                          size_t max_results) override;
  Result<std::string> FetchDocument(std::string_view handle) override;

  /// Batched retrieval. One RPC each against a v2+ server; composed from
  /// the single-shot RPCs against a v1 server or with enable_batching
  /// off — same results either way, just more round trips.
  Result<QueryAndFetchResult> QueryAndFetch(std::string_view query,
                                            size_t max_results) override;
  Result<std::vector<FetchedDocument>> FetchBatch(
      const std::vector<std::string>& handles) override;

  /// Transient failures retried so far (mirrors qbs_net_retry_total,
  /// but per-instance).
  uint64_t retries() const { return client_.retries(); }

  /// RPCs issued by this instance (attempts are not double-counted; a
  /// call retried three times is one RPC here). The denominator-free
  /// half of the benchmark suite's RPCs-per-document measurement.
  uint64_t rpcs() const { return client_.rpcs(); }

  /// The protocol version negotiated with the server; 0 before the
  /// first Connect() (explicit or on-demand) completes.
  uint32_t negotiated_version() const { return client_.negotiated_version(); }

 private:
  WireClient client_;
  bool enable_batching_;
};

}  // namespace qbs

#endif  // QBS_NET_REMOTE_DB_H_

#include "net/conn.h"

#include <sys/epoll.h>

#include <cstring>
#include <string>
#include <utility>

#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {

namespace {

struct ConnMetrics {
  Counter* backpressure_pauses;
  Counter* bytes_read;
  Counter* bytes_written;

  static const ConnMetrics& Get() {
    static const ConnMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      ConnMetrics m;
      m.backpressure_pauses = r.GetCounter(
          "qbs_net_loop_backpressure_pauses_total",
          "Connections whose reads were paused because their write "
          "queue crossed the high watermark (peer not reading)");
      m.bytes_read = r.GetCounter("qbs_net_loop_bytes_read_total",
                                  "Bytes read by event-loop servers");
      m.bytes_written =
          r.GetCounter("qbs_net_loop_bytes_written_total",
                       "Bytes written by event-loop servers");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

Conn::Conn(uint64_t id, UniqueFd fd, EventLoop* loop, ConnOptions options,
           FrameCallback on_frame, ReadEndCallback on_read_end,
           ClosedCallback on_closed)
    : id_(id),
      fd_(std::move(fd)),
      loop_(loop),
      options_(options),
      on_frame_(std::move(on_frame)),
      on_read_end_(std::move(on_read_end)),
      on_closed_(std::move(on_closed)),
      last_activity_us_(MonotonicMicros()) {}

Conn::~Conn() {
  if (watch_token_ != 0 && !closed_) loop_->RemoveWatch(watch_token_);
}

Status Conn::Register() {
  watch_mask_ = EPOLLIN;
  auto token = loop_->AddWatch(fd_.get(), watch_mask_,
                               [this](uint32_t events) { OnEvents(events); });
  QBS_RETURN_IF_ERROR(token.status());
  watch_token_ = *token;
  return Status::OK();
}

void Conn::UpdateWatchMask() {
  if (closed_) return;
  uint32_t mask = 0;
  if (reads_enabled()) mask |= EPOLLIN;
  if (!write_queue_.empty()) mask |= EPOLLOUT;
  if (mask == watch_mask_) return;
  watch_mask_ = mask;
  // A mask of 0 stays registered (EPOLLHUP/EPOLLERR always fire), which
  // is exactly what a fully-paused connection wants: we still hear
  // about the peer vanishing.
  loop_->ModifyWatch(watch_token_, mask).IgnoreError();
}

void Conn::OnEvents(uint32_t events) {
  if (closed_) return;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && write_queue_.empty() &&
      !reads_enabled()) {
    // Nothing left to say and the peer is gone.
    CloseNow();
    return;
  }
  if ((events & EPOLLOUT) != 0) FlushWrites();
  if (closed_) return;
  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0 && reads_enabled()) {
    ReadSome();
  }
}

void Conn::ReadSome() {
  const ConnMetrics& metrics = ConnMetrics::Get();
  // Level-triggered: read until would-block, a full frame pausing us,
  // or the peer ends the stream. on_frame_ may pause reads (pipelining
  // bound) or queue a response that trips the write watermark, so the
  // gate is re-checked every round.
  while (reads_enabled() && !closed_) {
    if (!in_payload_) {
      auto n = NonBlockingRead(fd_.get(), header_ + header_filled_,
                               sizeof(header_) - header_filled_);
      if (!n.ok()) {
        if (n.status().IsWouldBlock()) break;
        EndRead(n.status());
        return;
      }
      header_filled_ += *n;
      last_activity_us_ = MonotonicMicros();
      metrics.bytes_read->Increment(*n);
      if (header_filled_ < sizeof(header_)) continue;
      uint32_t length = 0;
      for (size_t i = 0; i < sizeof(header_); ++i) {
        length |= static_cast<uint32_t>(header_[i]) << (8 * i);
      }
      if (length > options_.max_frame_bytes) {
        EndRead(Status::Corruption(
            "wire: frame of " + std::to_string(length) +
            " bytes exceeds limit of " +
            std::to_string(options_.max_frame_bytes)));
        return;
      }
      in_payload_ = true;
      payload_.clear();
      payload_.resize(length);
      payload_filled_ = 0;
    }
    if (payload_filled_ < payload_.size()) {
      auto n = NonBlockingRead(fd_.get(), payload_.data() + payload_filled_,
                               payload_.size() - payload_filled_);
      if (!n.ok()) {
        if (n.status().IsWouldBlock()) break;
        EndRead(n.status());
        return;
      }
      payload_filled_ += *n;
      last_activity_us_ = MonotonicMicros();
      metrics.bytes_read->Increment(*n);
      if (payload_filled_ < payload_.size()) continue;
    }
    // Frame complete; reset the assembler before handing it off.
    in_payload_ = false;
    header_filled_ = 0;
    payload_filled_ = 0;
    std::vector<uint8_t> payload;
    payload.swap(payload_);
    on_frame_(std::move(payload));
  }
}

void Conn::EndRead(Status reason) {
  if (read_ended_ || closed_) return;
  read_ended_ = true;
  UpdateWatchMask();
  on_read_end_(std::move(reason));
}

void Conn::SendFrame(std::vector<uint8_t> frame) {
  if (closed_ || frame.empty()) return;
  write_queue_bytes_ += frame.size();
  write_queue_.push_back(std::move(frame));
  FlushWrites();
}

void Conn::FlushWrites() {
  const ConnMetrics& metrics = ConnMetrics::Get();
  while (!write_queue_.empty()) {
    const std::vector<uint8_t>& front = write_queue_.front();
    auto n = NonBlockingWrite(fd_.get(), front.data() + write_offset_,
                              front.size() - write_offset_);
    if (!n.ok()) {
      if (n.status().IsWouldBlock()) break;
      // Peer reset or transport failure: unsent responses have nowhere
      // to go.
      CloseNow();
      return;
    }
    write_offset_ += *n;
    write_queue_bytes_ -= *n;
    last_activity_us_ = MonotonicMicros();
    metrics.bytes_written->Increment(*n);
    if (write_offset_ < front.size()) break;  // kernel buffer full
    write_queue_.pop_front();
    write_offset_ = 0;
  }
  if (write_queue_.empty() && draining_) {
    CloseNow();
    return;
  }
  // Backpressure hysteresis: pause above the high watermark, resume
  // only once below half of it, so a peer hovering at the boundary
  // does not thrash the epoll mask.
  if (!write_paused_ && write_queue_bytes_ > options_.max_write_queue_bytes) {
    write_paused_ = true;
    metrics.backpressure_pauses->Increment();
  } else if (write_paused_ &&
             write_queue_bytes_ < options_.max_write_queue_bytes / 2) {
    write_paused_ = false;
  }
  UpdateWatchMask();
}

void Conn::PauseReads() {
  if (owner_paused_) return;
  owner_paused_ = true;
  UpdateWatchMask();
}

void Conn::ResumeReads() {
  if (!owner_paused_) return;
  owner_paused_ = false;
  UpdateWatchMask();
}

void Conn::StartDrain() {
  if (closed_) return;
  draining_ = true;
  if (write_queue_.empty()) {
    CloseNow();
    return;
  }
  UpdateWatchMask();
}

void Conn::CloseNow() {
  if (closed_) return;
  closed_ = true;
  if (watch_token_ != 0) loop_->RemoveWatch(watch_token_);
  write_queue_.clear();
  write_queue_bytes_ = 0;
  fd_.Reset();
  on_closed_();
}

}  // namespace qbs

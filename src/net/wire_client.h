// WireClient: the transport half of a qbs wire-protocol client, shared
// by every client in the repo (RemoteTextDatabase sampling a remote
// database, RemoteSelector querying a selection broker).
//
// Reliability: connections are pooled and reused; every call carries a
// deadline; failures classified transient by Status::IsTransient()
// (Unavailable / DeadlineExceeded / IOError) are retried with capped
// exponential backoff plus deterministic jitter. Server-side statuses
// (e.g. NotFound for a bad handle) pass through verbatim.
#ifndef QBS_NET_WIRE_CLIENT_H_
#define QBS_NET_WIRE_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace qbs {

/// Next request id from the process-wide counter. Ids are unique across
/// every client instance in the process (not merely per connection), so
/// a request_id seen in a log line, a span detail, or a wire frame names
/// one RPC unambiguously.
uint64_t NextGlobalRequestId();

struct WireClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Per-attempt deadline covering send + server work + receive.
  uint64_t call_timeout_us = 5'000'000;
  /// Deadline for establishing one TCP connection.
  uint64_t connect_timeout_us = 2'000'000;
  /// Total attempts per call (1 = no retry). Only transient failures
  /// (Status::IsTransient) are retried.
  size_t max_attempts = 4;
  /// Backoff before retry k (0-based) is
  ///   min(backoff_initial_us * backoff_multiplier^k, backoff_max_us)
  /// scaled by a jitter factor uniform in [0.5, 1.0) so a fleet of
  /// clients retrying a recovered server does not stampede in phase.
  uint64_t backoff_initial_us = 10'000;
  uint64_t backoff_max_us = 1'000'000;
  double backoff_multiplier = 2.0;
  /// Seed of the (deterministic) jitter stream.
  uint64_t jitter_seed = 1;
  /// Idle connections kept for reuse. Concurrent calls beyond this
  /// dial extra connections and close the surplus afterwards.
  size_t max_idle_connections = 4;
  /// Inbound frames larger than this are rejected as Corruption.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Highest protocol version this client will negotiate (clamped to
  /// [1, kWireProtocolVersion]). Pinning it to an older version
  /// reproduces an old client exactly: only frames of that era ever
  /// leave this process. Operational downgrade lever and
  /// compatibility-test seam.
  uint32_t max_protocol_version = kWireProtocolVersion;
  /// Test seam: when set, used instead of a TCP dial to produce
  /// connections — e.g. wrapping the real stream in a FaultyTransport.
  std::function<Result<std::unique_ptr<ByteStream>>()> connector;
};

/// A pooled, retrying wire-protocol client for one server. Thread-safe:
/// concurrent calls share the connection pool and take separate
/// connections.
class WireClient {
 public:
  explicit WireClient(WireClientOptions options);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Performs the version-negotiating ServerInfo round trip: offers this
  /// client's highest protocol version and, each time an old server
  /// refuses with FailedPrecondition, re-offers the next version down
  /// until one is accepted (so a v3 client meets a v2 server at 2 and a
  /// v1 server at 1). Caches the negotiated version plus the server's
  /// name. Optional — the first call that needs the negotiated version
  /// performs it on demand — but calling it up front turns "wrong port"
  /// into an immediate, attributable error.
  Status Connect() QBS_EXCLUDES(mu_);

  /// One framed request/response exchange with retry + backoff. Fills
  /// in the request id (process-globally unique) and, when the calling
  /// thread is inside a sampled trace and the server has negotiated
  /// >= kTraceContextMinVersion, attaches the trace context so the
  /// server's spans parent under this call's net.rpc span.
  Result<WireResponse> Call(WireRequest request) QBS_EXCLUDES(mu_);

  /// Negotiated version, running Connect() first if still unknown.
  Result<uint32_t> EnsureNegotiated() QBS_EXCLUDES(mu_);

  /// The protocol version negotiated with the server; 0 before the
  /// first Connect() (explicit or on-demand) completes.
  uint32_t negotiated_version() const QBS_EXCLUDES(mu_);

  /// The server's self-reported name once known (Connect() or any
  /// successful ServerInfo); empty before that.
  std::string server_name() const QBS_EXCLUDES(mu_);

  /// Transient failures retried so far (mirrors qbs_net_retry_total,
  /// but per-instance).
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }

  /// RPCs issued by this instance (attempts are not double-counted; a
  /// call retried three times is one RPC here).
  uint64_t rpcs() const { return rpcs_.load(std::memory_order_relaxed); }

  const WireClientOptions& options() const { return options_; }

 private:
  /// Dials (or takes a pooled connection); blocking, so never call with
  /// mu_ held — the annotation makes that a compile error under Clang.
  Result<std::unique_ptr<ByteStream>> AcquireConnection() QBS_EXCLUDES(mu_);
  void ReleaseConnection(std::unique_ptr<ByteStream> conn) QBS_EXCLUDES(mu_);
  /// A single attempt on one connection.
  Result<WireResponse> CallOnce(ByteStream& conn, const WireRequest& request);

  WireClientOptions options_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> rpcs_{0};

  mutable Mutex mu_;
  std::vector<std::unique_ptr<ByteStream>> idle_ QBS_GUARDED_BY(mu_);
  std::string server_name_ QBS_GUARDED_BY(mu_);  // empty until learned
  uint32_t negotiated_version_ QBS_GUARDED_BY(mu_) = 0;  // 0 until negotiated
};

}  // namespace qbs

#endif  // QBS_NET_WIRE_CLIENT_H_

#include "net/db_server.h"

#include <algorithm>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {

namespace {

struct ServerMetrics {
  Counter* connections_total;
  Gauge* active_connections;
  Counter* errors;
  Counter* batch_requests;
  Counter* batch_docs;
  Histogram* request_latency_us;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      ServerMetrics m;
      m.connections_total =
          r.GetCounter("qbs_net_server_connections_total",
                       "Connections accepted by DbServer");
      m.active_connections =
          r.GetGauge("qbs_net_server_active_connections",
                     "Connections currently being served");
      m.errors = r.GetCounter(
          "qbs_net_server_errors_total",
          "Undecodable frames and transport failures on the server side");
      m.batch_requests =
          r.GetCounter("qbs_net_batch_server_requests_total",
                       "Batched RPCs (query_and_fetch, fetch_batch) served");
      m.batch_docs = r.GetCounter(
          "qbs_net_batch_server_docs_total",
          "Documents returned inside batched responses — traffic that "
          "would have cost one RPC each under the v1 protocol");
      m.request_latency_us = r.GetHistogram(
          "qbs_net_server_request_latency_us", Histogram::LatencyBoundsUs(),
          "Server-side request handling latency, database call included");
      return m;
    }();
    return metrics;
  }

  static Counter* Requests(WireMethod method) {
    // One labeled series per method; registration is locked, so look
    // each up once.
    static Counter* const per_method[] = {
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method", "ping"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "server_info"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method", "run_query"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "fetch_document"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "query_and_fetch"),
            "Requests served, by method"),
        MetricRegistry::Default().GetCounter(
            WithLabel("qbs_net_server_requests_total", "method",
                      "fetch_batch"),
            "Requests served, by method"),
    };
    return per_method[static_cast<uint32_t>(method) - 1];
  }
};

}  // namespace

DbServer::DbServer(TextDatabase* db, DbServerOptions options)
    : db_(db), options_(std::move(options)) {}

DbServer::~DbServer() { Stop(); }

bool DbServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::string DbServer::address() const {
  return options_.host + ":" + std::to_string(port_);
}

Status DbServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("DbServer already started");
  }
  auto listener = TcpListener::Listen(options_.host, options_.port);
  QBS_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  port_ = listener_->port();
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  QBS_LOG(INFO) << "DbServer: serving '" << db_->name() << "' on "
                << options_.host << ":" << port_;
  return Status::OK();
}

void DbServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    // Stop the intake first: no new connections reach the pool.
    listener_->CloseListener();
    // Wake every blocked connection reader; their tasks then drain.
    for (SocketStream* stream : active_) stream->Close();
  }
  accept_thread_.join();
  // Queued-but-unserved connections run their task post-Close and exit
  // immediately on the first read; Shutdown drains them all.
  pool_->Shutdown();
  QBS_LOG(INFO) << "DbServer: '" << db_->name() << "' on port " << port_
                << " stopped";
}

void DbServer::AcceptLoop() {
  const ServerMetrics& metrics = ServerMetrics::Get();
  while (true) {
    auto conn = listener_->Accept();
    if (!conn.ok()) return;  // listener closed (or irrecoverable)
    metrics.connections_total->Increment();
    auto stream = std::make_shared<SocketStream>(std::move(*conn));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) {
        stream->Close();
        return;
      }
      active_.insert(stream.get());
    }
    bool accepted =
        pool_->Submit([this, stream] { ServeConnection(stream); });
    if (!accepted) {
      // Shutdown raced the accept; the connection is dropped.
      std::lock_guard<std::mutex> lock(mu_);
      active_.erase(stream.get());
      stream->Close();
    }
  }
}

void DbServer::ServeConnection(std::shared_ptr<SocketStream> stream) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  metrics.active_connections->Add(1.0);
  while (true) {
    auto payload = ReadFrame(*stream, options_.max_frame_bytes);
    if (!payload.ok()) {
      // Peer hung up (the normal end of a connection), shutdown woke us,
      // or the frame was oversized/garbled. Only the latter is an error.
      if (payload.status().IsCorruption()) {
        metrics.errors->Increment();
        QBS_LOG(WARNING) << "DbServer: dropping connection: "
                         << payload.status().ToString();
      }
      break;
    }
    auto request = DecodeRequest(*payload);
    if (!request.ok()) {
      // Without a decoded header there is no request id to answer to;
      // the stream is out of sync, so drop the connection.
      metrics.errors->Increment();
      QBS_LOG(WARNING) << "DbServer: undecodable request: "
                       << request.status().ToString();
      break;
    }
    WireResponse response;
    {
      QBS_TRACE_SPAN("net.serve", WireMethodName(request->method));
      ScopedTimerUs timer(metrics.request_latency_us);
      ServerMetrics::Requests(request->method)->Increment();
      response = HandleRequest(*request);
    }
    Status sent = WriteFrame(*stream, EncodeResponse(response));
    if (!sent.ok()) {
      metrics.errors->Increment();
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(stream.get());
  }
  metrics.active_connections->Add(-1.0);
}

WireResponse DbServer::HandleRequest(const WireRequest& request) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  // What this server speaks: kWireProtocolVersion unless an operator
  // pinned it lower (the old-server compatibility mode).
  const uint32_t spoken = std::min(
      std::max<uint32_t>(options_.max_protocol_version, 1), kWireProtocolVersion);
  WireResponse response;
  response.request_id = request.request_id;
  response.method = request.method;
  response.protocol_version = request.protocol_version;
  if (request.protocol_version > spoken ||
      request.protocol_version < MinVersionForMethod(request.method)) {
    response.status = Status::FailedPrecondition(
        "protocol version " + std::to_string(request.protocol_version) +
        " not supported for " + WireMethodName(request.method) +
        "; server speaks version " + std::to_string(spoken));
    return response;
  }
  switch (request.method) {
    case WireMethod::kPing:
      break;
    case WireMethod::kServerInfo:
      response.server_name = db_->name();
      // The negotiated version: the highest both sides understand. An
      // old client asking at version 1 hears 1 back, so its equality
      // check against its own version still passes.
      response.server_protocol_version =
          std::min(spoken, request.protocol_version);
      break;
    case WireMethod::kRunQuery: {
      Result<std::vector<SearchHit>> hits = [&] {
        if (options_.serialize_database) {
          std::lock_guard<std::mutex> lock(db_mu_);
          return db_->RunQuery(request.query,
                               static_cast<size_t>(request.max_results));
        }
        return db_->RunQuery(request.query,
                             static_cast<size_t>(request.max_results));
      }();
      if (hits.ok()) {
        response.hits = std::move(*hits);
      } else {
        response.status = hits.status();
      }
      break;
    }
    case WireMethod::kFetchDocument: {
      Result<std::string> text = [&] {
        if (options_.serialize_database) {
          std::lock_guard<std::mutex> lock(db_mu_);
          return db_->FetchDocument(request.handle);
        }
        return db_->FetchDocument(request.handle);
      }();
      if (text.ok()) {
        response.document = std::move(*text);
      } else {
        response.status = text.status();
      }
      break;
    }
    case WireMethod::kQueryAndFetch: {
      metrics.batch_requests->Increment();
      // The whole round — query plus every fetch — under one lock
      // acquisition: a batch is the unit of work, and interleaving
      // another connection's calls between the query and its fetches
      // buys nothing but lock churn.
      Result<QueryAndFetchResult> round = [&] {
        if (options_.serialize_database) {
          std::lock_guard<std::mutex> lock(db_mu_);
          return db_->QueryAndFetch(request.query,
                                    static_cast<size_t>(request.max_results));
        }
        return db_->QueryAndFetch(request.query,
                                  static_cast<size_t>(request.max_results));
      }();
      if (round.ok()) {
        metrics.batch_docs->Increment(round->documents.size());
        response.hits = std::move(round->hits);
        response.documents = std::move(round->documents);
      } else {
        response.status = round.status();
      }
      break;
    }
    case WireMethod::kFetchBatch: {
      metrics.batch_requests->Increment();
      Result<std::vector<FetchedDocument>> docs = [&] {
        if (options_.serialize_database) {
          std::lock_guard<std::mutex> lock(db_mu_);
          return db_->FetchBatch(request.handles);
        }
        return db_->FetchBatch(request.handles);
      }();
      if (docs.ok()) {
        metrics.batch_docs->Increment(docs->size());
        response.documents = std::move(*docs);
      } else {
        response.status = docs.status();
      }
      break;
    }
  }
  return response;
}

}  // namespace qbs

#include "net/db_server.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace qbs {

namespace {

struct BatchMetrics {
  Counter* batch_requests;
  Counter* batch_docs;

  static const BatchMetrics& Get() {
    static const BatchMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      BatchMetrics m;
      m.batch_requests =
          r.GetCounter("qbs_net_batch_server_requests_total",
                       "Batched RPCs (query_and_fetch, fetch_batch) served");
      m.batch_docs = r.GetCounter(
          "qbs_net_batch_server_docs_total",
          "Documents returned inside batched responses — traffic that "
          "would have cost one RPC each under the v1 protocol");
      return m;
    }();
    return metrics;
  }
};

FrameServerOptions ToFrameOptions(const DbServerOptions& options) {
  FrameServerOptions frame;
  frame.host = options.host;
  frame.port = options.port;
  frame.num_workers = options.num_workers;
  frame.max_frame_bytes = options.max_frame_bytes;
  frame.max_protocol_version = options.max_protocol_version;
  frame.admin_port = options.admin_port;
  frame.admin_host = options.admin_host;
  frame.max_write_queue_bytes = options.max_write_queue_bytes;
  frame.max_pipelined_requests = options.max_pipelined_requests;
  frame.idle_timeout_us = options.idle_timeout_us;
  frame.queue_timeout_us = options.queue_timeout_us;
  return frame;
}

}  // namespace

DbServer::DbServer(TextDatabase* db, DbServerOptions options)
    : FrameServer("DbServer '" + db->name() + "'", ToFrameOptions(options)),
      db_(db),
      serialize_database_(options.serialize_database) {
  AddStatusProvider("database", [this] { return db_->name(); });
}

DbServer::~DbServer() { Stop(); }

WireResponse DbServer::Handle(const WireRequest& request) {
  const BatchMetrics& metrics = BatchMetrics::Get();
  WireResponse response;
  response.request_id = request.request_id;
  response.method = request.method;
  response.protocol_version = request.protocol_version;
  switch (request.method) {
    case WireMethod::kPing:
      break;
    case WireMethod::kServerInfo:
      response.server_name = db_->name();
      // The negotiated version: the highest both sides understand. An
      // old client asking at version 1 hears 1 back, so its equality
      // check against its own version still passes.
      response.server_protocol_version =
          std::min(spoken_version(), request.protocol_version);
      break;
    case WireMethod::kRunQuery: {
      Result<std::vector<SearchHit>> hits = [&] {
        if (serialize_database_) {
          MutexLock lock(db_mu_);
          return db_->RunQuery(request.query,
                               static_cast<size_t>(request.max_results));
        }
        return db_->RunQuery(request.query,
                             static_cast<size_t>(request.max_results));
      }();
      if (hits.ok()) {
        response.hits = std::move(*hits);
      } else {
        response.status = hits.status();
      }
      break;
    }
    case WireMethod::kFetchDocument: {
      Result<std::string> text = [&] {
        if (serialize_database_) {
          MutexLock lock(db_mu_);
          return db_->FetchDocument(request.handle);
        }
        return db_->FetchDocument(request.handle);
      }();
      if (text.ok()) {
        response.document = std::move(*text);
      } else {
        response.status = text.status();
      }
      break;
    }
    case WireMethod::kQueryAndFetch: {
      metrics.batch_requests->Increment();
      // The whole round — query plus every fetch — under one lock
      // acquisition: a batch is the unit of work, and interleaving
      // another connection's calls between the query and its fetches
      // buys nothing but lock churn.
      Result<QueryAndFetchResult> round = [&] {
        if (serialize_database_) {
          MutexLock lock(db_mu_);
          return db_->QueryAndFetch(request.query,
                                    static_cast<size_t>(request.max_results));
        }
        return db_->QueryAndFetch(request.query,
                                  static_cast<size_t>(request.max_results));
      }();
      if (round.ok()) {
        metrics.batch_docs->Increment(round->documents.size());
        response.hits = std::move(round->hits);
        response.documents = std::move(round->documents);
      } else {
        response.status = round.status();
      }
      break;
    }
    case WireMethod::kFetchBatch: {
      metrics.batch_requests->Increment();
      Result<std::vector<FetchedDocument>> docs = [&] {
        if (serialize_database_) {
          MutexLock lock(db_mu_);
          return db_->FetchBatch(request.handles);
        }
        return db_->FetchBatch(request.handles);
      }();
      if (docs.ok()) {
        metrics.batch_docs->Increment(docs->size());
        response.documents = std::move(*docs);
      } else {
        response.status = docs.status();
      }
      break;
    }
    case WireMethod::kSelect:
    case WireMethod::kBrokerStatus:
    case WireMethod::kShardInfo:
    case WireMethod::kSnapshotFetch:
      response.status = Status::Unimplemented(
          std::string(WireMethodName(request.method)) +
          ": this server fronts a TextDatabase, not a selection broker");
      break;
  }
  return response;
}

}  // namespace qbs

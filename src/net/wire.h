// The qbs wire protocol: length-prefixed binary frames carrying the
// TextDatabase RPCs — Ping, ServerInfo, RunQuery, FetchDocument since
// v1, the batched QueryAndFetch / FetchBatch since v2, the
// selection-broker Select / BrokerStatus since v3, and the federation
// surface (Select scatter-gather extensions, ShardInfo, SnapshotFetch)
// since v5.
//
// A frame is a 4-byte little-endian payload length followed by the
// payload. Payload fields are LEB128 varints (src/index/varint) and
// length-prefixed byte strings; scores travel as raw IEEE-754 bit
// patterns so a model learned remotely is bit-identical to one learned
// in-process. Responses carry a full Status (code + message) across the
// wire, so the client-side TextDatabase surfaces exactly the errors the
// server-side database produced. docs/PROTOCOL.md specifies the layout,
// versioning, and compatibility rules.
#ifndef QBS_NET_WIRE_H_
#define QBS_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/transport.h"
#include "obs/trace.h"
#include "search/text_database.h"
#include "selection/db_selection.h"
#include "util/status.h"

namespace qbs {

/// Protocol version spoken by this build. Version 2 adds the batched
/// RPCs (query_and_fetch, fetch_batch); version 3 adds the
/// selection-broker RPCs (select, broker_status); version 4 adds the
/// optional trace-context trailer on requests (no new methods);
/// version 5 adds the federation surface — the select request/response
/// extensions (stats_only / has_stats scatter-gather, partial-result
/// flagging, shard epoch vectors) and the shard_info / snapshot_fetch
/// RPCs; every earlier message is unchanged. A request's version field
/// states the minimum version needed to understand that message, so a
/// new client keeps stamping version-1 methods with 1 and an old server
/// keeps accepting them. A server replies to a version it does not
/// speak with FailedPrecondition and its own version number, so the
/// peer gets a diagnosable error instead of garbage (and a new client
/// downgrades).
inline constexpr uint32_t kWireProtocolVersion = 5;

/// First version whose decoders accept the optional trace-context
/// trailer on request frames. Pre-v4 decoders reject any bytes after
/// the method body as Corruption, so a client must only attach a trace
/// context once it has negotiated >= this version with the peer — and a
/// request carrying one must declare at least this version.
inline constexpr uint32_t kTraceContextMinVersion = 4;

/// First version carrying the federation surface: the select
/// request/response extensions (a mandatory flags varint after the v3
/// select body, plus optional stats / epoch-vector sections) and the
/// shard_info / snapshot_fetch methods. A select request stamped >= 5
/// always encodes the flags varint; plain selects keep stamping v3 and
/// stay byte-identical to every earlier build.
inline constexpr uint32_t kFederationMinVersion = 5;

/// Frames larger than this are rejected as Corruption before any
/// allocation — a garbled length prefix must not become a giant malloc.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;  // 64 MiB

/// RPC methods. Values are wire-stable; never renumber.
enum class WireMethod : uint32_t {
  kPing = 1,
  kServerInfo = 2,
  kRunQuery = 3,
  kFetchDocument = 4,
  /// v2: run a query and return the top-N documents in one frame.
  kQueryAndFetch = 5,
  /// v2: fetch several documents by handle in one frame.
  kFetchBatch = 6,
  /// v3: rank databases for a query (broker servers only).
  kSelect = 7,
  /// v3: a broker's live serving state (broker servers only).
  kBrokerStatus = 8,
  /// v5: a federation's shard map and per-shard snapshot epochs
  /// (federation servers only).
  kShardInfo = 9,
  /// v5: stream a broker's packed model-store image, one chunk per
  /// round trip, pinned to a snapshot epoch (broker servers only).
  kSnapshotFetch = 10,
};

/// Stable lowercase method name ("ping", ...; "unknown" otherwise),
/// used for metric labels and trace span names.
const char* WireMethodName(WireMethod method);

/// The protocol version that introduced `method` — the version a
/// request carrying it must declare, and the least version a peer must
/// have negotiated before sending it.
uint32_t MinVersionForMethod(WireMethod method);

/// One shard's snapshot epoch, as pinned for a federated query (v5).
struct ShardEpoch {
  /// The shard broker's address ("host:port").
  std::string shard;
  uint64_t epoch = 0;
};

/// One shard's liveness row in a shard_info response (v5).
struct ShardStatusInfo {
  /// The shard broker's address ("host:port").
  std::string address;
  /// The shard's current snapshot epoch (0 when unknown or unreachable).
  uint64_t epoch = 0;
  /// Whether the federation most recently reached this shard.
  bool healthy = false;
  /// Databases the shard serves (0 when unknown).
  uint64_t databases = 0;
};

/// BrokerStatus payload (v3): a selection broker's live serving state.
struct BrokerStatusInfo {
  /// Epoch of the snapshot currently served; 0 until the first publish.
  uint64_t epoch = 0;
  /// Databases in the served snapshot.
  uint64_t databases = 0;
  /// Select calls answered (cache hits included).
  uint64_t selects_total = 0;
  /// Select requests shed by admission control with kUnavailable.
  uint64_t shed_total = 0;
  /// Result-cache outcomes.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
};

/// One decoded request.
struct WireRequest {
  /// Minimum protocol version needed to understand this message —
  /// MinVersionForMethod(method), not the build's own version.
  uint32_t protocol_version = 1;
  /// Client-chosen id echoed back in the response; lets a client detect
  /// a stale or misrouted response on a reused connection.
  uint64_t request_id = 0;
  WireMethod method = WireMethod::kPing;
  /// kRunQuery, kQueryAndFetch, and kSelect.
  std::string query;
  /// Result cap for the query methods; for kSelect it is the top-k cut
  /// (0 = every database).
  uint64_t max_results = 0;
  /// kFetchDocument only.
  std::string handle;
  /// kFetchBatch only.
  std::vector<std::string> handles;
  /// kSelect only: ranker name ("cori", "bgloss", "vgloss", "kl").
  std::string ranker;
  /// v5 kSelect, scatter-gather phase 1: return the snapshot epoch and
  /// the query's collection-global statistics instead of a ranking.
  /// Mutually exclusive with has_stats (both set decodes as Corruption).
  bool stats_only = false;
  /// v5 kSelect, scatter-gather phase 2: rank with the supplied
  /// `stats` (the federation-wide aggregate) instead of locally
  /// computed ones, pinned to `pinned_epoch`.
  bool has_stats = false;
  /// v5 kSelect with has_stats: the snapshot epoch the stats were
  /// gathered at. The server answers FailedPrecondition when its
  /// current epoch differs — the caller restarts the query rather than
  /// mixing epochs.
  uint64_t pinned_epoch = 0;
  /// v5 kSelect with has_stats: collection-global statistics,
  /// index-aligned with the analyzed query terms (both sides analyze
  /// `query` with the same deterministic pipeline).
  CollectionStats stats;
  /// v5 kSnapshotFetch: the snapshot epoch to read (0 = whatever is
  /// current; later chunks pin the epoch the first chunk reported).
  uint64_t snapshot_epoch = 0;
  /// v5 kSnapshotFetch: byte offset into the packed store image.
  uint64_t snapshot_offset = 0;
  /// v5 kSnapshotFetch: maximum bytes per chunk (0 = server default).
  uint64_t snapshot_chunk_bytes = 0;
  /// v4: distributed-tracing context, encoded as an optional trailer
  /// after the method body. Absent on the wire (and all-zero here) when
  /// the caller is not tracing or the peer negotiated < v4. Decoded
  /// requests with no trailer leave this invalid().
  TraceContext trace;
};

/// One decoded response.
struct WireResponse {
  uint32_t protocol_version = 1;
  uint64_t request_id = 0;
  WireMethod method = WireMethod::kPing;
  /// The server-side operation's outcome, carried verbatim.
  Status status;
  /// kServerInfo only.
  std::string server_name;
  uint32_t server_protocol_version = 0;
  /// kRunQuery and kQueryAndFetch (present when status is OK).
  std::vector<SearchHit> hits;
  /// kFetchDocument only (present when status is OK).
  std::string document;
  /// kQueryAndFetch (index-aligned with hits) and kFetchBatch
  /// (index-aligned with the request's handles). Each entry carries its
  /// own status; the wire does not repeat handles — the decoder leaves
  /// FetchedDocument::handle empty and the client fills it back in from
  /// what it asked for.
  std::vector<FetchedDocument> documents;
  /// kSelect (present when status is OK): the snapshot epoch the ranking
  /// was computed from, and the ranked databases, best first. Scores
  /// travel as raw IEEE-754 bits, so a remote ranking is bit-identical
  /// to the in-process one.
  uint64_t epoch = 0;
  std::vector<DatabaseScore> scores;
  /// kBrokerStatus only (present when status is OK).
  BrokerStatusInfo broker;
  /// v5 kSelect: true when one or more shards were unreachable and the
  /// ranking covers only the live subset (flagged, never an error).
  bool partial = false;
  /// v5 kSelect answering a stats_only request: the collection-global
  /// statistics for the analyzed query, at `epoch`.
  bool has_stats = false;
  CollectionStats stats;
  /// v5 kSelect from a federation server: the shards that were down for
  /// this query (addresses), and the per-shard snapshot epochs the
  /// ranking was computed from.
  std::vector<std::string> down_shards;
  std::vector<ShardEpoch> shard_epochs;
  /// kShardInfo only (v5): the shard map fingerprint and one row per
  /// shard.
  uint64_t shard_map_version = 0;
  std::vector<ShardStatusInfo> shards;
  /// kSnapshotFetch only (v5): the epoch of the served image, its total
  /// size, this chunk's offset, and the chunk bytes.
  uint64_t snapshot_epoch = 0;
  uint64_t snapshot_total_bytes = 0;
  uint64_t snapshot_offset = 0;
  std::string snapshot_data;
};

/// Serializes a request/response into a frame payload (no length prefix).
std::vector<uint8_t> EncodeRequest(const WireRequest& request);
std::vector<uint8_t> EncodeResponse(const WireResponse& response);

/// Parses a frame payload. Truncated, overlong, or otherwise malformed
/// input fails with Corruption; no partial message is ever returned.
Result<WireRequest> DecodeRequest(const std::vector<uint8_t>& payload);
Result<WireResponse> DecodeResponse(const std::vector<uint8_t>& payload);

/// Writes `payload` as one frame (length prefix + payload) in a single
/// stream write, so a byte-layer fault drops or truncates whole frames.
Status WriteFrame(ByteStream& stream, const std::vector<uint8_t>& payload);

/// Reads one frame and returns its payload. Fails with Corruption when
/// the length prefix exceeds `max_frame_bytes`, and with the stream's
/// own status (Unavailable / DeadlineExceeded / IOError) on transport
/// errors.
Result<std::vector<uint8_t>> ReadFrame(ByteStream& stream,
                                       size_t max_frame_bytes);

}  // namespace qbs

#endif  // QBS_NET_WIRE_H_

// TCP primitives behind the ByteStream seam: a deadline-aware blocking
// socket stream, a dialer, a listener, and the non-blocking read/write/
// accept calls the epoll event loop (net/event_loop.h) is built on.
//
// Blocking waiting is poll()-based so per-call deadlines work without
// touching socket-level timeout options, and writes use MSG_NOSIGNAL so
// a vanished peer surfaces as a Status instead of SIGPIPE.
//
// The non-blocking calls never wait: an fd that is not ready surfaces
// as a typed Status::WouldBlock, which the caller answers by parking
// the fd in a poller — retrying it in a loop would busy-spin.
#ifndef QBS_NET_SOCKET_H_
#define QBS_NET_SOCKET_H_

#include <sys/socket.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.h"
#include "util/fd.h"
#include "util/status.h"

namespace qbs {

/// Sets or clears O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd, bool enable);

/// Reads up to `n` bytes from a non-blocking `fd`. Returns the count
/// read (>= 1); EINTR is retried internally. Typed errors:
///   WouldBlock    nothing buffered (EAGAIN) — park the fd in a poller
///   Unavailable   peer closed (EOF) or reset the connection
///   IOError       any other socket failure
Result<size_t> NonBlockingRead(int fd, uint8_t* data, size_t n);

/// Writes up to `n` bytes to a non-blocking `fd` (MSG_NOSIGNAL).
/// Returns the count accepted by the kernel, which may be short — the
/// caller keeps the tail queued and re-arms POLLOUT. WouldBlock means
/// zero bytes fit; a short count is success, not an error. EINTR is
/// retried internally; peer-gone maps to Unavailable as above.
Result<size_t> NonBlockingWrite(int fd, const uint8_t* data, size_t n);

/// A connected TCP socket as a ByteStream. Reads and writes honor the
/// deadline set with SetDeadlineMicros. Close() is safe to call from
/// another thread while a read is blocked (it shuts the socket down,
/// waking the reader with Unavailable).
class SocketStream : public ByteStream {
 public:
  /// Adopts a connected socket descriptor.
  explicit SocketStream(UniqueFd fd);
  ~SocketStream() override;

  /// Connects to host:port (numeric IPv4 or a resolvable name such as
  /// "localhost") within `connect_timeout_us` (0 = no limit). Connection
  /// refusals and resolution failures are Unavailable; a timeout is
  /// DeadlineExceeded.
  static Result<std::unique_ptr<SocketStream>> Dial(
      const std::string& host, uint16_t port, uint64_t connect_timeout_us);

  Status WriteAll(const uint8_t* data, size_t n) override;
  Status ReadFull(uint8_t* data, size_t n) override;
  void SetDeadlineMicros(uint64_t deadline_us) override;
  void Close() override;

 private:
  /// Waits until the socket is ready for `events` (POLLIN/POLLOUT) or
  /// the deadline expires.
  Status PollReady(short events);

  UniqueFd fd_;
  std::atomic<uint64_t> deadline_us_{0};
};

/// A listening TCP socket. Accept() blocks; CloseListener() (from any
/// thread) wakes it with Unavailable — the graceful-shutdown handshake
/// DbServer relies on.
class TcpListener {
 public:
  /// Binds and listens on host:port. Port 0 binds an ephemeral port;
  /// port() reports the actual one. The default backlog asks for the
  /// system maximum (the kernel clamps it to net.core.somaxconn): the
  /// kernel completes handshakes before accept() ever runs, so a deep
  /// queue is what absorbs dial bursts that momentarily outrun the
  /// accept loop — a shallow one silently drops SYNs and costs each
  /// affected client a full retransmission timeout.
  static Result<std::unique_ptr<TcpListener>> Listen(const std::string& host,
                                                     uint16_t port,
                                                     int backlog = SOMAXCONN);

  /// The bound port.
  uint16_t port() const { return port_; }

  /// Accepts one connection. Returns Unavailable once the listener is
  /// closed.
  Result<UniqueFd> Accept();

  /// Accepts one already-pending connection without waiting; the
  /// polled flavor the epoll accept path uses. Typed errors:
  ///   WouldBlock    no connection pending — wait for POLLIN and retry
  ///   Unavailable   the listener was closed
  /// Transient per-connection accept failures (ECONNABORTED, EINTR)
  /// are retried internally; the returned fd is TCP_NODELAY but NOT
  /// non-blocking — callers flip it with SetNonBlocking as needed.
  Result<UniqueFd> AcceptNonBlocking();

  /// The listening descriptor, for poller registration. Ownership is
  /// retained; the fd stays valid until CloseListener/destruction.
  int fd() const { return fd_.get(); }

  /// Stops accepting; a blocked Accept() returns Unavailable.
  void CloseListener();

 private:
  TcpListener(UniqueFd fd, uint16_t port) : fd_(std::move(fd)), port_(port) {}

  UniqueFd fd_;
  uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace qbs

#endif  // QBS_NET_SOCKET_H_

// Blocking TCP primitives behind the ByteStream seam: a deadline-aware
// socket stream, a dialer, and a listener.
//
// All waiting is poll()-based so per-call deadlines work without
// touching socket-level timeout options, and writes use MSG_NOSIGNAL so
// a vanished peer surfaces as a Status instead of SIGPIPE.
#ifndef QBS_NET_SOCKET_H_
#define QBS_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.h"
#include "util/fd.h"
#include "util/status.h"

namespace qbs {

/// A connected TCP socket as a ByteStream. Reads and writes honor the
/// deadline set with SetDeadlineMicros. Close() is safe to call from
/// another thread while a read is blocked (it shuts the socket down,
/// waking the reader with Unavailable).
class SocketStream : public ByteStream {
 public:
  /// Adopts a connected socket descriptor.
  explicit SocketStream(UniqueFd fd);
  ~SocketStream() override;

  /// Connects to host:port (numeric IPv4 or a resolvable name such as
  /// "localhost") within `connect_timeout_us` (0 = no limit). Connection
  /// refusals and resolution failures are Unavailable; a timeout is
  /// DeadlineExceeded.
  static Result<std::unique_ptr<SocketStream>> Dial(
      const std::string& host, uint16_t port, uint64_t connect_timeout_us);

  Status WriteAll(const uint8_t* data, size_t n) override;
  Status ReadFull(uint8_t* data, size_t n) override;
  void SetDeadlineMicros(uint64_t deadline_us) override;
  void Close() override;

 private:
  /// Waits until the socket is ready for `events` (POLLIN/POLLOUT) or
  /// the deadline expires.
  Status PollReady(short events);

  UniqueFd fd_;
  std::atomic<uint64_t> deadline_us_{0};
};

/// A listening TCP socket. Accept() blocks; CloseListener() (from any
/// thread) wakes it with Unavailable — the graceful-shutdown handshake
/// DbServer relies on.
class TcpListener {
 public:
  /// Binds and listens on host:port. Port 0 binds an ephemeral port;
  /// port() reports the actual one.
  static Result<std::unique_ptr<TcpListener>> Listen(const std::string& host,
                                                     uint16_t port,
                                                     int backlog = 64);

  /// The bound port.
  uint16_t port() const { return port_; }

  /// Accepts one connection. Returns Unavailable once the listener is
  /// closed.
  Result<UniqueFd> Accept();

  /// Stops accepting; a blocked Accept() returns Unavailable.
  void CloseListener();

 private:
  TcpListener(UniqueFd fd, uint16_t port) : fd_(std::move(fd)), port_(port) {}

  UniqueFd fd_;
  uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace qbs

#endif  // QBS_NET_SOCKET_H_

// DbServer: exposes one local TextDatabase on a TCP port over the qbs
// wire protocol (net/wire.h), making an in-process engine reachable the
// only way the paper assumes a real database is — through a remote
// query/fetch interface.
//
// The transport (epoll event loop, per-connection state machines,
// worker-pool dispatch, graceful Stop, protocol-version gate) lives in
// the FrameServer base; this class is only the TextDatabase request
// handler.
#ifndef QBS_NET_DB_SERVER_H_
#define QBS_NET_DB_SERVER_H_

#include <cstdint>
#include <string>

#include "net/frame_server.h"
#include "net/wire.h"
#include "search/text_database.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace qbs {

struct DbServerOptions {
  /// Bind address. The default serves loopback only; use "0.0.0.0" to
  /// accept remote peers.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads == maximum concurrently *executing* requests. Open
  /// connections are unbounded — the event loop holds them without a
  /// thread each.
  size_t num_workers = 4;
  /// Inbound frames larger than this are rejected and the connection
  /// dropped.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection write-queue high watermark: a peer that stops
  /// reading its responses is paused (backpressure) above this.
  size_t max_write_queue_bytes = 4u << 20;
  /// Complete frames one connection may queue for the worker pool
  /// before its reads pause.
  size_t max_pipelined_requests = 64;
  /// Drop connections idle this long (no bytes, no request in flight).
  /// 0 (default) keeps idle connections forever.
  uint64_t idle_timeout_us = 0;
  /// Answer requests that waited longer than this in the worker queue
  /// with a retryable Unavailable. 0 (default) disables shedding.
  uint64_t queue_timeout_us = 0;
  /// Serialize calls into the wrapped database. SearchEngine is only
  /// thread-compatible, so this defaults on; flip it off for databases
  /// that are themselves thread-safe (e.g. a RemoteTextDatabase proxy).
  bool serialize_database = true;
  /// Highest protocol version this server speaks (clamped to
  /// [1, kWireProtocolVersion]). Lowering it to 1 makes the server
  /// behave exactly like a pre-batching build: batched requests are
  /// rejected with FailedPrecondition and server_info advertises
  /// version 1. An operational downgrade lever, and the test seam for
  /// new-client-against-old-server compatibility coverage.
  uint32_t max_protocol_version = kWireProtocolVersion;
  /// Embedded admin HTTP endpoint (/metrics, /statusz, /tracez): the
  /// port to bind, 0 for an ephemeral one, negative (default) for none.
  int32_t admin_port = -1;
  /// Bind address of the admin endpoint.
  std::string admin_host = "127.0.0.1";
};

/// An event-loop TCP server for one TextDatabase. Thread-safe. The wrapped
/// database must outlive the server. The broker RPCs (select,
/// broker_status) are answered with Unimplemented — this server fronts a
/// database, not a selection broker.
class DbServer : public FrameServer {
 public:
  DbServer(TextDatabase* db, DbServerOptions options);
  /// Stops the server (Stop()) if still running.
  ~DbServer() override;

 protected:
  WireResponse Handle(const WireRequest& request) override;

 private:
  // Guarded when serialize_database_ is set: SearchEngine is only
  // thread-compatible, so every call into it holds db_mu_. (When the
  // flag is off the database is itself thread-safe and db_mu_ is never
  // taken — the annotation documents the serialized configuration.)
  // db_ may block (a RemoteTextDatabase proxy does network I/O), which
  // is why thread-safe databases should run with serialize_database
  // off. The calls are virtual, so tools/analyze.py's blockinglock walk
  // cannot see through them: this is the one place a lock deliberately
  // spans potentially-blocking work, documented here instead.
  TextDatabase* db_ QBS_PT_GUARDED_BY(db_mu_);
  bool serialize_database_;
  Mutex db_mu_;
};

}  // namespace qbs

#endif  // QBS_NET_DB_SERVER_H_

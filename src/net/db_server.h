// DbServer: exposes one local TextDatabase on a TCP port over the qbs
// wire protocol (net/wire.h), making an in-process engine reachable the
// only way the paper assumes a real database is — through a remote
// query/fetch interface.
//
// Model: one dedicated accept thread; each accepted connection is served
// as a ThreadPool task that loops request->response until the peer hangs
// up (connection-per-worker — at most `num_workers` connections are
// served concurrently; further accepted connections wait in the pool
// queue). Stop() is graceful: stop accepting, wake every blocked
// connection reader, drain the pool.
#ifndef QBS_NET_DB_SERVER_H_
#define QBS_NET_DB_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "net/socket.h"
#include "net/wire.h"
#include "search/text_database.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qbs {

struct DbServerOptions {
  /// Bind address. The default serves loopback only; use "0.0.0.0" to
  /// accept remote peers.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads == maximum concurrently served connections.
  size_t num_workers = 4;
  /// Inbound frames larger than this are rejected and the connection
  /// dropped.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Serialize calls into the wrapped database. SearchEngine is only
  /// thread-compatible, so this defaults on; flip it off for databases
  /// that are themselves thread-safe (e.g. a RemoteTextDatabase proxy).
  bool serialize_database = true;
  /// Highest protocol version this server speaks (clamped to
  /// [1, kWireProtocolVersion]). Lowering it to 1 makes the server
  /// behave exactly like a pre-batching build: batched requests are
  /// rejected with FailedPrecondition and server_info advertises
  /// version 1. An operational downgrade lever, and the test seam for
  /// new-client-against-old-server compatibility coverage.
  uint32_t max_protocol_version = kWireProtocolVersion;
};

/// A blocking TCP server for one TextDatabase. Thread-safe. The wrapped
/// database must outlive the server.
class DbServer {
 public:
  DbServer(TextDatabase* db, DbServerOptions options);
  /// Stops the server (Stop()) if still running.
  ~DbServer();

  DbServer(const DbServer&) = delete;
  DbServer& operator=(const DbServer&) = delete;

  /// Binds, listens, and starts accepting. Fails if the port is taken or
  /// the server was already started.
  Status Start();

  /// Graceful shutdown: stops accepting, unblocks every in-flight
  /// connection reader, and drains the worker pool. In-flight requests
  /// finish; idle connections are dropped. Idempotent.
  void Stop();

  /// The bound port (valid after Start() succeeded).
  uint16_t port() const { return port_; }

  /// True between a successful Start() and Stop().
  bool running() const;

  /// host:port of this server (valid after Start()).
  std::string address() const;

 private:
  void AcceptLoop();
  void ServeConnection(std::shared_ptr<SocketStream> stream);
  WireResponse HandleRequest(const WireRequest& request);

  TextDatabase* db_;
  DbServerOptions options_;
  uint16_t port_ = 0;

  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  bool running_ = false;
  // Streams of live connections, so Stop() can wake their readers.
  std::unordered_set<SocketStream*> active_;
  // Guards calls into db_ when options_.serialize_database is set.
  std::mutex db_mu_;
};

}  // namespace qbs

#endif  // QBS_NET_DB_SERVER_H_

// ResultCache: a sharded LRU cache for selection results.
//
// Selection is a pure function of (snapshot epoch, ranker, analyzed
// query), so identical queries against the same snapshot can be served
// from memory. Keys embed the epoch, so a refresh invalidates the whole
// cache implicitly — stale entries are never *served*, they just age
// out of the LRU. Sharding keeps lock hold times short under the
// many-reader load the broker is built for.
#ifndef QBS_BROKER_RESULT_CACHE_H_
#define QBS_BROKER_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "selection/db_selection.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace qbs {

struct ResultCacheOptions {
  /// Independent LRU shards; a key maps to one shard by hash. More
  /// shards = less lock contention, coarser LRU.
  size_t num_shards = 8;
  /// Entries per shard; total capacity = num_shards * capacity_per_shard.
  size_t capacity_per_shard = 128;
};

/// Thread-safe sharded LRU mapping cache keys to shared, immutable
/// rankings. Values are shared_ptr so a hit can be returned (and used)
/// after the entry is evicted by a concurrent Put.
class ResultCache {
 public:
  /// A complete ranking, best first, shared between the cache and every
  /// reader that hit on it.
  using Ranking = std::shared_ptr<const std::vector<DatabaseScore>>;

  explicit ResultCache(ResultCacheOptions options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached ranking for `key`, promoting it to most-recently-used;
  /// nullptr on miss.
  Ranking Get(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least-recently-used
  /// entry of the shard when it is full.
  void Put(const std::string& key, Ranking ranking);

  /// Canonical cache key for a selection: epoch, ranker, and the
  /// analyzed query terms (order-preserving — term order never changes
  /// scores today, but keys must not assert that).
  static std::string Key(uint64_t epoch, std::string_view ranker_name,
                         const std::vector<std::string>& terms);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const;

 private:
  struct Shard {
    Mutex mu;
    /// Most-recently-used at the front.
    std::list<std::pair<std::string, Ranking>> lru QBS_GUARDED_BY(mu);
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, Ranking>>::iterator>
        index QBS_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key);

  ResultCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace qbs

#endif  // QBS_BROKER_RESULT_CACHE_H_

#include "broker/result_cache.h"

#include <functional>

#include "obs/metrics.h"
#include "util/logging.h"

namespace qbs {

namespace {

struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;

  static const CacheMetrics& Get() {
    static const CacheMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      CacheMetrics m;
      m.hits = r.GetCounter("qbs_broker_cache_hits_total",
                            "Select results served from the result cache");
      m.misses = r.GetCounter("qbs_broker_cache_misses_total",
                              "Select results computed because no cache "
                              "entry existed");
      m.evictions = r.GetCounter(
          "qbs_broker_cache_evictions_total",
          "Result-cache entries evicted by LRU capacity pressure");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {
  QBS_CHECK(options_.num_shards > 0);
  QBS_CHECK(options_.capacity_per_shard > 0);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

ResultCache::Ranking ResultCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().misses->Increment();
    return nullptr;
  }
  // Promote to most-recently-used.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().hits->Increment();
  return it->second->second;
}

void ResultCache::Put(const std::string& key, Ranking ranking) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent compute of the same selection; keep the fresher value
    // and the MRU position.
    it->second->second = std::move(ranking);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= options_.capacity_per_shard) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().evictions->Increment();
  }
  shard.lru.emplace_front(key, std::move(ranking));
  shard.index.emplace(key, shard.lru.begin());
}

std::string ResultCache::Key(uint64_t epoch, std::string_view ranker_name,
                             const std::vector<std::string>& terms) {
  // Unit separator (0x1f) between fields, record separator (0x1e)
  // between terms: neither occurs in analyzed tokens, so keys are
  // unambiguous without escaping.
  std::string key = std::to_string(epoch);
  key += '\x1f';
  key.append(ranker_name.data(), ranker_name.size());
  key += '\x1f';
  for (const std::string& term : terms) {
    key += term;
    key += '\x1e';
  }
  return key;
}

ResultCache::Stats ResultCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace qbs

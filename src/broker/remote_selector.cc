#include "broker/remote_selector.h"

#include <utility>

namespace qbs {

RemoteSelector::RemoteSelector(WireClientOptions options)
    : client_(std::move(options)) {}

Status RemoteSelector::Connect() { return client_.Connect(); }

std::string RemoteSelector::name() const {
  std::string server_name = client_.server_name();
  if (!server_name.empty()) return server_name;
  return "broker:" + client_.options().host + ":" +
         std::to_string(client_.options().port);
}

Status RemoteSelector::RequireBrokerProtocol() {
  auto version = client_.EnsureNegotiated();
  QBS_RETURN_IF_ERROR(version.status());
  const uint32_t min_version =
      MinVersionForMethod(WireMethod::kSelect);
  if (*version < min_version) {
    return Status::FailedPrecondition(
        "server '" + name() + "' negotiated protocol version " +
        std::to_string(*version) + ", which predates the broker RPCs (v" +
        std::to_string(min_version) + "); is it a broker?");
  }
  return Status::OK();
}

Result<SelectionResult> RemoteSelector::Select(const std::string& query,
                                               const std::string& ranker_name,
                                               size_t top_k) {
  QBS_RETURN_IF_ERROR(RequireBrokerProtocol());
  WireRequest request;
  request.method = WireMethod::kSelect;
  // Minimum-needed for a plain select, bumped to v5 against a peer that
  // speaks it so federation front-ends can attach their partial-result
  // and per-shard-epoch fields to the reply.
  request.protocol_version = MinVersionForMethod(request.method);
  if (client_.negotiated_version() >= kFederationMinVersion) {
    request.protocol_version = kFederationMinVersion;
  }
  request.query = query;
  request.ranker = ranker_name;
  request.max_results = top_k;
  auto response = client_.Call(std::move(request));
  QBS_RETURN_IF_ERROR(response.status());
  SelectionResult result;
  result.epoch = response->epoch;
  result.scores = std::move(response->scores);
  result.partial = response->partial;
  result.down_shards = std::move(response->down_shards);
  result.shard_epochs = std::move(response->shard_epochs);
  last_epoch_.store(result.epoch, std::memory_order_relaxed);
  return result;
}

Result<BrokerStatusInfo> RemoteSelector::BrokerStatus() {
  QBS_RETURN_IF_ERROR(RequireBrokerProtocol());
  WireRequest request;
  request.method = WireMethod::kBrokerStatus;
  request.protocol_version = MinVersionForMethod(request.method);
  auto response = client_.Call(std::move(request));
  QBS_RETURN_IF_ERROR(response.status());
  return response->broker;
}

}  // namespace qbs

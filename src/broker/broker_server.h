// BrokerServer: a SelectionBroker on a TCP port, speaking protocol v3
// (select, broker_status) plus the v1 control methods (ping,
// server_info) over the shared FrameServer transport.
//
// Overload policy: selection is cheap but not free, and the north star
// is "heavy traffic from millions of users" — so the server bounds
// in-flight Select work with an AdmissionController and sheds the
// excess with an explicit kUnavailable instead of queueing without
// limit. kUnavailable is transient, so well-behaved clients back off
// and retry; cheap control RPCs (ping, server_info, broker_status) are
// never shed, keeping the server observable while it is saturated.
#ifndef QBS_BROKER_BROKER_SERVER_H_
#define QBS_BROKER_BROKER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "broker/selection_broker.h"
#include "broker/snapshot_provider.h"
#include "net/frame_server.h"
#include "net/wire.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace qbs {

struct AdmissionOptions {
  /// Select requests processed concurrently; further requests wait up
  /// to queue_timeout_us for a slot, then are shed. 0 = unbounded (no
  /// admission control).
  size_t max_inflight = 64;
  /// How long a request may wait for an admission slot before being
  /// shed. 0 sheds immediately when the server is full.
  uint64_t queue_timeout_us = 50'000;
};

/// Bounds concurrently admitted work. Thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Takes an in-flight slot, waiting up to queue_timeout_us for one to
  /// free. False = shed (the caller must answer kUnavailable and must
  /// NOT Release()).
  [[nodiscard]] bool Admit() QBS_EXCLUDES(mu_);

  /// Returns the slot taken by a successful Admit().
  void Release() QBS_EXCLUDES(mu_);

  /// Requests shed so far.
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

  /// Currently admitted requests.
  size_t inflight() const QBS_EXCLUDES(mu_);

 private:
  AdmissionOptions options_;
  mutable Mutex mu_;
  CondVar slot_freed_;
  size_t inflight_ QBS_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> shed_{0};
};

struct BrokerServerOptions {
  /// Bind address. The default serves loopback only; use "0.0.0.0" to
  /// accept remote peers.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads == maximum concurrently *executing* requests. Open
  /// connections are unbounded — the event loop holds them without a
  /// thread each.
  size_t num_workers = 4;
  /// Inbound frames larger than this are rejected and the connection
  /// dropped.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Highest protocol version this server speaks (clamped to
  /// [1, kWireProtocolVersion]). A v2-pinned broker still answers ping
  /// and server_info — useful only as a compatibility-test seam; a real
  /// broker wants v3 for the Select RPC itself.
  uint32_t max_protocol_version = kWireProtocolVersion;
  /// Embedded admin HTTP endpoint (/metrics, /statusz, /tracez): the
  /// port to bind, 0 for an ephemeral one, negative (default) for none.
  int32_t admin_port = -1;
  /// Bind address of the admin endpoint.
  std::string admin_host = "127.0.0.1";
  /// Per-connection write-queue high watermark: a peer that stops
  /// reading its responses is paused (backpressure) above this.
  size_t max_write_queue_bytes = 4u << 20;
  /// Complete frames one connection may queue for the worker pool
  /// before its reads pause.
  size_t max_pipelined_requests = 64;
  /// Drop connections idle this long (no bytes, no request in flight).
  /// 0 (default) keeps idle connections forever. A broker fronting
  /// millions of intermittent clients wants this on.
  uint64_t idle_timeout_us = 0;
  /// Name advertised in server_info.
  std::string name = "qbs-broker";
  /// Overload policy for Select requests.
  AdmissionOptions admission;
  /// Test seam: when set, runs inside each admitted Select while the
  /// admission slot is held — lets tests pin requests in-flight and
  /// observe shedding deterministically.
  std::function<void()> select_hook;
  /// When set, the v5 snapshot_fetch RPC serves the image this returns
  /// (typically SnapshotProvider::Get on the broker's registry). Unset
  /// (default) answers snapshot_fetch with Unimplemented.
  std::function<Result<SnapshotImage>()> snapshot_source;
  /// Largest snapshot_fetch chunk the server will return in one
  /// response; client requests are clamped to this.
  uint64_t max_snapshot_chunk_bytes = 4u << 20;
};

/// An event-loop TCP server for one SelectionBroker. Thread-safe. The
/// broker must outlive the server. TextDatabase methods (run_query,
/// fetch_document, ...) are answered with Unimplemented — this server
/// routes queries to databases, it does not serve one.
class BrokerServer : public FrameServer {
 public:
  BrokerServer(const SelectionBroker* broker, BrokerServerOptions options);
  /// Stops the server (Stop()) if still running.
  ~BrokerServer() override;

  /// Select requests shed by admission control so far.
  uint64_t shed() const { return admission_.shed(); }

 protected:
  WireResponse Handle(const WireRequest& request) override;

 private:
  const SelectionBroker* broker_;
  std::string name_;
  std::function<void()> select_hook_;
  std::function<Result<SnapshotImage>()> snapshot_source_;
  uint64_t max_snapshot_chunk_bytes_;
  AdmissionController admission_;
};

}  // namespace qbs

#endif  // QBS_BROKER_BROKER_SERVER_H_

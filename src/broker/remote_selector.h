// RemoteSelector: the client half of the Select RPC — a selection
// front-end living in another process, reached over the qbs wire
// protocol with the same pooled, deadline-bounded, retrying transport
// RemoteTextDatabase uses (net/wire_client.h).
//
// A shed Select comes back kUnavailable, which Status::IsTransient
// classifies as retryable — so the WireClient's backoff-with-jitter
// machinery is also the client half of the broker's overload policy.
#ifndef QBS_BROKER_REMOTE_SELECTOR_H_
#define QBS_BROKER_REMOTE_SELECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "broker/selection_broker.h"
#include "net/wire.h"
#include "net/wire_client.h"
#include "util/status.h"

namespace qbs {

/// A SelectionBroker served over the wire. Thread-safe: concurrent
/// calls share the connection pool and take separate connections.
class RemoteSelector {
 public:
  explicit RemoteSelector(WireClientOptions options);

  /// Negotiates the protocol version (stepping down against older
  /// peers) and learns the broker's name. Optional — Select negotiates
  /// on demand — but calling it up front turns "wrong port" into an
  /// immediate, attributable error.
  Status Connect();

  /// The broker's self-reported name once known; "broker:host:port"
  /// before that.
  std::string name() const;

  /// Ranks the broker's databases for a free-text query. Fails with
  /// FailedPrecondition when the server negotiated a protocol older
  /// than v3 (e.g. a DbServer or a pre-broker build) — the Select RPC
  /// does not exist there. Against a v5 peer the request is stamped v5,
  /// so a federation front-end's partial/down_shards/shard_epochs
  /// fields come through; older peers still see the v3 byte layout.
  Result<SelectionResult> Select(const std::string& query,
                                 const std::string& ranker_name,
                                 size_t top_k = 0);

  /// The snapshot epoch reported by the most recent successful Select
  /// (a federation front-end reports its largest shard epoch); 0 before
  /// any Select succeeds. Lets callers watch the server republish
  /// without re-plumbing every call site's SelectionResult.
  uint64_t last_epoch() const {
    return last_epoch_.load(std::memory_order_relaxed);
  }

  /// The broker's live serving state.
  Result<BrokerStatusInfo> BrokerStatus();

  /// The protocol version negotiated with the server; 0 before the
  /// first Connect() (explicit or on-demand) completes.
  uint32_t negotiated_version() const { return client_.negotiated_version(); }

  /// Per-instance counters mirroring the qbs_net_client_* metrics.
  uint64_t rpcs() const { return client_.rpcs(); }
  uint64_t retries() const { return client_.retries(); }

 private:
  /// Fails unless the negotiated version carries the broker RPCs.
  Status RequireBrokerProtocol();

  WireClient client_;
  std::atomic<uint64_t> last_epoch_{0};
};

}  // namespace qbs

#endif  // QBS_BROKER_REMOTE_SELECTOR_H_

// RemoteSelector: the client half of the Select RPC — a selection
// front-end living in another process, reached over the qbs wire
// protocol with the same pooled, deadline-bounded, retrying transport
// RemoteTextDatabase uses (net/wire_client.h).
//
// A shed Select comes back kUnavailable, which Status::IsTransient
// classifies as retryable — so the WireClient's backoff-with-jitter
// machinery is also the client half of the broker's overload policy.
#ifndef QBS_BROKER_REMOTE_SELECTOR_H_
#define QBS_BROKER_REMOTE_SELECTOR_H_

#include <cstdint>
#include <string>

#include "broker/selection_broker.h"
#include "net/wire.h"
#include "net/wire_client.h"
#include "util/status.h"

namespace qbs {

/// A SelectionBroker served over the wire. Thread-safe: concurrent
/// calls share the connection pool and take separate connections.
class RemoteSelector {
 public:
  explicit RemoteSelector(WireClientOptions options);

  /// Negotiates the protocol version (stepping down against older
  /// peers) and learns the broker's name. Optional — Select negotiates
  /// on demand — but calling it up front turns "wrong port" into an
  /// immediate, attributable error.
  Status Connect();

  /// The broker's self-reported name once known; "broker:host:port"
  /// before that.
  std::string name() const;

  /// Ranks the broker's databases for a free-text query. Fails with
  /// FailedPrecondition when the server negotiated a protocol older
  /// than v3 (e.g. a DbServer or a pre-broker build) — the Select RPC
  /// does not exist there.
  Result<SelectionResult> Select(const std::string& query,
                                 const std::string& ranker_name,
                                 size_t top_k = 0);

  /// The broker's live serving state.
  Result<BrokerStatusInfo> BrokerStatus();

  /// The protocol version negotiated with the server; 0 before the
  /// first Connect() (explicit or on-demand) completes.
  uint32_t negotiated_version() const { return client_.negotiated_version(); }

  /// Per-instance counters mirroring the qbs_net_client_* metrics.
  uint64_t rpcs() const { return client_.rpcs(); }
  uint64_t retries() const { return client_.retries(); }

 private:
  /// Fails unless the negotiated version carries the broker RPCs.
  Status RequireBrokerProtocol();

  WireClient client_;
};

}  // namespace qbs

#endif  // QBS_BROKER_REMOTE_SELECTOR_H_

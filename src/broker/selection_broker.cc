#include "broker/selection_broker.h"

#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/analyzer.h"
#include "util/logging.h"

namespace qbs {

namespace {

struct BrokerMetrics {
  Counter* selects;
  Histogram* select_latency_us;

  static const BrokerMetrics& Get() {
    static const BrokerMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      BrokerMetrics m;
      m.selects = r.GetCounter("qbs_broker_selects_total",
                               "Selection queries answered by the broker "
                               "(cache hits included)");
      m.select_latency_us = r.GetHistogram(
          "qbs_broker_select_latency_us", Histogram::LatencyBoundsUs(),
          "Broker-side Select latency: snapshot read, analysis, cache "
          "lookup, and ranking");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

SelectionBroker::SelectionBroker(const ModelRegistry* registry,
                                 BrokerOptions options)
    : registry_(registry), cache_(options.cache) {
  QBS_CHECK(registry_ != nullptr);
}

Result<SelectionResult> SelectionBroker::Select(
    const std::string& query, const std::string& ranker_name,
    size_t top_k) const {
  const BrokerMetrics& metrics = BrokerMetrics::Get();
  QBS_TRACE_SPAN("broker.select", ranker_name, CurrentRequestId());
  ScopedTimerUs timer(metrics.select_latency_us);

  // One lock-free read pins this request's entire world: collection,
  // rankers, and epoch stay coherent even if a refresh publishes midway.
  std::shared_ptr<const SelectionSnapshot> snapshot = registry_->Snapshot();
  const DatabaseRanker* ranker = snapshot->ranker(ranker_name);
  if (ranker == nullptr) {
    return Status::InvalidArgument("unknown ranker '" + ranker_name +
                                   "'; valid rankers: " + KnownRankerList());
  }
  if (snapshot->collection().size() == 0) {
    return Status::FailedPrecondition(
        "no language models published; refresh or load models first");
  }
  metrics.selects->Increment();
  selects_.fetch_add(1, std::memory_order_relaxed);

  // The same analysis chain the in-process service Select uses, so a
  // remote ranking is byte-identical to a local one.
  static const Analyzer analyzer = Analyzer::InqueryLike();
  std::vector<std::string> terms = analyzer.Analyze(query);

  const std::string key = ResultCache::Key(snapshot->epoch(), ranker_name,
                                           terms);
  ResultCache::Ranking ranking = cache_.Get(key);
  if (ranking == nullptr) {
    ranking = std::make_shared<const std::vector<DatabaseScore>>(
        ranker->Rank(terms));
    cache_.Put(key, ranking);
  }

  SelectionResult result;
  result.epoch = snapshot->epoch();
  result.scores = *ranking;
  if (top_k > 0 && result.scores.size() > top_k) {
    result.scores.resize(top_k);
  }
  return result;
}

Result<CollectionStatsResult> SelectionBroker::CollectStats(
    const std::string& query) const {
  QBS_TRACE_SPAN("broker.collect_stats", query, CurrentRequestId());
  std::shared_ptr<const SelectionSnapshot> snapshot = registry_->Snapshot();
  static const Analyzer analyzer = Analyzer::InqueryLike();
  std::vector<std::string> terms = analyzer.Analyze(query);

  CollectionStatsResult result;
  result.epoch = snapshot->epoch();
  result.stats = ComputeCollectionStats(snapshot->collection(), terms);
  return result;
}

Result<SelectionResult> SelectionBroker::SelectWith(
    const std::string& query, const std::string& ranker_name, size_t top_k,
    uint64_t pinned_epoch, const CollectionStats& stats) const {
  const BrokerMetrics& metrics = BrokerMetrics::Get();
  QBS_TRACE_SPAN("broker.select", ranker_name, CurrentRequestId());
  ScopedTimerUs timer(metrics.select_latency_us);

  std::shared_ptr<const SelectionSnapshot> snapshot = registry_->Snapshot();
  if (snapshot->epoch() != pinned_epoch) {
    return Status::FailedPrecondition(
        "snapshot epoch changed: stats were gathered at epoch " +
        std::to_string(pinned_epoch) + ", now serving epoch " +
        std::to_string(snapshot->epoch()) + "; restart the query");
  }
  const DatabaseRanker* ranker = snapshot->ranker(ranker_name);
  if (ranker == nullptr) {
    return Status::InvalidArgument("unknown ranker '" + ranker_name +
                                   "'; valid rankers: " + KnownRankerList());
  }
  metrics.selects->Increment();
  selects_.fetch_add(1, std::memory_order_relaxed);

  static const Analyzer analyzer = Analyzer::InqueryLike();
  std::vector<std::string> terms = analyzer.Analyze(query);
  if (stats.terms.size() != terms.size()) {
    return Status::InvalidArgument(
        "collection stats cover " + std::to_string(stats.terms.size()) +
        " terms but the query analyzes to " + std::to_string(terms.size()) +
        "; both sides must analyze identically");
  }

  SelectionResult result;
  result.epoch = snapshot->epoch();
  result.scores = ranker->RankWith(terms, stats);
  if (top_k > 0 && result.scores.size() > top_k) {
    result.scores.resize(top_k);
  }
  return result;
}

BrokerStatusInfo SelectionBroker::BrokerStatus() const {
  BrokerStatusInfo info;
  std::shared_ptr<const SelectionSnapshot> snapshot = registry_->Snapshot();
  info.epoch = snapshot->epoch();
  info.databases = snapshot->collection().size();
  info.selects_total = selects_.load(std::memory_order_relaxed);
  ResultCache::Stats stats = cache_.stats();
  info.cache_hits = stats.hits;
  info.cache_misses = stats.misses;
  info.cache_evictions = stats.evictions;
  return info;
}

}  // namespace qbs

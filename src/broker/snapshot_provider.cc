#include "broker/snapshot_provider.h"

#include <utility>

#include "mstore/model_store_writer.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace qbs {

namespace {

struct ProviderMetrics {
  Counter* packs;

  static const ProviderMetrics& Get() {
    static const ProviderMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      ProviderMetrics m;
      m.packs = r.GetCounter(
          "qbs_broker_snapshot_packs_total",
          "Snapshot epochs packed into a model-store image for followers "
          "(cache misses; fetches of a cached epoch are free)");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

SnapshotProvider::SnapshotProvider(const ModelRegistry* registry)
    : registry_(registry) {
  QBS_CHECK(registry_ != nullptr);
}

Result<SnapshotImage> SnapshotProvider::Get() const {
  std::shared_ptr<const SelectionSnapshot> snapshot = registry_->Snapshot();
  if (snapshot->epoch() == 0) {
    return Status::FailedPrecondition(
        "no snapshot published yet (epoch 0); refresh models first");
  }
  {
    MutexLock lock(mu_);
    if (cached_.epoch == snapshot->epoch() && cached_.bytes != nullptr) {
      return cached_;
    }
  }
  // Pack outside the lock: serialization walks every model and may take
  // a while, and concurrent fetchers of an already-cached epoch must not
  // stall behind it. Two threads racing on a fresh epoch both pack; the
  // images are identical, so last-writer-wins is harmless.
  ModelStoreWriter writer;
  const DatabaseCollection& collection = snapshot->collection();
  for (size_t i = 0; i < collection.size(); ++i) {
    QBS_RETURN_IF_ERROR(writer.Add(collection.name(i), collection.model(i)));
  }
  QBS_ASSIGN_OR_RETURN(std::string image, writer.Serialize());
  ProviderMetrics::Get().packs->Increment();

  SnapshotImage result;
  result.epoch = snapshot->epoch();
  result.bytes = std::make_shared<const std::string>(std::move(image));
  MutexLock lock(mu_);
  cached_ = result;
  return result;
}

}  // namespace qbs

// SnapshotProvider: serves a broker's current selection snapshot as a
// packed model-store image (src/mstore format), so a follower can
// SnapshotFetch it over the wire, drop it on disk, and serve reads via
// MappedModelStore while the leader keeps re-sampling.
//
// The image is packed once per epoch and cached behind a shared_ptr:
// concurrent SnapshotFetch chunks of the same epoch share one immutable
// byte string, and a republish simply repacks on the next request.
#ifndef QBS_BROKER_SNAPSHOT_PROVIDER_H_
#define QBS_BROKER_SNAPSHOT_PROVIDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "broker/model_registry.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace qbs {

/// One epoch's packed model-store image. `bytes` is immutable and
/// shared: chunk handlers hold it across the response write without
/// copying the image per chunk.
struct SnapshotImage {
  uint64_t epoch = 0;
  std::shared_ptr<const std::string> bytes;
};

/// Packs the registry's current snapshot into the binary model-store
/// format on demand, caching the image by epoch. Thread-safe. The
/// registry must outlive the provider.
class SnapshotProvider {
 public:
  explicit SnapshotProvider(const ModelRegistry* registry);

  SnapshotProvider(const SnapshotProvider&) = delete;
  SnapshotProvider& operator=(const SnapshotProvider&) = delete;

  /// The packed image of the current snapshot. FailedPrecondition while
  /// nothing has been published (epoch 0) — a follower bootstrapping
  /// from an empty leader should retry, not restore an empty store.
  Result<SnapshotImage> Get() const QBS_EXCLUDES(mu_);

 private:
  const ModelRegistry* registry_;
  mutable Mutex mu_;
  mutable SnapshotImage cached_ QBS_GUARDED_BY(mu_);
};

}  // namespace qbs

#endif  // QBS_BROKER_SNAPSHOT_PROVIDER_H_

#include "broker/model_registry.h"

#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace qbs {

namespace {

Gauge* EpochGauge() {
  static Gauge* const gauge = MetricRegistry::Default().GetGauge(
      "qbs_broker_snapshot_epoch",
      "Epoch of the most recently published selection snapshot");
  return gauge;
}

}  // namespace

const DatabaseRanker* SelectionSnapshot::ranker(std::string_view name) const {
  const std::vector<std::string>& names = KnownRankerNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return rankers_[i].get();
  }
  return nullptr;
}

ModelRegistry::ModelRegistry() {
  snapshot_.store(Build(0, DatabaseCollection{}), std::memory_order_release);
}

std::shared_ptr<const SelectionSnapshot> ModelRegistry::Build(
    uint64_t epoch, DatabaseCollection collection) {
  // Not make_shared: the constructor is private, and a plain `new`
  // keeps the friend declaration sufficient.
  // analyze:allow(rawnew): private ctor; adopted by shared_ptr here
  std::shared_ptr<SelectionSnapshot> snapshot(new SelectionSnapshot());
  snapshot->epoch_ = epoch;
  snapshot->collection_ = std::move(collection);
  // The rankers point at the snapshot's own collection — heap-allocated
  // above, so the address outlives them by construction.
  for (const std::string& name : KnownRankerNames()) {
    std::unique_ptr<DatabaseRanker> ranker =
        MakeRanker(name, &snapshot->collection_);
    QBS_CHECK(ranker != nullptr);
    snapshot->rankers_.push_back(std::move(ranker));
  }
  return snapshot;
}

uint64_t ModelRegistry::Publish(DatabaseCollection collection) {
  MutexLock lock(publish_mu_);
  const uint64_t epoch = next_epoch_++;
  // Built outside any reader's path and swapped in whole: a Select that
  // started a nanosecond ago keeps its old snapshot; the next Snapshot()
  // call sees this one.
  snapshot_.store(Build(epoch, std::move(collection)),
                  std::memory_order_release);
  EpochGauge()->Set(static_cast<double>(epoch));
  return epoch;
}

std::shared_ptr<const SelectionSnapshot> ModelRegistry::Snapshot() const {
  return snapshot_.load(std::memory_order_acquire);
}

}  // namespace qbs

// SelectionBroker: the query-serving front-end over a ModelRegistry.
//
// This is the component the paper's models ultimately exist for — the
// database-selection service's read path. Each Select grabs the current
// immutable snapshot (lock-free), analyzes the query exactly like the
// in-process SamplingService::Select, and answers from the snapshot's
// pre-built ranker, consulting a sharded LRU result cache first. All
// state it touches is immutable or internally synchronized, so one
// broker serves any number of concurrent callers while RefreshAll
// publishes new snapshots underneath it.
#ifndef QBS_BROKER_SELECTION_BROKER_H_
#define QBS_BROKER_SELECTION_BROKER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "broker/model_registry.h"
#include "broker/result_cache.h"
#include "net/wire.h"
#include "selection/db_selection.h"
#include "util/status.h"

namespace qbs {

struct BrokerOptions {
  /// Result-cache shape; the cache is always on (keys embed the epoch,
  /// so it can never serve stale rankings).
  ResultCacheOptions cache;
};

/// One answered selection.
struct SelectionResult {
  /// The snapshot generation the ranking was computed from. For a
  /// federated selection this is the largest per-shard epoch; the full
  /// vector is in shard_epochs.
  uint64_t epoch = 0;
  /// Databases best-first; trimmed to the requested top-k.
  std::vector<DatabaseScore> scores;
  /// Federated selections only: true when one or more shards were down
  /// and the ranking covers the live subset; the unreachable shard
  /// addresses; and the per-shard snapshot epochs the ranking was
  /// computed from. All empty/false for a single-broker selection.
  bool partial = false;
  std::vector<std::string> down_shards;
  std::vector<ShardEpoch> shard_epochs;
};

/// A query's collection-global statistics at one snapshot epoch — the
/// scatter-gather phase-1 answer.
struct CollectionStatsResult {
  uint64_t epoch = 0;
  CollectionStats stats;
};

/// Thread-safe selection front-end. The registry must outlive the
/// broker.
class SelectionBroker {
 public:
  explicit SelectionBroker(const ModelRegistry* registry,
                           BrokerOptions options = {});

  SelectionBroker(const SelectionBroker&) = delete;
  SelectionBroker& operator=(const SelectionBroker&) = delete;

  /// Ranks the registered databases for a free-text query using
  /// `ranker_name` ("cori", "bgloss", "vgloss", "kl"). `top_k` trims
  /// the ranking (0 = every database). Fails with InvalidArgument for
  /// an unknown ranker (the message lists the valid set) and
  /// FailedPrecondition while the registry has no published models.
  Result<SelectionResult> Select(const std::string& query,
                                 const std::string& ranker_name,
                                 size_t top_k = 0) const;

  /// Scatter-gather phase 1: analyzes `query` and returns the
  /// collection-global statistics (per-term cf / union ctf plus the
  /// collection-wide counters) at the current snapshot epoch. Unlike
  /// Select, an empty collection is not an error — a shard that has
  /// published nothing contributes zero databases to the federation.
  Result<CollectionStatsResult> CollectStats(const std::string& query) const;

  /// Scatter-gather phase 2: ranks this broker's databases using the
  /// supplied federation-wide `stats` instead of locally computed ones.
  /// `pinned_epoch` must equal the current snapshot epoch exactly
  /// (including epoch 0 for the empty snapshot); any difference fails
  /// with FailedPrecondition so the caller restarts the query instead
  /// of mixing epochs. `stats.terms` must align with the analyzed query
  /// (InvalidArgument otherwise). Bypasses the result cache: the
  /// ranking depends on caller-supplied stats, not only on (epoch,
  /// ranker, terms).
  Result<SelectionResult> SelectWith(const std::string& query,
                                     const std::string& ranker_name,
                                     size_t top_k, uint64_t pinned_epoch,
                                     const CollectionStats& stats) const;

  /// Live serving state: epoch, database count, select and cache
  /// counters. shed_total is always 0 here — admission control lives in
  /// BrokerServer, which overlays its own count.
  BrokerStatusInfo BrokerStatus() const;

 private:
  const ModelRegistry* registry_;
  mutable ResultCache cache_;
  mutable std::atomic<uint64_t> selects_{0};
};

}  // namespace qbs

#endif  // QBS_BROKER_SELECTION_BROKER_H_

#include "broker/broker_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace qbs {

namespace {

struct ServerMetrics {
  Counter* shed;
  Gauge* inflight;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      ServerMetrics m;
      m.shed = r.GetCounter(
          "qbs_broker_shed_total",
          "Select requests shed with kUnavailable by admission control");
      m.inflight = r.GetGauge("qbs_broker_inflight_selects",
                              "Select requests currently being served");
      return m;
    }();
    return metrics;
  }
};

FrameServerOptions ToFrameOptions(const BrokerServerOptions& options) {
  FrameServerOptions frame;
  frame.host = options.host;
  frame.port = options.port;
  frame.num_workers = options.num_workers;
  frame.max_frame_bytes = options.max_frame_bytes;
  frame.max_protocol_version = options.max_protocol_version;
  frame.admin_port = options.admin_port;
  frame.admin_host = options.admin_host;
  frame.max_write_queue_bytes = options.max_write_queue_bytes;
  frame.max_pipelined_requests = options.max_pipelined_requests;
  frame.idle_timeout_us = options.idle_timeout_us;
  return frame;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

bool AdmissionController::Admit() {
  if (options_.max_inflight == 0) return true;
  MutexLock lock(mu_);
  if (inflight_ < options_.max_inflight) {
    ++inflight_;
    return true;
  }
  // Full: wait for a slot, but only as long as the queue deadline — a
  // request that would wait longer is better answered kUnavailable now
  // than served stale later.
  const bool admitted = slot_freed_.WaitFor(
      mu_, options_.queue_timeout_us,
      [this]() QBS_REQUIRES(mu_) { return inflight_ < options_.max_inflight; });
  if (!admitted) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ++inflight_;
  return true;
}

void AdmissionController::Release() {
  if (options_.max_inflight == 0) return;
  {
    MutexLock lock(mu_);
    --inflight_;
  }
  slot_freed_.NotifyOne();
}

size_t AdmissionController::inflight() const {
  MutexLock lock(mu_);
  return inflight_;
}

BrokerServer::BrokerServer(const SelectionBroker* broker,
                           BrokerServerOptions options)
    : FrameServer("BrokerServer '" + options.name + "'",
                  ToFrameOptions(options)),
      broker_(broker),
      name_(options.name),
      select_hook_(std::move(options.select_hook)),
      admission_(options.admission) {
  AddStatusProvider("broker_epoch", [this] {
    return std::to_string(broker_->BrokerStatus().epoch);
  });
  AddStatusProvider("inflight_selects", [this] {
    return std::to_string(admission_.inflight());
  });
  AddStatusProvider("shed_selects",
                    [this] { return std::to_string(admission_.shed()); });
}

BrokerServer::~BrokerServer() { Stop(); }

WireResponse BrokerServer::Handle(const WireRequest& request) {
  WireResponse response;
  response.request_id = request.request_id;
  response.method = request.method;
  response.protocol_version = request.protocol_version;
  switch (request.method) {
    case WireMethod::kPing:
      break;
    case WireMethod::kServerInfo:
      response.server_name = name_;
      response.server_protocol_version =
          std::min(spoken_version(), request.protocol_version);
      break;
    case WireMethod::kSelect: {
      if (!admission_.Admit()) {
        ServerMetrics::Get().shed->Increment();
        response.status = Status::Unavailable(
            "broker overloaded: " +
            std::to_string(admission_.inflight()) +
            " selects in flight; retry with backoff");
        break;
      }
      {
        GaugeGuard inflight_guard(ServerMetrics::Get().inflight);
        if (select_hook_) select_hook_();
        auto selection =
            broker_->Select(request.query, request.ranker,
                            static_cast<size_t>(request.max_results));
        if (selection.ok()) {
          response.epoch = selection->epoch;
          response.scores = std::move(selection->scores);
        } else {
          response.status = selection.status();
        }
      }
      admission_.Release();
      break;
    }
    case WireMethod::kBrokerStatus:
      response.broker = broker_->BrokerStatus();
      response.broker.shed_total = admission_.shed();
      break;
    case WireMethod::kRunQuery:
    case WireMethod::kFetchDocument:
    case WireMethod::kQueryAndFetch:
    case WireMethod::kFetchBatch:
      response.status = Status::Unimplemented(
          std::string(WireMethodName(request.method)) +
          ": this server is a selection broker, not a TextDatabase");
      break;
  }
  return response;
}

}  // namespace qbs

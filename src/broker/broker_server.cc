#include "broker/broker_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace qbs {

namespace {

struct ServerMetrics {
  Counter* shed;
  Gauge* inflight;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      ServerMetrics m;
      m.shed = r.GetCounter(
          "qbs_broker_shed_total",
          "Select requests shed with kUnavailable by admission control");
      m.inflight = r.GetGauge("qbs_broker_inflight_selects",
                              "Select requests currently being served");
      return m;
    }();
    return metrics;
  }
};

FrameServerOptions ToFrameOptions(const BrokerServerOptions& options) {
  FrameServerOptions frame;
  frame.host = options.host;
  frame.port = options.port;
  frame.num_workers = options.num_workers;
  frame.max_frame_bytes = options.max_frame_bytes;
  frame.max_protocol_version = options.max_protocol_version;
  frame.admin_port = options.admin_port;
  frame.admin_host = options.admin_host;
  frame.max_write_queue_bytes = options.max_write_queue_bytes;
  frame.max_pipelined_requests = options.max_pipelined_requests;
  frame.idle_timeout_us = options.idle_timeout_us;
  return frame;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

bool AdmissionController::Admit() {
  if (options_.max_inflight == 0) return true;
  MutexLock lock(mu_);
  if (inflight_ < options_.max_inflight) {
    ++inflight_;
    return true;
  }
  // Full: wait for a slot, but only as long as the queue deadline — a
  // request that would wait longer is better answered kUnavailable now
  // than served stale later.
  const bool admitted = slot_freed_.WaitFor(
      mu_, options_.queue_timeout_us,
      [this]() QBS_REQUIRES(mu_) { return inflight_ < options_.max_inflight; });
  if (!admitted) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ++inflight_;
  return true;
}

void AdmissionController::Release() {
  if (options_.max_inflight == 0) return;
  {
    MutexLock lock(mu_);
    --inflight_;
  }
  slot_freed_.NotifyOne();
}

size_t AdmissionController::inflight() const {
  MutexLock lock(mu_);
  return inflight_;
}

BrokerServer::BrokerServer(const SelectionBroker* broker,
                           BrokerServerOptions options)
    : FrameServer("BrokerServer '" + options.name + "'",
                  ToFrameOptions(options)),
      broker_(broker),
      name_(options.name),
      select_hook_(std::move(options.select_hook)),
      snapshot_source_(std::move(options.snapshot_source)),
      max_snapshot_chunk_bytes_(std::max<uint64_t>(
          uint64_t{1}, options.max_snapshot_chunk_bytes)),
      admission_(options.admission) {
  AddStatusProvider("broker_epoch", [this] {
    return std::to_string(broker_->BrokerStatus().epoch);
  });
  AddStatusProvider("inflight_selects", [this] {
    return std::to_string(admission_.inflight());
  });
  AddStatusProvider("shed_selects",
                    [this] { return std::to_string(admission_.shed()); });
}

BrokerServer::~BrokerServer() { Stop(); }

WireResponse BrokerServer::Handle(const WireRequest& request) {
  WireResponse response;
  response.request_id = request.request_id;
  response.method = request.method;
  response.protocol_version = request.protocol_version;
  switch (request.method) {
    case WireMethod::kPing:
      break;
    case WireMethod::kServerInfo:
      response.server_name = name_;
      response.server_protocol_version =
          std::min(spoken_version(), request.protocol_version);
      break;
    case WireMethod::kSelect: {
      if (!admission_.Admit()) {
        ServerMetrics::Get().shed->Increment();
        response.status = Status::Unavailable(
            "broker overloaded: " +
            std::to_string(admission_.inflight()) +
            " selects in flight; retry with backoff");
        break;
      }
      {
        GaugeGuard inflight_guard(ServerMetrics::Get().inflight);
        if (select_hook_) select_hook_();
        if (request.stats_only) {
          // Scatter-gather phase 1: no ranking, just this shard's
          // collection-global statistics pinned to its current epoch.
          auto stats = broker_->CollectStats(request.query);
          if (stats.ok()) {
            response.epoch = stats->epoch;
            response.has_stats = true;
            response.stats = std::move(stats->stats);
          } else {
            response.status = stats.status();
          }
        } else if (request.has_stats) {
          // Scatter-gather phase 2: rank with the federation-wide stats
          // the caller aggregated, refusing if the snapshot moved.
          auto selection = broker_->SelectWith(
              request.query, request.ranker,
              static_cast<size_t>(request.max_results), request.pinned_epoch,
              request.stats);
          if (selection.ok()) {
            response.epoch = selection->epoch;
            response.scores = std::move(selection->scores);
          } else {
            response.status = selection.status();
          }
        } else {
          auto selection =
              broker_->Select(request.query, request.ranker,
                              static_cast<size_t>(request.max_results));
          if (selection.ok()) {
            response.epoch = selection->epoch;
            response.scores = std::move(selection->scores);
          } else {
            response.status = selection.status();
          }
        }
      }
      admission_.Release();
      break;
    }
    case WireMethod::kSnapshotFetch: {
      if (!snapshot_source_) {
        response.status = Status::Unimplemented(
            "snapshot_fetch: snapshot serving not enabled on this broker");
        break;
      }
      Result<SnapshotImage> image = snapshot_source_();
      if (!image.ok()) {
        response.status = image.status();
        break;
      }
      const std::string& bytes = *image->bytes;
      // A non-zero requested epoch pins the stream: the image must still
      // be the one the client started fetching, else it restarts rather
      // than splicing two epochs into one file.
      if (request.snapshot_epoch != 0 &&
          request.snapshot_epoch != image->epoch) {
        response.status = Status::FailedPrecondition(
            "snapshot epoch changed: fetch started at epoch " +
            std::to_string(request.snapshot_epoch) + ", now serving epoch " +
            std::to_string(image->epoch) + "; restart the fetch");
        break;
      }
      if (request.snapshot_offset > bytes.size()) {
        response.status = Status::OutOfRange(
            "snapshot offset " + std::to_string(request.snapshot_offset) +
            " past image end " + std::to_string(bytes.size()));
        break;
      }
      uint64_t chunk = request.snapshot_chunk_bytes == 0
                           ? max_snapshot_chunk_bytes_
                           : std::min(request.snapshot_chunk_bytes,
                                      max_snapshot_chunk_bytes_);
      chunk = std::min<uint64_t>(chunk,
                                 bytes.size() - request.snapshot_offset);
      response.snapshot_epoch = image->epoch;
      response.snapshot_total_bytes = bytes.size();
      response.snapshot_offset = request.snapshot_offset;
      response.snapshot_data = bytes.substr(
          static_cast<size_t>(request.snapshot_offset),
          static_cast<size_t>(chunk));
      break;
    }
    case WireMethod::kShardInfo:
      response.status = Status::Unimplemented(
          "shard_info: this server is a single broker, not a federation "
          "front-end");
      break;
    case WireMethod::kBrokerStatus:
      response.broker = broker_->BrokerStatus();
      response.broker.shed_total = admission_.shed();
      break;
    case WireMethod::kRunQuery:
    case WireMethod::kFetchDocument:
    case WireMethod::kQueryAndFetch:
    case WireMethod::kFetchBatch:
      response.status = Status::Unimplemented(
          std::string(WireMethodName(request.method)) +
          ": this server is a selection broker, not a TextDatabase");
      break;
  }
  return response;
}

}  // namespace qbs

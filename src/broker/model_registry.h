// ModelRegistry: lock-free publication of selection state.
//
// The paper's models exist to be *served*: a selection front-end answers
// a stream of Select queries while background sampling refreshes the
// models those answers are computed from. The registry decouples the two
// with immutable snapshots — a publisher builds a complete
// SelectionSnapshot (collection + pre-constructed rankers + epoch) off
// to the side and swaps it in atomically; readers grab a shared_ptr and
// compute against a state that can never change underneath them. No
// reader ever blocks on a refresh, and no refresh ever waits for
// readers to drain: old snapshots die when their last in-flight query
// releases them.
#ifndef QBS_BROKER_MODEL_REGISTRY_H_
#define QBS_BROKER_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "selection/db_selection.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace qbs {

/// One immutable generation of selection state: a database collection
/// and one pre-built ranker per algorithm, all constructed once at
/// publish time. Rank() on the rankers is const and the collection is
/// frozen, so a snapshot serves any number of concurrent readers.
class SelectionSnapshot {
 public:
  /// Monotonically increasing publish generation; 0 is the registry's
  /// built-in empty snapshot.
  uint64_t epoch() const { return epoch_; }

  /// The collection this generation ranks over.
  const DatabaseCollection& collection() const { return collection_; }

  /// The pre-built ranker for `name` ("cori", "bgloss", "vgloss",
  /// "kl"); nullptr for unknown names.
  const DatabaseRanker* ranker(std::string_view name) const;

 private:
  friend class ModelRegistry;
  SelectionSnapshot() = default;

  uint64_t epoch_ = 0;
  DatabaseCollection collection_;
  /// One entry per KnownRankerNames() element, same order. The rankers
  /// point at collection_, whose address is stable: the snapshot is
  /// heap-allocated and never moves.
  std::vector<std::unique_ptr<DatabaseRanker>> rankers_;
};

/// Holds the current SelectionSnapshot behind an atomically swapped
/// shared_ptr. Snapshot() is a lock-free read from any thread; Publish()
/// serializes publishers (for epoch monotonicity) but never blocks
/// readers. The registry always holds a snapshot — before the first
/// Publish() it is the empty epoch-0 snapshot.
class ModelRegistry {
 public:
  ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Builds a new snapshot (rankers included) from `collection` and
  /// swaps it in. Returns the new snapshot's epoch. Thread-safe;
  /// concurrent publishers are serialized and epochs stay monotonic.
  uint64_t Publish(DatabaseCollection collection);

  /// The current snapshot; never null. Lock-free and wait-free against
  /// publishers — the returned snapshot stays valid (and unchanged) for
  /// as long as the caller holds the pointer, even across later
  /// publishes.
  std::shared_ptr<const SelectionSnapshot> Snapshot() const;

 private:
  static std::shared_ptr<const SelectionSnapshot> Build(
      uint64_t epoch, DatabaseCollection collection);

  std::atomic<std::shared_ptr<const SelectionSnapshot>> snapshot_;
  /// Serializes publishers only; readers never touch it.
  Mutex publish_mu_;
  uint64_t next_epoch_ QBS_GUARDED_BY(publish_mu_) = 1;
};

}  // namespace qbs

#endif  // QBS_BROKER_MODEL_REGISTRY_H_

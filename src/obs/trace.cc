#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include <unistd.h>

#include "obs/metrics.h"

namespace qbs {

namespace internal {

// Dense ids keep traces readable; the raw std::thread::id would render as
// an opaque large integer.
uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace internal

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string HexId(uint64_t hi, uint64_t lo) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::string HexId(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

// splitmix64: full-period mix over a strided counter. Seeded from the pid
// and the wall clock so ids from separately started processes do not
// collide when their trace dumps are merged into one timeline.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t NewId() {
  static std::atomic<uint64_t> counter{[] {
    uint64_t seed = static_cast<uint64_t>(::getpid()) << 32;
    seed ^= static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed ^= static_cast<uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count())
            << 17;
    return seed;
  }()};
  uint64_t id = 0;
  while (id == 0) {  // ids of 0 mean "absent" everywhere
    id = Mix64(counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

// The ambient per-thread trace state. `deadline_us` is an absolute
// MonotonicMicros() instant (0 = none); it is converted to a relative
// budget at the propagation boundary so clocks never cross processes.
// `no_trace` distinguishes "no context installed" (spans may start fresh
// root traces) from "a context is installed but unsampled" (spans stay
// silent).
struct ThreadTraceState {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t current_span = 0;
  uint64_t deadline_us = 0;
  uint64_t request_id = 0;
  bool sampled = false;
};

ThreadTraceState& State() {
  thread_local ThreadTraceState state;
  return state;
}

Counter* DroppedSpans() {
  static Counter* counter = MetricRegistry::Default().GetCounter(
      "qbs_trace_spans_dropped_total",
      "Trace spans overwritten (lost) because the recorder ring was full");
  return counter;
}

}  // namespace

uint64_t MonotonicMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

TraceContext CurrentTraceContext() {
  const ThreadTraceState& state = State();
  TraceContext context;
  if ((state.trace_hi | state.trace_lo) == 0) return context;
  context.trace_id_hi = state.trace_hi;
  context.trace_id_lo = state.trace_lo;
  context.parent_span_id = state.current_span;
  context.sampled = state.sampled;
  if (state.deadline_us != 0) {
    uint64_t now = MonotonicMicros();
    // An expired deadline still propagates as a 1us budget: "give up
    // immediately", never "wait forever".
    context.deadline_budget_us =
        state.deadline_us > now ? state.deadline_us - now : 1;
  }
  return context;
}

uint64_t CurrentRequestId() { return State().request_id; }

TraceContextScope::TraceContextScope(const TraceContext& context,
                                     uint64_t request_id) {
  ThreadTraceState& state = State();
  saved_trace_hi_ = state.trace_hi;
  saved_trace_lo_ = state.trace_lo;
  saved_span_ = state.current_span;
  saved_deadline_us_ = state.deadline_us;
  saved_request_id_ = state.request_id;
  saved_sampled_ = state.sampled;
  state.request_id = request_id;
  if (!context.valid()) return;
  state.trace_hi = context.trace_id_hi;
  state.trace_lo = context.trace_id_lo;
  state.current_span = context.parent_span_id;
  state.sampled = context.sampled;
  state.deadline_us = context.deadline_budget_us == 0
                          ? 0
                          : MonotonicMicros() + context.deadline_budget_us;
}

TraceContextScope::~TraceContextScope() {
  ThreadTraceState& state = State();
  state.trace_hi = saved_trace_hi_;
  state.trace_lo = saved_trace_lo_;
  state.current_span = saved_span_;
  state.deadline_us = saved_deadline_us_;
  state.request_id = saved_request_id_;
  state.sampled = saved_sampled_;
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TraceRecorder& TraceRecorder::Global() {
  // analyze:allow(rawnew): deliberate static leak (exit-order safe)
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Record(TraceEvent event) {
  event.tid = internal::CurrentThreadId();
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[total_ % capacity_] = std::move(event);
    DroppedSpans()->Increment();
  }
  ++total_;
}

void TraceRecorder::Record(std::string name, uint64_t start_us,
                           uint64_t duration_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.start_us = start_us;
  event.duration_us = duration_us;
  Record(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) return ring_;
  // Ring is full: slot total_ % capacity_ holds the oldest event.
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  size_t oldest = total_ % capacity_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(oldest + i) % capacity_]);
  }
  return events;
}

size_t TraceRecorder::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

uint64_t TraceRecorder::total_recorded() const {
  MutexLock lock(mu_);
  return total_;
}

uint64_t TraceRecorder::dropped() const {
  MutexLock lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void TraceRecorder::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  total_ = 0;
}

void TraceRecorder::DumpChromeTrace(std::ostream& out,
                                    std::string_view process_name) const {
  std::vector<TraceEvent> events = Events();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  if (!process_name.empty()) {
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        << "\"args\":{\"name\":\"" << JsonEscape(process_name) << "\"}}";
    first = false;
  }
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << JsonEscape(e.name)
        << "\",\"cat\":\"qbs\",\"ph\":\"X\",\"ts\":" << e.start_us
        << ",\"dur\":" << e.duration_us << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.span_id != 0 || (e.trace_id_hi | e.trace_id_lo) != 0) {
      out << ",\"args\":{";
      bool first_arg = true;
      if ((e.trace_id_hi | e.trace_id_lo) != 0) {
        out << "\"trace_id\":\"" << HexId(e.trace_id_hi, e.trace_id_lo)
            << "\"";
        first_arg = false;
      }
      if (e.span_id != 0) {
        if (!first_arg) out << ",";
        out << "\"span_id\":\"" << HexId(e.span_id) << "\"";
        first_arg = false;
      }
      if (e.parent_span_id != 0) {
        if (!first_arg) out << ",";
        out << "\"parent_span_id\":\"" << HexId(e.parent_span_id) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "]}";
}

void TraceSpan::Start(std::string_view name, std::string_view detail,
                      uint64_t request_id) {
  ThreadTraceState& state = State();
  bool in_trace = (state.trace_hi | state.trace_lo) != 0;
  if (in_trace && !state.sampled) return;  // unsampled trace: stay silent
  active_ = true;
  if (!in_trace) {
    // No ambient context: this span roots a fresh trace that lives until
    // it finishes. Spans below it (and RPCs it makes) inherit the ids.
    owns_trace_ = true;
    state.trace_hi = NewId();
    state.trace_lo = NewId();
    state.sampled = true;
  }
  name_ = name;
  if (!detail.empty()) {
    name_ += "/";
    name_ += detail;
  }
  if (request_id != 0) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "#%llu",
                  static_cast<unsigned long long>(request_id));
    name_ += buf;
  }
  trace_hi_ = state.trace_hi;
  trace_lo_ = state.trace_lo;
  span_id_ = NewId();
  parent_span_id_ = state.current_span;
  prev_span_id_ = state.current_span;
  state.current_span = span_id_;
  start_us_ = MonotonicMicros();
}

void TraceSpan::Finish() {
  ThreadTraceState& state = State();
  state.current_span = prev_span_id_;
  if (owns_trace_) {
    state.trace_hi = 0;
    state.trace_lo = 0;
    state.sampled = false;
  }
  // Re-check enabled so a span that straddles disable is simply dropped.
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.start_us = start_us_;
  event.duration_us = MonotonicMicros() - start_us_;
  event.trace_id_hi = trace_hi_;
  event.trace_id_lo = trace_lo_;
  event.span_id = span_id_;
  event.parent_span_id = parent_span_id_;
  recorder.Record(std::move(event));
}

}  // namespace qbs

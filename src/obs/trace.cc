#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <thread>

namespace qbs {

namespace internal {

// Dense ids keep traces readable; the raw std::thread::id would render as
// an opaque large integer.
uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace internal

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

uint64_t MonotonicMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Record(std::string name, uint64_t start_us,
                           uint64_t duration_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.tid = internal::CurrentThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[total_ % capacity_] = std::move(event);
  }
  ++total_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) return ring_;
  // Ring is full: slot total_ % capacity_ holds the oldest event.
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  size_t oldest = total_ % capacity_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(oldest + i) % capacity_]);
  }
  return events;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TraceRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_ = 0;
}

void TraceRecorder::DumpChromeTrace(std::ostream& out) const {
  std::vector<TraceEvent> events = Events();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << JsonEscape(e.name)
        << "\",\"cat\":\"qbs\",\"ph\":\"X\",\"ts\":" << e.start_us
        << ",\"dur\":" << e.duration_us << ",\"pid\":1,\"tid\":" << e.tid
        << "}";
  }
  out << "]}";
}

void TraceSpan::Start(std::string_view name, std::string_view detail) {
  active_ = true;
  name_ = name;
  if (!detail.empty()) {
    name_ += "/";
    name_ += detail;
  }
  start_us_ = MonotonicMicros();
}

void TraceSpan::Finish() {
  // Re-check enabled so a span that straddles disable is simply dropped.
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  recorder.Record(std::move(name_), start_us_,
                  MonotonicMicros() - start_us_);
}

}  // namespace qbs

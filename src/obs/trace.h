// Trace spans: scoped wall-clock timing of named code regions, recorded
// into a fixed-capacity ring buffer and exportable as Chrome trace_event
// JSON (load the file at chrome://tracing or https://ui.perfetto.dev).
//
// Since the system became distributed (RemoteSelector -> BrokerServer ->
// DbServer), spans carry identity: every recorded span has a 64-bit
// span_id, a parent_span_id linking it into a tree, and a 128-bit
// trace_id naming the end-to-end operation it belongs to. A TraceContext
// crosses process boundaries as an optional trailer on wire-protocol
// requests (net/wire.h), so one trace_id follows a Select from the
// client through the broker down into per-database RPCs, and
// tools/trace_merge.py stitches the per-process dumps into one timeline.
//
// Tracing is off by default. The disabled path of QBS_TRACE_SPAN is one
// relaxed atomic load and a branch (sub-nanosecond-to-a-few-ns — see
// bench/micro_obs.cc), so spans can stay in hot paths permanently. When
// enabled, recording takes a short mutex; spans are coarse (per query,
// per database refresh), so contention is negligible.
#ifndef QBS_OBS_TRACE_H_
#define QBS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace qbs {

/// Microseconds on a monotonic clock, measured from process start.
uint64_t MonotonicMicros();

namespace internal {
/// Small dense id (1, 2, ...) for the calling thread, shared between
/// trace events and log records so the two can be correlated.
uint32_t CurrentThreadId();
}  // namespace internal

/// The portable identity of an in-flight distributed operation — what a
/// caller hands to a callee so the callee's spans join the caller's
/// trace. Travels as an optional trailer on wire requests (see
/// docs/PROTOCOL.md); within a process it is ambient, thread-local state
/// installed by TraceContextScope and read by CurrentTraceContext().
struct TraceContext {
  /// 128-bit trace id; all-zero means "no trace" (the struct is absent).
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  /// The caller-side span the callee's spans parent under; 0 = root.
  uint64_t parent_span_id = 0;
  /// Whether the trace is being recorded. An unsampled context still
  /// propagates its ids (so a downstream sampler could join later) but
  /// spans under it are not recorded.
  bool sampled = false;
  /// Remaining wall-clock budget the caller is willing to wait, in
  /// microseconds; 0 = unbounded. Callees cap their own downstream call
  /// deadlines to this, so a deadline set at the front-end bounds the
  /// whole tree of RPCs it fans out into.
  uint64_t deadline_budget_us = 0;

  bool valid() const { return (trace_id_hi | trace_id_lo) != 0; }
};

/// The ambient context of the calling thread: trace ids and sampled bit
/// from the innermost TraceContextScope (or from the root span a client
/// opened), parent_span_id = the innermost active span, and
/// deadline_budget_us = what remains of the installed budget (clamped to
/// >= 1 once expired, so an exhausted budget propagates as "fail fast",
/// not as "unbounded"). Everything zero when no trace is in progress.
TraceContext CurrentTraceContext();

/// The wire request id of the request the calling thread is serving
/// (installed by TraceContextScope); 0 outside a server handler. Lets
/// span details and log lines carry the same join key.
uint64_t CurrentRequestId();

/// Installs `context` (typically decoded from a wire request) as the
/// calling thread's ambient trace context for the current scope, so
/// spans opened inside parent under the remote caller's span and
/// downstream RPCs propagate the same trace. Restores the previous
/// ambient state on destruction. `request_id` is surfaced through
/// CurrentRequestId(). An invalid (all-zero) context installs only the
/// request id — local spans then start their own traces as usual.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& context,
                             uint64_t request_id = 0);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  // Saved thread state, restored verbatim on destruction.
  uint64_t saved_trace_hi_;
  uint64_t saved_trace_lo_;
  uint64_t saved_span_;
  uint64_t saved_deadline_us_;
  uint64_t saved_request_id_;
  bool saved_sampled_;
};

/// One completed span.
struct TraceEvent {
  std::string name;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  /// Stable small integer identifying the recording thread.
  uint32_t tid = 0;
  /// Trace identity: all-zero trace id for spans recorded outside any
  /// trace (e.g. direct Record() calls).
  uint64_t trace_id_hi = 0;
  uint64_t trace_id_lo = 0;
  uint64_t span_id = 0;
  /// The enclosing span (same trace); 0 = a root span.
  uint64_t parent_span_id = 0;
};

/// Fixed-capacity ring buffer of completed spans. When full, the oldest
/// events are overwritten — a trace is a window onto recent activity, not
/// an unbounded log. Overwrites are counted (dropped()) and published as
/// qbs_trace_spans_dropped_total so silent span loss under load is
/// visible.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1 << 16);

  /// The process-wide recorder QBS_TRACE_SPAN records into.
  static TraceRecorder& Global();

  /// Enables/disables recording. Cheap to query (relaxed atomic).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one completed span (call-site: TraceSpan destructor). The
  /// two-argument-short form keeps old callers/tests working; ids
  /// default to zero.
  void Record(TraceEvent event) QBS_EXCLUDES(mu_);
  void Record(std::string name, uint64_t start_us, uint64_t duration_us);

  /// Events currently buffered, oldest first.
  std::vector<TraceEvent> Events() const QBS_EXCLUDES(mu_);

  /// Number of buffered events (<= capacity).
  size_t size() const QBS_EXCLUDES(mu_);
  /// Total events ever recorded, including overwritten ones.
  uint64_t total_recorded() const QBS_EXCLUDES(mu_);
  /// Events overwritten (lost) because the ring was full.
  uint64_t dropped() const QBS_EXCLUDES(mu_);

  /// Discards all buffered events.
  void Clear() QBS_EXCLUDES(mu_);

  /// Writes the buffered events as Chrome trace_event JSON ("X" complete
  /// events; ts/dur in microseconds). Span/trace ids ride along in each
  /// event's "args". A non-empty `process_name` is emitted as process
  /// metadata so merged multi-process timelines stay attributable.
  void DumpChromeTrace(std::ostream& out,
                       std::string_view process_name = {}) const
      QBS_EXCLUDES(mu_);

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ QBS_GUARDED_BY(mu_);
  size_t capacity_;
  // Ring slot of the next write is total_ % capacity_.
  uint64_t total_ QBS_GUARDED_BY(mu_) = 0;
};

/// RAII span: captures the start time on construction (only when the
/// global recorder is enabled) and records name + duration on
/// destruction. The two-argument form appends "/<detail>" to the name
/// for per-entity spans such as `service.refresh/<database>`; the
/// three-argument form additionally appends "#<request_id>" (when
/// nonzero) so spans and log lines join on the same id — the id is only
/// formatted when tracing is enabled, so the disabled path stays free.
///
/// An active span registers as the thread's innermost span: spans opened
/// inside it (same thread) parent under it, and downstream RPCs started
/// inside it carry its span_id as the remote parent. A span opened with
/// no ambient trace starts a new trace (fresh 128-bit trace_id) that
/// ends when it finishes. Under an unsampled ambient context the span
/// records nothing.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) {
    if (TraceRecorder::Global().enabled()) Start(name, {}, 0);
  }
  TraceSpan(std::string_view name, std::string_view detail) {
    if (TraceRecorder::Global().enabled()) Start(name, detail, 0);
  }
  TraceSpan(std::string_view name, std::string_view detail,
            uint64_t request_id) {
    if (TraceRecorder::Global().enabled()) Start(name, detail, request_id);
  }
  ~TraceSpan() {
    if (active_) Finish();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Start(std::string_view name, std::string_view detail,
             uint64_t request_id);
  void Finish();

  bool active_ = false;
  bool owns_trace_ = false;  // root span: started this thread's trace
  std::string name_;
  uint64_t start_us_ = 0;
  uint64_t trace_hi_ = 0;  // captured at Start so Finish records them
  uint64_t trace_lo_ = 0;  // even after a root span clears thread state
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t prev_span_id_ = 0;  // restored as innermost on Finish
};

#define QBS_OBS_CONCAT_INNER_(a, b) a##b
#define QBS_OBS_CONCAT_(a, b) QBS_OBS_CONCAT_INNER_(a, b)

/// Declares a scope-local span. Near-zero cost while tracing is disabled.
///   QBS_TRACE_SPAN("sampler.query");
///   QBS_TRACE_SPAN("service.refresh", db_name);
///   QBS_TRACE_SPAN("net.serve", method_name, request_id);
#define QBS_TRACE_SPAN(...) \
  ::qbs::TraceSpan QBS_OBS_CONCAT_(_qbs_trace_span_, __LINE__)(__VA_ARGS__)

}  // namespace qbs

#endif  // QBS_OBS_TRACE_H_

// Trace spans: scoped wall-clock timing of named code regions, recorded
// into a fixed-capacity ring buffer and exportable as Chrome trace_event
// JSON (load the file at chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is off by default. The disabled path of QBS_TRACE_SPAN is one
// relaxed atomic load and a branch (sub-nanosecond-to-a-few-ns — see
// bench/micro_obs.cc), so spans can stay in hot paths permanently. When
// enabled, recording takes a short mutex; spans are coarse (per query,
// per database refresh), so contention is negligible.
#ifndef QBS_OBS_TRACE_H_
#define QBS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace qbs {

/// Microseconds on a monotonic clock, measured from process start.
uint64_t MonotonicMicros();

namespace internal {
/// Small dense id (1, 2, ...) for the calling thread, shared between
/// trace events and log records so the two can be correlated.
uint32_t CurrentThreadId();
}  // namespace internal

/// One completed span.
struct TraceEvent {
  std::string name;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  /// Stable small integer identifying the recording thread.
  uint32_t tid = 0;
};

/// Fixed-capacity ring buffer of completed spans. When full, the oldest
/// events are overwritten — a trace is a window onto recent activity, not
/// an unbounded log.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1 << 16);

  /// The process-wide recorder QBS_TRACE_SPAN records into.
  static TraceRecorder& Global();

  /// Enables/disables recording. Cheap to query (relaxed atomic).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one completed span (call-site: TraceSpan destructor).
  void Record(std::string name, uint64_t start_us, uint64_t duration_us);

  /// Events currently buffered, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Number of buffered events (<= capacity).
  size_t size() const;
  /// Total events ever recorded, including overwritten ones.
  uint64_t total_recorded() const;

  /// Discards all buffered events.
  void Clear();

  /// Writes the buffered events as Chrome trace_event JSON ("X" complete
  /// events; ts/dur in microseconds).
  void DumpChromeTrace(std::ostream& out) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  uint64_t total_ = 0;  // ring slot of the next write is total_ % capacity_
};

/// RAII span: captures the start time on construction (only when the
/// global recorder is enabled) and records name + duration on
/// destruction. The two-argument form appends "/<detail>" to the name for
/// per-entity spans such as `service.refresh/<database>`.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) {
    if (TraceRecorder::Global().enabled()) Start(name, {});
  }
  TraceSpan(std::string_view name, std::string_view detail) {
    if (TraceRecorder::Global().enabled()) Start(name, detail);
  }
  ~TraceSpan() {
    if (active_) Finish();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Start(std::string_view name, std::string_view detail);
  void Finish();

  bool active_ = false;
  std::string name_;
  uint64_t start_us_ = 0;
};

#define QBS_OBS_CONCAT_INNER_(a, b) a##b
#define QBS_OBS_CONCAT_(a, b) QBS_OBS_CONCAT_INNER_(a, b)

/// Declares a scope-local span. Near-zero cost while tracing is disabled.
///   QBS_TRACE_SPAN("sampler.query");
///   QBS_TRACE_SPAN("service.refresh", db_name);
#define QBS_TRACE_SPAN(...) \
  ::qbs::TraceSpan QBS_OBS_CONCAT_(_qbs_trace_span_, __LINE__)(__VA_ARGS__)

}  // namespace qbs

#endif  // QBS_OBS_TRACE_H_

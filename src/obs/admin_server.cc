#include "obs/admin_server.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include <unistd.h>

#include "net/socket.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {

namespace {

// One request per connection and headers are bounded: a debug surface
// must never be the allocation amplifier in the process it debugs.
constexpr size_t kMaxRequestBytes = 8192;
// The request line alone (method + target + version) is bounded more
// tightly; anything longer gets an explicit 414 instead of a silent
// drop, so misconfigured scrapers see *why* they were refused.
constexpr size_t kMaxRequestLineBytes = 2048;
constexpr size_t kMaxTracezRows = 100;

Counter* AdminRequests() {
  static Counter* counter = MetricRegistry::Default().GetCounter(
      "qbs_admin_requests_total",
      "HTTP requests answered by embedded admin servers");
  return counter;
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body,
                         const std::string& extra_headers = "") {
  std::ostringstream out;
  out << "HTTP/1.1 " << code << " " << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << extra_headers << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

std::string HexTraceId(const TraceEvent& e) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(e.trace_id_hi),
                static_cast<unsigned long long>(e.trace_id_lo));
  return buf;
}

/// Parses "min_us=N" out of a raw query string; returns `fallback` when
/// absent or unparseable.
uint64_t ParseMinUs(const std::string& query, uint64_t fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    std::string param = query.substr(pos, end - pos);
    if (param.rfind("min_us=", 0) == 0) {
      char* parse_end = nullptr;
      unsigned long long value =
          std::strtoull(param.c_str() + 7, &parse_end, 10);
      if (parse_end != nullptr && *parse_end == '\0' &&
          parse_end != param.c_str() + 7) {
        return value;
      }
      return fallback;
    }
    pos = end + 1;
  }
  return fallback;
}

}  // namespace

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

std::string AdminServer::address() const {
  return options_.host + ":" + std::to_string(port_);
}

void AdminServer::AddStatus(std::string key,
                            std::function<std::string()> value) {
  status_.emplace_back(std::move(key), std::move(value));
}

bool AdminServer::running() const {
  MutexLock lock(mu_);
  return running_;
}

Status AdminServer::Start() {
  {
    MutexLock lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("admin server already started");
    }
  }
  auto listener = TcpListener::Listen(options_.host, options_.port);
  QBS_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  port_ = listener_->port();
  start_us_ = MonotonicMicros();
  {
    MutexLock lock(mu_);
    running_ = true;
    started_ = true;
  }
  serve_thread_ = std::thread([this] { ServeLoop(); });
  QBS_LOG(INFO) << "AdminServer: serving on http://" << options_.host << ":"
                << port_ << "/";
  return Status::OK();
}

void AdminServer::Stop() {
  // The running_ -> false transition is taken once under mu_; the join
  // happens exactly once via call_once, and every concurrent caller
  // (including a destructor racing an explicit Stop) blocks until the
  // winner's join finishes — no double-join, no early return while the
  // serving thread is still live. The join is a blocking wait, so it
  // runs with mu_ released.
  bool should_join;
  {
    MutexLock lock(mu_);
    should_join = started_;
    if (running_) {
      running_ = false;
      listener_->CloseListener();
    }
  }
  if (should_join) {
    std::call_once(join_once_, [this] { serve_thread_.join(); });
  }
}

void AdminServer::ServeLoop() {
  while (true) {
    auto conn = listener_->Accept();
    if (!conn.ok()) return;  // listener closed
    SocketStream stream(std::move(*conn));
    stream.SetDeadlineMicros(MonotonicMicros() + options_.read_timeout_us);
    // Read byte-wise until the end of the headers (or a cap). HTTP
    // request parsing at its most minimal: only the request line
    // matters, but draining the headers first keeps the close clean.
    // Bytes a peer pipelines after the first request are never read —
    // one request per connection, then close.
    std::string request;
    bool complete = false;
    bool line_too_long = false;
    bool read_failed = false;
    while (request.size() < kMaxRequestBytes) {
      uint8_t byte = 0;
      if (!stream.ReadFull(&byte, 1).ok()) {
        read_failed = true;
        break;
      }
      request.push_back(static_cast<char>(byte));
      if (request.find("\r\n") == std::string::npos &&
          request.size() > kMaxRequestLineBytes) {
        line_too_long = true;
        break;
      }
      if (request.size() >= 4 &&
          request.compare(request.size() - 4, 4, "\r\n\r\n") == 0) {
        complete = true;
        break;
      }
    }
    if (read_failed) continue;  // slow or vanished peer: drop it
    AdminRequests()->Increment();
    std::string response;
    if (line_too_long) {
      // The request line alone blew the cap — almost always a
      // runaway-URI client. Answer before closing so it can tell.
      response = HttpResponse(414, "URI Too Long", "text/plain",
                              "request line exceeds " +
                                  std::to_string(kMaxRequestLineBytes) +
                                  " bytes\n");
    } else if (!complete) {
      // Terminator never arrived within kMaxRequestBytes: oversized
      // header section.
      response = HttpResponse(431, "Request Header Fields Too Large",
                              "text/plain",
                              "request exceeds " +
                                  std::to_string(kMaxRequestBytes) +
                                  " bytes\n");
    } else {
      size_t line_end = request.find("\r\n");
      response = RouteRequestLine(request.substr(0, line_end));
    }
    // Best-effort: the peer may have hung up before the response; there
    // is nobody to report a write failure to on a debug surface.
    stream
        .WriteAll(reinterpret_cast<const uint8_t*>(response.data()),
                  response.size())
        .IgnoreError();
  }
}

std::string AdminServer::RouteRequestLine(const std::string& line) {
  // Expect exactly "METHOD SP target SP HTTP/1.x". A missing version or
  // extra spaces is a malformed request, not a routing miss — 400, so
  // broken scrapers are told apart from wrong paths (404) and wrong
  // methods (405).
  size_t method_end = line.find(' ');
  if (method_end == std::string::npos || method_end == 0) {
    return HttpResponse(400, "Bad Request", "text/plain",
                        "malformed request line\n");
  }
  std::string method = line.substr(0, method_end);
  size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string::npos || target_end == method_end + 1) {
    return HttpResponse(400, "Bad Request", "text/plain",
                        "malformed request line: missing HTTP version\n");
  }
  std::string version = line.substr(target_end + 1);
  if (version.rfind("HTTP/1.", 0) != 0 ||
      version.find(' ') != std::string::npos) {
    return HttpResponse(400, "Bad Request", "text/plain",
                        "malformed request line: bad HTTP version\n");
  }
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is supported\n", "Allow: GET\r\n");
  }
  return HandleRequest(line.substr(method_end + 1, target_end - method_end - 1));
}

std::string AdminServer::HandleRequest(const std::string& target) {
  std::string path = target;
  std::string query;
  size_t query_pos = target.find('?');
  if (query_pos != std::string::npos) {
    path = target.substr(0, query_pos);
    query = target.substr(query_pos + 1);
  }

  if (path == "/" || path == "/index.html") {
    return HttpResponse(200, "OK", "text/plain",
                        "qbs admin endpoints:\n"
                        "  /metrics     Prometheus text exposition\n"
                        "  /statusz     process + server status\n"
                        "  /tracez      recent slow spans (?min_us=N)\n"
                        "  /trace.json  trace ring as Chrome trace JSON\n");
  }

  if (path == "/metrics") {
    std::ostringstream body;
    MetricRegistry::Default().ExportPrometheus(body);
    return HttpResponse(200, "OK", "text/plain; version=0.0.4", body.str());
  }

  if (path == "/statusz") {
    const TraceRecorder& recorder = TraceRecorder::Global();
    std::ostringstream body;
    body << "uptime_us: " << MonotonicMicros() - start_us_ << "\n"
         << "pid: " << ::getpid() << "\n"
         << "compiler: " << __VERSION__ << "\n"
         << "trace_enabled: " << (recorder.enabled() ? "true" : "false")
         << "\n"
         << "trace_spans_buffered: " << recorder.size() << "\n"
         << "trace_spans_recorded_total: " << recorder.total_recorded()
         << "\n"
         << "trace_spans_dropped_total: " << recorder.dropped() << "\n";
    for (const auto& [key, value] : status_) {
      body << key << ": " << value() << "\n";
    }
    return HttpResponse(200, "OK", "text/plain", body.str());
  }

  if (path == "/tracez") {
    uint64_t min_us = ParseMinUs(query, options_.tracez_min_duration_us);
    std::vector<TraceEvent> events = TraceRecorder::Global().Events();
    events.erase(std::remove_if(events.begin(), events.end(),
                                [min_us](const TraceEvent& e) {
                                  return e.duration_us < min_us;
                                }),
                 events.end());
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.duration_us > b.duration_us;
              });
    std::ostringstream body;
    body << "spans with duration >= " << min_us << "us ("
         << (events.size() > kMaxTracezRows ? kMaxTracezRows : events.size())
         << " of " << events.size() << " shown; slowest first)\n\n";
    char line[256];
    std::snprintf(line, sizeof(line), "%12s  %-40s %32s  %s\n",
                  "duration_us", "name", "trace_id", "span_id");
    body << line;
    size_t shown = 0;
    for (const TraceEvent& e : events) {
      if (++shown > kMaxTracezRows) break;
      std::snprintf(line, sizeof(line), "%12llu  %-40.120s %32s  %016llx\n",
                    static_cast<unsigned long long>(e.duration_us),
                    e.name.c_str(), HexTraceId(e).c_str(),
                    static_cast<unsigned long long>(e.span_id));
      body << line;
    }
    return HttpResponse(200, "OK", "text/plain", body.str());
  }

  if (path == "/trace.json") {
    std::ostringstream body;
    TraceRecorder::Global().DumpChromeTrace(body);
    return HttpResponse(200, "OK", "application/json", body.str());
  }

  return HttpResponse(404, "Not Found", "text/plain",
                      "unknown path: " + path + "\n");
}

}  // namespace qbs

#include "obs/admin_server.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include <unistd.h>

#include "net/socket.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {

namespace {

// One request per connection and headers are bounded: a debug surface
// must never be the allocation amplifier in the process it debugs.
constexpr size_t kMaxRequestBytes = 8192;
constexpr size_t kMaxTracezRows = 100;

Counter* AdminRequests() {
  static Counter* counter = MetricRegistry::Default().GetCounter(
      "qbs_admin_requests_total",
      "HTTP requests answered by embedded admin servers");
  return counter;
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << code << " " << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

std::string HexTraceId(const TraceEvent& e) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(e.trace_id_hi),
                static_cast<unsigned long long>(e.trace_id_lo));
  return buf;
}

/// Parses "min_us=N" out of a raw query string; returns `fallback` when
/// absent or unparseable.
uint64_t ParseMinUs(const std::string& query, uint64_t fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    std::string param = query.substr(pos, end - pos);
    if (param.rfind("min_us=", 0) == 0) {
      char* parse_end = nullptr;
      unsigned long long value =
          std::strtoull(param.c_str() + 7, &parse_end, 10);
      if (parse_end != nullptr && *parse_end == '\0' &&
          parse_end != param.c_str() + 7) {
        return value;
      }
      return fallback;
    }
    pos = end + 1;
  }
  return fallback;
}

}  // namespace

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

std::string AdminServer::address() const {
  return options_.host + ":" + std::to_string(port_);
}

void AdminServer::AddStatus(std::string key,
                            std::function<std::string()> value) {
  status_.emplace_back(std::move(key), std::move(value));
}

Status AdminServer::Start() {
  if (running_) {
    return Status::FailedPrecondition("admin server already started");
  }
  auto listener = TcpListener::Listen(options_.host, options_.port);
  QBS_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  port_ = listener_->port();
  start_us_ = MonotonicMicros();
  running_ = true;
  serve_thread_ = std::thread([this] { ServeLoop(); });
  QBS_LOG(INFO) << "AdminServer: serving on http://" << options_.host << ":"
                << port_ << "/";
  return Status::OK();
}

void AdminServer::Stop() {
  if (!running_) return;
  running_ = false;
  listener_->CloseListener();
  serve_thread_.join();
}

void AdminServer::ServeLoop() {
  while (true) {
    auto conn = listener_->Accept();
    if (!conn.ok()) return;  // listener closed
    SocketStream stream(std::move(*conn));
    stream.SetDeadlineMicros(MonotonicMicros() + options_.read_timeout_us);
    // Read byte-wise until the end of the headers (or the cap). HTTP
    // request parsing at its most minimal: only the request line
    // matters, but draining the headers first keeps the close clean.
    std::string request;
    bool complete = false;
    while (request.size() < kMaxRequestBytes) {
      uint8_t byte = 0;
      if (!stream.ReadFull(&byte, 1).ok()) break;
      request.push_back(static_cast<char>(byte));
      if (request.size() >= 4 &&
          request.compare(request.size() - 4, 4, "\r\n\r\n") == 0) {
        complete = true;
        break;
      }
    }
    if (!complete) continue;  // slow, huge, or vanished peer: drop it
    AdminRequests()->Increment();
    std::string response;
    size_t line_end = request.find("\r\n");
    std::string line = request.substr(0, line_end);
    if (line.rfind("GET ", 0) != 0) {
      response = HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n");
    } else {
      size_t path_end = line.find(' ', 4);
      std::string target = path_end == std::string::npos
                               ? line.substr(4)
                               : line.substr(4, path_end - 4);
      response = HandleRequest(target);
    }
    stream.WriteAll(reinterpret_cast<const uint8_t*>(response.data()),
                    response.size());
  }
}

std::string AdminServer::HandleRequest(const std::string& target) {
  std::string path = target;
  std::string query;
  size_t query_pos = target.find('?');
  if (query_pos != std::string::npos) {
    path = target.substr(0, query_pos);
    query = target.substr(query_pos + 1);
  }

  if (path == "/" || path == "/index.html") {
    return HttpResponse(200, "OK", "text/plain",
                        "qbs admin endpoints:\n"
                        "  /metrics     Prometheus text exposition\n"
                        "  /statusz     process + server status\n"
                        "  /tracez      recent slow spans (?min_us=N)\n"
                        "  /trace.json  trace ring as Chrome trace JSON\n");
  }

  if (path == "/metrics") {
    std::ostringstream body;
    MetricRegistry::Default().ExportPrometheus(body);
    return HttpResponse(200, "OK", "text/plain; version=0.0.4", body.str());
  }

  if (path == "/statusz") {
    const TraceRecorder& recorder = TraceRecorder::Global();
    std::ostringstream body;
    body << "uptime_us: " << MonotonicMicros() - start_us_ << "\n"
         << "pid: " << ::getpid() << "\n"
         << "compiler: " << __VERSION__ << "\n"
         << "trace_enabled: " << (recorder.enabled() ? "true" : "false")
         << "\n"
         << "trace_spans_buffered: " << recorder.size() << "\n"
         << "trace_spans_recorded_total: " << recorder.total_recorded()
         << "\n"
         << "trace_spans_dropped_total: " << recorder.dropped() << "\n";
    for (const auto& [key, value] : status_) {
      body << key << ": " << value() << "\n";
    }
    return HttpResponse(200, "OK", "text/plain", body.str());
  }

  if (path == "/tracez") {
    uint64_t min_us = ParseMinUs(query, options_.tracez_min_duration_us);
    std::vector<TraceEvent> events = TraceRecorder::Global().Events();
    events.erase(std::remove_if(events.begin(), events.end(),
                                [min_us](const TraceEvent& e) {
                                  return e.duration_us < min_us;
                                }),
                 events.end());
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.duration_us > b.duration_us;
              });
    std::ostringstream body;
    body << "spans with duration >= " << min_us << "us ("
         << (events.size() > kMaxTracezRows ? kMaxTracezRows : events.size())
         << " of " << events.size() << " shown; slowest first)\n\n";
    char line[256];
    std::snprintf(line, sizeof(line), "%12s  %-40s %32s  %s\n",
                  "duration_us", "name", "trace_id", "span_id");
    body << line;
    size_t shown = 0;
    for (const TraceEvent& e : events) {
      if (++shown > kMaxTracezRows) break;
      std::snprintf(line, sizeof(line), "%12llu  %-40.120s %32s  %016llx\n",
                    static_cast<unsigned long long>(e.duration_us),
                    e.name.c_str(), HexTraceId(e).c_str(),
                    static_cast<unsigned long long>(e.span_id));
      body << line;
    }
    return HttpResponse(200, "OK", "text/plain", body.str());
  }

  if (path == "/trace.json") {
    std::ostringstream body;
    TraceRecorder::Global().DumpChromeTrace(body);
    return HttpResponse(200, "OK", "application/json", body.str());
  }

  return HttpResponse(404, "Not Found", "text/plain",
                      "unknown path: " + path + "\n");
}

}  // namespace qbs

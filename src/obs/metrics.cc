#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/trace.h"  // MonotonicMicros

namespace qbs {

namespace {

[[noreturn]] void MetricsFatal(const char* what, const std::string& name) {
  std::fprintf(stderr, "qbs metrics: %s: %s\n", what, name.c_str());
  std::abort();
}

/// Escapes a string for use inside a double-quoted JSON / Prometheus-label
/// string (both use backslash escapes for the characters we emit).
std::string EscapeQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// The metric family name: everything before the label block.
std::string_view BaseName(std::string_view name) {
  size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

/// Formats a double the way Prometheus expects (no trailing zeros noise,
/// "+Inf" for infinity).
std::string FormatValue(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "+Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Splices extra labels (e.g. `le="5"`) into a possibly-labeled name:
/// `h{db="a"}` + `le="5"` -> `h{db="a",le="5"}`.
std::string NameWithExtraLabel(std::string_view name, const std::string& extra) {
  size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    return std::string(name) + "{" + extra + "}";
  }
  std::string out(name.substr(0, name.size() - 1));  // drop trailing '}'
  out += ",";
  out += extra;
  out += "}";
  return out;
}

}  // namespace

// --- Histogram ---

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double value) {
  // Buckets are few (tens); linear scan beats binary search on branch
  // prediction for typical latency distributions and avoids any allocation.
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.Add(value);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::LatencyBoundsUs() {
  // 1us, 4us, ..., ~1.05s: 11 buckets cover in-process queries through
  // slow remote round trips.
  return ExponentialBounds(1.0, 4.0, 11);
}

// --- MetricRegistry ---

MetricRegistry& MetricRegistry::Default() {
  // analyze:allow(rawnew): deliberate static leak (exit-order safe)
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

std::string WithLabel(std::string_view name, std::string_view label_key,
                      std::string_view label_value) {
  std::string out(name);
  out += "{";
  out += label_key;
  out += "=\"";
  out += EscapeQuoted(label_value);
  out += "\"}";
  return out;
}

MetricRegistry::Entry* MetricRegistry::FindOrNull(const std::string& name) {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : &it->second;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help) {
  MutexLock lock(mu_);
  if (Entry* e = FindOrNull(name)) {
    if (e->kind != Kind::kCounter) MetricsFatal("metric kind mismatch", name);
    return e->counter.get();
  }
  Entry& e = metrics_[name];
  e.kind = Kind::kCounter;
  e.help = help;
  // analyze:allow(rawnew): private ctor; adopted by unique_ptr here
  e.counter.reset(new Counter());
  return e.counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help) {
  MutexLock lock(mu_);
  if (Entry* e = FindOrNull(name)) {
    if (e->kind != Kind::kGauge) MetricsFatal("metric kind mismatch", name);
    return e->gauge.get();
  }
  Entry& e = metrics_[name];
  e.kind = Kind::kGauge;
  e.help = help;
  // analyze:allow(rawnew): private ctor; adopted by unique_ptr here
  e.gauge.reset(new Gauge());
  return e.gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds,
                                        const std::string& help) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    MetricsFatal("histogram bounds must be non-empty, strictly ascending",
                 name);
  }
  MutexLock lock(mu_);
  if (Entry* e = FindOrNull(name)) {
    if (e->kind != Kind::kHistogram) MetricsFatal("metric kind mismatch", name);
    return e->histogram.get();
  }
  Entry& e = metrics_[name];
  e.kind = Kind::kHistogram;
  e.help = help;
  // analyze:allow(rawnew): private ctor; adopted by unique_ptr here
  e.histogram.reset(new Histogram(std::move(bounds)));
  return e.histogram.get();
}

size_t MetricRegistry::size() const {
  MutexLock lock(mu_);
  return metrics_.size();
}

void MetricRegistry::ExportPrometheus(std::ostream& out) const {
  MutexLock lock(mu_);
  std::string_view last_family;
  for (const auto& [name, e] : metrics_) {
    std::string_view family = BaseName(name);
    if (family != last_family) {
      // One HELP/TYPE header per family; labeled series share it.
      const char* type = e.kind == Kind::kCounter   ? "counter"
                         : e.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
      if (!e.help.empty()) {
        out << "# HELP " << family << " " << e.help << "\n";
      }
      out << "# TYPE " << family << " " << type << "\n";
      last_family = family;
    }
    switch (e.kind) {
      case Kind::kCounter:
        out << name << " " << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        out << name << " " << FormatValue(e.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        std::vector<uint64_t> counts = h.bucket_counts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < counts.size(); ++i) {
          cumulative += counts[i];
          double le = i < h.bounds().size()
                          ? h.bounds()[i]
                          : std::numeric_limits<double>::infinity();
          out << NameWithExtraLabel(name + "_bucket",
                                    "le=\"" + FormatValue(le) + "\"")
              << " " << cumulative << "\n";
        }
        out << name << "_sum " << FormatValue(h.sum()) << "\n";
        // _count is derived from the bucket snapshot, not read from the
        // separate count_ atomic: under concurrent Observe the two can
        // differ by in-flight increments, and Prometheus requires
        // _count == the +Inf bucket within one scrape.
        out << name << "_count " << cumulative << "\n";
        break;
      }
    }
  }
}

void MetricRegistry::ExportJson(std::ostream& out) const {
  MutexLock lock(mu_);
  auto emit_group = [&](Kind kind, const char* key, auto&& emit_value) {
    out << "\"" << key << "\":{";
    bool first = true;
    for (const auto& [name, e] : metrics_) {
      if (e.kind != kind) continue;
      if (!first) out << ",";
      first = false;
      out << "\"" << EscapeQuoted(name) << "\":";
      emit_value(e);
    }
    out << "}";
  };
  out << "{";
  emit_group(Kind::kCounter, "counters",
             [&](const Entry& e) { out << e.counter->value(); });
  out << ",";
  emit_group(Kind::kGauge, "gauges",
             [&](const Entry& e) { out << FormatValue(e.gauge->value()); });
  out << ",";
  emit_group(Kind::kHistogram, "histograms", [&](const Entry& e) {
    const Histogram& h = *e.histogram;
    std::vector<uint64_t> counts = h.bucket_counts();
    // Same snapshot-consistency rule as the Prometheus export: count is
    // the bucket total, so it always equals the sum of "buckets".
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;
    out << "{\"count\":" << total << ",\"sum\":" << h.sum()
        << ",\"buckets\":[";
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ",";
      double le = i < h.bounds().size()
                      ? h.bounds()[i]
                      : std::numeric_limits<double>::infinity();
      out << "{\"le\":\"" << FormatValue(le) << "\",\"count\":" << counts[i]
          << "}";
    }
    out << "]}";
  });
  out << "}";
}

// --- ScopedTimerUs ---

ScopedTimerUs::ScopedTimerUs(Histogram* histogram)
    : histogram_(histogram), start_us_(histogram ? MonotonicMicros() : 0) {}

ScopedTimerUs::~ScopedTimerUs() {
  if (histogram_ != nullptr) {
    histogram_->Observe(static_cast<double>(MonotonicMicros() - start_us_));
  }
}

}  // namespace qbs

// Process-wide metrics: counters, gauges, and fixed-bucket histograms.
//
// The paper's claims are quantitative (ctf ratio vs. documents examined,
// "resource requirements ... are low", §9), so the running system must be
// able to report those quantities live, not only via post-hoc bench
// binaries. This registry is the single place instrumented code publishes
// to, and the exposition formats (Prometheus text, JSON) are what
// `qbs_cli --metrics_out=` and any future HTTP endpoint dump.
//
// Hot-path contract: Counter::Increment, Gauge::Set and
// Histogram::Observe are lock-free (relaxed atomics) and safe to call
// from any thread. Only metric *registration* (GetCounter / GetGauge /
// GetHistogram) takes a lock — instrumented code is expected to look its
// metrics up once (function-local static) and then increment freely.
#ifndef QBS_OBS_METRICS_H_
#define QBS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace qbs {

namespace internal {

/// Atomic double with add support implemented as a CAS loop, so it works
/// on toolchains without C++20 atomic<double>::fetch_add.
class AtomicDouble {
 public:
  void Set(double v) { bits_.store(ToBits(v), std::memory_order_relaxed); }
  void Add(double d) {
    uint64_t old_bits = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(old_bits, ToBits(FromBits(old_bits) + d),
                                        std::memory_order_relaxed)) {
    }
  }
  double Get() const { return FromBits(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t ToBits(double v) {
    uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double FromBits(uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};  // 0 bits == 0.0
};

}  // namespace internal

/// A monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// A gauge: a value that can go up and down (queue depth, convergence).
class Gauge {
 public:
  void Set(double v) { value_.Set(v); }
  void Add(double d) { value_.Add(d); }
  double value() const { return value_.Get(); }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  internal::AtomicDouble value_;
};

/// A histogram with fixed bucket upper bounds (Prometheus `le` semantics:
/// an observation lands in the first bucket whose bound is >= value; an
/// implicit +Inf bucket catches the rest). Bounds are fixed at
/// registration so Observe never allocates.
class Histogram {
 public:
  void Observe(double value);

  /// Observations recorded so far.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of observed values.
  double sum() const { return sum_.Get(); }
  /// Upper bounds, ascending, excluding the +Inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket observation counts; size() == bounds().size() + 1, the
  /// last entry being the +Inf bucket. Non-cumulative.
  std::vector<uint64_t> bucket_counts() const;

  /// `count` bounds starting at `start`, each `factor` times the previous
  /// (the usual shape for latency histograms).
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t count);
  /// 1us .. ~1s in x4 steps — the default for query-latency histograms.
  static std::vector<double> LatencyBoundsUs();

 private:
  friend class MetricRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  internal::AtomicDouble sum_;
};

/// Builds a labeled metric name: WithLabel("x_total", "db", "a") ==
/// `x_total{db="a"}`. Label values are escaped per the Prometheus text
/// format. Metrics sharing a base name (the part before '{') are grouped
/// under one TYPE line on export.
std::string WithLabel(std::string_view name, std::string_view label_key,
                      std::string_view label_value);

/// A named collection of metrics. Thread-safe. Registered metrics live as
/// long as the registry and their pointers are stable, so callers cache
/// them. Re-registering an existing name returns the same metric (the
/// kind must match; a mismatch aborts — it is a programming error).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide default registry used by library instrumentation.
  static MetricRegistry& Default();

  Counter* GetCounter(const std::string& name, const std::string& help = "")
      QBS_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help = "")
      QBS_EXCLUDES(mu_);
  /// `bounds` must be non-empty and strictly ascending.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& help = "") QBS_EXCLUDES(mu_);

  /// Number of registered metrics.
  size_t size() const QBS_EXCLUDES(mu_);

  /// Prometheus text exposition format v0.0.4 (`# HELP` / `# TYPE` plus
  /// one line per sample; histograms expand to cumulative `_bucket`
  /// series with `le` labels plus `_sum` and `_count`).
  void ExportPrometheus(std::ostream& out) const QBS_EXCLUDES(mu_);

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, buckets: [{le, count}...]}}}.
  void ExportJson(std::ostream& out) const QBS_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrNull(const std::string& name) QBS_REQUIRES(mu_);

  mutable Mutex mu_;
  // Ordered so exports are deterministic; pointers into Entry are stable
  // because entries are never erased.
  std::map<std::string, Entry> metrics_ QBS_GUARDED_BY(mu_);
};

/// RAII in-flight tracker: adds +1 to a gauge on construction and -1 on
/// destruction, so the gauge counts concurrently open scopes (in-flight
/// requests, active connections) without paired call sites that can
/// desynchronize on early returns. `gauge` may be null (no-op).
class GaugeGuard {
 public:
  explicit GaugeGuard(Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr) gauge_->Add(1.0);
  }
  ~GaugeGuard() {
    if (gauge_ != nullptr) gauge_->Add(-1.0);
  }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;

 private:
  Gauge* gauge_;
};

/// Observes elapsed wall time (microseconds) into a histogram when it
/// goes out of scope. `histogram` may be null (no-op), so call sites can
/// keep one code path whether or not metrics are enabled.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram* histogram);
  ~ScopedTimerUs();
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_us_;
};

}  // namespace qbs

#endif  // QBS_OBS_METRICS_H_

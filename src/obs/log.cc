#include "obs/log.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"  // MonotonicMicros, CurrentThreadId
#include "util/mutex.h"

namespace qbs {

namespace {

LogLevel InitialLogLevel() {
  const char* env = std::getenv("QBS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  return ParseLogLevel(env, LogLevel::kInfo);
}

void DefaultSink(const LogRecord& record) {
  // One fprintf so concurrent records stay line-atomic on POSIX stderr.
  std::fprintf(stderr, "%c %llu.%06llu tid=%u %s:%d] %s\n",
               LogLevelName(record.level)[0],
               static_cast<unsigned long long>(record.timestamp_us / 1000000),
               static_cast<unsigned long long>(record.timestamp_us % 1000000),
               record.tid, record.file, record.line, record.message.c_str());
}

// The sink is swapped rarely (startup, tests); reads take the same mutex
// because std::function cannot be read atomically.
Mutex& SinkMutex() {
  static Mutex mu;
  return mu;
}

LogSink& SinkStorage() {
  // analyze:allow(rawnew): deliberate static leak (exit-order safe)
  static LogSink* sink = new LogSink();
  return *sink;
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

namespace internal {
std::atomic<int> g_min_log_level{static_cast<int>(InitialLogLevel())};
}  // namespace internal

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARNING";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "UNKNOWN";
}

LogLevel ParseLogLevel(std::string_view name, LogLevel fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "d") return LogLevel::kDebug;
  if (lower == "info" || lower == "i") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "w") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "e") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

void SetMinLogLevel(LogLevel level) {
  internal::g_min_log_level.store(static_cast<int>(level),
                                  std::memory_order_relaxed);
}

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(
      internal::g_min_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  MutexLock lock(SinkMutex());
  SinkStorage() = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(const char* file, int line, LogLevel level)
    : file_(file), line_(line), level_(level) {}

LogMessage::~LogMessage() {
  LogRecord record;
  record.level = level_;
  record.file = Basename(file_);
  record.line = line_;
  record.timestamp_us = MonotonicMicros();
  record.tid = CurrentThreadId();
  record.message = stream_.str();
  MutexLock lock(SinkMutex());
  const LogSink& sink = SinkStorage();
  if (sink) {
    sink(record);
  } else {
    DefaultSink(record);
  }
}

}  // namespace internal

}  // namespace qbs

// Structured leveled logging:
//
//   QBS_LOG(INFO) << "sampled " << n << " documents from " << db;
//
// extends the QBS_CHECK invariant macros in util/logging.h (which remain
// the right tool for fatal invariants) with non-fatal diagnostics. A log
// statement below the active level costs one relaxed atomic load and a
// branch — the stream expression is never evaluated — so DEBUG logs can
// sit in hot paths (see bench/micro_obs.cc).
//
// Each statement produces a LogRecord (level, file, line, timestamp,
// thread, message) handed to a pluggable sink; the default sink writes
// one line to stderr:
//
//   I 12.345678 tid=1 sampler.cc:42] sampled 300 documents
//
// The initial level is INFO, overridable with the QBS_LOG_LEVEL
// environment variable (debug|info|warning|error|off).
#ifndef QBS_OBS_LOG_H_
#define QBS_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace qbs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  /// Not a message level: SetMinLogLevel(kOff) silences everything.
  kOff = 4,
};

/// Stable one-word name ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

/// Parses "debug"/"info"/"warning"/"error"/"off" (case-insensitive;
/// also accepts the one-letter forms). Returns `fallback` on anything else.
LogLevel ParseLogLevel(std::string_view name, LogLevel fallback);

/// Minimum level that is emitted. Thread-safe.
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

namespace internal {
extern std::atomic<int> g_min_log_level;

// Targets of QBS_LOG's k##severity token paste.
inline constexpr LogLevel kDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARNING = LogLevel::kWarning;
inline constexpr LogLevel kERROR = LogLevel::kError;
}  // namespace internal

/// True iff a message at `level` would be emitted. This is the only work
/// a disabled log statement performs.
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         internal::g_min_log_level.load(std::memory_order_relaxed);
}

/// One emitted log statement, as handed to the sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  /// Basename of the source file (no directories).
  const char* file = "";
  int line = 0;
  /// Microseconds since process start (MonotonicMicros clock).
  uint64_t timestamp_us = 0;
  /// Small dense thread id, consistent with trace events.
  uint32_t tid = 0;
  std::string message;
};

using LogSink = std::function<void(const LogRecord&)>;

/// Replaces the sink; an empty function restores the default stderr sink.
/// Not safe to call concurrently with logging from other threads — install
/// sinks at startup (or around single-threaded test sections).
void SetLogSink(LogSink sink);

namespace internal {

/// Accumulates one statement's stream and emits on destruction (end of
/// the full expression).
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the stream expression in the disabled branch of QBS_LOG while
/// keeping the whole macro a single expression (usable in if/else without
/// dangling-else warnings).
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

/// Leveled log statement. `severity` is one of DEBUG, INFO, WARNING, ERROR.
#define QBS_LOG(severity)                                             \
  (!::qbs::LogEnabled(::qbs::internal::k##severity))                  \
      ? (void)0                                                       \
      : ::qbs::internal::LogVoidify() &                               \
            ::qbs::internal::LogMessage(__FILE__, __LINE__,           \
                                        ::qbs::internal::k##severity) \
                .stream()

/// Like QBS_LOG(severity) but only when `cond` is true.
#define QBS_LOG_IF(severity, cond)                                    \
  (!((cond) && ::qbs::LogEnabled(::qbs::internal::k##severity)))      \
      ? (void)0                                                       \
      : ::qbs::internal::LogVoidify() &                               \
            ::qbs::internal::LogMessage(__FILE__, __LINE__,           \
                                        ::qbs::internal::k##severity) \
                .stream()

}  // namespace qbs

#endif  // QBS_OBS_LOG_H_

// AdminServer: a minimal embedded HTTP/1.1 endpoint exposing the
// process's observability state to a browser, curl, or a Prometheus
// scraper — no more round-tripping through `qbs_cli --metrics_out=`
// files to see what a live server is doing.
//
// Endpoints:
//   /         index of the endpoints below
//   /metrics  MetricRegistry in Prometheus text exposition format
//   /statusz  uptime, pid, build info, trace-recorder state, plus any
//             status providers the embedding server registered
//             (broker epoch, connection counts, ...)
//   /tracez   recent spans slower than a threshold (?min_us=N)
//   /trace.json  the trace ring as Chrome trace_event JSON, ready for
//             about:tracing / ui.perfetto.dev or tools/trace_merge.py
//
// Scope: GET only, one request per connection (Connection: close),
// served sequentially by one background thread. That is deliberate —
// this is a debug surface for a handful of humans and one scraper, not
// a web server; sequential service keeps it immune to slowloris-style
// fd exhaustion (the read deadline bounds each connection's lifetime).
#ifndef QBS_OBS_ADMIN_SERVER_H_
#define QBS_OBS_ADMIN_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>  // std::once_flag
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace qbs {

class TcpListener;

struct AdminServerOptions {
  /// Bind address. Loopback by default: the admin surface exposes
  /// internals and has no auth, so exporting it off-host is an explicit
  /// operator decision.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// /tracez default threshold: spans at least this slow are listed.
  uint64_t tracez_min_duration_us = 1000;
  /// A connection that has not delivered a full request line within
  /// this deadline is dropped — the server thread must never be
  /// parked forever by a half-open peer.
  uint64_t read_timeout_us = 2'000'000;
};

/// The embedded admin/debug HTTP server. Thread-safe; Start/Stop may be
/// called once each from any thread. Status providers must be
/// registered before Start().
class AdminServer {
 public:
  explicit AdminServer(AdminServerOptions options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers a named value for /statusz, rendered as "key: value()".
  /// Providers run on the serving thread and must be thread-safe.
  void AddStatus(std::string key, std::function<std::string()> value);

  /// Binds, listens, and starts the serving thread.
  Status Start() QBS_EXCLUDES(mu_);

  /// Stops serving and joins the thread. Idempotent and safe against
  /// concurrent Stop() calls (including the destructor racing an
  /// explicit Stop): exactly one caller joins the serving thread. The
  /// join is a blocking wait, so it runs with mu_ released.
  void Stop() QBS_EXCLUDES(mu_);

  /// The bound port (valid after Start() succeeded).
  uint16_t port() const { return port_; }

  /// host:port (valid after Start()).
  std::string address() const;

  bool running() const QBS_EXCLUDES(mu_);

 private:
  void ServeLoop() QBS_EXCLUDES(mu_);
  /// Validates one HTTP request line (method, target, version) and
  /// routes it; returns the full HTTP response bytes (400 on a
  /// malformed line, 405 on a non-GET method).
  std::string RouteRequestLine(const std::string& line);
  /// Routes one parsed request; returns the full HTTP response bytes.
  std::string HandleRequest(const std::string& path);

  AdminServerOptions options_;

  // port_, start_us_, status_, listener_, serve_thread_ are written in
  // Start() before the serving thread is spawned and are read-only
  // afterwards; the std::thread constructor's happens-before edge
  // publishes them, so they are deliberately not guarded.
  uint16_t port_ = 0;
  uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::function<std::string()>>> status_;
  std::unique_ptr<TcpListener> listener_;
  std::thread serve_thread_;

  mutable Mutex mu_;
  bool running_ QBS_GUARDED_BY(mu_) = false;
  // Whether Start() ever spawned the serving thread (join target exists).
  bool started_ QBS_GUARDED_BY(mu_) = false;
  std::once_flag join_once_;
};

}  // namespace qbs

#endif  // QBS_OBS_ADMIN_SERVER_H_

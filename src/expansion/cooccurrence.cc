#include "expansion/cooccurrence.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace qbs {

CooccurrenceModel::CooccurrenceModel(Analyzer analyzer)
    : analyzer_(std::move(analyzer)) {}

CooccurrenceModel::TermId CooccurrenceModel::Intern(const std::string& term) {
  auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  TermId id = static_cast<TermId>(term_text_.size());
  ids_.emplace(term, id);
  term_text_.push_back(term);
  term_df_.push_back(0);
  term_docs_.emplace_back();
  return id;
}

void CooccurrenceModel::AddDocument(std::string_view text) {
  std::vector<std::string> terms = analyzer_.Analyze(text);
  std::unordered_set<std::string> unique(terms.begin(), terms.end());
  uint32_t doc = static_cast<uint32_t>(doc_terms_.size());
  std::vector<TermId> ids;
  ids.reserve(unique.size());
  for (const std::string& t : unique) {
    TermId id = Intern(t);
    ids.push_back(id);
    ++term_df_[id];
    term_docs_[id].push_back(doc);
  }
  std::sort(ids.begin(), ids.end());
  doc_terms_.push_back(std::move(ids));
}

uint64_t CooccurrenceModel::df(std::string_view term) const {
  auto it = ids_.find(std::string(term));
  return it == ids_.end() ? 0 : term_df_[it->second];
}

uint64_t CooccurrenceModel::CoDf(std::string_view a, std::string_view b) const {
  auto ia = ids_.find(std::string(a));
  auto ib = ids_.find(std::string(b));
  if (ia == ids_.end() || ib == ids_.end()) return 0;
  // Walk the shorter doc list, binary-searching the current doc's sorted
  // term list would also work; intersect the two sorted doc lists instead.
  const std::vector<uint32_t>& da = term_docs_[ia->second];
  const std::vector<uint32_t>& db = term_docs_[ib->second];
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < da.size() && j < db.size()) {
    if (da[i] < db[j]) {
      ++i;
    } else if (da[i] > db[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double CooccurrenceModel::Emim(std::string_view a, std::string_view b) const {
  if (doc_terms_.empty()) return 0.0;
  uint64_t co = CoDf(a, b);
  if (co == 0) return 0.0;
  double n = static_cast<double>(doc_terms_.size());
  double p_ab = co / n;
  double p_a = df(a) / n;
  double p_b = df(b) / n;
  return p_ab * std::log(p_ab / (p_a * p_b));
}

std::vector<std::pair<std::string, double>> CooccurrenceModel::TopAssociates(
    std::string_view term, size_t k, uint64_t min_df) const {
  std::vector<std::pair<std::string, double>> out;
  auto it = ids_.find(std::string(term));
  if (it == ids_.end() || doc_terms_.empty()) return out;
  TermId tid = it->second;
  double n = static_cast<double>(doc_terms_.size());
  double p_a = term_df_[tid] / n;

  // Count partners by walking the documents containing `term`.
  std::unordered_map<TermId, uint64_t> partner_counts;
  for (uint32_t doc : term_docs_[tid]) {
    for (TermId other : doc_terms_[doc]) {
      if (other != tid) ++partner_counts[other];
    }
  }
  out.reserve(partner_counts.size());
  for (const auto& [other, co] : partner_counts) {
    if (term_df_[other] < min_df) continue;
    double p_ab = co / n;
    double p_b = term_df_[other] / n;
    double emim = p_ab * std::log(p_ab / (p_a * p_b));
    if (emim > 0.0) out.emplace_back(term_text_[other], emim);
  }
  auto cmp = [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  };
  if (k < out.size()) {
    std::partial_sort(out.begin(), out.begin() + k, out.end(), cmp);
    out.resize(k);
  } else {
    std::sort(out.begin(), out.end(), cmp);
  }
  return out;
}

QueryExpander::QueryExpander(const CooccurrenceModel* model) : model_(model) {
  QBS_CHECK(model_ != nullptr);
}

std::vector<std::pair<std::string, double>> QueryExpander::ExpansionTerms(
    const std::vector<std::string>& query_terms,
    size_t num_expansion_terms) const {
  std::unordered_map<std::string, double> scores;
  for (const std::string& qt : query_terms) {
    // Pool generously per query term, then keep the global best.
    for (auto& [term, emim] :
         model_->TopAssociates(qt, num_expansion_terms * 4)) {
      scores[term] += emim;
    }
  }
  std::vector<std::pair<std::string, double>> out;
  out.reserve(scores.size());
  std::unordered_set<std::string> query_set(query_terms.begin(),
                                            query_terms.end());
  for (auto& [term, score] : scores) {
    if (!query_set.contains(term)) out.emplace_back(term, score);
  }
  auto cmp = [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  };
  std::sort(out.begin(), out.end(), cmp);
  if (out.size() > num_expansion_terms) out.resize(num_expansion_terms);
  return out;
}

std::vector<std::string> QueryExpander::Expand(
    std::string_view query, size_t num_expansion_terms) const {
  std::vector<std::string> terms = model_->analyzer().Analyze(query);
  std::vector<std::pair<std::string, double>> extra =
      ExpansionTerms(terms, num_expansion_terms);
  for (auto& [term, score] : extra) terms.push_back(term);
  return terms;
}

}  // namespace qbs

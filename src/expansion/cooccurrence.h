// Term co-occurrence statistics over sampled documents, supporting
// co-occurrence-based query expansion (paper §8).
//
// The union of per-database samples "favors no specific database, but
// reflects patterns that are common to them all. It is the appropriate
// database to use for query expansion during database selection."
#ifndef QBS_EXPANSION_COOCCURRENCE_H_
#define QBS_EXPANSION_COOCCURRENCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/analyzer.h"

namespace qbs {

/// Document-level co-occurrence model: terms co-occur when they appear in
/// the same document. Built from the union of sampled documents.
class CooccurrenceModel {
 public:
  /// `analyzer` controls the term space (default: lowercase + stem +
  /// stopword removal, so expansion terms are content words).
  CooccurrenceModel() : CooccurrenceModel(Analyzer::InqueryLike()) {}
  explicit CooccurrenceModel(Analyzer analyzer);

  /// Adds one raw document.
  void AddDocument(std::string_view text);

  /// Number of documents added.
  size_t num_docs() const { return doc_terms_.size(); }

  /// Document frequency of a term within the sample.
  uint64_t df(std::string_view term) const;

  /// Number of documents containing both terms.
  uint64_t CoDf(std::string_view a, std::string_view b) const;

  /// Expected mutual information measure (EMIM) association between the
  /// two terms, using document-level events:
  ///   emim = p(a,b) * log( p(a,b) / (p(a) * p(b)) )
  /// Returns 0 when either term is absent or they never co-occur.
  double Emim(std::string_view a, std::string_view b) const;

  /// The `k` terms most associated (by EMIM) with `term`, excluding `term`
  /// itself and terms occurring in fewer than `min_df` documents.
  std::vector<std::pair<std::string, double>> TopAssociates(
      std::string_view term, size_t k, uint64_t min_df = 2) const;

  const Analyzer& analyzer() const { return analyzer_; }

 private:
  using TermId = uint32_t;

  TermId Intern(const std::string& term);

  Analyzer analyzer_;
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> term_text_;
  std::vector<uint64_t> term_df_;
  // doc -> sorted unique term ids.
  std::vector<std::vector<TermId>> doc_terms_;
  // term -> docs containing it.
  std::vector<std::vector<uint32_t>> term_docs_;
};

/// Expands a query with co-occurrence associates of its terms.
class QueryExpander {
 public:
  /// `model` must outlive the expander.
  explicit QueryExpander(const CooccurrenceModel* model);

  /// Returns up to `num_expansion_terms` terms associated with the query
  /// as a whole (summed EMIM across query terms), excluding the original
  /// query terms.
  std::vector<std::pair<std::string, double>> ExpansionTerms(
      const std::vector<std::string>& query_terms,
      size_t num_expansion_terms) const;

  /// Convenience: analyzes `query`, appends the top expansion terms, and
  /// returns the expanded term vector (original terms first).
  std::vector<std::string> Expand(std::string_view query,
                                  size_t num_expansion_terms) const;

 private:
  const CooccurrenceModel* model_;
};

}  // namespace qbs

#endif  // QBS_EXPANSION_COOCCURRENCE_H_

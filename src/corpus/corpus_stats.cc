#include "corpus/corpus_stats.h"

namespace qbs {

CorpusStats ComputeCorpusStats(const SearchEngine& engine) {
  CorpusStats stats;
  stats.name = engine.name();
  stats.bytes = engine.store().text_bytes();
  stats.num_docs = engine.index().num_docs();
  stats.unique_terms = engine.index().unique_terms();
  stats.total_terms = engine.index().total_terms();
  return stats;
}

}  // namespace qbs

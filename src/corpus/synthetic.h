// Synthetic text-corpus generation.
//
// The paper evaluates on CACM (small, homogeneous), WSJ88 (medium,
// heterogeneous prose), and TREC-123 (large, very heterogeneous). Those
// corpora are proprietary TREC CDs, so we substitute a generator that
// reproduces the statistical properties the paper's findings rest on:
//
//   * Zipf-Mandelbrot term frequencies (a few very frequent terms, a huge
//     tail of rare ones — §3, §4.3.1 citing [16]),
//   * Heaps-law vocabulary growth (vocabulary grows without bound as more
//     documents are seen — §3),
//   * topical structure with controllable homogeneity (documents are
//     mixtures of topic distributions; more topics and weaker mixing =
//     more heterogeneous),
//   * function-word (stopword) mass interleaved in the running text.
//
// Generation is deterministic given the spec's seed.
#ifndef QBS_CORPUS_SYNTHETIC_H_
#define QBS_CORPUS_SYNTHETIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "search/search_engine.h"
#include "util/status.h"

namespace qbs {

/// Parameters of one synthetic corpus.
struct SyntheticCorpusSpec {
  /// Corpus name; document names are "<name>-<i>".
  std::string name = "synthetic";

  /// Number of documents to generate.
  uint32_t num_docs = 1000;

  /// Maximum rank of the background Zipf-Mandelbrot vocabulary. Set several
  /// times larger than the expected distinct-term count so the tail stays
  /// open-ended (Heaps-law growth).
  uint64_t vocab_size = 200'000;

  /// Background Zipf exponent (s > 1 gives a convergent tail with many
  /// hapax legomena, matching real text).
  double zipf_s = 1.15;

  /// Zipf-Mandelbrot shift (flattens the very top of the distribution).
  double zipf_q = 2.7;

  /// Number of latent topics. Fewer topics = more homogeneous corpus.
  uint32_t num_topics = 16;

  /// Number of content terms in each topic's focus vocabulary.
  uint32_t topic_vocab_size = 2'000;

  /// Zipf exponent within a topic's focus vocabulary.
  double topic_zipf_s = 1.05;

  /// Fraction of the global vocabulary forming the band topic focus terms
  /// are drawn from. Smaller bands make topics *share* their focus
  /// vocabulary (as real topical text does: different topics recombine the
  /// same mid-frequency words), which concentrates topical mass and makes
  /// it learnable; larger bands make topics mutually exclusive.
  double topic_band_fraction = 0.25;

  /// Probability that a content token is drawn from the document's topic
  /// mixture rather than the background distribution.
  double topic_mix = 0.35;

  /// Maximum number of topics mixed into one document (1 = single-topic
  /// documents; higher values and more topics = heterogeneous).
  uint32_t topics_per_doc_max = 2;

  /// Probability that a token is a function word (stopword). Real running
  /// English is roughly 40-50% function words.
  double function_word_prob = 0.42;

  /// Word burstiness ("adaptation"): probability that a content token
  /// repeats one of the document's earlier content tokens instead of being
  /// drawn fresh. Real text is strongly bursty — a content word used once
  /// in a document tends to recur — which is what keeps per-document
  /// vocabularies small and the corpus-wide frequency head heavy.
  double burstiness = 0.30;

  /// Document length (content+function tokens) ~ LogNormal(mu, sigma),
  /// clamped to at least min_doc_length.
  double doc_length_mu = 4.8;     // exp(4.8) ~ 122 tokens
  double doc_length_sigma = 0.5;
  uint32_t min_doc_length = 12;

  /// Content words injected at the top of topic focus vocabularies, e.g.
  /// product names for a support knowledge base. Distributed round-robin
  /// across topics.
  std::vector<std::string> theme_terms;

  /// Probability that a topic-drawn token is re-routed to one of the
  /// topic's theme terms (only meaningful when theme_terms is non-empty).
  double theme_prob = 0.12;

  /// RNG seed; the same spec always generates the same corpus.
  uint64_t seed = 42;
};

/// Scales document counts by the QBS_SCALE environment variable (a float;
/// default 1.0). Lets CI and quick local runs shrink every experiment
/// uniformly without touching code.
uint32_t ScaledDocCount(uint32_t num_docs);

/// Presets mirroring the paper's three test corpora (Table 1) plus the
/// Microsoft-support-style database of Table 4. Document counts are scaled
/// (≈3.2k / 40k / 240k) to keep experiments laptop-sized; the size *ratios*
/// and homogeneity ordering follow the paper.
SyntheticCorpusSpec CacmLikeSpec();
SyntheticCorpusSpec Wsj88LikeSpec();
SyntheticCorpusSpec Trec123LikeSpec();
SyntheticCorpusSpec SupportKbLikeSpec();

/// Deterministically maps a global term id to a pronounceable pseudo-word
/// (lowercase a-z, length >= 3, unique per id).
std::string SyntheticWordForId(uint64_t id);

/// Generates the corpus, invoking `sink(doc_name, text)` for each document
/// in order. Returns InvalidArgument for inconsistent specs.
Status GenerateSyntheticCorpus(
    const SyntheticCorpusSpec& spec,
    const std::function<void(const std::string& name, const std::string& text)>&
        sink);

/// Convenience: generates the corpus straight into a new SearchEngine.
Result<std::unique_ptr<SearchEngine>> BuildSyntheticEngine(
    const SyntheticCorpusSpec& spec,
    SearchEngineOptions engine_options = SearchEngineOptions());

}  // namespace qbs

#endif  // QBS_CORPUS_SYNTHETIC_H_

// Corpus-level statistics, matching the columns of the paper's Table 1.
#ifndef QBS_CORPUS_CORPUS_STATS_H_
#define QBS_CORPUS_CORPUS_STATS_H_

#include <cstdint>
#include <string>

#include "search/search_engine.h"

namespace qbs {

/// Table 1 row: size in bytes / documents / unique terms / total terms.
struct CorpusStats {
  std::string name;
  uint64_t bytes = 0;
  uint64_t num_docs = 0;
  uint64_t unique_terms = 0;
  uint64_t total_terms = 0;

  /// Mean indexed document length.
  double avg_doc_length() const {
    return num_docs == 0 ? 0.0
                         : static_cast<double>(total_terms) / num_docs;
  }
};

/// Computes the stats of an engine's corpus. Term counts are post-analysis
/// index terms, matching how the paper's Table 1 counts its (stemmed,
/// stopped) INQUERY indexes.
CorpusStats ComputeCorpusStats(const SearchEngine& engine);

}  // namespace qbs

#endif  // QBS_CORPUS_CORPUS_STATS_H_

#include "corpus/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/random.h"

namespace qbs {

namespace {

// Syllable alphabet for pseudo-words. 'x' and 'q' are excluded so injected
// real-English theme terms are unlikely to collide with generated words.
constexpr const char* kConsonants = "bcdfghjklmnprstvwyz";  // 19
constexpr const char* kVowels = "aeiou";                    // 5
constexpr uint64_t kNumSyllables = 19 * 5;                  // 95

// Common English function words with roughly Zipfian weights, interleaved
// into generated text. All of these are on the default stopword list, so
// databases strip them at indexing time while learned (raw) models keep
// them — reproducing the paper's setup.
constexpr const char* kFunctionWords[] = {
    "the", "of",   "and",  "to",   "in",   "a",     "is",    "that",
    "for", "it",   "as",   "was",  "with", "be",    "by",    "on",
    "not", "he",   "this", "are",  "or",   "his",   "from",  "at",
    "which", "but", "have", "an",  "had",  "they",  "you",   "were",
    "their", "one", "all",  "we",  "can",  "has",   "there", "been",
    "if",  "more", "when", "will", "would", "who",  "so",    "no",
};
constexpr size_t kNumFunctionWords =
    sizeof(kFunctionWords) / sizeof(kFunctionWords[0]);

uint64_t HashCombine(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return SplitMix64(x);
}

}  // namespace

uint32_t ScaledDocCount(uint32_t num_docs) {
  static const double scale = [] {
    const char* env = std::getenv("QBS_SCALE");
    if (env == nullptr) return 1.0;
    double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  double scaled = num_docs * scale;
  return static_cast<uint32_t>(std::max(scaled, 64.0));
}

std::string SyntheticWordForId(uint64_t id) {
  // Bijective base-95 numeration starting at the first 2-syllable word, so
  // every generated word is unique and at least 4 characters (query terms
  // must be >= 3 characters, paper §4.4).
  uint64_t n = id + kNumSyllables + 1;
  std::string out;
  while (n > 0) {
    uint64_t d = (n - 1) % kNumSyllables;
    out.push_back(kConsonants[d / 5]);
    out.push_back(kVowels[d % 5]);
    n = (n - 1) / kNumSyllables;
  }
  return out;
}

SyntheticCorpusSpec CacmLikeSpec() {
  SyntheticCorpusSpec spec;
  spec.name = "cacm-like";
  spec.num_docs = ScaledDocCount(3'204);
  spec.vocab_size = 40'000;
  spec.zipf_s = 1.35;
  spec.num_topics = 6;           // homogeneous: few, strongly shared topics
  spec.topic_vocab_size = 600;
  spec.topic_zipf_s = 1.50;
  spec.topic_band_fraction = 0.05;   // topics share most focus vocabulary
  spec.topic_mix = 0.45;
  spec.topics_per_doc_max = 2;
  spec.doc_length_mu = 3.9;      // exp(3.9) ~ 50 tokens: titles + abstracts
  spec.doc_length_sigma = 0.45;
  spec.seed = 1001;
  return spec;
}

SyntheticCorpusSpec Wsj88LikeSpec() {
  SyntheticCorpusSpec spec;
  spec.name = "wsj88-like";
  spec.num_docs = ScaledDocCount(39'904);
  spec.vocab_size = 500'000;
  spec.zipf_s = 1.25;
  spec.num_topics = 48;          // one newspaper's beats: moderately diverse
  spec.topic_vocab_size = 1'500;
  spec.topic_zipf_s = 1.50;
  spec.topic_band_fraction = 0.08;
  spec.topic_mix = 0.35;
  spec.topics_per_doc_max = 2;
  spec.doc_length_mu = 5.0;      // exp(5.0) ~ 148 tokens: news articles
  spec.doc_length_sigma = 0.55;
  spec.seed = 1002;
  return spec;
}

SyntheticCorpusSpec Trec123LikeSpec() {
  SyntheticCorpusSpec spec;
  spec.name = "trec123-like";
  // The real TREC-123 has 1,078,166 documents; we scale to 240k to keep
  // every bench binary runnable in minutes while preserving the ordering
  // CACM << WSJ88 << TREC-123 (75x the CACM-like corpus).
  spec.num_docs = ScaledDocCount(240'000);
  spec.vocab_size = 1'500'000;
  spec.zipf_s = 1.45;
  spec.zipf_q = 10.0;            // Mandelbrot shift: flatter very-top
  spec.num_topics = 400;         // news + magazines + abstracts + government
  spec.topic_vocab_size = 2'000;
  spec.topic_zipf_s = 1.80;
  spec.topic_band_fraction = 0.03;
  spec.topic_mix = 0.35;
  spec.burstiness = 0.45;        // long heterogeneous docs repeat heavily
  spec.topics_per_doc_max = 3;
  spec.doc_length_mu = 4.95;     // exp(4.95) ~ 141 tokens
  spec.doc_length_sigma = 0.70;  // widest length spread of the three
  spec.seed = 1003;
  return spec;
}

SyntheticCorpusSpec SupportKbLikeSpec() {
  SyntheticCorpusSpec spec;
  spec.name = "supportkb-like";
  spec.num_docs = ScaledDocCount(12'000);
  spec.vocab_size = 300'000;
  spec.zipf_s = 1.18;
  spec.num_topics = 12;  // product areas
  spec.topic_vocab_size = 1'500;
  spec.topic_band_fraction = 0.10;
  spec.topic_mix = 0.45;
  spec.topics_per_doc_max = 1;  // a support article covers one product
  spec.doc_length_mu = 4.7;
  spec.doc_length_sigma = 0.5;
  spec.seed = 1004;
  spec.theme_terms = {
      "microsoft", "windows", "excel",    "word",     "access",  "foxpro",
      "office",    "visual",  "basic",    "server",   "internet", "mail",
      "printer",   "setup",   "error",    "file",     "database", "macro",
      "network",   "driver",  "install",  "registry", "toolbar",  "dialog",
      "spreadsheet", "workbook", "query",  "report",   "font",     "cell",
      "formula",   "menu",    "folder",   "message",  "version",  "update",
  };
  spec.theme_prob = 0.25;  // featured product repeats within its article
  return spec;
}

namespace {

// Precomputed per-topic state.
struct Topic {
  std::vector<uint64_t> focus;        // slot -> global term id
  std::vector<uint32_t> theme_slots;  // indices into spec.theme_terms
};

constexpr uint32_t kNoTheme = 0xFFFFFFFFu;

// One topic participating in a document, with its featured theme term.
struct DocTopic {
  uint32_t topic = 0;
  uint32_t featured_theme = kNoTheme;
};

class Generator {
 public:
  explicit Generator(const SyntheticCorpusSpec& spec)
      : spec_(spec),
        rng_(spec.seed),
        background_(spec.vocab_size, spec.zipf_s, spec.zipf_q),
        topic_zipf_(spec.topic_vocab_size, spec.topic_zipf_s),
        function_words_(FunctionWordWeights()) {
    BuildTopics();
  }

  void Run(const std::function<void(const std::string&, const std::string&)>&
               sink) {
    std::string text;
    for (uint32_t d = 0; d < spec_.num_docs; ++d) {
      text.clear();
      GenerateDocument(d, text);
      sink(spec_.name + "-" + std::to_string(d), text);
    }
  }

 private:
  static std::vector<double> FunctionWordWeights() {
    std::vector<double> w(kNumFunctionWords);
    for (size_t i = 0; i < kNumFunctionWords; ++i) w[i] = 1.0 / (i + 2.0);
    return w;
  }

  void BuildTopics() {
    topics_.resize(spec_.num_topics);
    // Topic focus terms come from the mid-frequency band of the global
    // vocabulary: frequent enough to matter, rare enough to be topical.
    uint64_t band_lo = std::max<uint64_t>(spec_.vocab_size / 400, 64);
    uint64_t band_width = std::max<uint64_t>(
        static_cast<uint64_t>(spec_.vocab_size * spec_.topic_band_fraction),
        spec_.topic_vocab_size * 2);
    for (uint32_t t = 0; t < spec_.num_topics; ++t) {
      Topic& topic = topics_[t];
      topic.focus.resize(spec_.topic_vocab_size);
      for (uint32_t i = 0; i < spec_.topic_vocab_size; ++i) {
        uint64_t h = HashCombine(HashCombine(spec_.seed, t + 1), i + 1);
        topic.focus[i] = band_lo + (h % band_width);
      }
    }
    for (uint32_t j = 0; j < spec_.theme_terms.size(); ++j) {
      topics_[j % spec_.num_topics].theme_slots.push_back(j);
    }
  }

  void GenerateDocument(uint32_t doc_index, std::string& text) {
    (void)doc_index;
    uint32_t length = static_cast<uint32_t>(
        rng_.LogNormal(spec_.doc_length_mu, spec_.doc_length_sigma));
    length = std::max(length, spec_.min_doc_length);

    // Pick this document's topic mixture. Theme usage is bursty: a
    // document features ONE theme term per topic and repeats it (a support
    // article about Excel mentions "excel" many times), which is what
    // gives theme terms their high avg_tf signature (paper Table 4).
    uint32_t k = 1 + static_cast<uint32_t>(
                         rng_.UniformBelow(spec_.topics_per_doc_max));
    std::vector<DocTopic> doc_topics(k);
    for (uint32_t i = 0; i < k; ++i) {
      doc_topics[i].topic =
          static_cast<uint32_t>(rng_.UniformBelow(spec_.num_topics));
      const Topic& topic = topics_[doc_topics[i].topic];
      doc_topics[i].featured_theme =
          topic.theme_slots.empty()
              ? kNoTheme
              : topic.theme_slots[rng_.UniformBelow(
                    topic.theme_slots.size())];
    }

    uint32_t sentence_len = 0;
    uint32_t next_break = NextSentenceLength();
    bool capitalize = true;
    doc_content_words_.clear();
    for (uint32_t i = 0; i < length; ++i) {
      std::string word = NextWord(doc_topics);
      if (capitalize && !word.empty()) {
        word[0] = static_cast<char>(word[0] - 'a' + 'A');
        capitalize = false;
      }
      if (!text.empty()) text.push_back(' ');
      text.append(word);
      if (++sentence_len >= next_break) {
        text.push_back('.');
        sentence_len = 0;
        next_break = NextSentenceLength();
        capitalize = true;
      } else if (rng_.Bernoulli(0.04)) {
        text.push_back(',');
      }
    }
    if (!text.empty() && text.back() != '.') text.push_back('.');
  }

  uint32_t NextSentenceLength() {
    return 8 + static_cast<uint32_t>(rng_.UniformBelow(11));  // 8..18 words
  }

  std::string NextWord(const std::vector<DocTopic>& doc_topics) {
    if (rng_.Bernoulli(spec_.function_word_prob)) {
      return kFunctionWords[function_words_.Sample(rng_)];
    }
    // Burstiness: repeat one of the document's *recent* content words.
    // The window keeps repetition spread over several words instead of
    // letting one word dominate a document (which would make tf-ranked
    // retrieval prefer degenerate, vocabulary-poor documents).
    if (!doc_content_words_.empty() && rng_.Bernoulli(spec_.burstiness)) {
      constexpr size_t kBurstWindow = 16;
      size_t window = std::min(doc_content_words_.size(), kBurstWindow);
      size_t start = doc_content_words_.size() - window;
      return doc_content_words_[start + rng_.UniformBelow(window)];
    }
    std::string word;
    if (rng_.Bernoulli(spec_.topic_mix)) {
      const DocTopic& dt =
          doc_topics[rng_.UniformBelow(doc_topics.size())];
      if (dt.featured_theme != kNoTheme && rng_.Bernoulli(spec_.theme_prob)) {
        word = spec_.theme_terms[dt.featured_theme];
      } else {
        uint64_t slot = topic_zipf_.Sample(rng_) - 1;  // ranks are 1-based
        word = SyntheticWordForId(topics_[dt.topic].focus[slot]);
      }
    } else {
      word = SyntheticWordForId(background_.Sample(rng_) - 1);
    }
    doc_content_words_.push_back(word);
    return word;
  }

  const SyntheticCorpusSpec& spec_;
  Rng rng_;
  ZipfSampler background_;
  ZipfSampler topic_zipf_;
  AliasSampler function_words_;
  std::vector<Topic> topics_;
  std::vector<std::string> doc_content_words_;  // per-doc burstiness pool
};

Status ValidateSpec(const SyntheticCorpusSpec& spec) {
  if (spec.num_docs == 0) {
    return Status::InvalidArgument("num_docs must be positive");
  }
  if (spec.vocab_size == 0) {
    return Status::InvalidArgument("vocab_size must be positive");
  }
  if (spec.num_topics == 0) {
    return Status::InvalidArgument("num_topics must be positive");
  }
  if (spec.topic_vocab_size == 0) {
    return Status::InvalidArgument("topic_vocab_size must be positive");
  }
  if (spec.topics_per_doc_max == 0) {
    return Status::InvalidArgument("topics_per_doc_max must be positive");
  }
  if (spec.zipf_s <= 0.0 || spec.topic_zipf_s <= 0.0) {
    return Status::InvalidArgument("zipf exponents must be positive");
  }
  if (spec.topic_band_fraction <= 0.0 || spec.topic_band_fraction > 1.0) {
    return Status::InvalidArgument("topic_band_fraction must be in (0, 1]");
  }
  if (spec.topic_mix < 0.0 || spec.topic_mix > 1.0 ||
      spec.function_word_prob < 0.0 || spec.function_word_prob > 1.0 ||
      spec.theme_prob < 0.0 || spec.theme_prob > 1.0 ||
      spec.burstiness < 0.0 || spec.burstiness >= 1.0) {
    return Status::InvalidArgument("probabilities must be within [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Status GenerateSyntheticCorpus(
    const SyntheticCorpusSpec& spec,
    const std::function<void(const std::string&, const std::string&)>& sink) {
  QBS_RETURN_IF_ERROR(ValidateSpec(spec));
  Generator gen(spec);
  gen.Run(sink);
  return Status::OK();
}

Result<std::unique_ptr<SearchEngine>> BuildSyntheticEngine(
    const SyntheticCorpusSpec& spec, SearchEngineOptions engine_options) {
  auto engine =
      std::make_unique<SearchEngine>(spec.name, std::move(engine_options));
  Status add_status = Status::OK();
  Status gen_status = GenerateSyntheticCorpus(
      spec, [&](const std::string& name, const std::string& text) {
        if (!add_status.ok()) return;
        add_status = engine->AddDocument(name, text);
      });
  QBS_RETURN_IF_ERROR(gen_status);
  QBS_RETURN_IF_ERROR(add_status);
  engine->FinishLoading();
  return engine;
}

}  // namespace qbs

#include "corpus/trec_parser.h"

#include <fstream>
#include <istream>

#include "util/string_util.h"

namespace qbs {

namespace {

// True if `line` starts with `tag` (after optional leading whitespace);
// tags in TREC data are uppercase and start a line.
bool LineStartsWith(std::string_view line, std::string_view tag) {
  std::string_view t = TrimWhitespace(line);
  return t.substr(0, tag.size()) == tag;
}

// Extracts content between ">" of an opening tag and "<" of the closing tag
// on the same line, e.g. "<DOCNO> X </DOCNO>" -> "X".
std::string InlineTagContent(std::string_view line) {
  size_t open = line.find('>');
  size_t close = line.rfind('<');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close <= open) {
    return "";
  }
  return std::string(TrimWhitespace(line.substr(open + 1, close - open - 1)));
}

}  // namespace

Result<TrecParseStats> ParseTrecStream(
    std::istream& in,
    const std::function<void(const std::string&, const std::string&)>& sink) {
  TrecParseStats stats;
  std::string line;
  bool in_doc = false;
  bool in_text = false;
  std::string docno;
  std::string text;
  uint64_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    stats.bytes += line.size() + 1;
    if (!in_doc) {
      if (LineStartsWith(line, "<DOC>")) {
        in_doc = true;
        docno.clear();
        text.clear();
      }
      continue;
    }
    if (LineStartsWith(line, "<DOC>")) {
      // A <DOC> inside an open document means the previous one never
      // closed; resynchronizing silently would attribute the remainder
      // of the file to the wrong documents.
      return Status::Corruption("nested <DOC> at line " +
                                std::to_string(line_no) +
                                " (previous document not closed)");
    }
    if (in_text) {
      if (LineStartsWith(line, "</TEXT>") || LineStartsWith(line, "</TITLE>") ||
          LineStartsWith(line, "</HEADLINE>")) {
        in_text = false;
      } else {
        text.append(line);
        text.push_back('\n');
      }
      continue;
    }
    if (LineStartsWith(line, "</DOC>")) {
      if (docno.empty()) {
        return Status::Corruption("document without <DOCNO> ending at line " +
                                  std::to_string(line_no));
      }
      sink(docno, text);
      ++stats.docs;
      in_doc = false;
      continue;
    }
    if (LineStartsWith(line, "<DOCNO>")) {
      docno = InlineTagContent(line);
      continue;
    }
    if (LineStartsWith(line, "<TEXT>") || LineStartsWith(line, "<TITLE>") ||
        LineStartsWith(line, "<HEADLINE>")) {
      // Content may begin on the tag line itself: "<TEXT> first words".
      std::string_view rest = TrimWhitespace(line);
      size_t gt = rest.find('>');
      if (gt != std::string_view::npos && gt + 1 < rest.size()) {
        std::string_view inline_part = TrimWhitespace(rest.substr(gt + 1));
        if (!inline_part.empty()) {
          text.append(inline_part);
          text.push_back('\n');
        }
      }
      in_text = true;
      continue;
    }
    // Other tags (<FILEID>, <HL>, <DATELINE>, ...) are skipped.
  }

  if (in_doc) {
    return Status::Corruption("unterminated <DOC> at end of input");
  }
  return stats;
}

Result<TrecParseStats> ParseTrecFile(
    const std::string& path,
    const std::function<void(const std::string&, const std::string&)>& sink) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open TREC file: " + path);
  }
  return ParseTrecStream(in, sink);
}

}  // namespace qbs

// Parser for the TREC SGML document interchange format, so the experiments
// can run on the paper's real corpora when the (licensed) TREC CDs are
// available locally.
//
// Recognized structure:
//   <DOC>
//     <DOCNO> WSJ880102-0001 </DOCNO>
//     ... other tags ignored ...
//     <TEXT> body text, possibly spanning lines </TEXT>   (repeatable)
//   </DOC>
#ifndef QBS_CORPUS_TREC_PARSER_H_
#define QBS_CORPUS_TREC_PARSER_H_

#include <functional>
#include <iosfwd>
#include <string>

#include "util/status.h"

namespace qbs {

/// Statistics returned by the parser.
struct TrecParseStats {
  uint64_t docs = 0;
  uint64_t bytes = 0;
};

/// Parses a TREC-format stream, invoking `sink(docno, text)` per document.
/// `text` is the concatenation of all <TEXT> sections (plus <TITLE> and
/// <HEADLINE> if present). Returns Corruption on structurally invalid
/// input (e.g. <DOC> without </DOC> at EOF, or a document missing DOCNO).
Result<TrecParseStats> ParseTrecStream(
    std::istream& in,
    const std::function<void(const std::string& docno,
                             const std::string& text)>& sink);

/// Opens and parses a TREC-format file.
Result<TrecParseStats> ParseTrecFile(
    const std::string& path,
    const std::function<void(const std::string& docno,
                             const std::string& text)>& sink);

}  // namespace qbs

#endif  // QBS_CORPUS_TREC_PARSER_H_

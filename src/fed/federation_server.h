// FederationServer: a FederatedSelector on a TCP port. To clients it
// looks exactly like one big broker — the same v3 select /
// broker_status RPCs, answered by scatter-gathering the shard fleet —
// plus the v5 shard_info RPC exposing the topology underneath.
//
// Overload policy mirrors BrokerServer: federated selects are bounded
// by an AdmissionController and shed with kUnavailable; control RPCs
// (ping, server_info, broker_status, shard_info) are never shed, so the
// front-end stays observable while saturated.
#ifndef QBS_FED_FEDERATION_SERVER_H_
#define QBS_FED_FEDERATION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "broker/broker_server.h"
#include "fed/federated_selector.h"
#include "net/frame_server.h"
#include "net/wire.h"

namespace qbs {

struct FederationServerOptions {
  /// Bind address; the default serves loopback only.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads == maximum concurrently executing requests.
  size_t num_workers = 4;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Highest protocol version this server speaks. A federation
  /// front-end wants v5 (shard_info); v3 still serves plain selects.
  uint32_t max_protocol_version = kWireProtocolVersion;
  /// Embedded admin HTTP endpoint: port to bind, 0 for ephemeral,
  /// negative (default) for none.
  int32_t admin_port = -1;
  std::string admin_host = "127.0.0.1";
  size_t max_write_queue_bytes = 4u << 20;
  size_t max_pipelined_requests = 64;
  uint64_t idle_timeout_us = 0;
  /// Name advertised in server_info.
  std::string name = "qbs-fed";
  /// Overload policy for federated Select requests.
  AdmissionOptions admission;
};

/// An event-loop TCP server fronting one FederatedSelector. Thread-safe
/// (the selector fans out concurrently from any number of workers). The
/// selector must outlive the server.
class FederationServer : public FrameServer {
 public:
  FederationServer(FederatedSelector* selector,
                   FederationServerOptions options);
  /// Stops the server (Stop()) if still running.
  ~FederationServer() override;

  /// Select requests shed by admission control so far.
  uint64_t shed() const { return admission_.shed(); }

 protected:
  WireResponse Handle(const WireRequest& request) override;

 private:
  FederatedSelector* selector_;
  std::string name_;
  AdmissionController admission_;
  std::atomic<uint64_t> selects_{0};
};

}  // namespace qbs

#endif  // QBS_FED_FEDERATION_SERVER_H_

// FederatedSelector: scatter-gather Select across a fleet of shard
// brokers, score-faithful to a single broker holding the union of the
// shards' databases.
//
// Why two phases: every ranker's scores depend on collection-global
// statistics — CORI's cf and average cw, vGlOSS's idf, KL's union
// background model. A shard ranking only its own databases with only
// its own statistics would score them against the wrong collection, and
// the merged ranking would diverge from the single-broker one. So a
// federated Select first gathers each live shard's per-term statistics
// (a v5 stats_only select, pinned to that shard's snapshot epoch),
// merges them — the statistics are saturating integer sums, so the
// merge is order-independent and equals the union collection's direct
// computation — then fans the aggregate back out (a v5 has_stats select
// pinned to the same epoch) for each shard to rank its databases with.
// Concatenate, re-sort with the ranker's own comparator (score
// descending, name ascending — a total order, names being unique), trim
// to top-k: byte-identical to the single-broker ranking.
//
// Epoch safety: a shard that republishes between the two phases refuses
// the pinned phase-2 call with FailedPrecondition, and the whole
// attempt restarts — a ranking never mixes two epochs of one shard.
// Fault tolerance: a shard that is down at phase 1 is excluded from the
// attempt and reported in down_shards with partial=true; the ranking is
// then exactly what a single broker over the live subset would return.
#ifndef QBS_FED_FEDERATED_SELECTOR_H_
#define QBS_FED_FEDERATED_SELECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "broker/selection_broker.h"
#include "fed/shard_map.h"
#include "net/wire.h"
#include "net/wire_client.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qbs {

struct FederatedSelectorOptions {
  /// Shard broker addresses, "host:port". Order defines shard indices
  /// (and the ShardMap identity).
  std::vector<std::string> shards;
  /// Consistent-hash smoothing for the placement map (docs only —
  /// selection itself asks every shard; placement is for loaders).
  size_t vnodes_per_shard = 64;
  /// Threads fanning RPCs out to shards. Clamped to at least 1;
  /// RPCs beyond this run inline on the calling thread.
  size_t fanout_threads = 8;
  /// Full two-phase attempts per Select before giving up. An attempt
  /// restarts when a shard republishes between phases or fails phase 2.
  size_t max_query_attempts = 4;
  /// Per-shard transport settings; host/port/jitter_seed are overridden
  /// per shard, the rest (timeouts, retries, connector seam) apply to
  /// every shard client.
  WireClientOptions client_template;
};

/// Live view of one shard, for /statusz and the shard_info RPC.
/// (`ShardStatusInfo` itself is declared in net/wire.h, as shard_info
/// responses carry it.)
class FederatedSelector {
 public:
  explicit FederatedSelector(FederatedSelectorOptions options);
  ~FederatedSelector();

  FederatedSelector(const FederatedSelector&) = delete;
  FederatedSelector& operator=(const FederatedSelector&) = delete;

  /// The federated ranking. On success, result.partial tells whether
  /// any shard was excluded (its addresses in down_shards) and
  /// shard_epochs records the snapshot epoch each live shard answered
  /// at; result.epoch is the largest of those. Fails Unavailable when
  /// every shard is down or when max_query_attempts consecutive
  /// attempts were invalidated by shards republishing or dying
  /// mid-query (both transient, hence retryable), and InvalidArgument
  /// for an unknown ranker.
  Result<SelectionResult> Select(const std::string& query,
                                 const std::string& ranker_name,
                                 size_t top_k = 0);

  /// Probes every shard (broker_status) and returns one row per shard,
  /// in shard order: healthy=false rows carry zero epoch/databases.
  std::vector<ShardStatusInfo> ShardStatus();

  /// The last health observation per shard (updated by Select and
  /// ShardStatus), without touching the network. All-healthy before
  /// any call.
  std::vector<ShardStatusInfo> LastKnownShardStatus() const;

  const ShardMap& shard_map() const { return map_; }

 private:
  struct Shard {
    std::string address;
    std::unique_ptr<WireClient> client;
    /// Health board for /statusz: last observation, not a live probe.
    std::atomic<bool> healthy{true};
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint64_t> databases{0};
  };

  /// One two-phase attempt. Sets `*retry` alongside the error return
  /// when the attempt was invalidated (a shard republished between
  /// phases, or died after phase 1) and the caller should start over.
  Result<SelectionResult> SelectAttempt(const std::string& query,
                                        const std::string& ranker_name,
                                        size_t top_k, bool* retry);

  /// Runs fn(i) for i in [0, n) across the fan-out pool and waits.
  void FanOut(size_t n, const std::function<void(size_t)>& fn);

  FederatedSelectorOptions options_;
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace qbs

#endif  // QBS_FED_FEDERATED_SELECTOR_H_

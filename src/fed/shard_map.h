// ShardMap: deterministic placement of database names onto shard
// brokers by consistent hashing.
//
// Each shard address is expanded into a fixed number of virtual nodes
// on a 64-bit FNV-1a hash ring; a database name hashes to a point and
// is owned by the first virtual node clockwise from it. Consistent
// hashing keeps reassignment proportional to the change when shards are
// added or removed (~1/N of names move, instead of nearly all under
// `hash % N`), so replicated shard stores stay mostly valid across a
// topology change.
//
// Placement is a pure function of (shard list, vnodes_per_shard): every
// loader, federator, and test that constructs the same map computes the
// same owner for every name, with no coordination. version() digests
// that identity so two processes can cheaply check they agree before
// trusting each other's placement.
#ifndef QBS_FED_SHARD_MAP_H_
#define QBS_FED_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qbs {

struct ShardMapOptions {
  /// Virtual nodes per shard on the hash ring. More vnodes smooth the
  /// load split between shards at the cost of a larger ring (lookup is
  /// a binary search either way). Clamped to at least 1.
  size_t vnodes_per_shard = 64;
};

/// Immutable after construction; safe to share across threads.
class ShardMap {
 public:
  /// `shard_addresses` is the ordered shard list ("host:port" strings).
  /// Order matters to identity: the same addresses in a different order
  /// are a different map version (indices shift), though hash placement
  /// itself depends only on the address strings.
  explicit ShardMap(std::vector<std::string> shard_addresses,
                    ShardMapOptions options = {});

  /// Index into shards() of the shard owning `db_name`. The map must
  /// not be empty.
  size_t OwnerIndexOf(std::string_view db_name) const;

  /// Address of the shard owning `db_name`.
  const std::string& OwnerOf(std::string_view db_name) const {
    return shards_[OwnerIndexOf(db_name)];
  }

  const std::vector<std::string>& shards() const { return shards_; }
  size_t size() const { return shards_.size(); }

  /// Digest of (shard list incl. order, vnodes_per_shard). Two
  /// processes with equal versions compute identical placement.
  uint64_t version() const { return version_; }

 private:
  std::vector<std::string> shards_;
  /// (ring point, shard index), sorted ascending by point — ties broken
  /// by index so collisions resolve identically everywhere.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
  uint64_t version_ = 0;
};

}  // namespace qbs

#endif  // QBS_FED_SHARD_MAP_H_

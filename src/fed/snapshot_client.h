// Snapshot replication, client half: stream a shard broker's packed
// model-store image (v5 snapshot_fetch) into a local file that
// MappedModelStore / LoadStore can open zero-copy — how a replica
// bootstraps without re-sampling every database.
//
// The stream is epoch-pinned: the first chunk fixes the epoch, every
// later chunk asserts it, and a broker that republished mid-stream
// answers FailedPrecondition — the fetch restarts from offset 0 rather
// than splicing two epochs into one store file. The file is written
// atomically (temp + fsync + rename), so a crashed fetch never leaves a
// torn store behind.
#ifndef QBS_FED_SNAPSHOT_CLIENT_H_
#define QBS_FED_SNAPSHOT_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/wire_client.h"
#include "util/status.h"

namespace qbs {

struct SnapshotFetchOptions {
  /// Bytes requested per chunk; the server may clamp lower. 0 asks the
  /// server to pick (its own maximum).
  uint64_t chunk_bytes = 4u << 20;
  /// Whole-stream restarts tolerated (epoch changes mid-fetch) before
  /// giving up. Transport-level retries are the WireClient's business.
  size_t max_restarts = 4;
};

struct SnapshotFetchResult {
  /// The epoch of the image fetched.
  uint64_t epoch = 0;
  /// Image size in bytes (what was written to the file).
  uint64_t bytes = 0;
};

/// Fetches the broker behind `client`'s current snapshot image and
/// atomically writes it to `path`. Fails FailedPrecondition when the
/// broker has published nothing yet (retryable by the caller), and
/// Unavailable when max_restarts fetches were each invalidated by a
/// republish mid-stream.
Result<SnapshotFetchResult> FetchSnapshotToFile(
    WireClient& client, const std::string& path,
    SnapshotFetchOptions options = {});

}  // namespace qbs

#endif  // QBS_FED_SNAPSHOT_CLIENT_H_

#include "fed/shard_map.h"

#include <algorithm>

#include "util/logging.h"

namespace qbs {

namespace {

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

uint64_t Fnv1a(std::string_view data, uint64_t hash = kFnvOffset) {
  for (unsigned char c : data) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t Fnv1aU64(uint64_t value, uint64_t hash) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

// Avalanche finalizer (MurmurHash3 fmix64). Raw FNV-1a has weak
// diffusion on short inputs: names sharing a prefix and differing only
// in trailing bytes ("db-0".."db-99") hash within a span far smaller
// than one ring gap, so they would all fall to a single vnode. The
// finalizer spreads every input bit across all 64 output bits, making
// ring placement uniform for exactly the clustered names real
// collections use.
uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

ShardMap::ShardMap(std::vector<std::string> shard_addresses,
                   ShardMapOptions options)
    : shards_(std::move(shard_addresses)) {
  QBS_CHECK(!shards_.empty());
  const size_t vnodes = std::max<size_t>(size_t{1}, options.vnodes_per_shard);
  ring_.reserve(shards_.size() * vnodes);
  uint64_t version = Fnv1aU64(vnodes, kFnvOffset);
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Address bytes then length then vnode number: the length separator
    // keeps "ab"+"c" and "a"+"bc" style prefixes from colliding, and
    // the vnode counter spreads each shard over the ring.
    const uint64_t shard_hash =
        Fnv1aU64(shards_[i].size(), Fnv1a(shards_[i]));
    for (size_t v = 0; v < vnodes; ++v) {
      ring_.emplace_back(Mix64(Fnv1aU64(v, shard_hash)),
                         static_cast<uint32_t>(i));
    }
    version = Fnv1aU64(shard_hash, version);
  }
  std::sort(ring_.begin(), ring_.end());
  version_ = version;
}

size_t ShardMap::OwnerIndexOf(std::string_view db_name) const {
  const uint64_t point = Mix64(Fnv1a(db_name));
  // First vnode at or after the name's point, wrapping past the top of
  // the ring back to the smallest vnode.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(point, uint32_t{0}));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace qbs

#include "fed/federation_server.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace qbs {

namespace {

FrameServerOptions ToFrameOptions(const FederationServerOptions& options) {
  FrameServerOptions frame;
  frame.host = options.host;
  frame.port = options.port;
  frame.num_workers = options.num_workers;
  frame.max_frame_bytes = options.max_frame_bytes;
  frame.max_protocol_version = options.max_protocol_version;
  frame.admin_port = options.admin_port;
  frame.admin_host = options.admin_host;
  frame.max_write_queue_bytes = options.max_write_queue_bytes;
  frame.max_pipelined_requests = options.max_pipelined_requests;
  frame.idle_timeout_us = options.idle_timeout_us;
  return frame;
}

}  // namespace

FederationServer::FederationServer(FederatedSelector* selector,
                                   FederationServerOptions options)
    : FrameServer("FederationServer '" + options.name + "'",
                  ToFrameOptions(options)),
      selector_(selector),
      name_(options.name),
      admission_(options.admission) {
  AddStatusProvider("shards", [this] {
    return std::to_string(selector_->shard_map().size());
  });
  AddStatusProvider("shard_map_version", [this] {
    return std::to_string(selector_->shard_map().version());
  });
  // The health board: last observation per shard, no network touched —
  // /statusz must answer even while every shard is down.
  AddStatusProvider("shard_health", [this] {
    std::string out;
    for (const ShardStatusInfo& row : selector_->LastKnownShardStatus()) {
      if (!out.empty()) out += ", ";
      out += row.address;
      out += row.healthy ? " up (epoch " + std::to_string(row.epoch) + ")"
                         : " DOWN";
    }
    return out;
  });
  AddStatusProvider("shed_selects",
                    [this] { return std::to_string(admission_.shed()); });
}

FederationServer::~FederationServer() { Stop(); }

WireResponse FederationServer::Handle(const WireRequest& request) {
  WireResponse response;
  response.request_id = request.request_id;
  response.method = request.method;
  response.protocol_version = request.protocol_version;
  switch (request.method) {
    case WireMethod::kPing:
      break;
    case WireMethod::kServerInfo:
      response.server_name = name_;
      response.server_protocol_version =
          std::min(spoken_version(), request.protocol_version);
      break;
    case WireMethod::kSelect: {
      if (request.stats_only || request.has_stats) {
        // The scatter-gather sub-RPCs are what this server *issues* to
        // its shards; accepting them here would let a query re-enter
        // the federation with foreign statistics.
        response.status = Status::Unimplemented(
            "select: stats_only/has_stats are shard-broker RPCs; send a "
            "plain select to the federation front-end");
        break;
      }
      if (!admission_.Admit()) {
        response.status = Status::Unavailable(
            "federation front-end overloaded: " +
            std::to_string(admission_.inflight()) +
            " selects in flight; retry with backoff");
        break;
      }
      auto selection =
          selector_->Select(request.query, request.ranker,
                            static_cast<size_t>(request.max_results));
      if (selection.ok()) {
        selects_.fetch_add(1, std::memory_order_relaxed);
        response.epoch = selection->epoch;
        response.scores = std::move(selection->scores);
        // The federation extension rides only on v5 replies; a v3/v4
        // client still gets the plain ranking, unaware it was sharded.
        if (request.protocol_version >= kFederationMinVersion) {
          response.partial = selection->partial;
          response.down_shards = std::move(selection->down_shards);
          response.shard_epochs = std::move(selection->shard_epochs);
        }
      } else {
        response.status = selection.status();
      }
      admission_.Release();
      break;
    }
    case WireMethod::kBrokerStatus: {
      // Aggregate the fleet into one broker-shaped answer: epoch = the
      // newest shard snapshot, databases = the union count. Cache
      // fields stay zero — the front-end holds no result cache.
      BrokerStatusInfo info;
      for (const ShardStatusInfo& row : selector_->ShardStatus()) {
        if (!row.healthy) continue;
        info.epoch = std::max(info.epoch, row.epoch);
        info.databases += row.databases;
      }
      info.selects_total = selects_.load(std::memory_order_relaxed);
      info.shed_total = admission_.shed();
      response.broker = info;
      break;
    }
    case WireMethod::kShardInfo:
      response.shard_map_version = selector_->shard_map().version();
      response.shards = selector_->ShardStatus();
      break;
    case WireMethod::kSnapshotFetch:
      response.status = Status::Unimplemented(
          "snapshot_fetch: fetch snapshots from the shard broker that "
          "owns them, not the federation front-end");
      break;
    case WireMethod::kRunQuery:
    case WireMethod::kFetchDocument:
    case WireMethod::kQueryAndFetch:
    case WireMethod::kFetchBatch:
      response.status = Status::Unimplemented(
          std::string(WireMethodName(request.method)) +
          ": this server is a federation front-end, not a TextDatabase");
      break;
  }
  return response;
}

}  // namespace qbs

#include "fed/snapshot_client.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/file_io.h"

namespace qbs {

namespace {

struct SnapshotMetrics {
  Counter* bytes;
  Counter* restarts;

  static const SnapshotMetrics& Get() {
    static const SnapshotMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      SnapshotMetrics m;
      m.bytes = r.GetCounter(
          "qbs_fed_snapshot_bytes_total",
          "Snapshot image bytes streamed from shard brokers (completed "
          "and abandoned fetches both count)");
      m.restarts = r.GetCounter(
          "qbs_fed_snapshot_restarts_total",
          "Snapshot fetches restarted from offset 0 because the broker "
          "republished mid-stream");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

Result<SnapshotFetchResult> FetchSnapshotToFile(WireClient& client,
                                                const std::string& path,
                                                SnapshotFetchOptions options) {
  const SnapshotMetrics& metrics = SnapshotMetrics::Get();
  QBS_TRACE_SPAN("fed.snapshot_fetch", path);

  Status last_restart = Status::OK();
  const size_t attempts = options.max_restarts < 1 ? 1 : options.max_restarts;
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    std::string image;
    // Epoch 0 on the first chunk means "whatever you serve now"; the
    // reply pins the stream.
    uint64_t pinned_epoch = 0;
    uint64_t total = 0;
    bool restarted = false;
    do {
      WireRequest request;
      request.method = WireMethod::kSnapshotFetch;
      request.protocol_version = MinVersionForMethod(request.method);
      request.snapshot_epoch = pinned_epoch;
      request.snapshot_offset = image.size();
      request.snapshot_chunk_bytes = options.chunk_bytes;
      auto response = client.Call(std::move(request));
      if (!response.ok()) {
        if (response.status().code() == StatusCode::kFailedPrecondition &&
            pinned_epoch != 0) {
          // The broker republished under us; this image is dead.
          metrics.restarts->Increment();
          last_restart = response.status();
          restarted = true;
          break;
        }
        return response.status();
      }
      if (pinned_epoch == 0) {
        pinned_epoch = response->snapshot_epoch;
        total = response->snapshot_total_bytes;
        image.reserve(static_cast<size_t>(total));
      }
      metrics.bytes->Increment(response->snapshot_data.size());
      if (response->snapshot_data.empty() && image.size() < total) {
        return Status::Internal(
            "snapshot_fetch returned an empty chunk at offset " +
            std::to_string(image.size()) + " of " + std::to_string(total));
      }
      image += response->snapshot_data;
    } while (image.size() < total);
    if (restarted) continue;

    QBS_RETURN_IF_ERROR(WriteFileAtomic(path, image));
    SnapshotFetchResult result;
    result.epoch = pinned_epoch;
    result.bytes = image.size();
    return result;
  }
  return Status::Unavailable(
      "snapshot fetch restarted " + std::to_string(attempts) +
      " times without completing (broker republishing faster than the "
      "stream); last: " + last_restart.message());
}

}  // namespace qbs

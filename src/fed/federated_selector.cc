#include "fed/federated_selector.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace qbs {

namespace {

struct FedMetrics {
  Counter* selects;
  Counter* fanout_rpcs;
  Counter* partial_selects;
  Counter* epoch_restarts;
  Counter* shard_down;
  Histogram* select_latency_us;

  static const FedMetrics& Get() {
    static const FedMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      FedMetrics m;
      m.selects = r.GetCounter("qbs_fed_selects_total",
                               "Federated selection queries answered");
      m.fanout_rpcs = r.GetCounter(
          "qbs_fed_fanout_rpcs_total",
          "Per-shard RPCs issued by federated selects (both phases)");
      m.partial_selects = r.GetCounter(
          "qbs_fed_partial_selects_total",
          "Federated selects answered from a live subset because one or "
          "more shards were down");
      m.epoch_restarts = r.GetCounter(
          "qbs_fed_epoch_restarts_total",
          "Select attempts restarted because a shard republished its "
          "snapshot between the stats and ranking phases");
      m.shard_down = r.GetCounter(
          "qbs_fed_shard_down_total",
          "Shard probes (within selects) that found the shard unreachable "
          "or speaking a pre-federation protocol");
      m.select_latency_us = r.GetHistogram(
          "qbs_fed_select_latency_us", Histogram::LatencyBoundsUs(),
          "End-to-end federated Select latency: both fan-out phases, "
          "merge, and any epoch-conflict restarts");
      return m;
    }();
    return metrics;
  }
};

/// Splits "host:port"; check-fails on malformed input (shard lists are
/// operator configuration, validated by the CLI before reaching here).
void ParseHostPort(const std::string& address, std::string* host,
                   uint16_t* port) {
  const size_t colon = address.rfind(':');
  QBS_CHECK(colon != std::string::npos && colon + 1 < address.size());
  *host = address.substr(0, colon);
  const long parsed = std::strtol(address.c_str() + colon + 1, nullptr, 10);
  QBS_CHECK(parsed > 0 && parsed <= 65535);
  *port = static_cast<uint16_t>(parsed);
}

}  // namespace

FederatedSelector::FederatedSelector(FederatedSelectorOptions options)
    : options_(std::move(options)),
      map_(options_.shards, ShardMapOptions{options_.vnodes_per_shard}) {
  shards_.reserve(options_.shards.size());
  for (size_t i = 0; i < options_.shards.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->address = options_.shards[i];
    WireClientOptions client_options = options_.client_template;
    ParseHostPort(shard->address, &client_options.host, &client_options.port);
    // Decorrelate the per-shard retry jitter streams: shards recovering
    // together should not be retried in phase.
    client_options.jitter_seed = options_.client_template.jitter_seed + i + 1;
    shard->client = std::make_unique<WireClient>(std::move(client_options));
    shards_.push_back(std::move(shard));
  }
  pool_ = std::make_unique<ThreadPool>(
      std::max<size_t>(size_t{1}, options_.fanout_threads));
}

FederatedSelector::~FederatedSelector() = default;

void FederatedSelector::FanOut(size_t n,
                               const std::function<void(size_t)>& fn) {
  QBS_TRACE_SPAN("fed.fanout");
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Per-call completion latch. The pool's Wait() is global — concurrent
  // Selects share the pool, so waiting on "the whole pool is idle"
  // would couple unrelated queries; counting down our own tasks does
  // not.
  Mutex mu;
  CondVar done_cv;
  size_t pending = n;
  auto run_one = [&](size_t i) {
    fn(i);
    MutexLock lock(mu);
    --pending;
    // Notify while still holding the latch mutex: the waiter can only
    // observe pending == 0 (and then destroy this stack latch) after
    // this thread releases the lock, by which point the broadcast has
    // completed — released-lock notification would let the waiter free
    // the CondVar out from under a notifier that had already
    // decremented.
    done_cv.NotifyAll();
  };
  for (size_t i = 1; i < n; ++i) {
    if (!pool_->Submit([&run_one, i] { run_one(i); })) {
      // Pool shutting down (destructor racing a late Select): degrade
      // to inline execution rather than deadlocking on the latch.
      run_one(i);
    }
  }
  run_one(0);  // The calling thread is a worker too — one task stays home.
  MutexLock lock(mu);
  done_cv.Wait(mu, [&pending] { return pending == 0; });
}

Result<SelectionResult> FederatedSelector::Select(
    const std::string& query, const std::string& ranker_name, size_t top_k) {
  const FedMetrics& metrics = FedMetrics::Get();
  QBS_TRACE_SPAN("fed.select", ranker_name, CurrentRequestId());
  ScopedTimerUs timer(metrics.select_latency_us);
  metrics.selects->Increment();

  Status last_conflict = Status::OK();
  for (size_t attempt = 0; attempt < std::max<size_t>(
           size_t{1}, options_.max_query_attempts); ++attempt) {
    bool retry = false;
    auto result = SelectAttempt(query, ranker_name, top_k, &retry);
    if (!retry) return result;
    last_conflict = result.ok() ? Status::OK() : result.status();
  }
  return Status::Unavailable(
      "federated select gave up after " +
      std::to_string(options_.max_query_attempts) +
      " attempts invalidated mid-query (shards republishing or failing "
      "between phases); last: " +
      last_conflict.message());
}

Result<SelectionResult> FederatedSelector::SelectAttempt(
    const std::string& query, const std::string& ranker_name, size_t top_k,
    bool* retry) {
  const FedMetrics& metrics = FedMetrics::Get();
  *retry = false;
  const size_t n = shards_.size();

  // Phase 1: every shard's collection statistics, each pinned to the
  // epoch that shard is serving right now.
  struct Phase1 {
    bool live = false;
    uint64_t epoch = 0;
    CollectionStats stats;
    Status status;
  };
  std::vector<Phase1> gathered(n);
  FanOut(n, [&](size_t i) {
    Shard& shard = *shards_[i];
    Phase1& out = gathered[i];
    auto version = shard.client->EnsureNegotiated();
    if (!version.ok()) {
      out.status = version.status();
      return;
    }
    if (*version < kFederationMinVersion) {
      out.status = Status::FailedPrecondition(
          "shard '" + shard.address + "' negotiated protocol v" +
          std::to_string(*version) + ", which predates federation (v" +
          std::to_string(kFederationMinVersion) + ")");
      return;
    }
    metrics.fanout_rpcs->Increment();
    WireRequest request;
    request.method = WireMethod::kSelect;
    request.protocol_version = kFederationMinVersion;
    request.stats_only = true;
    request.query = query;
    auto response = shard.client->Call(std::move(request));
    if (!response.ok()) {
      out.status = response.status();
      return;
    }
    if (!response->has_stats) {
      out.status = Status::Internal("shard '" + shard.address +
                                    "' answered stats_only without stats");
      return;
    }
    out.live = true;
    out.epoch = response->epoch;
    out.stats = std::move(response->stats);
  });

  std::vector<size_t> live;
  std::vector<std::string> down;
  for (size_t i = 0; i < n; ++i) {
    shards_[i]->healthy.store(gathered[i].live, std::memory_order_relaxed);
    if (gathered[i].live) {
      shards_[i]->epoch.store(gathered[i].epoch, std::memory_order_relaxed);
      live.push_back(i);
    } else {
      metrics.shard_down->Increment();
      down.push_back(shards_[i]->address);
    }
  }
  if (live.empty()) {
    return Status::Unavailable(
        "all " + std::to_string(n) + " shards down; first: " +
        gathered[0].status.message());
  }

  // Merge is a fold of saturating integer sums — order-independent, so
  // it equals the statistics a single broker over the union collection
  // would compute directly.
  CollectionStats aggregate;
  for (size_t i : live) {
    MergeCollectionStats(aggregate, gathered[i].stats);
  }

  // Phase 2: each live shard ranks its own databases with the
  // federation-wide statistics, pinned to its phase-1 epoch. Per-shard
  // top-k is enough: any database in the global top-k is necessarily in
  // its own shard's top-k.
  struct Phase2 {
    std::vector<DatabaseScore> scores;
    Status status;
  };
  std::vector<Phase2> ranked(live.size());
  FanOut(live.size(), [&](size_t j) {
    Shard& shard = *shards_[live[j]];
    metrics.fanout_rpcs->Increment();
    WireRequest request;
    request.method = WireMethod::kSelect;
    request.protocol_version = kFederationMinVersion;
    request.has_stats = true;
    request.pinned_epoch = gathered[live[j]].epoch;
    request.stats = aggregate;
    request.query = query;
    request.ranker = ranker_name;
    request.max_results = top_k;
    auto response = shard.client->Call(std::move(request));
    if (!response.ok()) {
      ranked[j].status = response.status();
      return;
    }
    ranked[j].scores = std::move(response->scores);
  });

  for (size_t j = 0; j < live.size(); ++j) {
    const Status& status = ranked[j].status;
    if (status.ok()) continue;
    // Deterministic caller errors (unknown ranker) pass through; every
    // other phase-2 failure invalidates the attempt — either the shard
    // republished (FailedPrecondition from the epoch pin) or it died
    // after phase 1, and the next attempt's phase 1 will exclude it.
    if (status.code() == StatusCode::kInvalidArgument) return status;
    if (status.code() == StatusCode::kFailedPrecondition) {
      metrics.epoch_restarts->Increment();
    } else {
      shards_[live[j]]->healthy.store(false, std::memory_order_relaxed);
      metrics.shard_down->Increment();
    }
    *retry = true;
    return status;
  }

  SelectionResult result;
  for (size_t j = 0; j < live.size(); ++j) {
    const size_t i = live[j];
    result.shard_epochs.push_back(
        ShardEpoch{shards_[i]->address, gathered[i].epoch});
    result.epoch = std::max(result.epoch, gathered[i].epoch);
    result.scores.insert(result.scores.end(),
                         std::make_move_iterator(ranked[j].scores.begin()),
                         std::make_move_iterator(ranked[j].scores.end()));
  }
  // The rankers' own comparator (selection/db_selection.cc Finish):
  // score descending, name ascending — a total order since names are
  // unique, so the merged ranking is byte-identical to the
  // single-broker sort over the union.
  std::sort(result.scores.begin(), result.scores.end(),
            [](const DatabaseScore& a, const DatabaseScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.db_name < b.db_name;
            });
  if (top_k > 0 && result.scores.size() > top_k) {
    result.scores.resize(top_k);
  }
  result.down_shards = std::move(down);
  result.partial = !result.down_shards.empty();
  if (result.partial) metrics.partial_selects->Increment();
  return result;
}

std::vector<ShardStatusInfo> FederatedSelector::ShardStatus() {
  const FedMetrics& metrics = FedMetrics::Get();
  std::vector<ShardStatusInfo> rows(shards_.size());
  FanOut(shards_.size(), [&](size_t i) {
    Shard& shard = *shards_[i];
    ShardStatusInfo& row = rows[i];
    row.address = shard.address;
    metrics.fanout_rpcs->Increment();
    WireRequest request;
    request.method = WireMethod::kBrokerStatus;
    request.protocol_version = MinVersionForMethod(request.method);
    auto response = shard.client->Call(std::move(request));
    if (response.ok()) {
      row.healthy = true;
      row.epoch = response->broker.epoch;
      row.databases = response->broker.databases;
    }
    shard.healthy.store(row.healthy, std::memory_order_relaxed);
    shard.epoch.store(row.epoch, std::memory_order_relaxed);
    shard.databases.store(row.databases, std::memory_order_relaxed);
  });
  return rows;
}

std::vector<ShardStatusInfo> FederatedSelector::LastKnownShardStatus() const {
  std::vector<ShardStatusInfo> rows;
  rows.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStatusInfo row;
    row.address = shard->address;
    row.healthy = shard->healthy.load(std::memory_order_relaxed);
    row.epoch = shard->epoch.load(std::memory_order_relaxed);
    row.databases = shard->databases.load(std::memory_order_relaxed);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace qbs

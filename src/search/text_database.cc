#include "search/text_database.h"

#include <utility>

namespace qbs {

Result<QueryAndFetchResult> TextDatabase::QueryAndFetch(std::string_view query,
                                                        size_t max_results) {
  auto hits = RunQuery(query, max_results);
  QBS_RETURN_IF_ERROR(hits.status());
  QueryAndFetchResult result;
  result.hits = std::move(*hits);
  result.documents.reserve(result.hits.size());
  for (const SearchHit& hit : result.hits) {
    FetchedDocument doc;
    doc.handle = hit.handle;
    auto text = FetchDocument(hit.handle);
    if (text.ok()) {
      doc.text = std::move(*text);
    } else {
      doc.status = text.status();
    }
    result.documents.push_back(std::move(doc));
  }
  return result;
}

Result<std::vector<FetchedDocument>> TextDatabase::FetchBatch(
    const std::vector<std::string>& handles) {
  std::vector<FetchedDocument> documents;
  documents.reserve(handles.size());
  for (const std::string& handle : handles) {
    FetchedDocument doc;
    doc.handle = handle;
    auto text = FetchDocument(handle);
    if (text.ok()) {
      doc.text = std::move(*text);
    } else {
      doc.status = text.status();
    }
    documents.push_back(std::move(doc));
  }
  return documents;
}

}  // namespace qbs

#include "search/searcher.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace qbs {

Searcher::Searcher(const InvertedIndex* index, const Scorer* scorer)
    : index_(index), scorer_(scorer) {
  QBS_CHECK(index_ != nullptr);
  QBS_CHECK(scorer_ != nullptr);
}

std::vector<ScoredDoc> Searcher::Search(const std::vector<std::string>& terms,
                                        size_t max_results) {
  if (scores_.size() < index_->num_docs()) {
    scores_.resize(index_->num_docs(), 0.0);
  }
  CorpusStatsView corpus;
  corpus.num_docs = index_->num_docs();
  corpus.avg_doc_length = index_->avg_doc_length();

  uint64_t postings_scanned = 0;
  for (const std::string& term : terms) {
    TermId id = index_->LookupTerm(term);
    if (id == kInvalidTermId) continue;
    const PostingList& plist = index_->postings(id);
    MatchStats match;
    match.df = plist.doc_frequency();
    postings_scanned += plist.doc_frequency();
    for (auto it = plist.NewIterator(); it.Valid(); it.Next()) {
      const Posting& p = it.Get();
      match.tf = p.tf;
      match.doc_length = index_->doc_length(p.doc_id);
      double contrib = scorer_->Score(match, corpus);
      if (scores_[p.doc_id] == 0.0) touched_.push_back(p.doc_id);
      scores_[p.doc_id] += contrib;
    }
  }

  // One relaxed add per query, not per posting: the inner loop stays
  // untouched and the total is still exact.
  static Counter* const postings_counter = MetricRegistry::Default().GetCounter(
      "qbs_search_postings_scanned_total",
      "Postings visited by term-at-a-time evaluation");
  postings_counter->Increment(postings_scanned);

  std::vector<ScoredDoc> results;
  results.reserve(touched_.size());
  for (DocId doc : touched_) {
    results.push_back({doc, scores_[doc]});
    scores_[doc] = 0.0;
  }
  touched_.clear();

  auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  };
  if (max_results < results.size()) {
    std::partial_sort(results.begin(), results.begin() + max_results,
                      results.end(), better);
    results.resize(max_results);
  } else {
    std::sort(results.begin(), results.end(), better);
  }
  return results;
}

}  // namespace qbs

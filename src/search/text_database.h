// The minimal database interface the sampling service is allowed to use.
//
// The paper's central assumption (§3): "each database is capable of running
// queries and returning documents that match the queries. These are minimal
// criterion that we assume any database can satisfy." Query-based sampling
// must work through this interface and nothing else — no access to index
// statistics, vocabulary lists, or corpus metadata.
#ifndef QBS_SEARCH_TEXT_DATABASE_H_
#define QBS_SEARCH_TEXT_DATABASE_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace qbs {

/// One ranked search result: an opaque document handle plus the database's
/// (uncalibrated, database-specific) score.
struct SearchHit {
  /// Opaque handle usable with FetchDocument. Stable across queries.
  std::string handle;
  /// Retrieval score in the database's own scale.
  double score = 0.0;
};

/// One document of a batched retrieval. Each document carries its own
/// outcome: a missing document fails alone instead of failing the batch.
struct FetchedDocument {
  /// The handle this entry answers (copied from the hit or the request).
  std::string handle;
  /// Outcome of fetching this one document (NotFound for a bad handle,
  /// verbatim from the database).
  Status status;
  /// Full raw document text; meaningful only when status is OK.
  std::string text;
};

/// Result of QueryAndFetch: the ranked hits exactly as RunQuery would
/// return them, plus the corresponding documents, index-aligned.
struct QueryAndFetchResult {
  std::vector<SearchHit> hits;
  /// documents[i] answers hits[i].handle; always the same length as hits.
  std::vector<FetchedDocument> documents;
};

/// A searchable full-text database, as seen from outside.
class TextDatabase {
 public:
  virtual ~TextDatabase() = default;

  /// Human-readable database name (for reporting only).
  virtual std::string name() const = 0;

  /// Runs a free-text query and returns up to `max_results` hits, best
  /// first. An empty result is not an error (the query may simply match
  /// nothing, e.g. a term absent from this database).
  virtual Result<std::vector<SearchHit>> RunQuery(std::string_view query,
                                                  size_t max_results) = 0;

  /// Returns the full raw text of a document previously returned by
  /// RunQuery. Fails with NotFound for unknown handles.
  virtual Result<std::string> FetchDocument(std::string_view handle) = 0;

  /// Runs a query and retrieves the documents behind every hit in one
  /// call. Semantically identical to RunQuery followed by FetchDocument
  /// per hit (the default implementation is exactly that composition);
  /// implementations backed by a wire protocol collapse the whole round
  /// into a single RPC. Only the query itself can fail the call —
  /// per-document fetch outcomes travel in FetchedDocument::status.
  virtual Result<QueryAndFetchResult> QueryAndFetch(std::string_view query,
                                                    size_t max_results);

  /// Fetches several documents in one call, results index-aligned with
  /// `handles`. Per-document failures (e.g. NotFound) are carried in the
  /// corresponding FetchedDocument::status; the call itself only fails
  /// when the batch as a whole could not be attempted.
  virtual Result<std::vector<FetchedDocument>> FetchBatch(
      const std::vector<std::string>& handles);
};

}  // namespace qbs

#endif  // QBS_SEARCH_TEXT_DATABASE_H_

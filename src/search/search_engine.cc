#include "search/search_engine.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/structured_searcher.h"
#include "util/logging.h"

namespace qbs {

namespace {

struct SearchMetrics {
  Counter* queries;
  Histogram* query_latency_us;

  static const SearchMetrics& Get() {
    static const SearchMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      SearchMetrics m;
      m.queries = r.GetCounter("qbs_search_queries_total",
                               "Queries answered by in-process engines");
      m.query_latency_us =
          r.GetHistogram("qbs_search_query_latency_us",
                         Histogram::LatencyBoundsUs(),
                         "End-to-end RunQuery latency inside engines (us)");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

SearchEngine::SearchEngine(std::string name, SearchEngineOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  scorer_ = MakeScorer(options_.scorer);
  QBS_CHECK(scorer_ != nullptr);  // invalid scorer name is a programming error
  searcher_ = std::make_unique<Searcher>(&index_, scorer_.get());
  structured_searcher_ =
      std::make_unique<StructuredSearcher>(&index_, &options_.analyzer);
}

SearchEngine::~SearchEngine() = default;

Result<std::unique_ptr<SearchEngine>> SearchEngine::FromParts(
    std::string name, SearchEngineOptions options, InvertedIndex index,
    DocumentStore store) {
  if (index.num_docs() != store.size()) {
    return Status::Corruption("index and document store disagree on size");
  }
  auto engine =
      std::make_unique<SearchEngine>(std::move(name), std::move(options));
  engine->index_ = std::move(index);
  engine->store_ = std::move(store);
  engine->by_name_.reserve(engine->store_.size() * 2);
  for (DocId d = 0; d < engine->store_.size(); ++d) {
    auto [it, inserted] =
        engine->by_name_.emplace(std::string(engine->store_.Name(d)), d);
    if (!inserted) {
      return Status::Corruption("duplicate document name in store: " +
                                std::string(engine->store_.Name(d)));
    }
  }
  return engine;
}

Status SearchEngine::AddDocument(std::string_view doc_name,
                                 std::string_view text) {
  if (doc_name.empty()) {
    return Status::InvalidArgument("document name must be non-empty");
  }
  if (by_name_.contains(std::string(doc_name))) {
    return Status::InvalidArgument("duplicate document name: " +
                                   std::string(doc_name));
  }
  std::vector<std::string> terms = options_.analyzer.Analyze(text);
  DocId id = index_.AddDocument(terms);
  DocId stored = store_.Add(doc_name, text);
  QBS_CHECK_EQ(id, stored);
  by_name_.emplace(std::string(doc_name), id);
  return Status::OK();
}

void SearchEngine::FinishLoading() { index_.ShrinkToFit(); }

Result<std::vector<SearchHit>> SearchEngine::RunQuery(std::string_view query,
                                                      size_t max_results) {
  if (max_results == 0) {
    return Status::InvalidArgument("max_results must be positive");
  }
  const SearchMetrics& metrics = SearchMetrics::Get();
  metrics.queries->Increment();
  ScopedTimerUs timer(metrics.query_latency_us);
  QBS_TRACE_SPAN("search.query");
  // The query passes through the *database's* analyzer: a term this
  // database treats as a stopword retrieves nothing, exactly as the paper
  // observes for its INQUERY-backed databases.
  std::vector<std::string> terms = options_.analyzer.Analyze(query);
  std::vector<ScoredDoc> scored = searcher_->Search(terms, max_results);
  std::vector<SearchHit> hits;
  hits.reserve(scored.size());
  for (const ScoredDoc& d : scored) {
    hits.push_back({std::string(store_.Name(d.doc_id)), d.score});
  }
  return hits;
}

Result<std::vector<SearchHit>> SearchEngine::RunStructuredQuery(
    std::string_view query, size_t max_results) {
  QBS_ASSIGN_OR_RETURN(std::vector<ScoredDoc> scored,
                       structured_searcher_->Search(query, max_results));
  std::vector<SearchHit> hits;
  hits.reserve(scored.size());
  for (const ScoredDoc& d : scored) {
    hits.push_back({std::string(store_.Name(d.doc_id)), d.score});
  }
  return hits;
}

Result<std::string> SearchEngine::FetchDocument(std::string_view handle) {
  auto it = by_name_.find(std::string(handle));
  if (it == by_name_.end()) {
    return Status::NotFound("no document named '" + std::string(handle) +
                            "' in database '" + name_ + "'");
  }
  return std::string(store_.Text(it->second));
}

}  // namespace qbs

#include "search/scorer.h"

#include <cmath>

namespace qbs {

double InqueryScorer::Score(const MatchStats& match,
                            const CorpusStatsView& corpus) const {
  if (match.tf == 0 || corpus.num_docs == 0) return 0.0;
  double dl_ratio =
      corpus.avg_doc_length > 0.0 ? match.doc_length / corpus.avg_doc_length
                                  : 1.0;
  double t = match.tf / (match.tf + 0.5 + 1.5 * dl_ratio);
  double idf = std::log((corpus.num_docs + 0.5) / std::max<double>(match.df, 1)) /
               std::log(corpus.num_docs + 1.0);
  return default_belief_ + (1.0 - default_belief_) * t * idf;
}

double TfIdfScorer::Score(const MatchStats& match,
                          const CorpusStatsView& corpus) const {
  if (match.tf == 0) return 0.0;
  double tf_part = 1.0 + std::log(static_cast<double>(match.tf));
  double idf_part = std::log(
      1.0 + static_cast<double>(corpus.num_docs) / std::max<double>(match.df, 1));
  return tf_part * idf_part;
}

double Bm25Scorer::Score(const MatchStats& match,
                         const CorpusStatsView& corpus) const {
  if (match.tf == 0 || corpus.num_docs == 0) return 0.0;
  double idf = std::log(1.0 + (corpus.num_docs - match.df + 0.5) /
                                  (match.df + 0.5));
  double dl_ratio =
      corpus.avg_doc_length > 0.0 ? match.doc_length / corpus.avg_doc_length
                                  : 1.0;
  double denom = match.tf + k1_ * (1.0 - b_ + b_ * dl_ratio);
  return idf * (match.tf * (k1_ + 1.0)) / denom;
}

std::unique_ptr<Scorer> MakeScorer(const std::string& name) {
  if (name == "inquery") return std::make_unique<InqueryScorer>();
  if (name == "tfidf") return std::make_unique<TfIdfScorer>();
  if (name == "bm25") return std::make_unique<Bm25Scorer>();
  return nullptr;
}

}  // namespace qbs

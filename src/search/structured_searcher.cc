#include "search/structured_searcher.h"

#include <algorithm>

#include "search/query_parser.h"
#include "util/logging.h"

namespace qbs {

StructuredSearcher::StructuredSearcher(const InvertedIndex* index,
                                       const Analyzer* analyzer,
                                       double default_belief)
    : index_(index),
      analyzer_(analyzer),
      default_belief_(default_belief),
      scorer_(default_belief) {
  QBS_CHECK(index_ != nullptr);
  QBS_CHECK(analyzer_ != nullptr);
  QBS_CHECK(default_belief_ >= 0.0 && default_belief_ < 1.0);
}

std::vector<double> StructuredSearcher::TermBeliefs(
    const std::string& analyzed_term, std::vector<bool>& touched) {
  std::vector<double> beliefs(index_->num_docs(), default_belief_);
  TermId id = index_->LookupTerm(analyzed_term);
  if (id == kInvalidTermId) return beliefs;

  CorpusStatsView corpus;
  corpus.num_docs = index_->num_docs();
  corpus.avg_doc_length = index_->avg_doc_length();
  const PostingList& plist = index_->postings(id);
  MatchStats match;
  match.df = plist.doc_frequency();
  for (auto it = plist.NewIterator(); it.Valid(); it.Next()) {
    const Posting& p = it.Get();
    match.tf = p.tf;
    match.doc_length = index_->doc_length(p.doc_id);
    beliefs[p.doc_id] = scorer_.Score(match, corpus);
    touched[p.doc_id] = true;
  }
  return beliefs;
}

std::vector<double> StructuredSearcher::Eval(const QueryNode& node,
                                             std::vector<bool>& touched) {
  const size_t n = index_->num_docs();
  if (node.op == QueryOp::kTerm) {
    std::vector<std::string> analyzed = analyzer_->Analyze(node.term);
    if (analyzed.empty()) {
      return std::vector<double>(n, default_belief_);
    }
    if (analyzed.size() == 1) return TermBeliefs(analyzed[0], touched);
    // Multi-token leaf (e.g. "data-base"): mean of the token beliefs.
    std::vector<double> acc = TermBeliefs(analyzed[0], touched);
    for (size_t t = 1; t < analyzed.size(); ++t) {
      std::vector<double> next = TermBeliefs(analyzed[t], touched);
      for (size_t d = 0; d < n; ++d) acc[d] += next[d];
    }
    for (double& b : acc) b /= analyzed.size();
    return acc;
  }

  // Operators.
  QBS_CHECK(!node.children.empty());
  std::vector<double> acc = Eval(*node.children[0], touched);
  switch (node.op) {
    case QueryOp::kTerm:
      break;  // handled above
    case QueryOp::kNot:
      for (double& b : acc) b = 1.0 - b;
      break;
    case QueryOp::kAnd:
      for (size_t c = 1; c < node.children.size(); ++c) {
        std::vector<double> next = Eval(*node.children[c], touched);
        for (size_t d = 0; d < acc.size(); ++d) acc[d] *= next[d];
      }
      break;
    case QueryOp::kOr: {
      for (double& b : acc) b = 1.0 - b;
      for (size_t c = 1; c < node.children.size(); ++c) {
        std::vector<double> next = Eval(*node.children[c], touched);
        for (size_t d = 0; d < acc.size(); ++d) acc[d] *= (1.0 - next[d]);
      }
      for (double& b : acc) b = 1.0 - b;
      break;
    }
    case QueryOp::kSum: {
      for (size_t c = 1; c < node.children.size(); ++c) {
        std::vector<double> next = Eval(*node.children[c], touched);
        for (size_t d = 0; d < acc.size(); ++d) acc[d] += next[d];
      }
      double inv = 1.0 / node.children.size();
      for (double& b : acc) b *= inv;
      break;
    }
    case QueryOp::kWsum: {
      QBS_CHECK_EQ(node.weights.size(), node.children.size());
      double total_weight = node.weights[0];
      for (double& b : acc) b *= node.weights[0];
      for (size_t c = 1; c < node.children.size(); ++c) {
        std::vector<double> next = Eval(*node.children[c], touched);
        for (size_t d = 0; d < acc.size(); ++d) {
          acc[d] += node.weights[c] * next[d];
        }
        total_weight += node.weights[c];
      }
      double inv = 1.0 / total_weight;
      for (double& b : acc) b *= inv;
      break;
    }
    case QueryOp::kMax:
      for (size_t c = 1; c < node.children.size(); ++c) {
        std::vector<double> next = Eval(*node.children[c], touched);
        for (size_t d = 0; d < acc.size(); ++d) {
          acc[d] = std::max(acc[d], next[d]);
        }
      }
      break;
  }
  return acc;
}

Result<std::vector<ScoredDoc>> StructuredSearcher::Search(
    const QueryNode& root, size_t max_results) {
  if (max_results == 0) {
    return Status::InvalidArgument("max_results must be positive");
  }
  const size_t n = index_->num_docs();
  if (n == 0) return std::vector<ScoredDoc>();

  std::vector<bool> touched(n, false);
  std::vector<double> beliefs = Eval(root, touched);

  std::vector<ScoredDoc> results;
  for (DocId d = 0; d < n; ++d) {
    if (touched[d]) results.push_back({d, beliefs[d]});
  }
  auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  };
  if (max_results < results.size()) {
    std::partial_sort(results.begin(), results.begin() + max_results,
                      results.end(), better);
    results.resize(max_results);
  } else {
    std::sort(results.begin(), results.end(), better);
  }
  return results;
}

Result<std::vector<ScoredDoc>> StructuredSearcher::Search(
    std::string_view query, size_t max_results) {
  QBS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> root, ParseQuery(query));
  return Search(*root, max_results);
}

}  // namespace qbs

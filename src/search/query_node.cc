#include "search/query_node.h"

#include <cstdio>

namespace qbs {

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::kTerm:
      return "";
    case QueryOp::kAnd:
      return "#and";
    case QueryOp::kOr:
      return "#or";
    case QueryOp::kNot:
      return "#not";
    case QueryOp::kSum:
      return "#sum";
    case QueryOp::kWsum:
      return "#wsum";
    case QueryOp::kMax:
      return "#max";
  }
  return "";
}

std::unique_ptr<QueryNode> QueryNode::Term(std::string term) {
  auto node = std::make_unique<QueryNode>();
  node->op = QueryOp::kTerm;
  node->term = std::move(term);
  return node;
}

std::unique_ptr<QueryNode> QueryNode::Op(
    QueryOp op, std::vector<std::unique_ptr<QueryNode>> children,
    std::vector<double> weights) {
  auto node = std::make_unique<QueryNode>();
  node->op = op;
  node->children = std::move(children);
  node->weights = std::move(weights);
  return node;
}

std::string QueryNode::ToString() const {
  if (op == QueryOp::kTerm) return term;
  std::string out = QueryOpName(op);
  out.push_back('(');
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out.push_back(' ');
    if (op == QueryOp::kWsum && i < weights.size()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g ", weights[i]);
      out += buf;
    }
    out += children[i]->ToString();
  }
  out.push_back(')');
  return out;
}

}  // namespace qbs

#include "search/query_parser.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace qbs {

namespace {

// Recursive-descent parser over the raw input.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<std::unique_ptr<QueryNode>> Parse() {
    SkipSpace();
    if (AtEnd()) return Err("empty query");
    // Top level: a sequence of expressions. One expression passes through;
    // several are wrapped in an implicit #sum.
    std::vector<std::unique_ptr<QueryNode>> exprs;
    while (!AtEnd()) {
      QBS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> node, ParseExpr());
      exprs.push_back(std::move(node));
      SkipSpace();
    }
    if (exprs.size() == 1) return std::move(exprs[0]);
    return QueryNode::Op(QueryOp::kSum, std::move(exprs));
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  Status Err(const std::string& message) const {
    return Status::InvalidArgument(message + " (at offset " +
                                   std::to_string(pos_) + ")");
  }

  Result<std::unique_ptr<QueryNode>> ParseExpr() {
    SkipSpace();
    if (AtEnd()) return Err("expected expression");
    if (Peek() == '#') return ParseOperator();
    if (Peek() == ')') return Err("unexpected ')'");
    return ParseTerm();
  }

  Result<std::unique_ptr<QueryNode>> ParseTerm() {
    size_t start = pos_;
    while (!AtEnd() && !std::isspace(static_cast<unsigned char>(Peek())) &&
           Peek() != '(' && Peek() != ')' && Peek() != '#') {
      ++pos_;
    }
    if (pos_ == start) return Err("expected term");
    return QueryNode::Term(std::string(input_.substr(start, pos_ - start)));
  }

  Result<std::unique_ptr<QueryNode>> ParseOperator() {
    size_t start = pos_;
    ++pos_;  // consume '#'
    while (!AtEnd() && std::isalpha(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    std::string_view name = input_.substr(start, pos_ - start);
    QueryOp op;
    if (name == "#and") {
      op = QueryOp::kAnd;
    } else if (name == "#or") {
      op = QueryOp::kOr;
    } else if (name == "#not") {
      op = QueryOp::kNot;
    } else if (name == "#sum") {
      op = QueryOp::kSum;
    } else if (name == "#wsum") {
      op = QueryOp::kWsum;
    } else if (name == "#max") {
      op = QueryOp::kMax;
    } else {
      return Err("unknown operator '" + std::string(name) + "'");
    }
    SkipSpace();
    if (AtEnd() || Peek() != '(') {
      return Err("expected '(' after " + std::string(name));
    }
    ++pos_;  // consume '('

    std::vector<std::unique_ptr<QueryNode>> children;
    std::vector<double> weights;
    while (true) {
      SkipSpace();
      if (AtEnd()) return Err("missing ')' for " + std::string(name));
      if (Peek() == ')') {
        ++pos_;
        break;
      }
      if (op == QueryOp::kWsum) {
        QBS_ASSIGN_OR_RETURN(double w, ParseWeight());
        weights.push_back(w);
        SkipSpace();
        if (AtEnd() || Peek() == ')') {
          return Err("#wsum expects an expression after each weight");
        }
      }
      QBS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> child, ParseExpr());
      children.push_back(std::move(child));
    }

    if (children.empty()) {
      return Err(std::string(name) + " requires at least one operand");
    }
    if (op == QueryOp::kNot && children.size() != 1) {
      return Err("#not takes exactly one operand");
    }
    return QueryNode::Op(op, std::move(children), std::move(weights));
  }

  Result<double> ParseWeight() {
    SkipSpace();
    size_t start = pos_;
    while (!AtEnd() &&
           (std::isdigit(static_cast<unsigned char>(Peek())) ||
            Peek() == '.' || Peek() == '-' || Peek() == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Err("#wsum expects a numeric weight");
    std::string text(input_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
      return Err("malformed weight '" + text + "'");
    }
    if (value <= 0.0) return Err("weights must be positive");
    return value;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<QueryNode>> ParseQuery(std::string_view input) {
  return Parser(input).Parse();
}

}  // namespace qbs

// Parser for the INQUERY-style structured query syntax (see query_node.h).
#ifndef QBS_SEARCH_QUERY_PARSER_H_
#define QBS_SEARCH_QUERY_PARSER_H_

#include <memory>
#include <string_view>

#include "search/query_node.h"
#include "util/status.h"

namespace qbs {

/// Parses a structured query. Bare multi-term input ("apple pie") is
/// wrapped in an implicit #sum, so plain bag-of-words queries remain
/// valid. Returns InvalidArgument with a character offset for syntax
/// errors.
Result<std::unique_ptr<QueryNode>> ParseQuery(std::string_view input);

}  // namespace qbs

#endif  // QBS_SEARCH_QUERY_PARSER_H_

// Evaluation of structured (operator) queries over an inverted index with
// INQUERY inference-network belief semantics.
#ifndef QBS_SEARCH_STRUCTURED_SEARCHER_H_
#define QBS_SEARCH_STRUCTURED_SEARCHER_H_

#include <string_view>
#include <vector>

#include "index/inverted_index.h"
#include "search/query_node.h"
#include "search/scorer.h"
#include "search/searcher.h"
#include "text/analyzer.h"
#include "util/status.h"

namespace qbs {

/// Evaluates QueryNode trees against an index.
///
/// Every document receives a belief in [0, 1] from each leaf term
/// (default_belief when the term is absent); operators combine beliefs
/// per the inference-network formulas (see query_node.h). Only documents
/// matching at least one positive leaf are returned.
///
/// Not thread-safe (scratch buffers); create one per thread.
class StructuredSearcher {
 public:
  /// `index` and `analyzer` must outlive the searcher. Leaf terms pass
  /// through `analyzer` (the database's own pipeline); a leaf analyzing to
  /// several tokens behaves like #sum over them, to zero tokens (e.g. a
  /// stopword) like an unmatched term.
  StructuredSearcher(const InvertedIndex* index, const Analyzer* analyzer,
                     double default_belief = 0.4);

  /// Evaluates a parsed query.
  Result<std::vector<ScoredDoc>> Search(const QueryNode& root,
                                        size_t max_results);

  /// Parses and evaluates query text.
  Result<std::vector<ScoredDoc>> Search(std::string_view query,
                                        size_t max_results);

 private:
  /// Computes the per-document belief vector of a node. `touched` gains
  /// every document matched by a positive leaf.
  std::vector<double> Eval(const QueryNode& node, std::vector<bool>& touched);

  /// Belief vector for one analyzed index term.
  std::vector<double> TermBeliefs(const std::string& analyzed_term,
                                  std::vector<bool>& touched);

  const InvertedIndex* index_;
  const Analyzer* analyzer_;
  double default_belief_;
  InqueryScorer scorer_;
};

}  // namespace qbs

#endif  // QBS_SEARCH_STRUCTURED_SEARCHER_H_

// AST for INQUERY-style structured queries.
//
// Grammar (whitespace-separated):
//   expr  := TERM
//          | #and(expr+) | #or(expr+) | #not(expr) | #max(expr+)
//          | #sum(expr+) | #wsum(weight expr [weight expr ...])
//
// Beliefs combine with the classic inference-network semantics:
//   and:  prod(p_i)           or:  1 - prod(1 - p_i)
//   not:  1 - p               max: max(p_i)
//   sum:  mean(p_i)           wsum: sum(w_i * p_i) / sum(w_i)
#ifndef QBS_SEARCH_QUERY_NODE_H_
#define QBS_SEARCH_QUERY_NODE_H_

#include <memory>
#include <string>
#include <vector>

namespace qbs {

/// Structured query operator kinds.
enum class QueryOp {
  kTerm,  // leaf: a single query term
  kAnd,
  kOr,
  kNot,
  kSum,
  kWsum,
  kMax,
};

/// Returns the operator's source-syntax name ("#and", ...; "" for terms).
const char* QueryOpName(QueryOp op);

/// One node of a structured query.
struct QueryNode {
  QueryOp op = QueryOp::kTerm;

  /// Leaf term text (raw; analyzed at evaluation time). Empty for
  /// operators.
  std::string term;

  /// Operator children (empty for terms).
  std::vector<std::unique_ptr<QueryNode>> children;

  /// Per-child weights; only used by kWsum (parallel to children).
  std::vector<double> weights;

  /// Builds a leaf.
  static std::unique_ptr<QueryNode> Term(std::string term);

  /// Builds an operator node.
  static std::unique_ptr<QueryNode> Op(
      QueryOp op, std::vector<std::unique_ptr<QueryNode>> children,
      std::vector<double> weights = {});

  /// Renders the node back to query syntax (stable form for debugging and
  /// round-trip tests).
  std::string ToString() const;
};

}  // namespace qbs

#endif  // QBS_SEARCH_QUERY_NODE_H_

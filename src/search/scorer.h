// Ranking functions for full-text retrieval.
#ifndef QBS_SEARCH_SCORER_H_
#define QBS_SEARCH_SCORER_H_

#include <cstdint>
#include <memory>
#include <string>

namespace qbs {

/// Corpus-level statistics a scorer may consult.
struct CorpusStatsView {
  /// Number of documents in the index.
  uint32_t num_docs = 0;
  /// Mean document length in terms.
  double avg_doc_length = 0.0;
};

/// Per-(term, document) match statistics.
struct MatchStats {
  /// Within-document term frequency.
  uint32_t tf = 0;
  /// Document frequency of the term.
  uint32_t df = 0;
  /// Length of the matched document, in terms.
  uint32_t doc_length = 0;
};

/// A document ranking function. Scores are additive across query terms.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Returns this scorer's name (for reporting).
  virtual std::string name() const = 0;

  /// Returns the score contribution of one query term in one document.
  virtual double Score(const MatchStats& match,
                       const CorpusStatsView& corpus) const = 0;
};

/// INQUERY-style tf.idf belief score (the retrieval model behind the
/// paper's databases):
///   belief = b + (1-b) * T * I
///   T = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
///   I = log((N + 0.5) / df) / log(N + 1)
class InqueryScorer : public Scorer {
 public:
  /// `default_belief` is INQUERY's b, conventionally 0.4.
  explicit InqueryScorer(double default_belief = 0.4)
      : default_belief_(default_belief) {}

  std::string name() const override { return "inquery"; }
  double Score(const MatchStats& match,
               const CorpusStatsView& corpus) const override;

 private:
  double default_belief_;
};

/// Classic lnc-style tf.idf: (1 + log tf) * log(1 + N / df).
class TfIdfScorer : public Scorer {
 public:
  std::string name() const override { return "tfidf"; }
  double Score(const MatchStats& match,
               const CorpusStatsView& corpus) const override;
};

/// Okapi BM25 with standard parameters.
class Bm25Scorer : public Scorer {
 public:
  Bm25Scorer(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}

  std::string name() const override { return "bm25"; }
  double Score(const MatchStats& match,
               const CorpusStatsView& corpus) const override;

 private:
  double k1_;
  double b_;
};

/// Factory by name ("inquery", "tfidf", "bm25"); returns nullptr for
/// unknown names.
std::unique_ptr<Scorer> MakeScorer(const std::string& name);

}  // namespace qbs

#endif  // QBS_SEARCH_SCORER_H_

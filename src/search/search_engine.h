// A complete searchable text database: analyzer + inverted index + document
// store + ranked retrieval, exposed through the narrow TextDatabase
// interface.
#ifndef QBS_SEARCH_SEARCH_ENGINE_H_
#define QBS_SEARCH_SEARCH_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/document_store.h"
#include "index/inverted_index.h"
#include "lm/language_model.h"
#include "search/scorer.h"
#include "search/searcher.h"
#include "search/text_database.h"
#include "text/analyzer.h"

namespace qbs {

/// Options configuring one database's indexing and retrieval conventions.
/// Different databases legitimately differ here (paper §2.2); the sampler
/// never sees these options.
struct SearchEngineOptions {
  /// Indexing pipeline (stemming, stopwords, case rules).
  Analyzer analyzer = Analyzer::InqueryLike();
  /// Ranking function: "inquery", "tfidf", or "bm25".
  std::string scorer = "inquery";
};

/// An in-process full-text search engine over one corpus.
///
/// Thread-compatible: concurrent RunQuery calls require external
/// synchronization (a per-engine mutex would serialize the sampler's
/// sequential workload for nothing).
class SearchEngine : public TextDatabase {
 public:
  /// Creates an empty engine. `name` identifies the database in reports.
  explicit SearchEngine(std::string name,
                        SearchEngineOptions options = SearchEngineOptions());
  ~SearchEngine() override;

  /// Reassembles an engine from persisted parts (storage layer). The index
  /// and store must describe the same documents in the same order.
  static Result<std::unique_ptr<SearchEngine>> FromParts(
      std::string name, SearchEngineOptions options, InvertedIndex index,
      DocumentStore store);

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  /// Indexes and stores one document. `doc_name` must be unique within the
  /// engine (it doubles as the retrieval handle).
  Status AddDocument(std::string_view doc_name, std::string_view text);

  /// Number of indexed documents.
  uint32_t num_docs() const { return index_.num_docs(); }

  /// The engine's inverted index (tests / actual-LM construction only; the
  /// sampler must not use this).
  const InvertedIndex& index() const { return index_; }

  /// The stored raw documents.
  const DocumentStore& store() const { return store_; }

  /// The engine's analyzer.
  const Analyzer& analyzer() const { return options_.analyzer; }

  /// The configured ranking function's name ("inquery", "tfidf", "bm25").
  const std::string& scorer_name() const { return options_.scorer; }

  /// The *actual* language model of this database, in the database's own
  /// (stemmed, stopped) term space. This is ground truth for experiments
  /// and the payload a cooperative STARTS-style export would provide.
  LanguageModel ActualLanguageModel() const {
    return LanguageModel::FromIndex(index_);
  }

  /// Releases index-building scratch after bulk loading.
  void FinishLoading();

  /// Evaluates an INQUERY-style structured query (#and/#or/#not/#sum/
  /// #wsum/#max; see query_node.h). Bare bag-of-words input is also
  /// accepted (implicit #sum). Returns InvalidArgument on syntax errors.
  Result<std::vector<SearchHit>> RunStructuredQuery(std::string_view query,
                                                    size_t max_results);

  // --- TextDatabase interface (what the sampler sees) ---
  std::string name() const override { return name_; }
  Result<std::vector<SearchHit>> RunQuery(std::string_view query,
                                          size_t max_results) override;
  Result<std::string> FetchDocument(std::string_view handle) override;

 private:
  std::string name_;
  SearchEngineOptions options_;
  std::unique_ptr<Scorer> scorer_;
  InvertedIndex index_;
  DocumentStore store_;
  std::unique_ptr<Searcher> searcher_;
  std::unique_ptr<class StructuredSearcher> structured_searcher_;
  // doc name -> DocId for FetchDocument.
  std::unordered_map<std::string, DocId> by_name_;
};

}  // namespace qbs

#endif  // QBS_SEARCH_SEARCH_ENGINE_H_

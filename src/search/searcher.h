// Ranked query evaluation over an InvertedIndex.
#ifndef QBS_SEARCH_SEARCHER_H_
#define QBS_SEARCH_SEARCHER_H_

#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "search/scorer.h"

namespace qbs {

/// One internal result: DocId plus accumulated score.
struct ScoredDoc {
  DocId doc_id = kInvalidDocId;
  double score = 0.0;
};

/// Term-at-a-time query evaluator with sparse score accumulation.
///
/// Not thread-safe: each Searcher owns scratch accumulators. Create one
/// per thread over the same (immutable) index.
class Searcher {
 public:
  /// The index must outlive the searcher. The scorer is shared, immutable.
  Searcher(const InvertedIndex* index, const Scorer* scorer);

  /// Evaluates a bag-of-words query (already analyzed into index terms) and
  /// returns the top `max_results` documents, best first. Ties are broken
  /// by ascending DocId so results are deterministic.
  std::vector<ScoredDoc> Search(const std::vector<std::string>& terms,
                                size_t max_results);

 private:
  const InvertedIndex* index_;
  const Scorer* scorer_;
  // Dense accumulator plus touched-list, reset between queries.
  std::vector<double> scores_;
  std::vector<DocId> touched_;
};

}  // namespace qbs

#endif  // QBS_SEARCH_SEARCHER_H_

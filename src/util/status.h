// Status and Result<T>: lightweight error propagation without exceptions,
// in the style of RocksDB's Status / Arrow's Result.
#ifndef QBS_UTIL_STATUS_H_
#define QBS_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace qbs {

/// Error category attached to a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  /// A non-blocking operation found the fd not ready (EAGAIN). A local
  /// readiness signal for event-loop code, not an error: the caller
  /// parks the fd in the poller and retries on the next readiness
  /// event. Never sent across the wire and deliberately NOT transient —
  /// blind retry loops on it would busy-spin.
  kWouldBlock,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A Status holds either success (OK) or an error code plus message.
///
/// All fallible library operations return Status (or Result<T>); exceptions
/// are never thrown across public API boundaries.
///
/// The class is [[nodiscard]]: a dropped Status is a swallowed error, so
/// every call site must either propagate it (QBS_RETURN_IF_ERROR), test
/// it (ok()), or discard it on purpose with IgnoreError() — which states
/// in source that best-effort is the intent.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status WouldBlock(std::string msg) {
    return Status(StatusCode::kWouldBlock, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsWouldBlock() const { return code_ == StatusCode::kWouldBlock; }

  /// True for failures that a retry may plausibly cure: the peer was
  /// unreachable (Unavailable), the call ran out of time
  /// (DeadlineExceeded), or the transport hiccuped (IOError). Permanent
  /// conditions — NotFound, InvalidArgument, Corruption, ... — are not
  /// transient; retrying them wastes traffic and hides bugs. Retry
  /// policies (RemoteTextDatabase, sampler error tolerance) must key off
  /// this predicate rather than enumerating codes at each call site.
  bool IsTransient() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kIOError;
  }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Explicitly discards this status. The one sanctioned way to drop a
  /// Status on the floor: `Flush().IgnoreError();` compiles where a bare
  /// `Flush();` is rejected by [[nodiscard]], and the call site reads as
  /// the deliberate best-effort it is.
  void IgnoreError() const {}

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value of type T or an error Status.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
///
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// swallowed error (and a discarded value).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value (implicit, enables `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit, enables
  /// `return Status::NotFound(...)`). `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The error status (OK when a value is present).
  const Status& status() const { return status_; }

  /// Value accessors; require ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define QBS_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::qbs::Status _qbs_status = (expr);        \
    if (!_qbs_status.ok()) return _qbs_status; \
  } while (0)

/// Evaluates a Result<T> expression; assigns the value to `lhs` or returns
/// the error to the caller.
#define QBS_ASSIGN_OR_RETURN(lhs, expr)                 \
  QBS_ASSIGN_OR_RETURN_IMPL_(                           \
      QBS_STATUS_CONCAT_(_qbs_result, __LINE__), lhs, expr)

#define QBS_STATUS_CONCAT_INNER_(a, b) a##b
#define QBS_STATUS_CONCAT_(a, b) QBS_STATUS_CONCAT_INNER_(a, b)
#define QBS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace qbs

#endif  // QBS_UTIL_STATUS_H_

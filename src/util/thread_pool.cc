#include "util/thread_pool.h"

#include <atomic>

#include "obs/metrics.h"
#include "util/logging.h"

namespace qbs {

namespace {

// Process-wide across all pools: the interesting signal is "is the
// process backed up", not which pool instance holds the queue.
struct PoolMetrics {
  Gauge* queue_depth;
  Counter* tasks;
  Counter* parallel_for_items;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      PoolMetrics m;
      m.queue_depth = r.GetGauge("qbs_threadpool_queue_depth",
                                 "Tasks queued and not yet started");
      m.tasks = r.GetCounter("qbs_threadpool_tasks_total",
                             "Tasks executed by pool workers");
      m.parallel_for_items = r.GetCounter(
          "qbs_threadpool_parallel_for_items_total",
          "Iterations executed by ThreadPool::ParallelFor");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  // call_once makes concurrent Shutdown calls (including the destructor
  // racing an explicit call) join exactly once; the losers block until
  // the winner finishes joining, preserving "all tasks done on return".
  std::call_once(join_once_, [this] {
    for (auto& w : workers_) w.join();
  });
}

bool ThreadPool::Submit(std::function<void()> task) {
  QBS_CHECK(task != nullptr);
  {
    MutexLock lock(mu_);
    // Submit racing the destructor is a supported shutdown protocol, not
    // a programming error: the task is rejected, never silently dropped
    // into a queue no worker will drain.
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
    PoolMetrics::Get().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  work_cv_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  idle_cv_.Wait(mu_, [this]() QBS_REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_, [this]() QBS_REQUIRES(mu_) {
        return shutdown_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      PoolMetrics::Get().queue_depth->Set(static_cast<double>(queue_.size()));
      ++active_;
    }
    task();
    PoolMetrics::Get().tasks->Increment();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t num_threads,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const PoolMetrics& metrics = PoolMetrics::Get();
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
      metrics.parallel_for_items->Increment();
    }
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
      metrics.parallel_for_items->Increment();
    }
  };
  size_t spawn = std::min(num_threads, n);
  std::vector<std::thread> threads;
  threads.reserve(spawn);
  for (size_t t = 0; t < spawn; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
}

}  // namespace qbs

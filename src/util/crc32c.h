// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected): the checksum
// used by the binary model store (docs/STORAGE.md) and available to the
// wire and index formats. Chosen over FNV-1a for sections that must
// detect corruption: CRC32C has guaranteed burst-error detection and a
// fixed 4-byte footprint.
#ifndef QBS_UTIL_CRC32C_H_
#define QBS_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qbs {

/// Incremental CRC32C. Update() may be called any number of times;
/// digest() returns the checksum of everything fed so far and does not
/// reset the state, so callers can checkpoint mid-stream.
class Crc32c {
 public:
  void Update(const void* data, size_t n);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  uint32_t digest() const { return state_ ^ 0xFFFFFFFFu; }

  /// One-shot convenience.
  static uint32_t Of(const void* data, size_t n) {
    Crc32c crc;
    crc.Update(data, n);
    return crc.digest();
  }
  static uint32_t Of(std::string_view s) { return Of(s.data(), s.size()); }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace qbs

#endif  // QBS_UTIL_CRC32C_H_

// RAII ownership of a POSIX file descriptor (sockets, pipes, files).
//
// The network layer juggles descriptors across threads and error paths;
// a unique-ownership wrapper makes every close explicit and leak-free
// without sprinkling `close(fd)` through error handling.
#ifndef QBS_UTIL_FD_H_
#define QBS_UTIL_FD_H_

#include <unistd.h>

#include <utility>

namespace qbs {

/// Unique ownership of a file descriptor; closes it on destruction.
/// Move-only. An fd of -1 means "empty".
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) Reset(other.Release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  /// The wrapped descriptor (-1 when empty). Ownership is retained.
  int get() const { return fd_; }

  /// True when a descriptor is held.
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Relinquishes ownership without closing; returns the descriptor.
  int Release() { return std::exchange(fd_, -1); }

  /// Closes the held descriptor (if any) and adopts `fd`.
  void Reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace qbs

#endif  // QBS_UTIL_FD_H_

// Minimal CHECK-style invariant macros.
#ifndef QBS_UTIL_LOGGING_H_
#define QBS_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace qbs {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "QBS_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace qbs

/// Aborts the process when `cond` is false. Enabled in all build types:
/// these guard invariants whose violation would corrupt results silently.
#define QBS_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::qbs::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                          \
  } while (0)

#define QBS_CHECK_EQ(a, b) QBS_CHECK((a) == (b))
#define QBS_CHECK_NE(a, b) QBS_CHECK((a) != (b))
#define QBS_CHECK_LT(a, b) QBS_CHECK((a) < (b))
#define QBS_CHECK_LE(a, b) QBS_CHECK((a) <= (b))
#define QBS_CHECK_GT(a, b) QBS_CHECK((a) > (b))
#define QBS_CHECK_GE(a, b) QBS_CHECK((a) >= (b))

/// Debug-only check (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define QBS_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define QBS_DCHECK(cond) QBS_CHECK(cond)
#endif

#endif  // QBS_UTIL_LOGGING_H_

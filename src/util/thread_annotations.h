// Clang thread-safety annotation macros (no-ops on other compilers).
//
// These make the locking discipline of a class machine-checkable:
// declare which mutex guards which field (QBS_GUARDED_BY), which lock a
// function expects its caller to hold (QBS_REQUIRES) or must NOT hold
// (QBS_EXCLUDES), and Clang's -Wthread-safety analysis proves every
// access site consistent at compile time — races that TSan can only
// catch when a test happens to interleave them become build errors.
//
// The analysis only understands lock objects whose acquire/release
// methods are themselves annotated, which std::mutex (libstdc++) is
// not; use the annotated wrappers in util/mutex.h (qbs::Mutex,
// qbs::MutexLock, qbs::CondVar) instead of raw standard types.
// tools/lint.py and tools/analyze.py enforce that rule for members in
// src/.
//
// Enforcement tiers (docs/ANALYSIS.md):
//   - any Clang build: -Wthread-safety -Wthread-safety-beta warnings,
//     errors under QBS_WERROR
//   - tidy preset: clang-tidy injects the same flags via --extra-arg,
//     so the analysis gates even when the compiler is gcc
//
// Annotation policy — when to use what — is documented in
// docs/ANALYSIS.md ("Thread-safety annotations").
#ifndef QBS_UTIL_THREAD_ANNOTATIONS_H_
#define QBS_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define QBS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define QBS_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define QBS_CAPABILITY(x) QBS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock).
#define QBS_SCOPED_CAPABILITY QBS_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a field (or a function's return) may only be accessed
/// while holding the given mutex.
#define QBS_GUARDED_BY(x) QBS_THREAD_ANNOTATION_(guarded_by(x))

/// Like QBS_GUARDED_BY, but for the data a pointer/smart-pointer field
/// points AT (the pointer itself is unguarded).
#define QBS_PT_GUARDED_BY(x) QBS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The caller must hold the given mutex(es) exclusively when calling.
#define QBS_REQUIRES(...) \
  QBS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The caller must hold the given mutex(es) at least shared.
#define QBS_REQUIRES_SHARED(...) \
  QBS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the mutex(es) and holds them on return.
#define QBS_ACQUIRE(...) \
  QBS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define QBS_ACQUIRE_SHARED(...) \
  QBS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases mutex(es) its caller held.
#define QBS_RELEASE(...) \
  QBS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define QBS_RELEASE_SHARED(...) \
  QBS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function acquires the mutex only when it returns the given value
/// (try-lock).
#define QBS_TRY_ACQUIRE(...) \
  QBS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the given mutex(es) — the function acquires
/// them itself, so calling with them held would self-deadlock. This is
/// the annotation for public entry points of classes with internal
/// locking.
#define QBS_EXCLUDES(...) QBS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Documents global lock-ordering between two mutexes (deadlock-freedom).
#define QBS_ACQUIRED_AFTER(...) \
  QBS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define QBS_ACQUIRED_BEFORE(...) \
  QBS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// The function returns a reference to the given mutex (lock accessors).
#define QBS_RETURN_CAPABILITY(x) QBS_THREAD_ANNOTATION_(lock_returned(x))

/// Opts one function out of the analysis. Reserved for code the analysis
/// cannot model (init/teardown choreography); every use carries a
/// comment saying why, same policy as NOLINT (docs/ANALYSIS.md).
#define QBS_NO_THREAD_SAFETY_ANALYSIS \
  QBS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // QBS_UTIL_THREAD_ANNOTATIONS_H_

#include "util/random.h"

#include <cmath>

namespace qbs {

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

namespace {

// Integral of (x + q)^-s, used by rejection-inversion.
double HIntegral(double x, double s, double q) {
  double logx = std::log(x + q);
  if (std::abs(s - 1.0) < 1e-12) return logx;
  return std::exp(logx * (1.0 - s)) / (1.0 - s);
}

double HIntegralInverse(double x, double s, double q) {
  if (std::abs(s - 1.0) < 1e-12) return std::exp(x) - q;
  // For s != 1, x*(1-s) is strictly positive for all valid inputs; clamp
  // defensively against rounding at the boundary.
  double t = std::max(x * (1.0 - s), 1e-300);
  return std::exp(std::log(t) / (1.0 - s)) - q;
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double s, double q) : n_(n), s_(s), q_(q) {
  QBS_CHECK_GE(n, 1u);
  QBS_CHECK_GT(s, 0.0);
  QBS_CHECK_GE(q, 0.0);
  h_x1_ = HIntegral(1.5, s_, q_) - std::exp(-s_ * std::log(1.0 + q_));
  h_n_ = HIntegral(static_cast<double>(n_) + 0.5, s_, q_);
  s_div_ = 2.0 - HIntegralInverse(HIntegral(2.5, s_, q_) -
                                      std::exp(-s_ * std::log(2.0 + q_)),
                                  s_, q_);
}

double ZipfSampler::H(double x) const { return HIntegral(x, s_, q_); }

double ZipfSampler::HInverse(double x) const {
  return HIntegralInverse(x, s_, q_);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    double u = h_n_ + rng.UniformDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    // Quick accept for the bulk of the distribution.
    if (k - x <= s_div_ ||
        u >= H(k + 0.5) - std::exp(-s_ * std::log(k + q_))) {
      return static_cast<uint64_t>(k);
    }
  }
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  QBS_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    QBS_CHECK_GE(w, 0.0);
    total += w;
  }
  QBS_CHECK_GT(total, 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Residuals are 1 up to floating error.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng& rng) const {
  size_t i = static_cast<size_t>(rng.UniformBelow(prob_.size()));
  return rng.UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace qbs

// A fixed-size thread pool used to parallelize corpus generation and
// parameter sweeps in the benchmark harness.
#ifndef QBS_UTIL_THREAD_POOL_H_
#define QBS_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace qbs {

/// A minimal fixed-size thread pool. Tasks are std::function<void()> run in
/// FIFO order. The destructor drains all queued tasks before joining.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then joins all workers (via Shutdown).
  ~ThreadPool();

  /// Stops accepting new tasks, drains every task accepted so far, and
  /// joins the workers. Idempotent, and safe to call while other threads
  /// are still calling Submit: they observe `false` from the first
  /// locked check onwards. After Shutdown returns, every accepted task
  /// has finished. (This exists as a separate entry point so producers
  /// can race shutdown against a still-live object; racing the
  /// *destructor* itself would be a use-after-free by construction.)
  void Shutdown() QBS_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. Returns true if the task was
  /// accepted; returns false — without running or retaining the task —
  /// once shutdown has begun (i.e. the destructor is racing this call).
  /// Producers running concurrently with pool teardown must check the
  /// result; tasks accepted before shutdown are always drained.
  [[nodiscard]] bool Submit(std::function<void()> task) QBS_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished executing. May be
  /// called concurrently with Submit; it returns at a moment the queue
  /// was observed empty with no task running.
  void Wait() QBS_EXCLUDES(mu_);

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// `fn` must be safe to invoke concurrently.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop() QBS_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ QBS_GUARDED_BY(mu_);
  size_t active_ QBS_GUARDED_BY(mu_) = 0;
  bool shutdown_ QBS_GUARDED_BY(mu_) = false;
  std::once_flag join_once_;
  std::vector<std::thread> workers_;
};

}  // namespace qbs

#endif  // QBS_UTIL_THREAD_POOL_H_

// Deterministic pseudo-random number generation and distribution samplers.
//
// All stochastic behaviour in the library (corpus generation, query-term
// selection) flows through Rng so experiments are reproducible from a seed.
#ifndef QBS_UTIL_RANDOM_H_
#define QBS_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace qbs {

/// SplitMix64: used to seed and scramble other generators.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// PCG32 (XSH-RR): a small, fast, statistically strong PRNG.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions if desired.
class Rng {
 public:
  using result_type = uint32_t;

  /// Constructs a generator from a seed; distinct seeds yield independent
  /// streams for practical purposes.
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9BULL) { Seed(seed); }

  /// Re-seeds the generator deterministically.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    state_ = SplitMix64(sm);
    inc_ = SplitMix64(sm) | 1ULL;
    Next32();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xFFFFFFFFu; }
  result_type operator()() { return Next32(); }

  /// Returns a uniformly distributed 32-bit value.
  uint32_t Next32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
  }

  /// Returns a uniformly distributed 64-bit value.
  uint64_t Next64() {
    return (static_cast<uint64_t>(Next32()) << 32) | Next32();
  }

  /// Returns an integer uniform on [0, bound). Requires bound > 0.
  /// Uses Lemire's nearly-divisionless unbiased method.
  uint64_t UniformBelow(uint64_t bound) {
    QBS_CHECK_GT(bound, 0u);
    // 128-bit multiply-shift rejection sampling.
    while (true) {
      uint64_t x = Next64();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      uint64_t low = static_cast<uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Returns an integer uniform on [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    QBS_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Returns a double uniform on [0, 1).
  double UniformDouble() {
    return (Next64() >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  }

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Returns a standard normal deviate (Marsaglia polar method).
  double Normal();

  /// Returns a log-normal deviate with the given log-space mean and stddev.
  double LogNormal(double mu, double sigma) {
    return std::exp(mu + sigma * Normal());
  }

  /// Fisher-Yates shuffles a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 1;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Samples ranks 1..n from a Zipf-Mandelbrot distribution:
///   P(rank = k) ∝ 1 / (k + q)^s
///
/// Uses rejection-inversion (Hörmann & Derflinger 1996), giving O(1)
/// expected time per sample independent of n. This is the backbone of the
/// synthetic corpus generator: natural-language term frequencies are
/// Zipf-distributed (paper §3, citing [16]).
class ZipfSampler {
 public:
  /// Creates a sampler over ranks [1, n] with exponent `s` (> 0, != 1 is
  /// handled; s == 1 uses the logarithmic branch) and shift `q` >= 0.
  ZipfSampler(uint64_t n, double s, double q = 0.0);

  /// Draws a rank in [1, n].
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }
  double q() const { return q_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double q_;
  double h_x1_;
  double s_div_;  // threshold for accepting k == 1 quickly
  double h_n_;
};

/// O(1) sampling from an arbitrary discrete distribution via Walker's
/// alias method. Construction is O(n).
class AliasSampler {
 public:
  /// Builds the table from (unnormalized, non-negative) weights.
  /// Requires at least one strictly positive weight.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace qbs

#endif  // QBS_UTIL_RANDOM_H_

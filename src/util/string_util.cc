#include "util/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace qbs {

void AsciiLowerInPlace(std::string& s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  AsciiLowerInPlace(out);
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

bool ContainsDigit(std::string_view s) {
  for (char c : s) {
    if (c >= '0' && c <= '9') return true;
  }
  return false;
}

std::vector<std::string_view> SplitNonEmpty(std::string_view s,
                                            std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find_first_of(delims, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string WithThousands(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(bytes), units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, units[u]);
  }
  return buf;
}

}  // namespace qbs

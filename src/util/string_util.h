// Small string helpers shared across the library.
#ifndef QBS_UTIL_STRING_UTIL_H_
#define QBS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace qbs {

/// Lowercases ASCII letters in place; non-ASCII bytes are left untouched.
void AsciiLowerInPlace(std::string& s);

/// Returns a lowercased copy of `s` (ASCII only).
std::string AsciiLower(std::string_view s);

/// Returns true iff every character of `s` is an ASCII digit (and `s` is
/// non-empty).
bool IsAllDigits(std::string_view s);

/// Returns true iff `s` contains at least one ASCII digit.
bool ContainsDigit(std::string_view s);

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitNonEmpty(std::string_view s,
                                            std::string_view delims);

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a count with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithThousands(uint64_t n);

/// Formats a byte count with a human unit, e.g. 3355443200 -> "3.1GB".
std::string HumanBytes(uint64_t bytes);

}  // namespace qbs

#endif  // QBS_UTIL_STRING_UTIL_H_

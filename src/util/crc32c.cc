#include "util/crc32c.h"

#include <array>

namespace qbs {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

// Slice-by-8 lookup tables: table[0] is the classic byte-at-a-time
// table; table[k] advances a byte through k additional zero bytes, so
// eight table lookups consume eight input bytes per iteration.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

void Crc32c::Update(const void* data, size_t n) {
  const Tables& tab = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = state_;
  while (n >= 8) {
    // Fold the current state into the first four bytes, then advance
    // all eight through the sliced tables.
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    crc = tab.t[7][lo & 0xFFu] ^ tab.t[6][(lo >> 8) & 0xFFu] ^
          tab.t[5][(lo >> 16) & 0xFFu] ^ tab.t[4][lo >> 24] ^
          tab.t[3][p[4]] ^ tab.t[2][p[5]] ^ tab.t[1][p[6]] ^ tab.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p) & 0xFFu];
    ++p;
    --n;
  }
  state_ = crc;
}

}  // namespace qbs

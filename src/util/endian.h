// Little-endian fixed-width encode/decode helpers. Every on-disk and
// on-wire fixed-width integer in qbs is little-endian; these helpers
// read and write byte-at-a-time, so they are alignment-safe and
// byte-order-independent on any host.
#ifndef QBS_UTIL_ENDIAN_H_
#define QBS_UTIL_ENDIAN_H_

#include <cstdint>
#include <string>

namespace qbs {

inline void StoreLe16(uint8_t* dst, uint16_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
}

inline void StoreLe32(uint8_t* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline void StoreLe64(uint8_t* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint16_t LoadLe16(const uint8_t* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                               static_cast<uint16_t>(p[1]) << 8);
}

inline uint32_t LoadLe32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

inline uint64_t LoadLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

inline void AppendLe16(std::string* out, uint16_t v) {
  uint8_t buf[2];
  StoreLe16(buf, v);
  out->append(reinterpret_cast<const char*>(buf), 2);
}

inline void AppendLe32(std::string* out, uint32_t v) {
  uint8_t buf[4];
  StoreLe32(buf, v);
  out->append(reinterpret_cast<const char*>(buf), 4);
}

inline void AppendLe64(std::string* out, uint64_t v) {
  uint8_t buf[8];
  StoreLe64(buf, v);
  out->append(reinterpret_cast<const char*>(buf), 8);
}

}  // namespace qbs

#endif  // QBS_UTIL_ENDIAN_H_

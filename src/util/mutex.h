// Annotated mutex primitives: qbs::Mutex, qbs::MutexLock, qbs::CondVar.
//
// Thin wrappers over the standard types whose acquire/release methods
// carry the util/thread_annotations.h attributes, so Clang's
// -Wthread-safety analysis can see locks being taken and prove
// QBS_GUARDED_BY / QBS_REQUIRES contracts at every access site.
// libstdc++'s std::mutex / std::lock_guard are not annotated, which is
// why raw standard lock members are banned in src/ (enforced by
// tools/lint.py and tools/analyze.py) in favor of these.
//
// Zero-cost: every method is an inline forward to the standard type;
// the annotations compile to nothing.
#ifndef QBS_UTIL_MUTEX_H_
#define QBS_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

namespace qbs {

/// An annotated exclusive mutex. Prefer MutexLock over manual
/// Lock/Unlock pairs; the manual methods exist for the rare
/// release-early protocols and for CondVar's internals.
class QBS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QBS_ACQUIRE() { mu_.lock(); }
  void Unlock() QBS_RELEASE() { mu_.unlock(); }
  bool TryLock() QBS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a Mutex (the annotated std::lock_guard).
class QBS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QBS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() QBS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with qbs::Mutex.
///
/// Wait/WaitFor are annotated QBS_REQUIRES(mu): the caller holds the
/// lock on entry and on return. The internal release-while-blocked is
/// invisible to the analysis (the same convention as every annotated
/// condvar wrapper) — guarded state must therefore be re-checked via
/// the predicate, never assumed across a Wait, which the predicate
/// form enforces by construction.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until `pred()` is true, releasing `mu` while blocked.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) QBS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    // Ownership returns to the caller's scope (MutexLock or manual).
    lock.release();
  }

  /// Like Wait, but gives up after `timeout_us`. Returns pred()'s value
  /// at exit — false means the deadline passed with the predicate still
  /// false.
  template <typename Predicate>
  bool WaitFor(Mutex& mu, uint64_t timeout_us, Predicate pred)
      QBS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(
        lock, std::chrono::microseconds(timeout_us), std::move(pred));
    lock.release();
    return satisfied;
  }

  /// Wakes one / all waiters. Callable with or without the mutex held.
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qbs

#endif  // QBS_UTIL_MUTEX_H_

// Read-only view over a language model: the interface the selection
// rankers, metrics, and the broker's snapshots consume.
//
// Two implementations exist: the heap-backed LanguageModel (mutable,
// built by sampling) and the mmap-backed MappedLanguageModel
// (src/mstore, serving lookups straight from a packed file). Anything
// that only *reads* a model should take a LanguageModelView so both
// coexist behind one snapshot.
#ifndef QBS_LM_MODEL_VIEW_H_
#define QBS_LM_MODEL_VIEW_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qbs {

/// Per-term frequency statistics.
struct TermStats {
  /// Document frequency: number of documents containing the term.
  uint64_t df = 0;
  /// Collection term frequency: total occurrences of the term.
  uint64_t ctf = 0;

  /// Average term frequency, ctf / df (the paper's avg_tf).
  double avg_tf() const { return df == 0 ? 0.0 : static_cast<double>(ctf) / df; }

  bool operator==(const TermStats&) const = default;
};

/// Term-frequency metrics used for ranking and query-term selection
/// (paper §5.2: "the three most common in Information Retrieval").
enum class TermMetric { kDf, kCtf, kAvgTf };

/// Returns a stable name for a TermMetric ("df", "ctf", "avg_tf").
const char* TermMetricName(TermMetric metric);

/// Read-only interface over a language model. Implementations must be
/// immutable while a view reference is shared (the broker publishes
/// views inside immutable snapshots read by many threads).
///
/// Stats are returned by value: a mapped model decodes varint-packed
/// stats out of the file, so there is no TermStats object to point at.
class LanguageModelView {
 public:
  virtual ~LanguageModelView() = default;

  /// Looks up a term. Returns true and fills `*stats` when present.
  virtual bool FindStats(std::string_view term, TermStats* stats) const = 0;

  /// True iff the term is in the vocabulary.
  virtual bool Contains(std::string_view term) const {
    TermStats ignored;
    return FindStats(term, &ignored);
  }

  /// Vocabulary size (distinct terms).
  virtual size_t vocabulary_size() const = 0;

  /// Total term occurrences (sum of ctf).
  virtual uint64_t total_term_count() const = 0;

  /// Number of documents the model was built from (0 when unknown).
  virtual uint64_t num_docs() const = 0;

  /// Invokes fn(term, stats) for every vocabulary entry. The iteration
  /// order is implementation-defined (heap models iterate hash order,
  /// mapped models sorted order); callers must not depend on it.
  virtual void ForEachTerm(
      const std::function<void(std::string_view, const TermStats&)>& fn)
      const = 0;
};

/// Returns (term, score) pairs sorted by `metric` descending, ties
/// broken lexicographically — deterministic regardless of the view's
/// iteration order. If `top_k` > 0, only that many are returned.
std::vector<std::pair<std::string, double>> RankedTermsOf(
    const LanguageModelView& view, TermMetric metric, size_t top_k = 0);

}  // namespace qbs

#endif  // QBS_LM_MODEL_VIEW_H_

// Builds language models from raw document text through an Analyzer.
#ifndef QBS_LM_LM_BUILDER_H_
#define QBS_LM_LM_BUILDER_H_

#include <string_view>

#include "lm/language_model.h"
#include "text/analyzer.h"

namespace qbs {

/// Accumulates a LanguageModel from raw documents, analyzing each with a
/// fixed Analyzer. This is the piece that gives the selection service
/// *control over the content of the language model* (paper §3): the service
/// chooses the analyzer, not the sampled database.
class LmBuilder {
 public:
  /// Uses Analyzer::Raw() — the paper's learned-model convention (§4.1).
  LmBuilder() : analyzer_(Analyzer::Raw()) {}

  explicit LmBuilder(Analyzer analyzer) : analyzer_(std::move(analyzer)) {}

  /// Analyzes `text` and folds its terms into the model.
  void AddDocument(std::string_view text) {
    model_.AddDocument(analyzer_.Analyze(text));
  }

  /// The model accumulated so far.
  const LanguageModel& model() const { return model_; }

  /// Moves the model out, leaving the builder empty.
  LanguageModel TakeModel() {
    LanguageModel out = std::move(model_);
    model_ = LanguageModel();
    return out;
  }

  const Analyzer& analyzer() const { return analyzer_; }

 private:
  Analyzer analyzer_;
  LanguageModel model_;
};

}  // namespace qbs

#endif  // QBS_LM_LM_BUILDER_H_

#include "lm/model_view.h"

#include <algorithm>

namespace qbs {

const char* TermMetricName(TermMetric metric) {
  switch (metric) {
    case TermMetric::kDf:
      return "df";
    case TermMetric::kCtf:
      return "ctf";
    case TermMetric::kAvgTf:
      return "avg_tf";
  }
  return "unknown";
}

std::vector<std::pair<std::string, double>> RankedTermsOf(
    const LanguageModelView& view, TermMetric metric, size_t top_k) {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(view.vocabulary_size());
  view.ForEachTerm([&](std::string_view term, const TermStats& s) {
    double score = 0.0;
    switch (metric) {
      case TermMetric::kDf:
        score = static_cast<double>(s.df);
        break;
      case TermMetric::kCtf:
        score = static_cast<double>(s.ctf);
        break;
      case TermMetric::kAvgTf:
        score = s.avg_tf();
        break;
    }
    out.emplace_back(std::string(term), score);
  });
  auto cmp = [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (top_k > 0 && top_k < out.size()) {
    std::partial_sort(out.begin(),
                      out.begin() + static_cast<std::ptrdiff_t>(top_k),
                      out.end(), cmp);
    out.resize(top_k);
  } else {
    std::sort(out.begin(), out.end(), cmp);
  }
  return out;
}

}  // namespace qbs

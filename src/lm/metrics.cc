#include "lm/metrics.h"

#include <algorithm>
#include <cmath>

namespace qbs {

namespace {

double ScoreOf(const TermStats& s, TermMetric metric) {
  switch (metric) {
    case TermMetric::kDf:
      return static_cast<double>(s.df);
    case TermMetric::kCtf:
      return static_cast<double>(s.ctf);
    case TermMetric::kAvgTf:
      return s.avg_tf();
  }
  return 0.0;
}

// Collects the terms common to `a` and `b` with each side's metric score.
struct CommonScores {
  std::vector<std::string> terms;
  std::vector<double> score_a;
  std::vector<double> score_b;
};

CommonScores CollectCommon(const LanguageModelView& a,
                           const LanguageModelView& b, TermMetric metric) {
  CommonScores out;
  // Iterate the smaller vocabulary for speed; membership test on the other.
  const LanguageModelView& small =
      a.vocabulary_size() <= b.vocabulary_size() ? a : b;
  const LanguageModelView& large =
      a.vocabulary_size() <= b.vocabulary_size() ? b : a;
  const bool small_is_a = &small == &a;
  small.ForEachTerm([&](std::string_view term, const TermStats& s_small) {
    TermStats s_large;
    if (!large.FindStats(term, &s_large)) return;
    out.terms.emplace_back(term);
    double sc_small = ScoreOf(s_small, metric);
    double sc_large = ScoreOf(s_large, metric);
    out.score_a.push_back(small_is_a ? sc_small : sc_large);
    out.score_b.push_back(small_is_a ? sc_large : sc_small);
  });
  return out;
}

// Converts scores (higher = better) over an item set to average ranks
// (1 = best). Returns ranks parallel to the input vector.
std::vector<double> RanksOf(const std::vector<double>& scores) {
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return scores[x] > scores[y];
  });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    // Items i..j share the average of ranks i+1..j+1.
    double avg = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double PearsonOfRanks(const std::vector<double>& ra,
                      const std::vector<double>& rb) {
  const size_t n = ra.size();
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += ra[i];
    mean_b += rb[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double da = ra[i] - mean_a;
    double db = rb[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double SimpleSpearman(const std::vector<double>& ra,
                      const std::vector<double>& rb) {
  const size_t n = ra.size();
  double sum_d2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = ra[i] - rb[i];
    sum_d2 += d * d;
  }
  double dn = static_cast<double>(n);
  return 1.0 - 6.0 * sum_d2 / (dn * (dn * dn - 1.0));
}

}  // namespace

std::unordered_map<std::string, double> AverageRanks(
    std::vector<std::pair<std::string, double>> scored) {
  std::vector<double> scores;
  scores.reserve(scored.size());
  for (const auto& [term, score] : scored) scores.push_back(score);
  std::vector<double> ranks = RanksOf(scores);
  std::unordered_map<std::string, double> out;
  out.reserve(scored.size());
  for (size_t i = 0; i < scored.size(); ++i) {
    out[std::move(scored[i].first)] = ranks[i];
  }
  return out;
}

double PercentageLearned(const LanguageModelView& learned,
                         const LanguageModelView& actual) {
  if (actual.vocabulary_size() == 0) return 1.0;
  // Iterate the learned vocabulary (typically a few thousand terms) and
  // probe the actual model; the intersection is the same either way, but
  // learned models are orders of magnitude smaller during sampling.
  size_t common = 0;
  learned.ForEachTerm([&](std::string_view term, const TermStats&) {
    if (actual.Contains(term)) ++common;
  });
  return static_cast<double>(common) / actual.vocabulary_size();
}

double CtfRatio(const LanguageModelView& learned,
                const LanguageModelView& actual) {
  if (actual.total_term_count() == 0) return 1.0;
  uint64_t covered = 0;
  learned.ForEachTerm([&](std::string_view term, const TermStats&) {
    TermStats s;
    if (actual.FindStats(term, &s)) covered += s.ctf;
  });
  return static_cast<double>(covered) / actual.total_term_count();
}

double SpearmanRankCorrelation(const LanguageModelView& a,
                               const LanguageModelView& b,
                               const SpearmanOptions& options) {
  CommonScores common = CollectCommon(a, b, options.metric);
  const size_t n = common.terms.size();
  if (n == 0) return 0.0;
  if (n == 1) return 1.0;
  std::vector<double> ra = RanksOf(common.score_a);
  std::vector<double> rb = RanksOf(common.score_b);
  return options.tie_corrected ? PearsonOfRanks(ra, rb)
                               : SimpleSpearman(ra, rb);
}

double RDiff(const LanguageModelView& a, const LanguageModelView& b,
             TermMetric metric) {
  CommonScores common = CollectCommon(a, b, metric);
  const size_t n = common.terms.size();
  if (n < 2) return 0.0;
  std::vector<double> ra = RanksOf(common.score_a);
  std::vector<double> rb = RanksOf(common.score_b);
  double sum_abs = 0.0;
  for (size_t i = 0; i < n; ++i) sum_abs += std::abs(ra[i] - rb[i]);
  double dn = static_cast<double>(n);
  return sum_abs / (dn * dn);
}

LmComparison CompareLanguageModels(const LanguageModelView& learned,
                                   const LanguageModelView& actual) {
  LmComparison out;
  out.pct_vocab_learned = 0.0;
  out.ctf_ratio = 0.0;

  uint64_t covered_ctf = 0;
  size_t common_count = 0;
  learned.ForEachTerm([&](std::string_view term, const TermStats&) {
    TermStats s;
    if (actual.FindStats(term, &s)) {
      ++common_count;
      covered_ctf += s.ctf;
    }
  });
  if (actual.vocabulary_size() > 0) {
    out.pct_vocab_learned =
        static_cast<double>(common_count) / actual.vocabulary_size();
  } else {
    out.pct_vocab_learned = 1.0;
  }
  if (actual.total_term_count() > 0) {
    out.ctf_ratio =
        static_cast<double>(covered_ctf) / actual.total_term_count();
  } else {
    out.ctf_ratio = 1.0;
  }

  SpearmanOptions simple;
  simple.metric = TermMetric::kDf;
  simple.tie_corrected = false;
  out.spearman_df = SpearmanRankCorrelation(learned, actual, simple);
  SpearmanOptions corrected = simple;
  corrected.tie_corrected = true;
  out.spearman_df_tie_corrected =
      SpearmanRankCorrelation(learned, actual, corrected);
  out.common_terms = common_count;
  return out;
}

}  // namespace qbs

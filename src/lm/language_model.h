// Language models: the term + frequency statistics that describe a text
// database to a database-selection algorithm (paper §2.1).
#ifndef QBS_LM_LANGUAGE_MODEL_H_
#define QBS_LM_LANGUAGE_MODEL_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lm/model_view.h"
#include "util/status.h"

namespace qbs {

class InvertedIndex;

/// A language model: vocabulary plus df/ctf per term, and corpus-level
/// counters. This is both the *actual* model (exported from an index) and
/// the *learned* model (accumulated from sampled documents).
///
/// Implements the read-only LanguageModelView interface, so rankers and
/// metrics written against the view serve heap and mmap-backed models
/// interchangeably. Counter accumulation (AddTerm / Merge) saturates at
/// UINT64_MAX instead of wrapping.
class LanguageModel : public LanguageModelView {
 public:
  LanguageModel() = default;

  /// Records one document's terms: each distinct term's df increases by 1,
  /// each occurrence increases ctf. Also bumps num_docs.
  void AddDocument(const std::vector<std::string>& terms);

  /// Directly sets/accumulates stats for a term (merging adds both fields,
  /// saturating at UINT64_MAX).
  void AddTerm(std::string_view term, uint64_t df, uint64_t ctf);

  /// Merges another model into this one (df/ctf add; num_docs adds).
  /// Useful for building the union-of-samples model (paper §8). Accepts
  /// any view — merging a mapped model into a heap model works. Merging
  /// a model with itself doubles every counter.
  void Merge(const LanguageModelView& other);

  /// Returns the stats for a term, or nullptr when absent. Heap-model
  /// fast path; view-generic code uses FindStats.
  const TermStats* Find(std::string_view term) const;

  // LanguageModelView:
  bool FindStats(std::string_view term, TermStats* stats) const override;
  bool Contains(std::string_view term) const override {
    return Find(term) != nullptr;
  }
  size_t vocabulary_size() const override { return stats_.size(); }
  uint64_t total_term_count() const override { return total_terms_; }
  uint64_t num_docs() const override { return num_docs_; }
  void ForEachTerm(
      const std::function<void(std::string_view, const TermStats&)>& fn)
      const override;

  void set_num_docs(uint64_t n) { num_docs_ = n; }

  /// Invokes fn(term, stats) for every vocabulary entry (unspecified order).
  void ForEach(
      const std::function<void(const std::string&, const TermStats&)>& fn)
      const;

  /// Returns (term, score) pairs sorted by `metric` descending, ties broken
  /// lexicographically for determinism. If `top_k` > 0, only that many are
  /// returned.
  std::vector<std::pair<std::string, double>> RankedTerms(
      TermMetric metric, size_t top_k = 0) const {
    return RankedTermsOf(*this, metric, top_k);
  }

  /// Returns a copy whose terms are Porter-stemmed, with stats of words
  /// sharing a stem merged (df is summed — an upper bound, since variants
  /// may co-occur in one document; exact df requires re-deriving from
  /// documents, which LmBuilder does).
  LanguageModel StemCollapsed() const;

  /// Returns a copy without the given stopwords.
  LanguageModel WithoutStopwords(const class StopwordList& stopwords) const;

  /// Serializes to a line-oriented text format.
  Status Save(std::ostream& out) const;

  /// Parses the format written by Save().
  static Result<LanguageModel> Load(std::istream& in);

  /// Builds the *actual* language model of an index: one entry per index
  /// term with its true df and ctf.
  static LanguageModel FromIndex(const InvertedIndex& index);

 private:
  // Heterogeneous-lookup hash so Find(string_view) does not allocate.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::unordered_map<std::string, TermStats, Hash, Eq> stats_;
  uint64_t total_terms_ = 0;
  uint64_t num_docs_ = 0;
};

}  // namespace qbs

#endif  // QBS_LM_LANGUAGE_MODEL_H_

// Language models: the term + frequency statistics that describe a text
// database to a database-selection algorithm (paper §2.1).
#ifndef QBS_LM_LANGUAGE_MODEL_H_
#define QBS_LM_LANGUAGE_MODEL_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace qbs {

class InvertedIndex;

/// Per-term frequency statistics.
struct TermStats {
  /// Document frequency: number of documents containing the term.
  uint64_t df = 0;
  /// Collection term frequency: total occurrences of the term.
  uint64_t ctf = 0;

  /// Average term frequency, ctf / df (the paper's avg_tf).
  double avg_tf() const { return df == 0 ? 0.0 : static_cast<double>(ctf) / df; }

  bool operator==(const TermStats&) const = default;
};

/// Term-frequency metrics used for ranking and query-term selection
/// (paper §5.2: "the three most common in Information Retrieval").
enum class TermMetric { kDf, kCtf, kAvgTf };

/// Returns a stable name for a TermMetric ("df", "ctf", "avg_tf").
const char* TermMetricName(TermMetric metric);

/// A language model: vocabulary plus df/ctf per term, and corpus-level
/// counters. This is both the *actual* model (exported from an index) and
/// the *learned* model (accumulated from sampled documents).
class LanguageModel {
 public:
  LanguageModel() = default;

  /// Records one document's terms: each distinct term's df increases by 1,
  /// each occurrence increases ctf. Also bumps num_docs.
  void AddDocument(const std::vector<std::string>& terms);

  /// Directly sets/accumulates stats for a term (merging adds both fields).
  void AddTerm(std::string_view term, uint64_t df, uint64_t ctf);

  /// Merges another model into this one (df/ctf add; num_docs adds).
  /// Useful for building the union-of-samples model (paper §8).
  void Merge(const LanguageModel& other);

  /// Returns the stats for a term, or nullptr when absent.
  const TermStats* Find(std::string_view term) const;

  /// True iff the term is in the vocabulary.
  bool Contains(std::string_view term) const { return Find(term) != nullptr; }

  /// Vocabulary size (distinct terms).
  size_t vocabulary_size() const { return stats_.size(); }

  /// Total term occurrences (sum of ctf).
  uint64_t total_term_count() const { return total_terms_; }

  /// Number of documents this model was built from (0 when unknown, e.g.
  /// after deserializing a model that did not record it).
  uint64_t num_docs() const { return num_docs_; }
  void set_num_docs(uint64_t n) { num_docs_ = n; }

  /// Invokes fn(term, stats) for every vocabulary entry (unspecified order).
  void ForEach(
      const std::function<void(const std::string&, const TermStats&)>& fn)
      const;

  /// Returns (term, score) pairs sorted by `metric` descending, ties broken
  /// lexicographically for determinism. If `top_k` > 0, only that many are
  /// returned.
  std::vector<std::pair<std::string, double>> RankedTerms(
      TermMetric metric, size_t top_k = 0) const;

  /// Returns a copy whose terms are Porter-stemmed, with stats of words
  /// sharing a stem merged (df is summed — an upper bound, since variants
  /// may co-occur in one document; exact df requires re-deriving from
  /// documents, which LmBuilder does).
  LanguageModel StemCollapsed() const;

  /// Returns a copy without the given stopwords.
  LanguageModel WithoutStopwords(const class StopwordList& stopwords) const;

  /// Serializes to a line-oriented text format.
  Status Save(std::ostream& out) const;

  /// Parses the format written by Save().
  static Result<LanguageModel> Load(std::istream& in);

  /// Builds the *actual* language model of an index: one entry per index
  /// term with its true df and ctf.
  static LanguageModel FromIndex(const InvertedIndex& index);

 private:
  // Heterogeneous-lookup hash so Find(string_view) does not allocate.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::unordered_map<std::string, TermStats, Hash, Eq> stats_;
  uint64_t total_terms_ = 0;
  uint64_t num_docs_ = 0;
};

}  // namespace qbs

#endif  // QBS_LM_LANGUAGE_MODEL_H_

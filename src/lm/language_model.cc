#include "lm/language_model.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "index/inverted_index.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"

namespace qbs {

namespace {

// Counters saturate rather than wrap: a wrapped total_terms_ would
// silently corrupt every probability the rankers compute.
uint64_t SatAdd(uint64_t a, uint64_t b) {
  uint64_t sum = a + b;
  return sum < a ? std::numeric_limits<uint64_t>::max() : sum;
}

}  // namespace

void LanguageModel::AddDocument(const std::vector<std::string>& terms) {
  // Count within-document tf first so df increases exactly once per term.
  std::unordered_map<std::string_view, uint32_t> tf;
  tf.reserve(terms.size());
  for (const std::string& t : terms) ++tf[t];
  for (const auto& [term, count] : tf) {
    TermStats& s = stats_[std::string(term)];
    s.df = SatAdd(s.df, 1);
    s.ctf = SatAdd(s.ctf, count);
  }
  total_terms_ = SatAdd(total_terms_, terms.size());
  ++num_docs_;
}

void LanguageModel::AddTerm(std::string_view term, uint64_t df,
                            uint64_t ctf) {
  TermStats& s = stats_[std::string(term)];
  s.df = SatAdd(s.df, df);
  s.ctf = SatAdd(s.ctf, ctf);
  total_terms_ = SatAdd(total_terms_, ctf);
}

void LanguageModel::Merge(const LanguageModelView& other) {
  if (&other == static_cast<const LanguageModelView*>(this)) {
    // Merging with self would mutate stats_ while iterating it; double
    // in place instead (same result, no aliasing hazard).
    for (auto& [term, s] : stats_) {
      s.df = SatAdd(s.df, s.df);
      s.ctf = SatAdd(s.ctf, s.ctf);
    }
    total_terms_ = SatAdd(total_terms_, total_terms_);
    num_docs_ = SatAdd(num_docs_, num_docs_);
    return;
  }
  other.ForEachTerm([this](std::string_view term, const TermStats& s) {
    // AddTerm also accumulates total_terms_ by ctf, which matches the
    // invariant total_terms_ == sum(ctf) the source view maintains.
    AddTerm(term, s.df, s.ctf);
  });
  num_docs_ = SatAdd(num_docs_, other.num_docs());
}

const TermStats* LanguageModel::Find(std::string_view term) const {
  auto it = stats_.find(term);
  return it == stats_.end() ? nullptr : &it->second;
}

bool LanguageModel::FindStats(std::string_view term, TermStats* stats) const {
  const TermStats* s = Find(term);
  if (s == nullptr) return false;
  *stats = *s;
  return true;
}

void LanguageModel::ForEach(
    const std::function<void(const std::string&, const TermStats&)>& fn)
    const {
  for (const auto& [term, s] : stats_) fn(term, s);
}

void LanguageModel::ForEachTerm(
    const std::function<void(std::string_view, const TermStats&)>& fn)
    const {
  for (const auto& [term, s] : stats_) fn(term, s);
}

LanguageModel LanguageModel::StemCollapsed() const {
  LanguageModel out;
  for (const auto& [term, s] : stats_) {
    out.AddTerm(PorterStemmer::Stem(term), s.df, s.ctf);
  }
  out.num_docs_ = num_docs_;
  return out;
}

LanguageModel LanguageModel::WithoutStopwords(
    const StopwordList& stopwords) const {
  LanguageModel out;
  for (const auto& [term, s] : stats_) {
    if (!stopwords.Contains(term)) out.AddTerm(term, s.df, s.ctf);
  }
  out.num_docs_ = num_docs_;
  return out;
}

Status LanguageModel::Save(std::ostream& out) const {
  out << "#QBSLM v1\n";
  out << "num_docs " << num_docs_ << "\n";
  out << "vocab " << stats_.size() << "\n";
  // Sort for a canonical on-disk form.
  std::vector<const std::pair<const std::string, TermStats>*> entries;
  entries.reserve(stats_.size());
  for (const auto& e : stats_) entries.push_back(&e);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* e : entries) {
    out << e->first << ' ' << e->second.df << ' ' << e->second.ctf << '\n';
  }
  if (!out) return Status::IOError("write failed while saving language model");
  return Status::OK();
}

Result<LanguageModel> LanguageModel::Load(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "#QBSLM v1") {
    return Status::Corruption("missing #QBSLM v1 header");
  }
  LanguageModel lm;
  uint64_t vocab = 0;
  if (!(in >> line >> lm.num_docs_) || line != "num_docs") {
    return Status::Corruption("missing num_docs line");
  }
  if (!(in >> line >> vocab) || line != "vocab") {
    return Status::Corruption("missing vocab line");
  }
  std::string term;
  uint64_t df = 0, ctf = 0;
  for (uint64_t i = 0; i < vocab; ++i) {
    if (!(in >> term >> df >> ctf)) {
      return Status::Corruption("truncated language model: expected " +
                                std::to_string(vocab) + " terms, got " +
                                std::to_string(i));
    }
    if (df == 0 || ctf < df) {
      return Status::Corruption("invalid stats for term '" + term + "'");
    }
    lm.AddTerm(term, df, ctf);
  }
  return lm;
}

LanguageModel LanguageModel::FromIndex(const InvertedIndex& index) {
  LanguageModel lm;
  const TermDictionary& dict = index.dict();
  for (TermId id = 0; id < dict.size(); ++id) {
    lm.AddTerm(dict.TermText(id), index.df(id), index.ctf(id));
  }
  lm.set_num_docs(index.num_docs());
  return lm;
}

}  // namespace qbs

// The paper's language-model quality metrics (§4.3, §6):
//   - percentage learned      (vocabulary coverage, Fig. 1a)
//   - ctf ratio               (weighted vocabulary coverage, Fig. 1b)
//   - Spearman rank correlation of term rankings (Fig. 2)
//   - rdiff                   (snapshot-to-snapshot rank movement, Fig. 4)
#ifndef QBS_LM_METRICS_H_
#define QBS_LM_METRICS_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lm/model_view.h"

namespace qbs {

/// Computes fractional ranks (1 = best) for scored items, assigning tied
/// scores the average of the ranks they span ("average ranks", the standard
/// tie treatment for Spearman).
std::unordered_map<std::string, double> AverageRanks(
    std::vector<std::pair<std::string, double>> scored);

/// Fraction of the actual vocabulary present in the learned vocabulary
/// (paper's "percentage learned", returned as a fraction in [0, 1]).
/// Returns 1.0 when the actual vocabulary is empty.
double PercentageLearned(const LanguageModelView& learned,
                         const LanguageModelView& actual);

/// Fraction of the actual database's term *occurrences* covered by the
/// learned vocabulary: sum of actual ctf over common terms, divided by the
/// actual total term count (paper §4.3.2). Returns 1.0 when the actual
/// model is empty.
double CtfRatio(const LanguageModelView& learned,
                const LanguageModelView& actual);

/// Options for Spearman rank correlation.
struct SpearmanOptions {
  /// Which frequency statistic induces the ranking (the paper uses df).
  TermMetric metric = TermMetric::kDf;
  /// When false, uses the paper's simple formula R = 1 - 6*sum(d^2)/(n^3-n)
  /// with average ranks for ties. When true, computes the exact Pearson
  /// correlation of the rank vectors (correct in the presence of many ties).
  bool tie_corrected = false;
};

/// Spearman rank correlation between the term rankings of two language
/// models, computed over the terms common to both (paper §4.3.3): +1 for
/// identical rankings, 0 for uncorrelated, -1 for reversed.
///
/// Degenerate cases: returns 0.0 when there are no common terms, 1.0 when
/// exactly one.
double SpearmanRankCorrelation(const LanguageModelView& a,
                               const LanguageModelView& b,
                               const SpearmanOptions& options = {});

/// The paper's rdiff (§6): mean absolute rank difference of common terms,
/// normalized by n^2:  rdiff = (1/n^2) * sum_i |d_i|. Measures how far the
/// average term moved between two rankings, as a fraction of the number of
/// ranks. Returns 0.0 when fewer than two common terms exist.
double RDiff(const LanguageModelView& a, const LanguageModelView& b,
             TermMetric metric = TermMetric::kDf);

/// All comparison metrics at once, sharing the common-term computation.
struct LmComparison {
  /// Fraction of actual vocabulary learned (Fig. 1a).
  double pct_vocab_learned = 0.0;
  /// Fraction of actual term occurrences covered (Fig. 1b).
  double ctf_ratio = 0.0;
  /// Spearman correlation of df rankings, simple formula (Fig. 2).
  double spearman_df = 0.0;
  /// Spearman correlation of df rankings, tie-corrected.
  double spearman_df_tie_corrected = 0.0;
  /// Number of common terms the rank metrics were computed over.
  size_t common_terms = 0;
};

/// Compares a learned model against the actual model of a database.
/// The caller is responsible for having put both models into a comparable
/// term space first (e.g. stemming the learned model, paper §4.1).
LmComparison CompareLanguageModels(const LanguageModelView& learned,
                                   const LanguageModelView& actual);

}  // namespace qbs

#endif  // QBS_LM_METRICS_H_

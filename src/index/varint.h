// LEB128-style variable-length integer coding used to compress posting
// lists (delta-encoded doc ids, then tf values).
#ifndef QBS_INDEX_VARINT_H_
#define QBS_INDEX_VARINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qbs {

/// Appends the varint encoding of `value` to `out`.
void PutVarint32(std::vector<uint8_t>& out, uint32_t value);
void PutVarint64(std::vector<uint8_t>& out, uint64_t value);

/// Decodes a varint starting at `data[*pos]`, advancing *pos past it.
/// Returns false on truncated or malformed (overlong) input.
bool GetVarint32(const std::vector<uint8_t>& data, size_t* pos,
                 uint32_t* value);
bool GetVarint64(const std::vector<uint8_t>& data, size_t* pos,
                 uint64_t* value);

}  // namespace qbs

#endif  // QBS_INDEX_VARINT_H_

#include "index/inverted_index.h"

#include <algorithm>

namespace qbs {

DocId InvertedIndex::AddDocument(const std::vector<std::string>& terms) {
  DocId doc = static_cast<DocId>(doc_lengths_.size());
  for (const std::string& t : terms) {
    TermId id = dict_.GetOrAdd(t);
    if (id >= tf_scratch_.size()) tf_scratch_.resize(id + 1, 0);
    if (tf_scratch_[id] == 0) touched_.push_back(id);
    ++tf_scratch_[id];
  }
  if (dict_.size() > postings_.size()) postings_.resize(dict_.size());
  // Sort touched terms so postings stay cache-friendly; not required for
  // correctness (each list is keyed by term), but keeps builds deterministic.
  std::sort(touched_.begin(), touched_.end());
  for (TermId id : touched_) {
    postings_[id].Append(doc, tf_scratch_[id]);
    tf_scratch_[id] = 0;
  }
  touched_.clear();
  doc_lengths_.push_back(static_cast<uint32_t>(terms.size()));
  total_terms_ += terms.size();
  return doc;
}

Result<InvertedIndex> InvertedIndex::Restore(
    TermDictionary dict, std::vector<PostingList> postings,
    std::vector<uint32_t> doc_lengths) {
  if (dict.size() != postings.size()) {
    return Status::Corruption("dictionary/postings size mismatch");
  }
  uint64_t doc_length_total = 0;
  for (uint32_t len : doc_lengths) doc_length_total += len;
  uint64_t posting_total = 0;
  for (const PostingList& p : postings) {
    posting_total += p.collection_frequency();
    // Every posting must point at an existing document; checking the last
    // (largest) doc id suffices because ids are strictly increasing.
    if (p.doc_frequency() > 0) {
      std::vector<Posting> tail = p.Decode();
      if (tail.back().doc_id >= doc_lengths.size()) {
        return Status::Corruption("posting refers to nonexistent document");
      }
    }
  }
  if (posting_total != doc_length_total) {
    return Status::Corruption("posting/doc-length term count mismatch");
  }
  InvertedIndex index;
  index.dict_ = std::move(dict);
  index.postings_ = std::move(postings);
  index.doc_lengths_ = std::move(doc_lengths);
  index.total_terms_ = doc_length_total;
  return index;
}

size_t InvertedIndex::posting_bytes() const {
  size_t total = 0;
  for (const auto& p : postings_) total += p.byte_size();
  return total;
}

void InvertedIndex::ShrinkToFit() {
  for (auto& p : postings_) p.ShrinkToFit();
  tf_scratch_.clear();
  tf_scratch_.shrink_to_fit();
  touched_.shrink_to_fit();
}

}  // namespace qbs

// Compressed posting lists: delta-encoded doc ids and tf values packed
// with varints.
#ifndef QBS_INDEX_POSTINGS_H_
#define QBS_INDEX_POSTINGS_H_

#include <cstdint>
#include <vector>

#include "index/types.h"
#include "index/varint.h"
#include "util/logging.h"
#include "util/status.h"

namespace qbs {

/// An immutable compressed posting list.
///
/// Layout: for each posting, varint(doc_id - prev_doc_id) then
/// varint(tf - 1). Doc ids must be appended in strictly increasing order.
class PostingList {
 public:
  PostingList() = default;

  /// Appends a posting. `doc_id` must be greater than the last appended
  /// doc id; `tf` must be >= 1.
  void Append(DocId doc_id, uint32_t tf);

  /// Number of postings (the term's document frequency).
  uint32_t doc_frequency() const { return count_; }

  /// Sum of tf over all postings (the term's collection term frequency).
  uint64_t collection_frequency() const { return ctf_; }

  /// Bytes used by the compressed representation.
  size_t byte_size() const { return bytes_.size(); }

  /// Releases excess capacity.
  void ShrinkToFit() { bytes_.shrink_to_fit(); }

  /// Forward iterator over the compressed postings.
  class Iterator {
   public:
    explicit Iterator(const PostingList& list)
        : list_(&list), remaining_(list.count_) {
      Advance();
    }

    /// True while the current posting is valid.
    bool Valid() const { return valid_; }

    /// The current posting; requires Valid().
    const Posting& Get() const {
      QBS_DCHECK(valid_);
      return current_;
    }

    /// Moves to the next posting.
    void Next() { Advance(); }

   private:
    void Advance();

    const PostingList* list_;
    uint32_t remaining_;
    size_t pos_ = 0;
    DocId prev_doc_ = 0;
    bool first_ = true;
    bool valid_ = false;
    Posting current_{0, 0};
  };

  Iterator NewIterator() const { return Iterator(*this); }

  /// Decodes all postings into a vector (mainly for tests and merging).
  std::vector<Posting> Decode() const;

  /// Raw compressed bytes (for persistence).
  const std::vector<uint8_t>& raw_bytes() const { return bytes_; }

  /// Reconstructs a list from persisted state. Validates that the bytes
  /// decode to exactly `count` postings with the given aggregate ctf;
  /// returns Corruption otherwise.
  static Result<PostingList> FromRaw(std::vector<uint8_t> bytes,
                                     uint32_t count, uint64_t ctf);

 private:
  std::vector<uint8_t> bytes_;
  uint32_t count_ = 0;
  uint64_t ctf_ = 0;
  DocId last_doc_ = 0;
  bool has_any_ = false;
};

}  // namespace qbs

#endif  // QBS_INDEX_POSTINGS_H_

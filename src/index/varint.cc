#include "index/varint.h"

namespace qbs {

void PutVarint32(std::vector<uint8_t>& out, uint32_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

void PutVarint64(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

bool GetVarint32(const std::vector<uint8_t>& data, size_t* pos,
                 uint32_t* value) {
  uint32_t result = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 28) {
    uint8_t byte = data[*pos];
    ++*pos;
    result |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject overflow in the final byte of a 5-byte encoding.
      if (shift == 28 && (byte & 0x70) != 0) return false;
      // Reject overlong (non-canonical) encodings: a zero final byte
      // after at least one continuation byte pads the value with zero
      // bits the encoder would never emit. Accepting them would make
      // distinct byte strings decode equal — a round-trip violation.
      if (shift > 0 && byte == 0) return false;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

bool GetVarint64(const std::vector<uint8_t>& data, size_t* pos,
                 uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    uint8_t byte = data[*pos];
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 63 && (byte & 0x7E) != 0) return false;
      // Overlong zero-padded encodings are malformed (see GetVarint32).
      if (shift > 0 && byte == 0) return false;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace qbs

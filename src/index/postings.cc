#include "index/postings.h"

namespace qbs {

void PostingList::Append(DocId doc_id, uint32_t tf) {
  QBS_CHECK_GE(tf, 1u);
  uint32_t delta;
  if (!has_any_) {
    delta = doc_id;
    has_any_ = true;
  } else {
    QBS_CHECK_GT(doc_id, last_doc_);
    delta = doc_id - last_doc_;
  }
  PutVarint32(bytes_, delta);
  PutVarint32(bytes_, tf - 1);
  last_doc_ = doc_id;
  ++count_;
  ctf_ += tf;
}

void PostingList::Iterator::Advance() {
  if (remaining_ == 0) {
    valid_ = false;
    return;
  }
  uint32_t delta = 0, tf_minus_1 = 0;
  bool ok = GetVarint32(list_->bytes_, &pos_, &delta) &&
            GetVarint32(list_->bytes_, &pos_, &tf_minus_1);
  QBS_CHECK(ok);  // internal corruption would silently skew statistics
  current_.doc_id = first_ ? delta : prev_doc_ + delta;
  current_.tf = tf_minus_1 + 1;
  prev_doc_ = current_.doc_id;
  first_ = false;
  --remaining_;
  valid_ = true;
}

Result<PostingList> PostingList::FromRaw(std::vector<uint8_t> bytes,
                                         uint32_t count, uint64_t ctf) {
  // Decode once to validate structure and recover last_doc_.
  PostingList list;
  list.bytes_ = std::move(bytes);
  list.count_ = count;
  list.ctf_ = ctf;
  uint64_t seen_ctf = 0;
  size_t pos = 0;
  DocId prev = 0;
  bool first = true;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0, tf_minus_1 = 0;
    if (!GetVarint32(list.bytes_, &pos, &delta) ||
        !GetVarint32(list.bytes_, &pos, &tf_minus_1)) {
      return Status::Corruption("truncated posting list");
    }
    if (!first && delta == 0) {
      return Status::Corruption("non-increasing doc id in posting list");
    }
    prev = first ? delta : prev + delta;
    first = false;
    seen_ctf += tf_minus_1 + 1;
  }
  if (pos != list.bytes_.size()) {
    return Status::Corruption("trailing bytes in posting list");
  }
  if (seen_ctf != ctf) {
    return Status::Corruption("posting list ctf mismatch");
  }
  list.last_doc_ = prev;
  list.has_any_ = count > 0;
  return list;
}

std::vector<Posting> PostingList::Decode() const {
  std::vector<Posting> out;
  out.reserve(count_);
  for (Iterator it = NewIterator(); it.Valid(); it.Next()) {
    out.push_back(it.Get());
  }
  return out;
}

}  // namespace qbs

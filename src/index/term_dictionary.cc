#include "index/term_dictionary.h"

#include "util/logging.h"

namespace qbs {

TermId TermDictionary::GetOrAdd(std::string_view term) {
  auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

TermId TermDictionary::Lookup(std::string_view term) const {
  auto it = ids_.find(term);
  return it == ids_.end() ? kInvalidTermId : it->second;
}

const std::string& TermDictionary::TermText(TermId id) const {
  QBS_CHECK_LT(id, terms_.size());
  return terms_[id];
}

}  // namespace qbs

// Arena-backed storage of raw document text, so sampled documents can be
// fetched verbatim (the sampler builds language models from *full text*,
// not from the index).
#ifndef QBS_INDEX_DOCUMENT_STORE_H_
#define QBS_INDEX_DOCUMENT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "index/types.h"
#include "util/logging.h"

namespace qbs {

/// Append-only store mapping DocId -> (external name, raw text).
///
/// Text is packed into a single arena to avoid per-document allocation
/// overhead on large corpora.
class DocumentStore {
 public:
  DocumentStore() = default;

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;
  DocumentStore(DocumentStore&&) = default;
  DocumentStore& operator=(DocumentStore&&) = default;

  /// Appends a document; ids are dense from 0 in insertion order.
  DocId Add(std::string_view name, std::string_view text);

  /// Number of stored documents.
  uint32_t size() const { return static_cast<uint32_t>(offsets_.size()); }

  /// The external name (e.g. DOCNO) of a document.
  std::string_view Name(DocId doc) const;

  /// The raw text of a document.
  std::string_view Text(DocId doc) const;

  /// Total bytes of stored text (the corpus "size in bytes").
  uint64_t text_bytes() const { return text_arena_.size(); }

 private:
  struct Span {
    uint64_t offset;
    uint32_t length;
  };

  std::string text_arena_;
  std::string name_arena_;
  std::vector<Span> offsets_;
  std::vector<Span> name_offsets_;
};

}  // namespace qbs

#endif  // QBS_INDEX_DOCUMENT_STORE_H_

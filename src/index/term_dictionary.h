// Bidirectional mapping between term strings and dense TermIds.
#ifndef QBS_INDEX_TERM_DICTIONARY_H_
#define QBS_INDEX_TERM_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/types.h"

namespace qbs {

/// Interns term strings, assigning dense ids in first-seen order.
class TermDictionary {
 public:
  TermDictionary() = default;

  /// Returns the id of `term`, adding it if absent.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id of `term`, or kInvalidTermId if absent.
  TermId Lookup(std::string_view term) const;

  /// Returns the text of an id. Requires id < size().
  const std::string& TermText(TermId id) const;

  /// Number of distinct terms.
  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  /// Iterates all terms in id order.
  const std::vector<std::string>& terms() const { return terms_; }

 private:
  // Heterogeneous-lookup hash so Lookup(string_view) does not allocate.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::vector<std::string> terms_;
  std::unordered_map<std::string, TermId, Hash, Eq> ids_;
};

}  // namespace qbs

#endif  // QBS_INDEX_TERM_DICTIONARY_H_

// An in-memory inverted index over analyzed documents.
#ifndef QBS_INDEX_INVERTED_INDEX_H_
#define QBS_INDEX_INVERTED_INDEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "index/postings.h"
#include "index/term_dictionary.h"
#include "index/types.h"
#include "util/status.h"

namespace qbs {

/// Inverted index: term -> compressed posting list, plus the corpus-level
/// statistics (df, ctf, document lengths) that rankers and language models
/// need.
///
/// Documents are added in order and receive dense DocIds from 0.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Indexes one document given its (already analyzed) terms, returning its
  /// DocId. Terms may repeat; repeats increase tf.
  DocId AddDocument(const std::vector<std::string>& terms);

  /// Number of indexed documents.
  uint32_t num_docs() const { return static_cast<uint32_t>(doc_lengths_.size()); }

  /// Number of distinct terms.
  size_t unique_terms() const { return dict_.size(); }

  /// Total number of term occurrences across all documents.
  uint64_t total_terms() const { return total_terms_; }

  /// Mean document length in terms (0 when empty).
  double avg_doc_length() const {
    return doc_lengths_.empty()
               ? 0.0
               : static_cast<double>(total_terms_) / doc_lengths_.size();
  }

  /// Length (term count) of one document.
  uint32_t doc_length(DocId doc) const { return doc_lengths_[doc]; }

  /// Document frequency of a term (0 for unknown ids).
  uint32_t df(TermId term) const {
    return term < postings_.size() ? postings_[term].doc_frequency() : 0;
  }

  /// Collection term frequency of a term (0 for unknown ids).
  uint64_t ctf(TermId term) const {
    return term < postings_.size() ? postings_[term].collection_frequency()
                                   : 0;
  }

  /// The posting list for a term. Requires term < unique_terms().
  const PostingList& postings(TermId term) const { return postings_[term]; }

  /// The term dictionary.
  const TermDictionary& dict() const { return dict_; }

  /// Looks up a term string; kInvalidTermId when absent.
  TermId LookupTerm(std::string_view term) const {
    return dict_.Lookup(term);
  }

  /// Total compressed posting bytes (for reporting).
  size_t posting_bytes() const;

  /// Releases excess capacity after bulk loading.
  void ShrinkToFit();

  /// Reassembles an index from persisted parts (storage layer). Validates
  /// that sizes are mutually consistent and that per-term statistics refer
  /// only to existing documents.
  static Result<InvertedIndex> Restore(TermDictionary dict,
                                       std::vector<PostingList> postings,
                                       std::vector<uint32_t> doc_lengths);

 private:
  TermDictionary dict_;
  std::vector<PostingList> postings_;
  std::vector<uint32_t> doc_lengths_;
  uint64_t total_terms_ = 0;

  // Scratch reused across AddDocument calls: term id -> tf for the current
  // document, with a touched-list to reset cheaply.
  std::vector<uint32_t> tf_scratch_;
  std::vector<TermId> touched_;
};

}  // namespace qbs

#endif  // QBS_INDEX_INVERTED_INDEX_H_

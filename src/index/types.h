// Fundamental identifier types shared by the indexing and search layers.
#ifndef QBS_INDEX_TYPES_H_
#define QBS_INDEX_TYPES_H_

#include <cstdint>
#include <limits>

namespace qbs {

/// Internal document identifier, dense from 0 within one index.
using DocId = uint32_t;

/// Internal term identifier, dense from 0 within one TermDictionary.
using TermId = uint32_t;

/// Sentinel for "no such term".
inline constexpr TermId kInvalidTermId = std::numeric_limits<TermId>::max();

/// Sentinel for "no such document".
inline constexpr DocId kInvalidDocId = std::numeric_limits<DocId>::max();

/// One posting: a document and the term's within-document frequency.
struct Posting {
  DocId doc_id;
  uint32_t tf;

  bool operator==(const Posting& other) const = default;
};

}  // namespace qbs

#endif  // QBS_INDEX_TYPES_H_

#include "index/document_store.h"

namespace qbs {

DocId DocumentStore::Add(std::string_view name, std::string_view text) {
  DocId id = static_cast<DocId>(offsets_.size());
  offsets_.push_back(
      {text_arena_.size(), static_cast<uint32_t>(text.size())});
  text_arena_.append(text);
  name_offsets_.push_back(
      {name_arena_.size(), static_cast<uint32_t>(name.size())});
  name_arena_.append(name);
  return id;
}

std::string_view DocumentStore::Name(DocId doc) const {
  QBS_CHECK_LT(doc, name_offsets_.size());
  const Span& s = name_offsets_[doc];
  return std::string_view(name_arena_).substr(s.offset, s.length);
}

std::string_view DocumentStore::Text(DocId doc) const {
  QBS_CHECK_LT(doc, offsets_.size());
  const Span& s = offsets_[doc];
  return std::string_view(text_arena_).substr(s.offset, s.length);
}

}  // namespace qbs

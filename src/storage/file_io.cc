#include "storage/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/fd.h"
#include "util/logging.h"

namespace qbs {

namespace {

std::string ErrnoMessage(const std::string& what, int err) {
  return what + ": " + std::strerror(err);
}

}  // namespace

Status ReadFdFull(int fd, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::read(fd, p + done, n - done);
    if (got < 0) {
      if (errno == EINTR) continue;  // signal without SA_RESTART; retry
      return Status::IOError(ErrnoMessage("read failed", errno));
    }
    if (got == 0) {
      return Status::Corruption("unexpected end of file: wanted " +
                                std::to_string(n) + " bytes, got " +
                                std::to_string(done));
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status WriteFdAll(int fd, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < n) {
    ssize_t put = ::write(fd, p + done, n - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write failed", errno));
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  UniqueFd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IOError(ErrnoMessage("cannot open " + path, errno));
  }
  struct stat st = {};
  if (::fstat(fd.get(), &st) != 0) {
    return Status::IOError(ErrnoMessage("cannot stat " + path, errno));
  }
  std::string out;
  out.resize(static_cast<size_t>(st.st_size));
  if (!out.empty()) {
    QBS_RETURN_IF_ERROR(ReadFdFull(fd.get(), out.data(), out.size()));
  }
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  UniqueFd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                     0644));
  if (!fd.valid()) {
    return Status::IOError(ErrnoMessage("cannot create " + tmp, errno));
  }
  Status status = WriteFdAll(fd.get(), data.data(), data.size());
  if (status.ok() && ::fsync(fd.get()) != 0) {
    status = Status::IOError(ErrnoMessage("fsync failed for " + tmp, errno));
  }
  fd.Reset();  // close before rename
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IOError(
        ErrnoMessage("cannot rename " + tmp + " to " + path, errno));
  }
  if (!status.ok()) ::unlink(tmp.c_str());
  return status;
}

void Fnv1a::Update(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash_ ^= p[i];
    hash_ *= 0x100000001B3ULL;
  }
}

SectionWriter::SectionWriter(std::ostream& out, std::string_view magic)
    : out_(out) {
  QBS_CHECK_EQ(magic.size(), 8u);
  out_.write(magic.data(), 8);  // magic is outside the checksum
}

void SectionWriter::WriteBytes(const void* data, size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  crc_.Update(data, n);
}

void SectionWriter::WriteFixed32(uint32_t v) {
  uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<uint8_t>(v >> (8 * i));
  WriteBytes(buf, 4);
}

void SectionWriter::WriteFixed64(uint64_t v) {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(v >> (8 * i));
  WriteBytes(buf, 8);
}

void SectionWriter::WriteVarint32(uint32_t v) { WriteVarint64(v); }

void SectionWriter::WriteVarint64(uint64_t v) {
  uint8_t buf[10];
  size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<uint8_t>(v);
  WriteBytes(buf, n);
}

void SectionWriter::WriteString(std::string_view s) {
  WriteVarint64(s.size());
  WriteBytes(s.data(), s.size());
}

Status SectionWriter::Finish() {
  uint64_t digest = crc_.digest();
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<uint8_t>(digest >> (8 * i));
  }
  out_.write(reinterpret_cast<const char*>(buf), 8);
  if (!out_) return Status::IOError("write failed while persisting section");
  return Status::OK();
}

Status SectionReader::ExpectMagic(std::string_view magic) {
  QBS_CHECK_EQ(magic.size(), 8u);
  char buf[8];
  in_.read(buf, 8);
  if (!in_ || std::string_view(buf, 8) != magic) {
    return Status::Corruption("bad magic; expected '" + std::string(magic) +
                              "'");
  }
  return Status::OK();
}

Status SectionReader::ReadBytes(void* data, size_t n) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_.gcount()) != n) {
    return Status::Corruption("unexpected end of section");
  }
  crc_.Update(data, n);
  return Status::OK();
}

Status SectionReader::ReadFixed32(uint32_t* v) {
  uint8_t buf[4];
  QBS_RETURN_IF_ERROR(ReadBytes(buf, 4));
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return Status::OK();
}

Status SectionReader::ReadFixed64(uint64_t* v) {
  uint8_t buf[8];
  QBS_RETURN_IF_ERROR(ReadBytes(buf, 8));
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return Status::OK();
}

Status SectionReader::ReadVarint64(uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (shift <= 63) {
    uint8_t byte = 0;
    QBS_RETURN_IF_ERROR(ReadBytes(&byte, 1));
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::Corruption("malformed varint");
}

Status SectionReader::ReadVarint32(uint32_t* v) {
  uint64_t wide = 0;
  QBS_RETURN_IF_ERROR(ReadVarint64(&wide));
  if (wide > 0xFFFFFFFFull) return Status::Corruption("varint32 overflow");
  *v = static_cast<uint32_t>(wide);
  return Status::OK();
}

Status SectionReader::ReadString(std::string* s, uint64_t max_len) {
  uint64_t len = 0;
  QBS_RETURN_IF_ERROR(ReadVarint64(&len));
  if (len > max_len) return Status::Corruption("string length too large");
  s->resize(len);
  if (len > 0) QBS_RETURN_IF_ERROR(ReadBytes(s->data(), len));
  return Status::OK();
}

Status SectionReader::VerifyChecksum() {
  uint64_t expected = crc_.digest();  // capture before the footer read
  uint8_t buf[8];
  in_.read(reinterpret_cast<char*>(buf), 8);
  if (static_cast<size_t>(in_.gcount()) != 8) {
    return Status::Corruption("missing checksum footer");
  }
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(buf[i]) << (8 * i);
  }
  if (stored != expected) {
    return Status::Corruption("checksum mismatch: section is damaged");
  }
  return Status::OK();
}

}  // namespace qbs

// Checksummed binary stream primitives for the on-disk index format,
// plus the POSIX full-transfer helpers the binary model store builds on.
//
// Every persisted file is:  magic(8) | payload | crc(8, FNV-1a of payload)
// Integers are little-endian fixed-width or LEB128 varints; strings are
// varint-length-prefixed bytes.
//
// Partial-transfer audit (the paths mstore reuses): the iostream-based
// SectionReader/SectionWriter sit on std::filebuf, whose read/write
// loops internally until the requested count transfers or the stream
// fails — gcount() is checked after every read, so short sections
// surface as Corruption, not garbage. Raw read(2)/write(2), by
// contrast, may transfer fewer bytes than asked (always possible on
// pipes/sockets, and on files when interrupted) and may fail with
// EINTR when a signal lands without SA_RESTART. The fd helpers below
// centralize the retry loops so no caller ever sees a short transfer;
// tests/file_io_posix_test.cc pins both behaviors.
#ifndef QBS_STORAGE_FILE_IO_H_
#define QBS_STORAGE_FILE_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace qbs {

/// Reads exactly `n` bytes from `fd` into `buf`, looping across partial
/// reads and EINTR. Returns Corruption("unexpected end of file") when
/// EOF arrives first, IOError for any other errno.
Status ReadFdFull(int fd, void* buf, size_t n);

/// Writes all `n` bytes to `fd`, looping across partial writes and
/// EINTR. Returns IOError on failure.
Status WriteFdAll(int fd, const void* data, size_t n);

/// Reads an entire regular file. NotFound when the path does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `data`: writes to a temp file in the
/// same directory, fsyncs, then rename(2)s over the target — readers
/// (and mmap openers) never observe a torn or truncated file.
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Incremental FNV-1a 64-bit hash.
class Fnv1a {
 public:
  void Update(const void* data, size_t n);
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// Writes a checksummed section to a stream: magic on construction,
/// payload via the Write* methods, checksum on Finish().
class SectionWriter {
 public:
  /// `magic` must be exactly 8 bytes.
  SectionWriter(std::ostream& out, std::string_view magic);

  void WriteFixed32(uint32_t v);
  void WriteFixed64(uint64_t v);
  void WriteVarint32(uint32_t v);
  void WriteVarint64(uint64_t v);
  void WriteString(std::string_view s);
  void WriteBytes(const void* data, size_t n);

  /// Appends the checksum footer. Returns IOError if the stream failed at
  /// any point.
  Status Finish();

 private:
  std::ostream& out_;
  Fnv1a crc_;
};

/// Reads a checksummed section written by SectionWriter. The checksum is
/// validated against everything read when VerifyChecksum() is called; the
/// caller must consume the payload exactly.
class SectionReader {
 public:
  SectionReader(std::istream& in) : in_(in) {}

  /// Reads and validates the 8-byte magic.
  Status ExpectMagic(std::string_view magic);

  Status ReadFixed32(uint32_t* v);
  Status ReadFixed64(uint64_t* v);
  Status ReadVarint32(uint32_t* v);
  Status ReadVarint64(uint64_t* v);
  /// Reads a string with a sanity cap on length (default 1 GiB).
  Status ReadString(std::string* s, uint64_t max_len = 1ull << 30);
  Status ReadBytes(void* data, size_t n);

  /// Reads the checksum footer and compares with the running hash.
  Status VerifyChecksum();

 private:
  std::istream& in_;
  Fnv1a crc_;
};

}  // namespace qbs

#endif  // QBS_STORAGE_FILE_IO_H_

// On-disk persistence for SearchEngine: save a fully-built database to a
// directory and reopen it without re-analyzing the corpus.
//
// Directory layout (each file is a checksummed section, see file_io.h):
//   MANIFEST   engine name, analyzer configuration, scorer, format version
//   dict.qbs   term dictionary, strings in TermId order
//   post.qbs   per-term compressed posting lists (+ df/ctf)
//   dlen.qbs   per-document lengths
//   docs.qbs   raw document names and text
#ifndef QBS_STORAGE_ENGINE_STORAGE_H_
#define QBS_STORAGE_ENGINE_STORAGE_H_

#include <memory>
#include <string>

#include "search/search_engine.h"
#include "util/status.h"

namespace qbs {

/// Current on-disk format version.
inline constexpr uint32_t kEngineFormatVersion = 1;

/// Persists `engine` into `dir` (created if absent). Overwrites existing
/// files; fails with IOError on filesystem problems.
Status SaveEngine(const SearchEngine& engine, const std::string& dir);

/// Opens an engine previously written by SaveEngine. Fails with Corruption
/// on format/checksum violations and NotFound when the directory lacks a
/// manifest.
///
/// Restrictions: engines whose analyzer used a *custom* stopword list are
/// saved with the full word list and restored with an equivalent list; the
/// default and minimal built-in lists are stored by reference.
Result<std::unique_ptr<SearchEngine>> OpenEngine(const std::string& dir);

}  // namespace qbs

#endif  // QBS_STORAGE_ENGINE_STORAGE_H_

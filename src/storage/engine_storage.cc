#include "storage/engine_storage.h"

#include <filesystem>
#include <fstream>
#include <vector>

#include "storage/file_io.h"
#include "util/mutex.h"

namespace qbs {

namespace {

constexpr char kManifestMagic[] = "QBSMANI1";
constexpr char kDictMagic[] = "QBSDICT1";
constexpr char kPostMagic[] = "QBSPOST1";
constexpr char kDlenMagic[] = "QBSDLEN1";
constexpr char kDocsMagic[] = "QBSDOCS1";

enum StopwordMode : uint32_t {
  kStopNone = 0,
  kStopDefault = 1,
  kStopMinimal = 2,
  kStopCustom = 3,
};

// Restored custom stopword lists must outlive their engines; intern them
// for the process lifetime (custom lists are rare and small).
const StopwordList* InternCustomList(const std::vector<std::string>& words) {
  static Mutex mu;
  static std::vector<std::unique_ptr<StopwordList>>* lists =
      // analyze:allow(rawnew): interned for the process lifetime on purpose
      new std::vector<std::unique_ptr<StopwordList>>();
  MutexLock lock(mu);
  lists->push_back(std::make_unique<StopwordList>(words));
  return lists->back().get();
}

Status WriteManifest(const SearchEngine& engine, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot create " + path);
  SectionWriter w(out, kManifestMagic);
  w.WriteFixed32(kEngineFormatVersion);
  w.WriteString(engine.name());

  const AnalyzerOptions& a = engine.analyzer().options();
  uint32_t flags = 0;
  if (a.lowercase) flags |= 1;
  if (a.remove_stopwords) flags |= 2;
  if (a.stem) flags |= 4;
  if (a.tokenizer.elide_apostrophes) flags |= 8;
  w.WriteFixed32(flags);
  w.WriteVarint64(a.tokenizer.min_token_length);
  w.WriteVarint64(a.tokenizer.max_token_length);

  uint32_t stop_mode = kStopNone;
  std::vector<std::string> custom_words;
  if (a.remove_stopwords) {
    if (a.stopwords == nullptr || a.stopwords == &StopwordList::Default()) {
      stop_mode = kStopDefault;
    } else if (a.stopwords == &StopwordList::Minimal()) {
      stop_mode = kStopMinimal;
    } else {
      stop_mode = kStopCustom;
      custom_words = a.stopwords->Words();
    }
  }
  w.WriteFixed32(stop_mode);
  w.WriteVarint64(custom_words.size());
  for (const std::string& word : custom_words) w.WriteString(word);

  // The scorer name is not directly retrievable from the engine; persist
  // the configured name recorded at construction.
  w.WriteString(engine.scorer_name());
  w.WriteVarint64(engine.num_docs());
  return w.Finish();
}

struct Manifest {
  std::string name;
  SearchEngineOptions options;
  uint64_t num_docs = 0;
};

Result<Manifest> ReadManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no manifest at " + path);
  SectionReader r(in);
  QBS_RETURN_IF_ERROR(r.ExpectMagic(kManifestMagic));
  uint32_t version = 0;
  QBS_RETURN_IF_ERROR(r.ReadFixed32(&version));
  if (version != kEngineFormatVersion) {
    return Status::Corruption("unsupported format version " +
                              std::to_string(version));
  }
  Manifest m;
  QBS_RETURN_IF_ERROR(r.ReadString(&m.name));

  uint32_t flags = 0;
  QBS_RETURN_IF_ERROR(r.ReadFixed32(&flags));
  AnalyzerOptions a;
  a.lowercase = (flags & 1) != 0;
  a.remove_stopwords = (flags & 2) != 0;
  a.stem = (flags & 4) != 0;
  a.tokenizer.elide_apostrophes = (flags & 8) != 0;
  uint64_t min_len = 0, max_len = 0;
  QBS_RETURN_IF_ERROR(r.ReadVarint64(&min_len));
  QBS_RETURN_IF_ERROR(r.ReadVarint64(&max_len));
  a.tokenizer.min_token_length = static_cast<size_t>(min_len);
  a.tokenizer.max_token_length = static_cast<size_t>(max_len);

  uint32_t stop_mode = 0;
  QBS_RETURN_IF_ERROR(r.ReadFixed32(&stop_mode));
  uint64_t custom_count = 0;
  QBS_RETURN_IF_ERROR(r.ReadVarint64(&custom_count));
  if (custom_count > 1'000'000) {
    return Status::Corruption("implausible custom stopword count");
  }
  std::vector<std::string> custom_words(custom_count);
  for (uint64_t i = 0; i < custom_count; ++i) {
    QBS_RETURN_IF_ERROR(r.ReadString(&custom_words[i], 1 << 16));
  }
  switch (stop_mode) {
    case kStopNone:
      a.remove_stopwords = false;
      break;
    case kStopDefault:
      a.stopwords = &StopwordList::Default();
      break;
    case kStopMinimal:
      a.stopwords = &StopwordList::Minimal();
      break;
    case kStopCustom:
      a.stopwords = InternCustomList(custom_words);
      break;
    default:
      return Status::Corruption("unknown stopword mode");
  }
  m.options.analyzer = Analyzer(a);

  QBS_RETURN_IF_ERROR(r.ReadString(&m.options.scorer, 64));
  QBS_RETURN_IF_ERROR(r.ReadVarint64(&m.num_docs));
  return r.VerifyChecksum().ok() ? Result<Manifest>(std::move(m))
                                 : Result<Manifest>(Status::Corruption(
                                       "manifest checksum mismatch"));
}

Status WriteDict(const InvertedIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot create " + path);
  SectionWriter w(out, kDictMagic);
  const TermDictionary& dict = index.dict();
  w.WriteVarint64(dict.size());
  for (TermId id = 0; id < dict.size(); ++id) {
    w.WriteString(dict.TermText(id));
  }
  return w.Finish();
}

Result<TermDictionary> ReadDict(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("missing " + path);
  SectionReader r(in);
  QBS_RETURN_IF_ERROR(r.ExpectMagic(kDictMagic));
  uint64_t count = 0;
  QBS_RETURN_IF_ERROR(r.ReadVarint64(&count));
  TermDictionary dict;
  std::string term;
  for (uint64_t i = 0; i < count; ++i) {
    QBS_RETURN_IF_ERROR(r.ReadString(&term, 1 << 16));
    if (dict.GetOrAdd(term) != i) {
      return Status::Corruption("duplicate term in dictionary: " + term);
    }
  }
  QBS_RETURN_IF_ERROR(r.VerifyChecksum());
  return dict;
}

Status WritePostings(const InvertedIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot create " + path);
  SectionWriter w(out, kPostMagic);
  w.WriteVarint64(index.unique_terms());
  for (TermId id = 0; id < index.unique_terms(); ++id) {
    const PostingList& plist = index.postings(id);
    w.WriteVarint32(plist.doc_frequency());
    w.WriteVarint64(plist.collection_frequency());
    w.WriteVarint64(plist.raw_bytes().size());
    w.WriteBytes(plist.raw_bytes().data(), plist.raw_bytes().size());
  }
  return w.Finish();
}

Result<std::vector<PostingList>> ReadPostings(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("missing " + path);
  SectionReader r(in);
  QBS_RETURN_IF_ERROR(r.ExpectMagic(kPostMagic));
  uint64_t count = 0;
  QBS_RETURN_IF_ERROR(r.ReadVarint64(&count));
  std::vector<PostingList> postings;
  postings.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t df = 0;
    uint64_t ctf = 0, nbytes = 0;
    QBS_RETURN_IF_ERROR(r.ReadVarint32(&df));
    QBS_RETURN_IF_ERROR(r.ReadVarint64(&ctf));
    QBS_RETURN_IF_ERROR(r.ReadVarint64(&nbytes));
    if (nbytes > (1ull << 28)) {
      return Status::Corruption("implausible posting list size");
    }
    std::vector<uint8_t> bytes(nbytes);
    if (nbytes > 0) QBS_RETURN_IF_ERROR(r.ReadBytes(bytes.data(), nbytes));
    QBS_ASSIGN_OR_RETURN(PostingList plist,
                         PostingList::FromRaw(std::move(bytes), df, ctf));
    postings.push_back(std::move(plist));
  }
  QBS_RETURN_IF_ERROR(r.VerifyChecksum());
  return postings;
}

Status WriteDocLengths(const InvertedIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot create " + path);
  SectionWriter w(out, kDlenMagic);
  w.WriteVarint64(index.num_docs());
  for (DocId d = 0; d < index.num_docs(); ++d) {
    w.WriteVarint32(index.doc_length(d));
  }
  return w.Finish();
}

Result<std::vector<uint32_t>> ReadDocLengths(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("missing " + path);
  SectionReader r(in);
  QBS_RETURN_IF_ERROR(r.ExpectMagic(kDlenMagic));
  uint64_t count = 0;
  QBS_RETURN_IF_ERROR(r.ReadVarint64(&count));
  std::vector<uint32_t> lengths(count);
  for (uint64_t i = 0; i < count; ++i) {
    QBS_RETURN_IF_ERROR(r.ReadVarint32(&lengths[i]));
  }
  QBS_RETURN_IF_ERROR(r.VerifyChecksum());
  return lengths;
}

Status WriteDocs(const DocumentStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot create " + path);
  SectionWriter w(out, kDocsMagic);
  w.WriteVarint64(store.size());
  for (DocId d = 0; d < store.size(); ++d) {
    w.WriteString(store.Name(d));
    w.WriteString(store.Text(d));
  }
  return w.Finish();
}

Result<DocumentStore> ReadDocs(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("missing " + path);
  SectionReader r(in);
  QBS_RETURN_IF_ERROR(r.ExpectMagic(kDocsMagic));
  uint64_t count = 0;
  QBS_RETURN_IF_ERROR(r.ReadVarint64(&count));
  DocumentStore store;
  std::string name, text;
  for (uint64_t i = 0; i < count; ++i) {
    QBS_RETURN_IF_ERROR(r.ReadString(&name, 1 << 16));
    QBS_RETURN_IF_ERROR(r.ReadString(&text));
    store.Add(name, text);
  }
  QBS_RETURN_IF_ERROR(r.VerifyChecksum());
  return store;
}

}  // namespace

Status SaveEngine(const SearchEngine& engine, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  QBS_RETURN_IF_ERROR(WriteManifest(engine, dir + "/MANIFEST"));
  QBS_RETURN_IF_ERROR(WriteDict(engine.index(), dir + "/dict.qbs"));
  QBS_RETURN_IF_ERROR(WritePostings(engine.index(), dir + "/post.qbs"));
  QBS_RETURN_IF_ERROR(WriteDocLengths(engine.index(), dir + "/dlen.qbs"));
  QBS_RETURN_IF_ERROR(WriteDocs(engine.store(), dir + "/docs.qbs"));
  return Status::OK();
}

Result<std::unique_ptr<SearchEngine>> OpenEngine(const std::string& dir) {
  QBS_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dir + "/MANIFEST"));
  QBS_ASSIGN_OR_RETURN(TermDictionary dict, ReadDict(dir + "/dict.qbs"));
  QBS_ASSIGN_OR_RETURN(std::vector<PostingList> postings,
                       ReadPostings(dir + "/post.qbs"));
  QBS_ASSIGN_OR_RETURN(std::vector<uint32_t> lengths,
                       ReadDocLengths(dir + "/dlen.qbs"));
  QBS_ASSIGN_OR_RETURN(InvertedIndex index,
                       InvertedIndex::Restore(std::move(dict),
                                              std::move(postings),
                                              std::move(lengths)));
  QBS_ASSIGN_OR_RETURN(DocumentStore store, ReadDocs(dir + "/docs.qbs"));
  if (index.num_docs() != manifest.num_docs) {
    return Status::Corruption("manifest/doc-length count mismatch");
  }
  return SearchEngine::FromParts(std::move(manifest.name),
                                 std::move(manifest.options),
                                 std::move(index), std::move(store));
}

}  // namespace qbs

// Stopword lists. The paper's databases used the INQUERY default list of
// 418 very frequent and/or closed-class words (paper §4.1); we ship a
// comparable default list assembled from the classic SMART /
// van Rijsbergen function-word lists.
#ifndef QBS_TEXT_STOPWORDS_H_
#define QBS_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace qbs {

/// An immutable set of stopwords with O(1) membership tests.
/// Words are matched case-sensitively; callers should lowercase first
/// (the Analyzer does this).
class StopwordList {
 public:
  /// Empty list (nothing is a stopword).
  StopwordList() = default;

  /// Builds a list from arbitrary words.
  explicit StopwordList(const std::vector<std::string>& words);

  /// True iff `word` is a stopword.
  bool Contains(std::string_view word) const {
    return set_.find(std::string(word)) != set_.end();
  }

  size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }

  /// All words in the list, sorted (for serialization and inspection).
  std::vector<std::string> Words() const;

  /// The default list of closed-class / very-frequent English words,
  /// standing in for INQUERY's 418-word default list.
  static const StopwordList& Default();

  /// The default list with every word Porter-stemmed (plus the unstemmed
  /// forms). Use this when filtering *stemmed* term spaces: stemming maps
  /// "they" -> "thei", "very" -> "veri", which the plain list would miss.
  static const StopwordList& DefaultStemmed();

  /// An intentionally different, smaller list, used in tests and the STARTS
  /// experiments to model databases with *mismatched* indexing conventions.
  static const StopwordList& Minimal();

 private:
  std::unordered_set<std::string> set_;
};

/// Returns the words of the default list (sorted), mainly for inspection.
std::vector<std::string> DefaultStopwordVector();

}  // namespace qbs

#endif  // QBS_TEXT_STOPWORDS_H_

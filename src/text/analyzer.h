// The Analyzer chains tokenization, case folding, stopword removal, and
// stemming into a configurable pipeline.
//
// Databases index documents with their *own* analyzer configuration (the
// paper's point in §2.2 that stemming / stopword / case conventions differ
// across systems), while the database-selection service builds learned
// language models with a configuration *it* controls (§3).
#ifndef QBS_TEXT_ANALYZER_H_
#define QBS_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace qbs {

/// Options controlling the analysis pipeline.
struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  /// ASCII-lowercase every token.
  bool lowercase = true;
  /// Drop stopwords (using `stopwords`).
  bool remove_stopwords = true;
  /// Stopword list to apply when remove_stopwords is true. If null, the
  /// default list is used.
  const StopwordList* stopwords = nullptr;
  /// Apply the Porter stemmer to each surviving token.
  bool stem = true;
};

/// A text-analysis pipeline: tokenize -> lowercase -> stop -> stem.
class Analyzer {
 public:
  Analyzer() : Analyzer(AnalyzerOptions{}) {}
  explicit Analyzer(AnalyzerOptions options);

  /// Returns the index terms of `text` in document order.
  std::vector<std::string> Analyze(std::string_view text) const;

  /// Appends the index terms of `text` to `out`.
  void Analyze(std::string_view text, std::vector<std::string>& out) const;

  const AnalyzerOptions& options() const { return options_; }

  /// Full INQUERY-style indexing: lowercase, default stopwords, stemming.
  /// This is how the paper's *actual* (database-side) language models are
  /// built (§4.1).
  static Analyzer InqueryLike();

  /// Raw term extraction: lowercase only, no stopping, no stemming. This is
  /// how *learned* language models are built from sampled documents (§4.1:
  /// "Stopwords were not discarded ... Suffixes were not removed").
  static Analyzer Raw();

 private:
  AnalyzerOptions options_;
  Tokenizer tokenizer_;
};

}  // namespace qbs

#endif  // QBS_TEXT_ANALYZER_H_

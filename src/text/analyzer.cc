#include "text/analyzer.h"

#include "util/string_util.h"

namespace qbs {

Analyzer::Analyzer(AnalyzerOptions options)
    : options_(options), tokenizer_(options.tokenizer) {
  if (options_.remove_stopwords && options_.stopwords == nullptr) {
    options_.stopwords = &StopwordList::Default();
  }
}

void Analyzer::Analyze(std::string_view text,
                       std::vector<std::string>& out) const {
  std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  for (auto& tok : tokens) {
    if (options_.lowercase) AsciiLowerInPlace(tok);
    if (options_.remove_stopwords && options_.stopwords->Contains(tok)) {
      continue;
    }
    if (options_.stem) PorterStemmer::StemInPlace(tok);
    if (tok.empty()) continue;
    out.push_back(std::move(tok));
  }
}

std::vector<std::string> Analyzer::Analyze(std::string_view text) const {
  std::vector<std::string> out;
  Analyze(text, out);
  return out;
}

Analyzer Analyzer::InqueryLike() {
  AnalyzerOptions opts;
  opts.lowercase = true;
  opts.remove_stopwords = true;
  opts.stopwords = &StopwordList::Default();
  opts.stem = true;
  return Analyzer(opts);
}

Analyzer Analyzer::Raw() {
  AnalyzerOptions opts;
  opts.lowercase = true;
  opts.remove_stopwords = false;
  opts.stem = false;
  return Analyzer(opts);
}

}  // namespace qbs

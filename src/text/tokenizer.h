// Text tokenization: splits raw text into alphanumeric word tokens.
#ifndef QBS_TEXT_TOKENIZER_H_
#define QBS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace qbs {

/// Options controlling tokenization.
struct TokenizerOptions {
  /// Tokens shorter than this are dropped (after splitting).
  size_t min_token_length = 1;
  /// Tokens longer than this are dropped (guards pathological inputs).
  size_t max_token_length = 64;
  /// When true, apostrophes inside words are elided ("don't" -> "dont")
  /// rather than splitting the word.
  bool elide_apostrophes = true;
};

/// Splits text into word tokens.
///
/// A token is a maximal run of ASCII letters and digits. All other bytes
/// are separators. Tokens are *not* case-folded here; see Analyzer.
class Tokenizer {
 public:
  Tokenizer() = default;
  explicit Tokenizer(TokenizerOptions options) : options_(options) {}

  /// Appends the tokens of `text` to `out`.
  void Tokenize(std::string_view text, std::vector<std::string>& out) const;

  /// Convenience overload returning a fresh vector.
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace qbs

#endif  // QBS_TEXT_TOKENIZER_H_

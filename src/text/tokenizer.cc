#include "text/tokenizer.h"

namespace qbs {

namespace {

inline bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

}  // namespace

void Tokenizer::Tokenize(std::string_view text,
                         std::vector<std::string>& out) const {
  std::string current;
  current.reserve(16);
  auto flush = [&] {
    if (current.size() >= options_.min_token_length &&
        current.size() <= options_.max_token_length) {
      out.push_back(current);
    }
    current.clear();
  };
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (IsWordChar(c)) {
      current.push_back(c);
    } else if (options_.elide_apostrophes && c == '\'' && !current.empty() &&
               i + 1 < text.size() && IsWordChar(text[i + 1])) {
      // Elide in-word apostrophes: "don't" -> "dont".
      continue;
    } else {
      if (!current.empty()) flush();
    }
  }
  if (!current.empty()) flush();
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  Tokenize(text, out);
  return out;
}

}  // namespace qbs

#include "text/porter_stemmer.h"

#include <cstring>

namespace qbs {

namespace {

// Working state over a char buffer b[0..k], mirroring porter.c. Indices are
// signed because the algorithm's stem-end marker j legitimately reaches -1.
class Impl {
 public:
  explicit Impl(std::string& word)
      : b_(word.data()), k_(static_cast<int>(word.size()) - 1) {}

  size_t Run() {
    if (k_ >= 2) {  // words of length <= 2 are left unchanged
      Step1ab();
      Step1c();
      Step2();
      Step3();
      Step4();
      Step5();
    }
    return static_cast<size_t>(k_ + 1);
  }

 private:
  // True if b_[i] is a consonant.
  bool Cons(int i) const {
    switch (b_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return (i == 0) ? true : !Cons(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b_[0..j_]: the number of VC sequences.
  int M() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!Cons(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (Cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!Cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True if the stem b_[0..j_] contains a vowel.
  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!Cons(i)) return true;
    }
    return false;
  }

  // True if b_[i-1..i] is a double consonant.
  bool DoubleC(int i) const {
    if (i < 1) return false;
    if (b_[i] != b_[i - 1]) return false;
    return Cons(i);
  }

  // True if b_[i-2..i] is consonant-vowel-consonant and the final consonant
  // is not w, x, or y. Used to restore a trailing e (e.g. cav(e), lov(e)).
  bool Cvc(int i) const {
    if (i < 2 || !Cons(i) || Cons(i - 1) || !Cons(i - 2)) return false;
    char ch = b_[i];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  // True if b_[0..k_] ends with s; on success sets j_.
  bool Ends(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    if (len > k_ + 1) return false;
    if (s[len - 1] != b_[k_]) return false;  // fast reject
    if (std::memcmp(b_ + k_ + 1 - len, s, static_cast<size_t>(len)) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  // Replaces b_[j_+1..k_] with s and adjusts k_.
  void SetTo(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    std::memcpy(b_ + j_ + 1, s, static_cast<size_t>(len));
    k_ = j_ + len;
  }

  void R(const char* s) {
    if (M() > 0) SetTo(s);
  }

  // Step 1ab: plurals and -ed / -ing.
  void Step1ab() {
    if (b_[k_] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (b_[k_ - 1] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (M() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleC(k_)) {
        char ch = b_[k_];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (M() == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  // Step 1c: turn terminal y to i when there is another vowel in the stem.
  void Step1c() {
    if (k_ >= 0 && Ends("y") && VowelInStem()) b_[k_] = 'i';
  }

  // Step 2: map double suffixes to single ones, when M() > 0.
  void Step2() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (Ends("ational")) {
          R("ate");
        } else if (Ends("tional")) {
          R("tion");
        }
        break;
      case 'c':
        if (Ends("enci")) {
          R("ence");
        } else if (Ends("anci")) {
          R("ance");
        }
        break;
      case 'e':
        if (Ends("izer")) R("ize");
        break;
      case 'l':
        if (Ends("bli")) {  // departure: the 1980 paper has abli -> able
          R("ble");
        } else if (Ends("alli")) {
          R("al");
        } else if (Ends("entli")) {
          R("ent");
        } else if (Ends("eli")) {
          R("e");
        } else if (Ends("ousli")) {
          R("ous");
        }
        break;
      case 'o':
        if (Ends("ization")) {
          R("ize");
        } else if (Ends("ation")) {
          R("ate");
        } else if (Ends("ator")) {
          R("ate");
        }
        break;
      case 's':
        if (Ends("alism")) {
          R("al");
        } else if (Ends("iveness")) {
          R("ive");
        } else if (Ends("fulness")) {
          R("ful");
        } else if (Ends("ousness")) {
          R("ous");
        }
        break;
      case 't':
        if (Ends("aliti")) {
          R("al");
        } else if (Ends("iviti")) {
          R("ive");
        } else if (Ends("biliti")) {
          R("ble");
        }
        break;
      case 'g':
        if (Ends("logi")) R("log");  // departure
        break;
      default:
        break;
    }
  }

  // Step 3: -ic-, -full, -ness etc.
  void Step3() {
    if (k_ < 0) return;
    switch (b_[k_]) {
      case 'e':
        if (Ends("icate")) {
          R("ic");
        } else if (Ends("ative")) {
          R("");
        } else if (Ends("alize")) {
          R("al");
        }
        break;
      case 'i':
        if (Ends("iciti")) R("ic");
        break;
      case 'l':
        if (Ends("ical")) {
          R("ic");
        } else if (Ends("ful")) {
          R("");
        }
        break;
      case 's':
        if (Ends("ness")) R("");
        break;
      default:
        break;
    }
  }

  // Step 4: -ant, -ence etc. removed when M() > 1.
  void Step4() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance") || Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able") || Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant") || Ends("ement") || Ends("ment") || Ends("ent"))
          break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 && (b_[j_] == 's' || b_[j_] == 't')) {
          break;
        }
        if (Ends("ou")) break;  // takes care of -ous
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate") || Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (M() > 1) k_ = j_;
  }

  // Step 5: remove a final -e and reduce -ll to -l when M() > 1.
  void Step5() {
    if (k_ < 0) return;
    j_ = k_;
    if (b_[k_] == 'e') {
      int a = M();
      if (a > 1 || (a == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (k_ >= 0 && b_[k_] == 'l' && DoubleC(k_) && M() > 1) --k_;
  }

  char* b_;
  int k_;       // index of last character
  int j_ = 0;   // end of candidate stem after Ends()
};

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) {
  std::string w(word);
  StemInPlace(w);
  return w;
}

void PorterStemmer::StemInPlace(std::string& word) {
  if (word.size() < 3) return;
  Impl impl(word);
  word.resize(impl.Run());
}

}  // namespace qbs

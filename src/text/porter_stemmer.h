// The Porter stemming algorithm (Porter, 1980).
//
// This is a faithful re-implementation of Martin Porter's official ANSI C
// reference version, including its two documented departures from the 1980
// paper (step 2: "bli"->"ble" instead of "abli"->"able", and the extra
// "logi"->"log" rule). The paper's actual language models were built from
// stemmed indexes (§4.1), so learned models are stemmed before comparison.
#ifndef QBS_TEXT_PORTER_STEMMER_H_
#define QBS_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace qbs {

/// Stateless Porter stemmer.
///
/// Input must already be lowercased ASCII; words shorter than 3 characters
/// are returned unchanged (as in the reference implementation).
class PorterStemmer {
 public:
  /// Returns the stem of `word`.
  static std::string Stem(std::string_view word);

  /// Stems `word` in place.
  static void StemInPlace(std::string& word);
};

}  // namespace qbs

#endif  // QBS_TEXT_PORTER_STEMMER_H_

#include "text/stopwords.h"

#include <algorithm>

#include "text/porter_stemmer.h"

namespace qbs {

namespace {

// Closed-class and very-frequent English words, in the spirit of the
// INQUERY default stopword list (418 words) referenced by the paper.
// Assembled from the classic SMART and van Rijsbergen lists.
const char* const kDefaultStopwords[] = {
    "a", "about", "above", "across", "after", "afterwards", "again",
    "against", "all", "almost", "alone", "along", "already", "also",
    "although", "always", "am", "among", "amongst", "amount", "an", "and",
    "another", "any", "anyhow", "anyone", "anything", "anyway", "anywhere",
    "are", "around", "as", "at", "back", "be", "became", "because", "become",
    "becomes", "becoming", "been", "before", "beforehand", "behind", "being",
    "below", "beside", "besides", "between", "beyond", "both", "bottom",
    "but", "by", "call", "can", "cannot", "cant", "co", "con", "could",
    "couldnt", "de", "describe", "detail", "did", "do", "does", "doesnt",
    "doing", "done", "dont", "down", "due", "during", "each", "eg", "eight",
    "either", "eleven", "else", "elsewhere", "empty", "enough", "etc",
    "even", "ever", "every", "everyone", "everything", "everywhere",
    "except", "few", "fifteen", "fifty", "fill", "find", "fire", "first",
    "five", "for", "former", "formerly", "forty", "found", "four", "from",
    "front", "full", "further", "get", "give", "go", "had", "has", "hasnt",
    "have", "he", "hence", "her", "here", "hereafter", "hereby", "herein",
    "hereupon", "hers", "herself", "him", "himself", "his", "how", "however",
    "hundred", "i", "ie", "if", "in", "inc", "indeed", "instead", "into",
    "is", "isnt", "it", "its", "itself", "just", "keep", "last", "latter",
    "latterly", "least", "less", "lest", "let", "like", "likely", "ltd",
    "made", "many", "may", "maybe", "me", "meanwhile", "might", "mill",
    "mine", "more", "moreover", "most", "mostly", "move", "much", "must",
    "my", "myself", "name", "namely", "neither", "never", "nevertheless",
    "next", "nine", "no", "nobody", "none", "nonetheless", "noone", "nor",
    "not", "nothing", "now", "nowhere", "of", "off", "often", "on", "once",
    "one", "only", "onto", "or", "other", "others", "otherwise", "our",
    "ours", "ourselves", "out", "over", "own", "part", "per", "perhaps",
    "please", "put", "rather", "re", "said", "same", "say", "says", "see",
    "seem", "seemed", "seeming", "seems", "serious", "several", "shall",
    "she", "should", "shouldnt", "show", "side", "since", "sincere", "six",
    "sixty", "so", "some", "somehow", "someone", "something", "sometime",
    "sometimes", "somewhere", "still", "such", "take", "ten", "than", "that",
    "the", "their", "theirs", "them", "themselves", "then", "thence",
    "there", "thereafter", "thereby", "therefore", "therein", "thereupon",
    "these", "they", "thick", "thin", "third", "this", "those", "though",
    "three", "through", "throughout", "thru", "thus", "to", "together",
    "too", "top", "toward", "towards", "twelve", "twenty", "two", "un",
    "under", "unless", "until", "up", "upon", "us", "very", "via", "was",
    "wasnt", "we", "well", "were", "werent", "what", "whatever", "when",
    "whence", "whenever", "where", "whereafter", "whereas", "whereby",
    "wherein", "whereupon", "wherever", "whether", "which", "while",
    "whither", "who", "whoever", "whole", "whom", "whose", "why", "will",
    "with", "within", "without", "wont", "would", "wouldnt", "yet", "you",
    "your", "yours", "yourself", "yourselves", "able", "according",
    "accordingly", "actually", "ago", "ahead", "ain", "aint", "allow",
    "allows", "alongside", "amid", "amidst", "anybody", "anyways", "apart",
    "appear", "appropriate", "aside", "ask", "asking", "available", "away",
    "awfully", "barely", "basically", "beneath", "best", "better", "brief",
    "came", "cause", "causes", "certain", "certainly", "clearly", "come",
    "comes", "concerning", "consequently", "consider", "considering",
    "contain", "containing", "contains", "corresponding", "course",
    "currently", "definitely", "despite", "different", "directly",
    "downwards", "earlier", "early", "easily", "entirely", "especially",
    "essentially", "et", "evermore", "everybody", "exactly", "example",
    "fairly", "far", "farther", "fewer", "followed", "following", "follows",
    "forever", "forth", "forward", "furthermore", "generally", "given",
    "gives", "goes", "going", "gone", "got", "gotten",
};

const char* const kMinimalStopwords[] = {
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if",
    "in", "into", "is", "it", "no", "not", "of", "on", "or", "such",
    "that", "the", "their", "then", "there", "these", "they", "this",
    "to", "was", "will", "with",
};

}  // namespace

StopwordList::StopwordList(const std::vector<std::string>& words) {
  set_.reserve(words.size() * 2);
  for (const auto& w : words) set_.insert(w);
}

std::vector<std::string> StopwordList::Words() const {
  std::vector<std::string> out(set_.begin(), set_.end());
  std::sort(out.begin(), out.end());
  return out;
}

const StopwordList& StopwordList::Default() {
  static const StopwordList* list = [] {
    std::vector<std::string> words;
    for (const char* w : kDefaultStopwords) words.emplace_back(w);
    // analyze:allow(rawnew): deliberate static leak (exit-order safe)
    return new StopwordList(words);
  }();
  return *list;
}

const StopwordList& StopwordList::DefaultStemmed() {
  static const StopwordList* list = [] {
    std::vector<std::string> words;
    for (const char* w : kDefaultStopwords) {
      words.emplace_back(w);
      words.push_back(PorterStemmer::Stem(w));
    }
    // analyze:allow(rawnew): deliberate static leak (exit-order safe)
    return new StopwordList(words);
  }();
  return *list;
}

const StopwordList& StopwordList::Minimal() {
  static const StopwordList* list = [] {
    std::vector<std::string> words;
    for (const char* w : kMinimalStopwords) words.emplace_back(w);
    // analyze:allow(rawnew): deliberate static leak (exit-order safe)
    return new StopwordList(words);
  }();
  return *list;
}

std::vector<std::string> DefaultStopwordVector() {
  std::vector<std::string> words;
  for (const char* w : kDefaultStopwords) words.emplace_back(w);
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
  return words;
}

}  // namespace qbs

#include "mstore/mapped_model_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "mstore/format.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32c.h"
#include "util/endian.h"
#include "util/fd.h"

namespace qbs {

namespace {

struct OpenMetrics {
  Counter* opens;
  Counter* open_errors;
  Histogram* open_latency_us;
  Gauge* mapped_bytes;

  static const OpenMetrics& Get() {
    static const OpenMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      OpenMetrics m;
      m.opens = r.GetCounter("qbs_mstore_open_total",
                             "Model-store open attempts");
      m.open_errors =
          r.GetCounter("qbs_mstore_open_error_total",
                       "Model-store opens rejected (missing, corrupt, or "
                       "unsupported files)");
      m.open_latency_us = r.GetHistogram(
          "qbs_mstore_open_latency_us",
          Histogram::ExponentialBounds(10.0, 4.0, 10),
          "Wall time to mmap + validate one store (us)");
      m.mapped_bytes = r.GetGauge("qbs_mstore_mapped_bytes",
                                  "Bytes of model stores currently mapped");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

// --- MappedLanguageModel --------------------------------------------------

const uint8_t* MappedLanguageModel::BlockStart(uint32_t b) const {
  if (b >= num_blocks_) return nullptr;
  uint32_t off = LoadLe32(block_index_ + 4 * b);
  if (off > static_cast<size_t>(terms_end_ - terms_begin_)) return nullptr;
  return terms_begin_ + off;
}

std::string_view MappedLanguageModel::BlockFirstTerm(uint32_t b) const {
  const uint8_t* p = BlockStart(b);
  const uint8_t* limit =
      b + 1 < num_blocks_ ? BlockStart(b + 1) : terms_end_;
  if (p == nullptr || limit == nullptr || p >= limit) return {};
  uint64_t prefix = 0, len = 0;
  size_t n = MstoreGetVarint64(p, limit, &prefix);
  // A block's first entry always carries the whole term (prefix 0), so
  // it can be read without decoding the preceding block.
  if (n == 0 || prefix != 0) return {};
  p += n;
  n = MstoreGetVarint64(p, limit, &len);
  if (n == 0) return {};
  p += n;
  if (len > static_cast<uint64_t>(limit - p)) return {};
  return {reinterpret_cast<const char*>(p), static_cast<size_t>(len)};
}

bool MappedLanguageModel::FindStats(std::string_view term,
                                    TermStats* stats) const {
  if (num_blocks_ == 0) return false;

  // Binary search for the block that could hold `term`: the last block
  // whose first term is <= term.
  uint32_t left = 0, right = num_blocks_;
  while (left < right) {
    uint32_t mid = left + (right - left) / 2;
    if (BlockFirstTerm(mid) <= term) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  if (left == 0) return false;  // term sorts before the whole dictionary
  const uint32_t block = left - 1;

  // Linear front-coded scan within the block. Every decode is
  // bounds-checked, so a store opened with verify=false can serve a
  // malformed block as "not found" but can never read out of bounds.
  const uint8_t* p = BlockStart(block);
  const uint8_t* limit =
      block + 1 < num_blocks_ ? BlockStart(block + 1) : terms_end_;
  if (p == nullptr || limit == nullptr) return false;
  std::string cur;
  for (uint32_t i = 0; i < block_size_ && p < limit; ++i) {
    uint64_t prefix = 0, suffix_len = 0, df = 0, ctf = 0;
    size_t n = MstoreGetVarint64(p, limit, &prefix);
    if (n == 0 || (i == 0 && prefix != 0)) return false;
    p += n;
    n = MstoreGetVarint64(p, limit, &suffix_len);
    if (n == 0) return false;
    p += n;
    if (suffix_len > static_cast<uint64_t>(limit - p) ||
        prefix > cur.size()) {
      return false;
    }
    cur.resize(static_cast<size_t>(prefix));
    cur.append(reinterpret_cast<const char*>(p),
               static_cast<size_t>(suffix_len));
    p += suffix_len;
    n = MstoreGetVarint64(p, limit, &df);
    if (n == 0) return false;
    p += n;
    n = MstoreGetVarint64(p, limit, &ctf);
    if (n == 0) return false;
    p += n;
    if (cur == term) {
      stats->df = df;
      stats->ctf = ctf;
      return true;
    }
    if (cur > term) return false;  // sorted: the term cannot follow
  }
  return false;
}

bool MappedLanguageModel::Walk(
    const std::function<bool(std::string_view, const TermStats&)>& fn)
    const {
  std::string cur;
  uint64_t remaining = term_count_;
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    const uint8_t* p = BlockStart(b);
    const uint8_t* limit =
        b + 1 < num_blocks_ ? BlockStart(b + 1) : terms_end_;
    if (p == nullptr || limit == nullptr || p > limit) return false;
    const uint64_t in_block = std::min<uint64_t>(block_size_, remaining);
    for (uint64_t i = 0; i < in_block; ++i) {
      uint64_t prefix = 0, suffix_len = 0, df = 0, ctf = 0;
      size_t n = MstoreGetVarint64(p, limit, &prefix);
      if (n == 0 || (i == 0 && prefix != 0)) return false;
      p += n;
      n = MstoreGetVarint64(p, limit, &suffix_len);
      if (n == 0) return false;
      p += n;
      if (suffix_len > static_cast<uint64_t>(limit - p) ||
          prefix > cur.size()) {
        return false;
      }
      cur.resize(static_cast<size_t>(prefix));
      cur.append(reinterpret_cast<const char*>(p),
                 static_cast<size_t>(suffix_len));
      p += suffix_len;
      n = MstoreGetVarint64(p, limit, &df);
      if (n == 0) return false;
      p += n;
      n = MstoreGetVarint64(p, limit, &ctf);
      if (n == 0) return false;
      p += n;
      TermStats stats;
      stats.df = df;
      stats.ctf = ctf;
      if (!fn(cur, stats)) return false;
    }
    if (p != limit) return false;  // trailing bytes inside a block
    remaining -= in_block;
  }
  return remaining == 0;
}

void MappedLanguageModel::ForEachTerm(
    const std::function<void(std::string_view, const TermStats&)>& fn)
    const {
  // The dictionary was validated at open (or is served defensively);
  // a malformed tail simply ends the iteration.
  (void)Walk([&fn](std::string_view term, const TermStats& s) {
    fn(term, s);
    return true;
  });
}

// --- MappedModelStore -----------------------------------------------------

MappedModelStore::~MappedModelStore() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    OpenMetrics::Get().mapped_bytes->Add(-static_cast<double>(size_));
  }
}

Status MappedModelStore::Init(const std::string& path,
                              const OpenOptions& options) {
  UniqueFd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) {
    if (errno == ENOENT) {
      return Status::NotFound("no such model store: " + path);
    }
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd.get(), &st) != 0) {
    return Status::IOError("cannot stat " + path + ": " +
                           std::strerror(errno));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kModelStoreHeaderSize) {
    return Status::Corruption("store file too small for a header (" +
                              std::to_string(size) + " bytes): " + path);
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.get(), 0);
  if (mapped == reinterpret_cast<void*>(-1)) {  // MAP_FAILED sans C cast
    return Status::IOError("mmap failed for " + path + ": " +
                           std::strerror(errno));
  }
  data_ = static_cast<const uint8_t*>(mapped);
  size_ = size;
  OpenMetrics::Get().mapped_bytes->Add(static_cast<double>(size_));

  // Header. The magic is checked before the CRC so a foreign file says
  // "bad magic", and the CRC before the fields so a bit-flipped header
  // says Corruption rather than misreading offsets.
  if (std::memcmp(data_, kModelStoreMagic, kModelStoreMagicSize) != 0) {
    return Status::Corruption("bad model-store magic in " + path);
  }
  const uint32_t header_crc = LoadLe32(data_ + 40);
  if (Crc32c::Of(data_, 40) != header_crc) {
    return Status::Corruption("model-store header checksum mismatch in " +
                              path);
  }
  version_ = LoadLe32(data_ + 8);
  if (version_ != kModelStoreVersion) {
    return Status::Unimplemented(
        "model-store version " + std::to_string(version_) +
        " is not supported (this build reads version " +
        std::to_string(kModelStoreVersion) + ")");
  }
  const uint32_t flags = LoadLe32(data_ + 12);
  if (flags != 0) {
    return Status::Unimplemented("model store uses unknown flag bits: " +
                                 std::to_string(flags));
  }
  const uint64_t model_count = LoadLe64(data_ + 16);
  const uint64_t dir_offset = LoadLe64(data_ + 24);
  const uint64_t dir_size = LoadLe64(data_ + 32);
  if (dir_offset < kModelStoreHeaderSize || dir_offset > size_ ||
      dir_size > size_ - dir_offset ||
      size_ - dir_offset - dir_size != 4) {
    return Status::Corruption("model-store directory bounds are invalid");
  }

  // Directory: checksummed (always — it is small and everything hangs
  // off it), then parsed entry by entry.
  const uint8_t* dir = data_ + dir_offset;
  const uint8_t* dir_end = dir + dir_size;
  const uint32_t dir_crc = LoadLe32(dir_end);
  if (Crc32c::Of(dir, static_cast<size_t>(dir_size)) != dir_crc) {
    return Status::Corruption("model-store directory checksum mismatch");
  }

  struct SectionRef {
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
  };
  std::vector<SectionRef> sections;
  const uint8_t* cursor = dir;
  for (uint64_t i = 0; i < model_count; ++i) {
    uint64_t name_len = 0;
    size_t n = MstoreGetVarint64(cursor, dir_end, &name_len);
    if (n == 0 || name_len == 0 ||
        name_len > static_cast<uint64_t>(dir_end - cursor) - n) {
      return Status::Corruption("model-store directory entry " +
                                std::to_string(i) + " is malformed");
    }
    cursor += n;
    std::string name(reinterpret_cast<const char*>(cursor),
                     static_cast<size_t>(name_len));
    cursor += name_len;
    if (static_cast<size_t>(dir_end - cursor) < 20) {
      return Status::Corruption("model-store directory entry " +
                                std::to_string(i) + " is truncated");
    }
    SectionRef ref;
    ref.offset = LoadLe64(cursor);
    ref.size = LoadLe64(cursor + 8);
    ref.crc = LoadLe32(cursor + 16);
    cursor += 20;
    if (ref.offset < kModelStoreHeaderSize ||
        ref.offset % kModelStoreAlignment != 0 || ref.offset > dir_offset ||
        ref.size < kModelSectionFixedSize ||
        ref.size > dir_offset - ref.offset) {
      return Status::Corruption("model section for '" + name +
                                "' has invalid bounds");
    }
    names_.push_back(std::move(name));
    sections.push_back(ref);
  }
  if (cursor != dir_end) {
    return Status::Corruption("model-store directory has trailing bytes");
  }

  // Model sections: structural parse always; checksum + full dictionary
  // walk under verify.
  models_.resize(sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    const SectionRef& ref = sections[i];
    const uint8_t* sec = data_ + ref.offset;
    MappedLanguageModel& m = models_[i];
    m.num_docs_ = LoadLe64(sec);
    m.total_terms_ = LoadLe64(sec + 8);
    m.term_count_ = LoadLe64(sec + 16);
    m.block_size_ = LoadLe32(sec + 24);
    m.num_blocks_ = LoadLe32(sec + 28);
    if (m.term_count_ == 0) {
      if (m.num_blocks_ != 0) {
        return Status::Corruption("empty model '" + names_[i] +
                                  "' declares dictionary blocks");
      }
    } else {
      if (m.block_size_ == 0 ||
          m.num_blocks_ !=
              (m.term_count_ + m.block_size_ - 1) / m.block_size_) {
        return Status::Corruption("model '" + names_[i] +
                                  "' has an inconsistent block count");
      }
    }
    const uint64_t fixed =
        kModelSectionFixedSize + 4ull * m.num_blocks_;
    if (fixed > ref.size) {
      return Status::Corruption("model '" + names_[i] +
                                "' section is too small for its block index");
    }
    m.block_index_ = sec + kModelSectionFixedSize;
    m.terms_begin_ = sec + fixed;
    m.terms_end_ = sec + ref.size;
    const uint64_t term_bytes = ref.size - fixed;
    uint32_t prev_off = 0;
    for (uint32_t b = 0; b < m.num_blocks_; ++b) {
      uint32_t off = LoadLe32(m.block_index_ + 4 * b);
      if (off >= term_bytes || (b == 0 && off != 0) ||
          (b > 0 && off <= prev_off)) {
        return Status::Corruption("model '" + names_[i] +
                                  "' has an invalid block index");
      }
      prev_off = off;
    }

    if (options.verify) {
      if (Crc32c::Of(sec, static_cast<size_t>(ref.size)) != ref.crc) {
        return Status::Corruption("model '" + names_[i] +
                                  "' section checksum mismatch");
      }
      std::string prev;
      bool first = true;
      const bool ok =
          m.Walk([&](std::string_view term, const TermStats&) {
            if (!first && std::string_view(prev) >= term) return false;
            prev.assign(term.data(), term.size());
            first = false;
            return true;
          });
      if (!ok) {
        return Status::Corruption(
            "model '" + names_[i] +
            "' has a malformed or unsorted term dictionary");
      }
    }
  }

  if (options.verify) {
    // Every byte outside the header, the sections, and the directory is
    // alignment padding and must be zero — no CRC covers the gaps, so
    // this is what keeps a bit flip there from hiding.
    std::vector<std::pair<uint64_t, uint64_t>> covered;
    covered.reserve(sections.size());
    for (const SectionRef& ref : sections) {
      covered.emplace_back(ref.offset, ref.offset + ref.size);
    }
    std::sort(covered.begin(), covered.end());
    const auto gap_is_zero = [this](uint64_t from, uint64_t to) {
      for (uint64_t p = from; p < to; ++p) {
        if (data_[p] != 0) return false;
      }
      return true;
    };
    uint64_t pos = kModelStoreHeaderSize;
    for (const auto& [begin, end] : covered) {
      if (begin > pos && !gap_is_zero(pos, begin)) {
        return Status::Corruption(
            "model store has non-zero alignment padding");
      }
      pos = std::max(pos, end);
    }
    if (pos < dir_offset && !gap_is_zero(pos, dir_offset)) {
      return Status::Corruption(
          "model store has non-zero alignment padding");
    }
  }
  return Status::OK();
}

Result<std::shared_ptr<const MappedModelStore>> MappedModelStore::Open(
    const std::string& path, const OpenOptions& options) {
  const OpenMetrics& metrics = OpenMetrics::Get();
  QBS_TRACE_SPAN("mstore.open");
  ScopedTimerUs timer(metrics.open_latency_us);
  metrics.opens->Increment();
  // analyze:allow(rawnew): private ctor; adopted by shared_ptr here
  std::shared_ptr<MappedModelStore> store(new MappedModelStore());
  Status status = store->Init(path, options);
  if (!status.ok()) {
    metrics.open_errors->Increment();
    return status;
  }
  return std::shared_ptr<const MappedModelStore>(std::move(store));
}

Result<size_t> MappedModelStore::IndexOf(std::string_view model_name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == model_name) return i;
  }
  return Status::NotFound("no model named '" + std::string(model_name) +
                          "' in this store");
}

std::shared_ptr<const LanguageModelView> MappedModelStore::ModelView(
    const std::shared_ptr<const MappedModelStore>& store, size_t i) {
  // Aliasing constructor: the view pointer borrows the store's mapping,
  // the control block keeps the whole store (and mapping) alive.
  return std::shared_ptr<const LanguageModelView>(store, &store->models_[i]);
}

DatabaseCollection CollectionFromStore(
    const std::shared_ptr<const MappedModelStore>& store) {
  DatabaseCollection dbs;
  for (size_t i = 0; i < store->num_models(); ++i) {
    dbs.Add(store->name(i), MappedModelStore::ModelView(store, i));
  }
  return dbs;
}

}  // namespace qbs

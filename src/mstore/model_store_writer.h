// Packs language models into the binary model-store format
// (docs/STORAGE.md): front-coded sorted term dictionary, varint df/ctf
// payloads, CRC32C per section, one file per collection. The result is
// opened zero-copy by MappedModelStore.
#ifndef QBS_MSTORE_MODEL_STORE_WRITER_H_
#define QBS_MSTORE_MODEL_STORE_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lm/model_view.h"
#include "util/status.h"

namespace qbs {

/// Accumulates models, then serializes them all into one store file.
/// Add() snapshots the model's terms immediately, so the source model
/// may be mutated or destroyed afterwards. Not thread-safe.
class ModelStoreWriter {
 public:
  struct Options {
    /// Terms per front-coded dictionary block (must be > 0).
    uint32_t block_size = 16;
  };

  ModelStoreWriter() = default;
  explicit ModelStoreWriter(Options options) : options_(options) {}

  /// Snapshots `model` under `name`. Names must be unique within one
  /// store; empty names are rejected.
  Status Add(std::string name, const LanguageModelView& model);

  size_t num_models() const { return models_.size(); }

  /// Serializes every added model into the store byte image.
  Result<std::string> Serialize() const;

  /// Serializes and atomically writes the store to `path` (temp file +
  /// fsync + rename, so readers never see a torn store).
  Status WriteToFile(const std::string& path) const;

 private:
  struct PendingModel {
    std::string name;
    uint64_t num_docs = 0;
    uint64_t total_terms = 0;
    /// Sorted ascending by term (byte order) — the dictionary order.
    std::vector<std::pair<std::string, TermStats>> terms;
  };

  Options options_;
  std::vector<PendingModel> models_;
};

}  // namespace qbs

#endif  // QBS_MSTORE_MODEL_STORE_WRITER_H_

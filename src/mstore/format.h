// On-disk constants and raw-byte varint coding for the binary model
// store. The authoritative layout spec is docs/STORAGE.md; this header
// and that document must change together (bump kModelStoreVersion).
#ifndef QBS_MSTORE_FORMAT_H_
#define QBS_MSTORE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace qbs {

/// 8-byte file magic. The trailing '1' is a format generation marker
/// distinct from the version field: a reader that does not even know
/// the header layout can reject a foreign file on the first 8 bytes.
inline constexpr char kModelStoreMagic[] = "QBSMSTR1";
inline constexpr size_t kModelStoreMagicSize = 8;

/// Current format version. Readers reject newer versions with
/// Unimplemented (forward compatibility is by rewrite, not in-place
/// interpretation; see docs/STORAGE.md §Versioning).
inline constexpr uint32_t kModelStoreVersion = 1;

/// File header: magic(8) version(4) flags(4) model_count(8)
/// directory_offset(8) directory_size(8) header_crc(4).
inline constexpr size_t kModelStoreHeaderSize = 44;

/// Fixed prefix of every model section: num_docs(8) total_terms(8)
/// term_count(8) block_size(4) num_blocks(4).
inline constexpr size_t kModelSectionFixedSize = 32;

/// Model sections and the directory start on 8-byte boundaries.
inline constexpr size_t kModelStoreAlignment = 8;

/// Terms per front-coded block. Larger blocks compress better but scan
/// longer; 16 keeps worst-case lookup under one cache-line-ish scan.
inline constexpr uint32_t kModelStoreDefaultBlockSize = 16;

/// Appends the canonical LEB128 encoding of `v`.
inline void MstorePutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(v) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(static_cast<uint8_t>(v)));
}

/// Decodes a canonical LEB128 varint from [p, end). Returns the number
/// of bytes consumed, or 0 when the input is truncated, longer than 10
/// bytes, overflows 64 bits, or is a non-canonical (overlong,
/// zero-padded) encoding — the same rules as index/varint.h, applied
/// to raw mapped bytes.
inline size_t MstoreGetVarint64(const uint8_t* p, const uint8_t* end,
                                uint64_t* v) {
  uint64_t result = 0;
  size_t i = 0;
  while (p + i < end && i < 10) {
    uint8_t byte = p[i];
    if (i == 9 && byte > 1) return 0;  // would overflow 64 bits
    result |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
    ++i;
    if ((byte & 0x80) == 0) {
      // Reject overlong zero-padded encodings: the final byte of a
      // multi-byte varint must contribute bits.
      if (byte == 0 && i > 1) return 0;
      *v = result;
      return i;
    }
  }
  return 0;  // truncated (or an 11th continuation byte)
}

}  // namespace qbs

#endif  // QBS_MSTORE_FORMAT_H_

#include "mstore/model_store_writer.h"

#include <algorithm>
#include <limits>

#include "mstore/format.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/file_io.h"
#include "util/crc32c.h"
#include "util/endian.h"

namespace qbs {

namespace {

struct PackMetrics {
  Counter* packs;
  Counter* models_packed;
  Histogram* pack_latency_us;

  static const PackMetrics& Get() {
    static const PackMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      PackMetrics m;
      m.packs = r.GetCounter("qbs_mstore_pack_total",
                             "Model-store serializations completed");
      m.models_packed =
          r.GetCounter("qbs_mstore_pack_models_total",
                       "Language models packed into store files");
      m.pack_latency_us = r.GetHistogram(
          "qbs_mstore_pack_latency_us",
          Histogram::ExponentialBounds(100.0, 4.0, 10),
          "Wall time to serialize one store image (us)");
      return m;
    }();
    return metrics;
  }
};

// Length of the longest common prefix of two byte strings.
size_t SharedPrefix(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

void PadToAlignment(std::string* out) {
  while (out->size() % kModelStoreAlignment != 0) out->push_back('\0');
}

}  // namespace

Status ModelStoreWriter::Add(std::string name,
                             const LanguageModelView& model) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  for (const PendingModel& m : models_) {
    if (m.name == name) {
      return Status::InvalidArgument("duplicate model name: " + name);
    }
  }
  if (options_.block_size == 0) {
    return Status::InvalidArgument("block_size must be > 0");
  }
  PendingModel pending;
  pending.name = std::move(name);
  pending.num_docs = model.num_docs();
  pending.total_terms = model.total_term_count();
  pending.terms.reserve(model.vocabulary_size());
  model.ForEachTerm([&](std::string_view term, const TermStats& s) {
    pending.terms.emplace_back(std::string(term), s);
  });
  // The dictionary is sorted by raw byte order — the order the mapped
  // reader binary-searches and validates.
  std::sort(pending.terms.begin(), pending.terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  models_.push_back(std::move(pending));
  return Status::OK();
}

Result<std::string> ModelStoreWriter::Serialize() const {
  const PackMetrics& metrics = PackMetrics::Get();
  QBS_TRACE_SPAN("mstore.pack");
  ScopedTimerUs timer(metrics.pack_latency_us);

  std::string out(kModelStoreHeaderSize, '\0');

  struct SectionInfo {
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
  };
  std::vector<SectionInfo> sections;
  sections.reserve(models_.size());

  for (const PendingModel& model : models_) {
    // Term data and block index, front-coded within each block.
    std::string term_data;
    std::vector<uint32_t> block_offsets;
    const uint64_t term_count = model.terms.size();
    std::string_view prev;
    for (size_t i = 0; i < model.terms.size(); ++i) {
      const auto& [term, stats] = model.terms[i];
      const bool block_start = i % options_.block_size == 0;
      if (block_start) {
        if (term_data.size() >
            std::numeric_limits<uint32_t>::max()) {
          return Status::OutOfRange(
              "model '" + model.name +
              "' exceeds the 4 GiB per-section term-data limit");
        }
        block_offsets.push_back(static_cast<uint32_t>(term_data.size()));
      }
      // Block-first entries carry the full term (prefix length 0), so a
      // block can be decoded without touching its predecessor.
      const size_t prefix = block_start ? 0 : SharedPrefix(prev, term);
      MstorePutVarint64(&term_data, prefix);
      MstorePutVarint64(&term_data, term.size() - prefix);
      term_data.append(term, prefix, term.size() - prefix);
      MstorePutVarint64(&term_data, stats.df);
      MstorePutVarint64(&term_data, stats.ctf);
      prev = term;
    }

    std::string section;
    AppendLe64(&section, model.num_docs);
    AppendLe64(&section, model.total_terms);
    AppendLe64(&section, term_count);
    AppendLe32(&section, options_.block_size);
    AppendLe32(&section, static_cast<uint32_t>(block_offsets.size()));
    for (uint32_t off : block_offsets) AppendLe32(&section, off);
    section += term_data;

    PadToAlignment(&out);
    SectionInfo info;
    info.offset = out.size();
    info.size = section.size();
    info.crc = Crc32c::Of(section);
    sections.push_back(info);
    out += section;
  }

  PadToAlignment(&out);
  const uint64_t directory_offset = out.size();
  std::string directory;
  for (size_t i = 0; i < models_.size(); ++i) {
    MstorePutVarint64(&directory, models_[i].name.size());
    directory += models_[i].name;
    AppendLe64(&directory, sections[i].offset);
    AppendLe64(&directory, sections[i].size);
    AppendLe32(&directory, sections[i].crc);
  }
  out += directory;
  AppendLe32(&out, Crc32c::Of(directory));

  // Header last: it commits the directory location.
  std::string header;
  header.append(kModelStoreMagic, kModelStoreMagicSize);
  AppendLe32(&header, kModelStoreVersion);
  AppendLe32(&header, 0);  // flags: none defined in v1
  AppendLe64(&header, models_.size());
  AppendLe64(&header, directory_offset);
  AppendLe64(&header, directory.size());
  AppendLe32(&header, Crc32c::Of(header));
  out.replace(0, kModelStoreHeaderSize, header);

  metrics.packs->Increment();
  metrics.models_packed->Increment(static_cast<uint64_t>(models_.size()));
  return out;
}

Status ModelStoreWriter::WriteToFile(const std::string& path) const {
  Result<std::string> image = Serialize();
  QBS_RETURN_IF_ERROR(image.status());
  return WriteFileAtomic(path, *image);
}

}  // namespace qbs

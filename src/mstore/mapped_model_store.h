// Zero-copy reader for the binary model store (docs/STORAGE.md).
//
// MappedModelStore mmaps a store file and serves term lookups straight
// from the mapping: opening a store is O(validation), not O(rebuild),
// and N processes serving the same store share one page-cache copy —
// the property that makes broker restart "mmap and publish" instead of
// re-sampling every database.
#ifndef QBS_MSTORE_MAPPED_MODEL_STORE_H_
#define QBS_MSTORE_MAPPED_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lm/model_view.h"
#include "selection/db_selection.h"
#include "util/status.h"

namespace qbs {

/// A LanguageModelView whose term dictionary lives in a mapped store
/// section. Lookup binary-searches the block index, then scans one
/// front-coded block; nothing is decoded into the heap up front.
///
/// The view borrows the mapping: it is valid only while its owning
/// MappedModelStore is alive. Use MappedModelStore::ModelView() /
/// CollectionFromStore() for handles that keep the store alive.
class MappedLanguageModel final : public LanguageModelView {
 public:
  bool FindStats(std::string_view term, TermStats* stats) const override;
  size_t vocabulary_size() const override {
    return static_cast<size_t>(term_count_);
  }
  uint64_t total_term_count() const override { return total_terms_; }
  uint64_t num_docs() const override { return num_docs_; }
  void ForEachTerm(
      const std::function<void(std::string_view, const TermStats&)>& fn)
      const override;

  /// A default-constructed model is empty (vector storage inside
  /// MappedModelStore needs this); only MappedModelStore can point one
  /// at a mapped section.
  MappedLanguageModel() = default;

 private:
  friend class MappedModelStore;

  /// First term of block `b` (points into the mapping). Empty view on
  /// malformed data — callers treat that as "not found".
  std::string_view BlockFirstTerm(uint32_t b) const;
  /// Byte offset of block `b`'s first entry within the term data.
  const uint8_t* BlockStart(uint32_t b) const;
  /// Walks every entry of the dictionary in order; returns false (and
  /// stops) when `fn` returns false or the data is malformed.
  bool Walk(const std::function<bool(std::string_view, const TermStats&)>&
                fn) const;

  uint64_t num_docs_ = 0;
  uint64_t total_terms_ = 0;
  uint64_t term_count_ = 0;
  uint32_t block_size_ = 0;
  uint32_t num_blocks_ = 0;
  /// Block index: num_blocks_ little-endian u32s.
  const uint8_t* block_index_ = nullptr;
  /// Front-coded term data: [terms_begin_, terms_end_).
  const uint8_t* terms_begin_ = nullptr;
  const uint8_t* terms_end_ = nullptr;
};

/// An open, validated model store. Create with Open(); the shared_ptr
/// keeps the mapping alive for every view handed out. Immutable after
/// Open, so all accessors are safe from any number of threads.
class MappedModelStore {
 public:
  struct OpenOptions {
    /// When true (the default, and the only safe mode for untrusted
    /// files), Open checksums every section and walks every dictionary
    /// so later lookups can trust the structure. When false, only the
    /// header and structural bounds are checked — for benchmarking the
    /// open path and for re-opening stores this process just wrote.
    bool verify = true;
  };

  /// Opens and validates a store file. Typed failures: NotFound (no
  /// such file), IOError (open/stat/mmap), Corruption (bad magic,
  /// checksum, truncation, malformed dictionary), Unimplemented
  /// (future version or unknown flags).
  static Result<std::shared_ptr<const MappedModelStore>> Open(
      const std::string& path, const OpenOptions& options);
  static Result<std::shared_ptr<const MappedModelStore>> Open(
      const std::string& path) {
    return Open(path, OpenOptions());
  }

  ~MappedModelStore();
  MappedModelStore(const MappedModelStore&) = delete;
  MappedModelStore& operator=(const MappedModelStore&) = delete;

  size_t num_models() const { return models_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  const MappedLanguageModel& model(size_t i) const { return models_[i]; }

  /// Index of the model named `name`, or NotFound.
  Result<size_t> IndexOf(std::string_view model_name) const;

  uint32_t version() const { return version_; }
  uint64_t file_size() const { return size_; }

  /// A view of model `i` that shares ownership of the store, so the
  /// mapping outlives every handed-out view.
  static std::shared_ptr<const LanguageModelView> ModelView(
      const std::shared_ptr<const MappedModelStore>& store, size_t i);

 private:
  MappedModelStore() = default;

  Status Init(const std::string& path, const OpenOptions& options);

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  uint32_t version_ = 0;
  std::vector<std::string> names_;
  std::vector<MappedLanguageModel> models_;
};

/// Builds a selection collection whose models point straight into the
/// store's mapping. Each entry shares ownership of `store`, so the
/// collection (and every snapshot built from it) keeps the mapping
/// alive.
DatabaseCollection CollectionFromStore(
    const std::shared_ptr<const MappedModelStore>& store);

}  // namespace qbs

#endif  // QBS_MSTORE_MAPPED_MODEL_STORE_H_

// Database-content summarization from a learned language model (paper §7,
// Table 4): "display the terms that occur frequently and are not stopwords".
#ifndef QBS_SUMMARIZE_SUMMARIZER_H_
#define QBS_SUMMARIZE_SUMMARIZER_H_

#include <string>
#include <utility>
#include <vector>

#include "lm/language_model.h"
#include "text/stopwords.h"

namespace qbs {

/// Options for summary construction.
struct SummaryOptions {
  /// Ranking metric; the paper found avg_tf "produced the most informative
  /// ranking" (§7).
  TermMetric metric = TermMetric::kAvgTf;
  /// Number of terms to include.
  size_t top_k = 50;
  /// Stopwords to exclude; null uses the default list.
  const StopwordList* stopwords = nullptr;
  /// Minimum term length (mirrors query-term eligibility; drops debris).
  size_t min_term_length = 2;
  /// Terms must appear in at least this many sampled documents, filtering
  /// one-off noise.
  uint64_t min_df = 2;
};

/// A ranked term list summarizing one database.
struct DatabaseSummary {
  std::string db_name;
  TermMetric metric = TermMetric::kAvgTf;
  /// (term, score) best first.
  std::vector<std::pair<std::string, double>> terms;
};

/// Builds a summary of a database from its (typically learned) language
/// model.
DatabaseSummary SummarizeDatabase(const std::string& db_name,
                                  const LanguageModel& model,
                                  const SummaryOptions& options = {});

}  // namespace qbs

#endif  // QBS_SUMMARIZE_SUMMARIZER_H_

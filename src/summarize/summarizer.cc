#include "summarize/summarizer.h"

#include <algorithm>

namespace qbs {

DatabaseSummary SummarizeDatabase(const std::string& db_name,
                                  const LanguageModel& model,
                                  const SummaryOptions& options) {
  const StopwordList& stopwords = options.stopwords != nullptr
                                      ? *options.stopwords
                                      : StopwordList::Default();
  DatabaseSummary summary;
  summary.db_name = db_name;
  summary.metric = options.metric;

  std::vector<std::pair<std::string, double>> candidates;
  model.ForEach([&](const std::string& term, const TermStats& s) {
    if (term.size() < options.min_term_length) return;
    if (s.df < options.min_df) return;
    if (stopwords.Contains(term)) return;
    double score = 0.0;
    switch (options.metric) {
      case TermMetric::kDf:
        score = static_cast<double>(s.df);
        break;
      case TermMetric::kCtf:
        score = static_cast<double>(s.ctf);
        break;
      case TermMetric::kAvgTf:
        score = s.avg_tf();
        break;
    }
    candidates.emplace_back(term, score);
  });

  auto cmp = [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (options.top_k < candidates.size()) {
    std::partial_sort(candidates.begin(), candidates.begin() + options.top_k,
                      candidates.end(), cmp);
    candidates.resize(options.top_k);
  } else {
    std::sort(candidates.begin(), candidates.end(), cmp);
  }
  summary.terms = std::move(candidates);
  return summary;
}

}  // namespace qbs

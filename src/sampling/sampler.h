// Query-based sampling: the paper's core algorithm (§3).
//
//   1. Select an initial query term.
//   2. Run a one-term query on the database.
//   3. Retrieve the top N documents returned by the database.
//   4. Update the language model from the retrieved documents.
//   5. If the stopping criterion is not reached, select a new query term
//      and go to 2.
//
// The sampler interacts with the database *only* through the TextDatabase
// interface — no cooperation, no index access. Within that interface it
// can batch (one QueryAndFetch or FetchBatch call per round instead of a
// call per document) and pipeline (document fetches running ahead of
// model ingestion on a thread pool); see RetrievalMode. Rounds themselves
// stay sequential — the paper's algorithm picks query term t+1 from the
// model as updated by round t — so all the overlap lives inside a round,
// and the learned model is byte-identical across modes for a fixed seed.
#ifndef QBS_SAMPLING_SAMPLER_H_
#define QBS_SAMPLING_SAMPLER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "lm/language_model.h"
#include "sampling/stopping.h"
#include "sampling/term_selector.h"
#include "search/text_database.h"
#include "text/analyzer.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qbs {

/// How the sampler turns a round's hit list into document text — the
/// network-facing half of the loop. Ingestion order is always the
/// database's hit order, so against a healthy database every mode learns
/// the identical model; the modes differ only in round trips and in how
/// much already-seen text they transfer.
enum class RetrievalMode {
  /// One RunQuery, then one FetchDocument per unseen hit — the only
  /// shape the v1 wire protocol supports. With
  /// SamplerOptions::fetch_pool set, fetches run ahead of ingestion on
  /// the pool (bounded by prefetch_depth).
  kSingleFetch,
  /// One QueryAndFetch call per round: the hits and their documents in
  /// a single round trip (one RPC against a v2 server). The database
  /// cannot know which documents the sampler has already examined, so
  /// duplicates are transferred anyway and discarded on arrival
  /// (counted in SamplingResult::overfetched_docs). Fewest RPCs;
  /// prefer kFetchBatch once duplicate rates climb and transfer bytes
  /// are the bottleneck.
  kQueryAndFetch,
  /// RunQuery, then one FetchBatch covering the round's unseen hits:
  /// two round trips per round and no duplicate-document transfer —
  /// the same documents the v1 path would fetch, in the same order,
  /// at a fraction of the RPCs. The default.
  kFetchBatch,
};

/// Configuration of one sampling run.
struct SamplerOptions {
  /// How successive query terms are chosen (paper §5.2).
  SelectionStrategy strategy = SelectionStrategy::kRandomLearned;

  /// Reference model for SelectionStrategy::kRandomOther; must outlive the
  /// sampler. Ignored by the *_llm strategies.
  const LanguageModel* other_model = nullptr;

  /// Documents examined per query — the paper's N (§5.1; 4 is the paper's
  /// empirically chosen baseline).
  size_t docs_per_query = 4;

  /// Query-term eligibility rules (§4.4).
  TermFilter filter;

  /// The first query term. If empty, Run() fails with FailedPrecondition;
  /// use RandomEligibleTerm() on a reference model to pick one (§4.4).
  std::string initial_term;

  /// When true (default, and the paper's implicit behaviour), documents
  /// already examined are not re-counted when returned by later queries.
  /// Exposed for ablation.
  bool dedup_documents = true;

  /// When true, a parallel Porter-stemmed copy of the learned model is
  /// maintained, for comparison against (stemmed) actual models (§4.1).
  bool build_stemmed_model = true;

  /// When true, the raw text of each sampled document is retained in the
  /// result (needed for co-occurrence query expansion, §8).
  bool collect_documents = false;

  /// Stopping rules (§6).
  StoppingOptions stopping;

  /// Seed for the sampler's private RNG (term selection).
  uint64_t seed = 7;

  /// Number of database errors (failed RunQuery / FetchDocument calls) to
  /// tolerate before giving up. Remote databases fail transiently; a
  /// tolerated query error skips to the next term, a tolerated fetch error
  /// skips that document. 0 propagates the first error. Batched modes
  /// count a failed batch *call* as one error (its documents are
  /// retrievable later); a per-document failure inside a successful
  /// batch counts one error per document, exactly like kSingleFetch.
  size_t max_database_errors = 0;

  /// Retrieval strategy (see RetrievalMode). Safe against any database:
  /// TextDatabase composes the batched calls from RunQuery /
  /// FetchDocument when the implementation does not override them, and
  /// RemoteTextDatabase serves each as a single RPC when the server
  /// speaks protocol v2.
  RetrievalMode retrieval = RetrievalMode::kFetchBatch;

  /// Optional pool (borrowed, not owned; must outlive the run) on which
  /// kSingleFetch document fetches run ahead of ingestion. nullptr
  /// fetches inline. Only set this when the database tolerates
  /// concurrent FetchDocument calls (RemoteTextDatabase does; a bare
  /// SearchEngine is only thread-compatible and does not). Ignored by
  /// the batched modes, whose rounds already collapse to 1–2 calls.
  ThreadPool* fetch_pool = nullptr;

  /// Upper bound on fetches in flight ahead of ingestion when
  /// fetch_pool is set. The learned model does not depend on it —
  /// ingestion order stays hit order — it only bounds wasted fetches
  /// when a stopping rule fires mid-round.
  size_t prefetch_depth = 4;
};

/// Per-query log entry.
struct QueryRecord {
  std::string term;
  /// Hits the database returned (<= docs_per_query).
  size_t hits_returned = 0;
  /// How many of those were documents not seen before.
  size_t new_docs = 0;
};

/// Learned-model snapshot bookkeeping (for Fig. 4 and rdiff stopping).
struct SamplingSnapshot {
  /// Unique documents examined when the snapshot was taken.
  size_t documents = 0;
  /// Queries issued so far.
  size_t queries = 0;
  /// rdiff (df ranking) from the previous snapshot; negative for the first.
  double rdiff_from_prev = -1.0;
};

/// The outcome of a sampling run.
struct SamplingResult {
  /// Learned model over raw terms (lowercased only; stopwords kept,
  /// suffixes kept — §4.1). This is the model used for query selection.
  LanguageModel learned;

  /// Porter-stemmed variant (empty unless build_stemmed_model).
  LanguageModel learned_stemmed;

  /// Unique documents examined.
  size_t documents_examined = 0;

  /// Total queries issued.
  size_t queries_run = 0;

  /// Queries that returned no hits at all.
  size_t failed_queries = 0;

  /// Hits pointing at documents already examined (dedup hits).
  size_t duplicate_hits = 0;

  /// Database errors tolerated along the way (see
  /// SamplerOptions::max_database_errors).
  size_t database_errors = 0;

  /// Documents transferred but never ingested: duplicates arriving via
  /// kQueryAndFetch, and round remainders after a mid-round stop. The
  /// price paid (in transfer, not in RPCs) for batching.
  size_t overfetched_docs = 0;

  /// Per-query log, in order.
  std::vector<QueryRecord> queries;

  /// Snapshot trail (every stopping.snapshot_interval documents).
  std::vector<SamplingSnapshot> snapshots;

  /// Raw text of sampled documents (only when collect_documents).
  std::vector<std::string> sampled_documents;

  /// Why sampling stopped.
  std::string stop_reason;
};

/// Runs query-based sampling against one database.
class QueryBasedSampler {
 public:
  /// Called after each newly examined document with the running counts and
  /// the current learned models (stemmed model is empty unless enabled).
  /// Used by experiment harnesses to record metric trajectories.
  using DocumentObserver = std::function<void(
      size_t documents_examined, const LanguageModel& learned_raw,
      const LanguageModel& learned_stemmed)>;

  /// `db` must outlive the sampler.
  QueryBasedSampler(TextDatabase* db, SamplerOptions options);

  /// Registers a per-document observer (optional).
  void set_document_observer(DocumentObserver observer) {
    observer_ = std::move(observer);
  }

  /// Executes the sampling loop. Fails with FailedPrecondition when
  /// options are inconsistent (no initial term, missing other_model), and
  /// propagates database errors.
  Result<SamplingResult> Run();

 private:
  TextDatabase* db_;
  SamplerOptions options_;
  DocumentObserver observer_;
};

}  // namespace qbs

#endif  // QBS_SAMPLING_SAMPLER_H_

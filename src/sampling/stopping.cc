#include "sampling/stopping.h"

namespace qbs {

void StoppingPolicy::OnSnapshot(double rdiff) {
  ++snapshots_taken_;
  if (rdiff < 0.0) return;  // first snapshot: nothing to compare against
  if (options_.rdiff_threshold > 0.0 && rdiff < options_.rdiff_threshold) {
    ++consecutive_converged_;
  } else {
    consecutive_converged_ = 0;
  }
}

bool StoppingPolicy::SnapshotDue() const {
  if (options_.snapshot_interval == 0) return false;
  return documents_ >= (snapshots_taken_ + 1) * options_.snapshot_interval;
}

bool StoppingPolicy::ShouldStop() {
  if (options_.max_documents > 0 && documents_ >= options_.max_documents) {
    reason_ = "document budget reached";
    return true;
  }
  if (options_.max_queries > 0 && queries_ >= options_.max_queries) {
    reason_ = "query budget reached";
    return true;
  }
  if (options_.rdiff_threshold > 0.0 &&
      consecutive_converged_ >= options_.rdiff_consecutive) {
    reason_ = "rdiff converged";
    return true;
  }
  return false;
}

}  // namespace qbs

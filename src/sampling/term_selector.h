// Query-term selection strategies for query-based sampling (paper §5.2).
#ifndef QBS_SAMPLING_TERM_SELECTOR_H_
#define QBS_SAMPLING_TERM_SELECTOR_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>

#include "lm/language_model.h"
#include "util/random.h"

namespace qbs {

/// Eligibility rules for query terms (paper §4.4): "A term selected as a
/// query term could not be a number and was required to be 3 or more
/// characters long."
struct TermFilter {
  size_t min_length = 3;
  size_t max_length = 64;
  bool exclude_numbers = true;

  /// True iff `term` may be used as a query term.
  bool IsEligible(std::string_view term) const;
};

/// How the next query term is chosen (paper §5.2).
enum class SelectionStrategy {
  /// Uniformly at random from the learned language model (the paper's
  /// baseline and empirical winner: "Random llm").
  kRandomLearned,
  /// Highest document frequency in the learned model ("df llm").
  kDfLearned,
  /// Highest collection term frequency in the learned model ("ctf llm").
  kCtfLearned,
  /// Highest average term frequency in the learned model ("avg_tf llm").
  kAvgTfLearned,
  /// Uniformly at random from a fixed *other* language model ("Random olm").
  kRandomOther,
};

/// Returns a stable display name ("random_llm", "df_llm", ...).
const char* SelectionStrategyName(SelectionStrategy strategy);

/// Chooses successive query terms under one strategy.
class TermSelector {
 public:
  virtual ~TermSelector() = default;

  /// Returns the next query term, or nullopt when no eligible unused term
  /// exists. `learned` is the current learned model; `used` holds terms
  /// already issued as queries.
  virtual std::optional<std::string> Select(
      const LanguageModel& learned,
      const std::unordered_set<std::string>& used, Rng& rng) = 0;

  /// Strategy display name.
  virtual std::string name() const = 0;
};

/// Creates a selector. For kRandomOther, `other_model` must be non-null and
/// outlive the selector; it is ignored for the *_llm strategies.
std::unique_ptr<TermSelector> MakeTermSelector(
    SelectionStrategy strategy, const TermFilter& filter,
    const LanguageModel* other_model = nullptr);

/// Picks a random eligible term from `model` — used to choose the *initial*
/// query term from a reference model (paper §4.4: "selecting a word
/// randomly from the actual TREC-123 language model"). Returns nullopt when
/// the model has no eligible term.
std::optional<std::string> RandomEligibleTerm(const LanguageModel& model,
                                              const TermFilter& filter,
                                              Rng& rng);

}  // namespace qbs

#endif  // QBS_SAMPLING_TERM_SELECTOR_H_

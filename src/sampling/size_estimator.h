// Database-size estimation by sampling — the paper's declared open problem
// (§3: "it is unclear how to estimate database size by sampling"; §4.3.3:
// "it is not known yet how to estimate the size of a database by
// sampling").
//
// We close it with capture-recapture (Lincoln-Petersen), the standard
// technique for estimating a population from two independent samples:
// run query-based sampling twice with independent seeds, count the overlap
// of retrieved document handles, and estimate
//
//     N  ≈  n1 * n2 / m
//
// where n1, n2 are the distinct documents in each sample and m the number
// seen by both. Only the minimal TextDatabase interface is used — no
// cooperation, exactly in the paper's spirit. The Chapman correction
// (N ≈ (n1+1)(n2+1)/(m+1) - 1) reduces small-sample bias and handles m=0.
//
// Caveat inherited from the technique: query-based samples are not
// uniform — popular (highly retrievable) documents are over-represented in
// both samples, inflating the overlap, so the estimate is a *lower bound*
// in expectation. The tests and the size-estimation experiment quantify
// this bias; it is typically within a small factor, which is enough for
// the paper's intended use (scaling learned frequencies across databases
// of different sizes).
#ifndef QBS_SAMPLING_SIZE_ESTIMATOR_H_
#define QBS_SAMPLING_SIZE_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lm/language_model.h"
#include "sampling/sampler.h"
#include "search/text_database.h"
#include "util/status.h"

namespace qbs {

/// Options for capture-recapture size estimation.
struct SizeEstimateOptions {
  /// Documents per capture run.
  size_t docs_per_run = 200;

  /// Documents examined per query within each run.
  size_t docs_per_query = 4;

  /// First query term for both runs (see SamplerOptions::initial_term).
  std::string initial_term;

  /// Seeds for the two (independent) runs.
  uint64_t seed_run1 = 17;
  uint64_t seed_run2 = 10007;

  /// Use the Chapman small-sample correction (recommended).
  bool chapman_correction = true;
};

/// The outcome of a capture-recapture estimate.
struct SizeEstimate {
  /// Estimated number of documents in the database.
  double estimated_docs = 0.0;
  /// Distinct documents captured by each run, and by both.
  size_t capture1 = 0;
  size_t capture2 = 0;
  size_t overlap = 0;
  /// Total queries issued across both runs.
  size_t queries_run = 0;
};

/// Estimates the size of `db` with two independent query-based samples.
/// Fails when either sampling run fails.
Result<SizeEstimate> EstimateDatabaseSize(TextDatabase* db,
                                          const SizeEstimateOptions& options);

/// Computes the Lincoln-Petersen / Chapman estimate from already-collected
/// capture handle sets (exposed for reuse and testing).
SizeEstimate CaptureRecapture(const std::vector<std::string>& capture1,
                              const std::vector<std::string>& capture2,
                              bool chapman_correction = true);

/// Projects a learned model's document frequencies to full-database scale
/// (the paper's §3 suggestion: "scaling the frequencies in learned language
/// models by the sizes of the samples they are based upon"):
///   df_projected = df_learned * estimated_docs / sample_docs
/// ctf is scaled by the same factor. The model's num_docs is set to the
/// estimate. Returns the input unchanged when the learned model is empty.
LanguageModel ProjectToDatabaseScale(const LanguageModel& learned,
                                     double estimated_docs);

}  // namespace qbs

#endif  // QBS_SAMPLING_SIZE_ESTIMATOR_H_

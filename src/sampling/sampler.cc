#include "sampling/sampler.h"

#include "lm/metrics.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/porter_stemmer.h"

namespace qbs {

namespace {

// Registered once, incremented lock-free thereafter. Counters are
// process-wide totals across all sampling runs; the convergence gauges
// reflect the most recent round of whichever sampler updated them last
// (one sampler per database at a time in the service).
struct SamplerMetrics {
  Counter* queries;
  Counter* failed_queries;
  Counter* documents;
  Counter* duplicate_hits;
  Counter* database_errors;
  Histogram* query_latency_us;
  Histogram* fetch_latency_us;
  Gauge* unique_terms;
  Gauge* ctf_ratio_proxy;

  static const SamplerMetrics& Get() {
    static const SamplerMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      SamplerMetrics m;
      m.queries = r.GetCounter("qbs_sampler_queries_total",
                               "Sampling queries issued");
      m.failed_queries = r.GetCounter("qbs_sampler_failed_queries_total",
                                      "Sampling queries returning no hits");
      m.documents = r.GetCounter("qbs_sampler_documents_total",
                                 "Unique documents examined by samplers");
      m.duplicate_hits =
          r.GetCounter("qbs_sampler_duplicate_hits_total",
                       "Hits pointing at already-examined documents");
      m.database_errors =
          r.GetCounter("qbs_sampler_database_errors_total",
                       "Tolerated database errors during sampling");
      m.query_latency_us =
          r.GetHistogram("qbs_sampler_query_latency_us",
                         Histogram::LatencyBoundsUs(),
                         "RunQuery latency seen by the sampler (us)");
      m.fetch_latency_us =
          r.GetHistogram("qbs_sampler_fetch_latency_us",
                         Histogram::LatencyBoundsUs(),
                         "FetchDocument latency seen by the sampler (us)");
      m.unique_terms =
          r.GetGauge("qbs_sampler_unique_terms",
                     "Learned-model vocabulary size, most recent round");
      m.ctf_ratio_proxy = r.GetGauge(
          "qbs_sampler_ctf_ratio_proxy",
          "1 - vocabulary/occurrences of the learned model: the repeat-"
          "occurrence fraction, a model-free convergence proxy for the "
          "paper's ctf ratio");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

QueryBasedSampler::QueryBasedSampler(TextDatabase* db, SamplerOptions options)
    : db_(db), options_(std::move(options)) {}

Result<SamplingResult> QueryBasedSampler::Run() {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("sampler requires a database");
  }
  if (options_.docs_per_query == 0) {
    return Status::InvalidArgument("docs_per_query must be positive");
  }
  if (options_.initial_term.empty()) {
    return Status::FailedPrecondition(
        "no initial query term; pick one with RandomEligibleTerm()");
  }
  if (options_.strategy == SelectionStrategy::kRandomOther &&
      options_.other_model == nullptr) {
    return Status::FailedPrecondition(
        "kRandomOther requires options.other_model");
  }

  const SamplerMetrics& metrics = SamplerMetrics::Get();
  QBS_TRACE_SPAN("sampler.run", db_->name());
  QBS_LOG(DEBUG) << "sampling '" << db_->name() << "' starting from term '"
                 << options_.initial_term << "'";

  Rng rng(options_.seed);
  std::unique_ptr<TermSelector> selector = MakeTermSelector(
      options_.strategy, options_.filter, options_.other_model);
  StoppingPolicy stopping(options_.stopping);

  // The learned model is built from *raw* document text with the service's
  // own conventions (lowercase, no stopping, no stemming — §4.1). The
  // database's indexing choices never leak in.
  const Analyzer raw_analyzer = Analyzer::Raw();

  SamplingResult result;
  std::unordered_set<std::string> seen_docs;
  std::unordered_set<std::string> used_terms;
  LanguageModel prev_snapshot;
  bool have_prev_snapshot = false;

  // Tolerates up to max_database_errors transient failures; returns the
  // error once the budget is exceeded.
  auto tolerate = [&](const Status& status) -> bool {
    if (result.database_errors < options_.max_database_errors) {
      ++result.database_errors;
      metrics.database_errors->Increment();
      QBS_LOG(WARNING) << "tolerated database error from '" << db_->name()
                       << "': " << status.ToString();
      return true;
    }
    return false;
  };

  std::string term = options_.initial_term;
  while (true) {
    used_terms.insert(term);
    stopping.OnQuery();

    Result<std::vector<SearchHit>> query_result = [&] {
      QBS_TRACE_SPAN("sampler.query");
      ScopedTimerUs timer(metrics.query_latency_us);
      return db_->RunQuery(term, options_.docs_per_query);
    }();
    metrics.queries->Increment();
    if (!query_result.ok() && !tolerate(query_result.status())) {
      return query_result.status();
    }
    std::vector<SearchHit> hits =
        query_result.ok() ? std::move(*query_result)
                          : std::vector<SearchHit>();
    QueryRecord record;
    record.term = term;
    record.hits_returned = hits.size();
    if (hits.empty()) {
      ++result.failed_queries;
      metrics.failed_queries->Increment();
    }

    for (const SearchHit& hit : hits) {
      if (options_.dedup_documents) {
        auto [it, inserted] = seen_docs.insert(hit.handle);
        if (!inserted) {
          ++result.duplicate_hits;
          metrics.duplicate_hits->Increment();
          continue;
        }
      }
      Result<std::string> fetch_result = [&] {
        ScopedTimerUs timer(metrics.fetch_latency_us);
        return db_->FetchDocument(hit.handle);
      }();
      if (!fetch_result.ok()) {
        if (!tolerate(fetch_result.status())) return fetch_result.status();
        if (options_.dedup_documents) seen_docs.erase(hit.handle);
        continue;  // skip this document; it may be retrievable later
      }
      std::string text = std::move(*fetch_result);
      std::vector<std::string> terms = raw_analyzer.Analyze(text);
      result.learned.AddDocument(terms);
      if (options_.build_stemmed_model) {
        for (std::string& t : terms) PorterStemmer::StemInPlace(t);
        result.learned_stemmed.AddDocument(terms);
      }
      if (options_.collect_documents) {
        result.sampled_documents.push_back(std::move(text));
      }
      ++record.new_docs;
      metrics.documents->Increment();
      stopping.OnDocument();

      if (observer_) {
        observer_(stopping.documents(), result.learned,
                  result.learned_stemmed);
      }

      // Snapshot bookkeeping (Fig. 4 / rdiff stopping).
      if (stopping.SnapshotDue()) {
        SamplingSnapshot snap;
        snap.documents = stopping.documents();
        snap.queries = stopping.queries();
        if (have_prev_snapshot) {
          snap.rdiff_from_prev =
              RDiff(prev_snapshot, result.learned, TermMetric::kDf);
        }
        stopping.OnSnapshot(snap.rdiff_from_prev);
        result.snapshots.push_back(snap);
        prev_snapshot = result.learned;  // deep copy
        have_prev_snapshot = true;
      }
      if (stopping.ShouldStop()) break;
    }
    result.queries.push_back(std::move(record));

    // Convergence gauges, refreshed once per round (§6: diminishing
    // returns are what a stopping criterion watches). The proxy needs no
    // actual model: as sampling converges, new documents add occurrences
    // of known terms faster than new terms, so 1 - V/N rises toward 1 in
    // step with the paper's ctf ratio.
    const size_t vocab = result.learned.vocabulary_size();
    const uint64_t occurrences = result.learned.total_term_count();
    metrics.unique_terms->Set(static_cast<double>(vocab));
    if (occurrences > 0) {
      metrics.ctf_ratio_proxy->Set(
          1.0 - static_cast<double>(vocab) / static_cast<double>(occurrences));
    }

    if (stopping.ShouldStop()) break;

    std::optional<std::string> next =
        selector->Select(result.learned, used_terms, rng);
    if (!next.has_value()) {
      result.stop_reason = "no eligible query terms remain";
      break;
    }
    term = std::move(*next);
  }

  if (result.stop_reason.empty()) result.stop_reason = stopping.reason();
  result.documents_examined = stopping.documents();
  result.queries_run = stopping.queries();
  QBS_LOG(DEBUG) << "sampled '" << db_->name() << "': "
                 << result.documents_examined << " documents, "
                 << result.queries_run << " queries ("
                 << result.failed_queries << " failed), "
                 << result.learned.vocabulary_size()
                 << " terms learned; stop: " << result.stop_reason;
  return result;
}

}  // namespace qbs

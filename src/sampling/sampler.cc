#include "sampling/sampler.h"

#include <deque>
#include <future>
#include <limits>
#include <utility>

#include "lm/language_model.h"
#include "lm/metrics.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/porter_stemmer.h"

namespace qbs {

namespace {

// Registered once, incremented lock-free thereafter. Counters are
// process-wide totals across all sampling runs; the convergence gauges
// reflect the most recent round of whichever sampler updated them last
// (one sampler per database at a time in the service).
struct SamplerMetrics {
  Counter* queries;
  Counter* failed_queries;
  Counter* documents;
  Counter* duplicate_hits;
  Counter* database_errors;
  Counter* batch_rounds;
  Counter* prefetched_fetches;
  Counter* overfetched_docs;
  Histogram* query_latency_us;
  Histogram* fetch_latency_us;
  Gauge* unique_terms;
  Gauge* ctf_ratio_proxy;

  static const SamplerMetrics& Get() {
    static const SamplerMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      SamplerMetrics m;
      m.queries = r.GetCounter("qbs_sampler_queries_total",
                               "Sampling queries issued");
      m.failed_queries = r.GetCounter("qbs_sampler_failed_queries_total",
                                      "Sampling queries returning no hits");
      m.documents = r.GetCounter("qbs_sampler_documents_total",
                                 "Unique documents examined by samplers");
      m.duplicate_hits =
          r.GetCounter("qbs_sampler_duplicate_hits_total",
                       "Hits pointing at already-examined documents");
      m.database_errors =
          r.GetCounter("qbs_sampler_database_errors_total",
                       "Tolerated database errors during sampling");
      m.batch_rounds =
          r.GetCounter("qbs_sampler_batch_rounds_total",
                       "Sampling rounds retrieved through a batched "
                       "database call (query_and_fetch or fetch_batch)");
      m.prefetched_fetches = r.GetCounter(
          "qbs_sampler_prefetched_fetches_total",
          "Document fetches launched ahead of ingestion on a fetch pool");
      m.overfetched_docs = r.GetCounter(
          "qbs_sampler_overfetched_docs_total",
          "Documents transferred but never ingested — duplicates arriving "
          "via query_and_fetch and round remainders after a mid-round stop");
      m.query_latency_us =
          r.GetHistogram("qbs_sampler_query_latency_us",
                         Histogram::LatencyBoundsUs(),
                         "RunQuery latency seen by the sampler (us)");
      m.fetch_latency_us =
          r.GetHistogram("qbs_sampler_fetch_latency_us",
                         Histogram::LatencyBoundsUs(),
                         "FetchDocument latency seen by the sampler (us)");
      m.unique_terms =
          r.GetGauge("qbs_sampler_unique_terms",
                     "Learned-model vocabulary size, most recent round");
      m.ctf_ratio_proxy = r.GetGauge(
          "qbs_sampler_ctf_ratio_proxy",
          "1 - vocabulary/occurrences of the learned model: the repeat-"
          "occurrence fraction, a model-free convergence proxy for the "
          "paper's ctf ratio");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

QueryBasedSampler::QueryBasedSampler(TextDatabase* db, SamplerOptions options)
    : db_(db), options_(std::move(options)) {}

Result<SamplingResult> QueryBasedSampler::Run() {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("sampler requires a database");
  }
  if (options_.docs_per_query == 0) {
    return Status::InvalidArgument("docs_per_query must be positive");
  }
  if (options_.initial_term.empty()) {
    return Status::FailedPrecondition(
        "no initial query term; pick one with RandomEligibleTerm()");
  }
  if (options_.strategy == SelectionStrategy::kRandomOther &&
      options_.other_model == nullptr) {
    return Status::FailedPrecondition(
        "kRandomOther requires options.other_model");
  }

  const SamplerMetrics& metrics = SamplerMetrics::Get();
  QBS_TRACE_SPAN("sampler.run", db_->name());
  QBS_LOG(DEBUG) << "sampling '" << db_->name() << "' starting from term '"
                 << options_.initial_term << "'";

  Rng rng(options_.seed);
  std::unique_ptr<TermSelector> selector = MakeTermSelector(
      options_.strategy, options_.filter, options_.other_model);
  StoppingPolicy stopping(options_.stopping);

  // The learned model is built from *raw* document text with the service's
  // own conventions (lowercase, no stopping, no stemming — §4.1). The
  // database's indexing choices never leak in.
  const Analyzer raw_analyzer = Analyzer::Raw();

  SamplingResult result;
  std::unordered_set<std::string> seen_docs;
  std::unordered_set<std::string> used_terms;
  LanguageModel prev_snapshot;
  bool have_prev_snapshot = false;

  // Tolerates up to max_database_errors transient failures; returns the
  // error once the budget is exceeded.
  auto tolerate = [&](const Status& status) -> bool {
    if (result.database_errors < options_.max_database_errors) {
      ++result.database_errors;
      metrics.database_errors->Increment();
      QBS_LOG(WARNING) << "tolerated database error from '" << db_->name()
                       << "': " << status.ToString();
      return true;
    }
    return false;
  };

  auto discard = [&](size_t n) {
    if (n == 0) return;
    result.overfetched_docs += n;
    metrics.overfetched_docs->Increment(n);
  };

  // Ingests one fetched document (or its fetch failure) into the model.
  // Returns true to continue the round, false on a mid-round stop, and
  // the database error once the tolerance budget is exhausted. Every
  // retrieval mode funnels through here, in hit order — which is what
  // keeps the learned model identical across modes.
  auto ingest = [&](const std::string& handle,
                    Result<std::string> fetch_result,
                    QueryRecord& record) -> Result<bool> {
    if (!fetch_result.ok()) {
      if (!tolerate(fetch_result.status())) return fetch_result.status();
      // Skipped, not examined: forget the handle so a later query may
      // retrieve the document successfully.
      if (options_.dedup_documents) seen_docs.erase(handle);
      return true;
    }
    std::string text = std::move(*fetch_result);
    std::vector<std::string> terms = raw_analyzer.Analyze(text);
    result.learned.AddDocument(terms);
    if (options_.build_stemmed_model) {
      for (std::string& t : terms) PorterStemmer::StemInPlace(t);
      result.learned_stemmed.AddDocument(terms);
    }
    if (options_.collect_documents) {
      result.sampled_documents.push_back(std::move(text));
    }
    ++record.new_docs;
    metrics.documents->Increment();
    stopping.OnDocument();

    if (observer_) {
      observer_(stopping.documents(), result.learned,
                result.learned_stemmed);
    }

    // Snapshot bookkeeping (Fig. 4 / rdiff stopping).
    if (stopping.SnapshotDue()) {
      SamplingSnapshot snap;
      snap.documents = stopping.documents();
      snap.queries = stopping.queries();
      if (have_prev_snapshot) {
        snap.rdiff_from_prev =
            RDiff(prev_snapshot, result.learned, TermMetric::kDf);
      }
      stopping.OnSnapshot(snap.rdiff_from_prev);
      result.snapshots.push_back(snap);
      prev_snapshot = result.learned;  // deep copy
      have_prev_snapshot = true;
    }
    return !stopping.ShouldStop();
  };

  std::string term = options_.initial_term;
  while (true) {
    used_terms.insert(term);
    stopping.OnQuery();

    QueryRecord record;
    record.term = term;

    // With a document-count stopping rule, never start a fetch the rule
    // cannot ingest: batching must not change how many documents a
    // bounded run examines (or pays for).
    size_t budget = std::numeric_limits<size_t>::max();
    if (options_.stopping.max_documents > 0) {
      budget = options_.stopping.max_documents - stopping.documents();
    }

    bool mid_round_stop = false;

    if (options_.retrieval == RetrievalMode::kQueryAndFetch) {
      // --- Retrieval: the whole round in one call. ---
      Result<QueryAndFetchResult> round = [&] {
        QBS_TRACE_SPAN("sampler.retrieve", term);
        ScopedTimerUs timer(metrics.query_latency_us);
        return db_->QueryAndFetch(term, options_.docs_per_query);
      }();
      metrics.queries->Increment();
      metrics.batch_rounds->Increment();
      if (round.ok() && round->documents.size() != round->hits.size()) {
        round = Status::Internal(
            "QueryAndFetch returned " +
            std::to_string(round->documents.size()) + " documents for " +
            std::to_string(round->hits.size()) + " hits");
      }
      if (!round.ok() && !tolerate(round.status())) return round.status();
      std::vector<SearchHit> hits =
          round.ok() ? std::move(round->hits) : std::vector<SearchHit>();
      std::vector<FetchedDocument> docs = round.ok()
                                              ? std::move(round->documents)
                                              : std::vector<FetchedDocument>();
      record.hits_returned = hits.size();
      if (hits.empty()) {
        ++result.failed_queries;
        metrics.failed_queries->Increment();
      }

      // --- Ingestion, in hit order; duplicates arrived anyway and are
      // discarded here. ---
      QBS_TRACE_SPAN("sampler.ingest", term);
      size_t i = 0;
      for (; i < hits.size() && !mid_round_stop; ++i) {
        if (options_.dedup_documents) {
          auto [it, inserted] = seen_docs.insert(hits[i].handle);
          if (!inserted) {
            ++result.duplicate_hits;
            metrics.duplicate_hits->Increment();
            discard(1);
            continue;
          }
        }
        Result<std::string> text =
            docs[i].status.ok()
                ? Result<std::string>(std::move(docs[i].text))
                : Result<std::string>(docs[i].status);
        Result<bool> keep_going = ingest(hits[i].handle, std::move(text),
                                         record);
        if (!keep_going.ok()) return keep_going.status();
        if (!*keep_going) mid_round_stop = true;
      }
      discard(hits.size() - i);
    } else {
      // --- Retrieval stage 1: the query. ---
      Result<std::vector<SearchHit>> query_result = [&] {
        QBS_TRACE_SPAN("sampler.retrieve", term);
        ScopedTimerUs timer(metrics.query_latency_us);
        return db_->RunQuery(term, options_.docs_per_query);
      }();
      metrics.queries->Increment();
      if (!query_result.ok() && !tolerate(query_result.status())) {
        return query_result.status();
      }
      std::vector<SearchHit> hits = query_result.ok()
                                        ? std::move(*query_result)
                                        : std::vector<SearchHit>();
      record.hits_returned = hits.size();
      if (hits.empty()) {
        ++result.failed_queries;
        metrics.failed_queries->Increment();
      }

      // Dedup and budget-trim before any fetch: already-examined
      // documents are never re-fetched, and no fetch starts that the
      // stopping rule cannot ingest. Hits past the budget stay
      // untouched (not marked seen), exactly as if the stop had broken
      // the per-hit loop.
      std::vector<std::string> to_fetch;
      for (const SearchHit& hit : hits) {
        if (to_fetch.size() >= budget) break;
        if (options_.dedup_documents) {
          auto [it, inserted] = seen_docs.insert(hit.handle);
          if (!inserted) {
            ++result.duplicate_hits;
            metrics.duplicate_hits->Increment();
            continue;
          }
        }
        to_fetch.push_back(hit.handle);
      }

      if (options_.retrieval == RetrievalMode::kFetchBatch &&
          !to_fetch.empty()) {
        // --- Retrieval stage 2: every unseen document in one call. ---
        Result<std::vector<FetchedDocument>> batch = [&] {
          QBS_TRACE_SPAN("sampler.retrieve", term);
          ScopedTimerUs timer(metrics.fetch_latency_us);
          return db_->FetchBatch(to_fetch);
        }();
        metrics.batch_rounds->Increment();
        if (batch.ok() && batch->size() != to_fetch.size()) {
          batch = Status::Internal(
              "FetchBatch returned " + std::to_string(batch->size()) +
              " documents for " + std::to_string(to_fetch.size()) +
              " handles");
        }
        if (!batch.ok()) {
          // One tolerated error covers the whole failed call; none of
          // the documents were examined, so all stay retrievable.
          if (!tolerate(batch.status())) return batch.status();
          if (options_.dedup_documents) {
            for (const std::string& handle : to_fetch) {
              seen_docs.erase(handle);
            }
          }
        } else {
          QBS_TRACE_SPAN("sampler.ingest", term);
          size_t i = 0;
          for (; i < to_fetch.size() && !mid_round_stop; ++i) {
            FetchedDocument& doc = (*batch)[i];
            Result<std::string> text =
                doc.status.ok() ? Result<std::string>(std::move(doc.text))
                                : Result<std::string>(doc.status);
            Result<bool> keep_going = ingest(to_fetch[i], std::move(text),
                                             record);
            if (!keep_going.ok()) return keep_going.status();
            if (!*keep_going) mid_round_stop = true;
          }
          discard(to_fetch.size() - i);
        }
      } else if (options_.retrieval == RetrievalMode::kSingleFetch &&
                 options_.fetch_pool != nullptr &&
                 options_.prefetch_depth > 0 && to_fetch.size() > 1) {
        // --- Pipelined: fetches run ahead on the pool while ingestion
        // consumes them strictly in hit order. ---
        QBS_TRACE_SPAN("sampler.ingest", term);
        std::deque<std::future<Result<std::string>>> window;
        size_t launched = 0;
        auto pump = [&] {
          while (launched < to_fetch.size() &&
                 window.size() < options_.prefetch_depth) {
            auto task =
                std::make_shared<std::packaged_task<Result<std::string>()>>(
                    [db = db_, handle = to_fetch[launched], &metrics] {
                      ScopedTimerUs timer(metrics.fetch_latency_us);
                      return db->FetchDocument(handle);
                    });
            window.push_back(task->get_future());
            if (options_.fetch_pool->Submit([task] { (*task)(); })) {
              metrics.prefetched_fetches->Increment();
            } else {
              (*task)();  // pool already shutting down: degrade inline
            }
            ++launched;
          }
        };
        size_t consumed = 0;
        Status round_error;
        while (consumed < to_fetch.size() && !mid_round_stop &&
               round_error.ok()) {
          pump();
          Result<std::string> fetch_result = window.front().get();
          window.pop_front();
          const std::string& handle = to_fetch[consumed];
          ++consumed;
          Result<bool> keep_going =
              ingest(handle, std::move(fetch_result), record);
          if (!keep_going.ok()) {
            round_error = keep_going.status();
          } else if (!*keep_going) {
            mid_round_stop = true;
          }
        }
        // Drain in-flight prefetches before leaving the round: no fetch
        // may outlive this call.
        size_t drained = 0;
        while (!window.empty()) {
          window.front().wait();
          window.pop_front();
          ++drained;
        }
        discard(drained);
        if (!round_error.ok()) return round_error;
      } else {
        // --- v1 shape: fetch and ingest one document at a time. ---
        QBS_TRACE_SPAN("sampler.ingest", term);
        for (size_t i = 0; i < to_fetch.size() && !mid_round_stop; ++i) {
          Result<std::string> fetch_result = [&] {
            ScopedTimerUs timer(metrics.fetch_latency_us);
            return db_->FetchDocument(to_fetch[i]);
          }();
          Result<bool> keep_going =
              ingest(to_fetch[i], std::move(fetch_result), record);
          if (!keep_going.ok()) return keep_going.status();
          if (!*keep_going) mid_round_stop = true;
        }
      }
    }
    result.queries.push_back(std::move(record));

    // Convergence gauges, refreshed once per round (§6: diminishing
    // returns are what a stopping criterion watches). The proxy needs no
    // actual model: as sampling converges, new documents add occurrences
    // of known terms faster than new terms, so 1 - V/N rises toward 1 in
    // step with the paper's ctf ratio.
    const size_t vocab = result.learned.vocabulary_size();
    const uint64_t occurrences = result.learned.total_term_count();
    metrics.unique_terms->Set(static_cast<double>(vocab));
    if (occurrences > 0) {
      metrics.ctf_ratio_proxy->Set(
          1.0 - static_cast<double>(vocab) / static_cast<double>(occurrences));
    }

    if (mid_round_stop || stopping.ShouldStop()) break;

    std::optional<std::string> next =
        selector->Select(result.learned, used_terms, rng);
    if (!next.has_value()) {
      result.stop_reason = "no eligible query terms remain";
      break;
    }
    term = std::move(*next);
  }

  if (result.stop_reason.empty()) result.stop_reason = stopping.reason();
  result.documents_examined = stopping.documents();
  result.queries_run = stopping.queries();
  QBS_LOG(DEBUG) << "sampled '" << db_->name() << "': "
                 << result.documents_examined << " documents, "
                 << result.queries_run << " queries ("
                 << result.failed_queries << " failed), "
                 << result.learned.vocabulary_size()
                 << " terms learned; stop: " << result.stop_reason;
  return result;
}

}  // namespace qbs

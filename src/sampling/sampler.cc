#include "sampling/sampler.h"

#include "lm/metrics.h"
#include "text/porter_stemmer.h"

namespace qbs {

QueryBasedSampler::QueryBasedSampler(TextDatabase* db, SamplerOptions options)
    : db_(db), options_(std::move(options)) {}

Result<SamplingResult> QueryBasedSampler::Run() {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("sampler requires a database");
  }
  if (options_.docs_per_query == 0) {
    return Status::InvalidArgument("docs_per_query must be positive");
  }
  if (options_.initial_term.empty()) {
    return Status::FailedPrecondition(
        "no initial query term; pick one with RandomEligibleTerm()");
  }
  if (options_.strategy == SelectionStrategy::kRandomOther &&
      options_.other_model == nullptr) {
    return Status::FailedPrecondition(
        "kRandomOther requires options.other_model");
  }

  Rng rng(options_.seed);
  std::unique_ptr<TermSelector> selector = MakeTermSelector(
      options_.strategy, options_.filter, options_.other_model);
  StoppingPolicy stopping(options_.stopping);

  // The learned model is built from *raw* document text with the service's
  // own conventions (lowercase, no stopping, no stemming — §4.1). The
  // database's indexing choices never leak in.
  const Analyzer raw_analyzer = Analyzer::Raw();

  SamplingResult result;
  std::unordered_set<std::string> seen_docs;
  std::unordered_set<std::string> used_terms;
  LanguageModel prev_snapshot;
  bool have_prev_snapshot = false;

  // Tolerates up to max_database_errors transient failures; returns the
  // error once the budget is exceeded.
  auto tolerate = [&](const Status&) -> bool {
    if (result.database_errors < options_.max_database_errors) {
      ++result.database_errors;
      return true;
    }
    return false;
  };

  std::string term = options_.initial_term;
  while (true) {
    used_terms.insert(term);
    stopping.OnQuery();

    Result<std::vector<SearchHit>> query_result =
        db_->RunQuery(term, options_.docs_per_query);
    if (!query_result.ok() && !tolerate(query_result.status())) {
      return query_result.status();
    }
    std::vector<SearchHit> hits =
        query_result.ok() ? std::move(*query_result)
                          : std::vector<SearchHit>();
    QueryRecord record;
    record.term = term;
    record.hits_returned = hits.size();
    if (hits.empty()) ++result.failed_queries;

    for (const SearchHit& hit : hits) {
      if (options_.dedup_documents) {
        auto [it, inserted] = seen_docs.insert(hit.handle);
        if (!inserted) {
          ++result.duplicate_hits;
          continue;
        }
      }
      Result<std::string> fetch_result = db_->FetchDocument(hit.handle);
      if (!fetch_result.ok()) {
        if (!tolerate(fetch_result.status())) return fetch_result.status();
        if (options_.dedup_documents) seen_docs.erase(hit.handle);
        continue;  // skip this document; it may be retrievable later
      }
      std::string text = std::move(*fetch_result);
      std::vector<std::string> terms = raw_analyzer.Analyze(text);
      result.learned.AddDocument(terms);
      if (options_.build_stemmed_model) {
        for (std::string& t : terms) PorterStemmer::StemInPlace(t);
        result.learned_stemmed.AddDocument(terms);
      }
      if (options_.collect_documents) {
        result.sampled_documents.push_back(std::move(text));
      }
      ++record.new_docs;
      stopping.OnDocument();

      if (observer_) {
        observer_(stopping.documents(), result.learned,
                  result.learned_stemmed);
      }

      // Snapshot bookkeeping (Fig. 4 / rdiff stopping).
      if (stopping.SnapshotDue()) {
        SamplingSnapshot snap;
        snap.documents = stopping.documents();
        snap.queries = stopping.queries();
        if (have_prev_snapshot) {
          snap.rdiff_from_prev =
              RDiff(prev_snapshot, result.learned, TermMetric::kDf);
        }
        stopping.OnSnapshot(snap.rdiff_from_prev);
        result.snapshots.push_back(snap);
        prev_snapshot = result.learned;  // deep copy
        have_prev_snapshot = true;
      }
      if (stopping.ShouldStop()) break;
    }
    result.queries.push_back(std::move(record));

    if (stopping.ShouldStop()) break;

    std::optional<std::string> next =
        selector->Select(result.learned, used_terms, rng);
    if (!next.has_value()) {
      result.stop_reason = "no eligible query terms remain";
      break;
    }
    term = std::move(*next);
  }

  if (result.stop_reason.empty()) result.stop_reason = stopping.reason();
  result.documents_examined = stopping.documents();
  result.queries_run = stopping.queries();
  return result;
}

}  // namespace qbs

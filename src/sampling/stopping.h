// Stopping criteria for query-based sampling (paper §6).
#ifndef QBS_SAMPLING_STOPPING_H_
#define QBS_SAMPLING_STOPPING_H_

#include <cstddef>
#include <string>

namespace qbs {

/// Configuration for when sampling ends.
struct StoppingOptions {
  /// Stop after this many unique documents have been examined (the paper's
  /// 300/500-document budgets). 0 disables the budget.
  size_t max_documents = 300;

  /// Hard cap on queries issued, guarding against pathological databases
  /// that return nothing. 0 disables the cap.
  size_t max_queries = 10'000;

  /// rdiff convergence (paper §6): a snapshot of the learned model is taken
  /// every `snapshot_interval` documents; when rdiff between consecutive
  /// snapshots stays below `rdiff_threshold` for `rdiff_consecutive`
  /// intervals, sampling stops. rdiff_threshold <= 0 disables the rule.
  size_t snapshot_interval = 50;
  double rdiff_threshold = 0.0;
  size_t rdiff_consecutive = 2;
};

/// Tracks progress against StoppingOptions. The sampler feeds it events;
/// it answers "stop now?" and remembers why.
class StoppingPolicy {
 public:
  explicit StoppingPolicy(const StoppingOptions& options)
      : options_(options) {}

  /// Records that a query was issued.
  void OnQuery() { ++queries_; }

  /// Records that a new unique document was examined.
  void OnDocument() { ++documents_; }

  /// Records that a snapshot was taken. `rdiff` is the rdiff from the
  /// previous snapshot, or negative for the first snapshot (no previous).
  void OnSnapshot(double rdiff);

  /// True when a snapshot is due (documents examined has reached the next
  /// multiple of snapshot_interval).
  bool SnapshotDue() const;

  /// True when any active criterion is met; sets reason().
  bool ShouldStop();

  /// Human-readable reason sampling stopped ("" while running).
  const std::string& reason() const { return reason_; }

  size_t documents() const { return documents_; }
  size_t queries() const { return queries_; }

 private:
  StoppingOptions options_;
  size_t documents_ = 0;
  size_t queries_ = 0;
  size_t snapshots_taken_ = 0;
  size_t consecutive_converged_ = 0;
  std::string reason_;
};

}  // namespace qbs

#endif  // QBS_SAMPLING_STOPPING_H_

#include "sampling/size_estimator.h"

#include <cmath>
#include <unordered_set>

namespace qbs {

SizeEstimate CaptureRecapture(const std::vector<std::string>& capture1,
                              const std::vector<std::string>& capture2,
                              bool chapman_correction) {
  std::unordered_set<std::string> set1(capture1.begin(), capture1.end());
  std::unordered_set<std::string> set2(capture2.begin(), capture2.end());
  SizeEstimate est;
  est.capture1 = set1.size();
  est.capture2 = set2.size();
  for (const std::string& handle : set2) {
    if (set1.contains(handle)) ++est.overlap;
  }
  double n1 = static_cast<double>(est.capture1);
  double n2 = static_cast<double>(est.capture2);
  double m = static_cast<double>(est.overlap);
  if (chapman_correction) {
    est.estimated_docs = (n1 + 1.0) * (n2 + 1.0) / (m + 1.0) - 1.0;
  } else {
    est.estimated_docs = m > 0.0 ? n1 * n2 / m : 0.0;
  }
  return est;
}

Result<SizeEstimate> EstimateDatabaseSize(TextDatabase* db,
                                          const SizeEstimateOptions& options) {
  if (db == nullptr) {
    return Status::FailedPrecondition("size estimation requires a database");
  }

  size_t total_queries = 0;
  auto run_once = [&](uint64_t seed) -> Result<std::vector<std::string>> {
    SamplerOptions opts;
    opts.docs_per_query = options.docs_per_query;
    opts.stopping.max_documents = options.docs_per_run;
    opts.initial_term = options.initial_term;
    opts.seed = seed;
    // We only need document identities; skip the stemmed model.
    opts.build_stemmed_model = false;

    // Capture handles by re-walking the query log is not possible (hits
    // are not retained), so wrap the database to record fetches.
    struct Recorder : TextDatabase {
      TextDatabase* inner;
      std::vector<std::string> fetched;
      std::string name() const override { return inner->name(); }
      Result<std::vector<SearchHit>> RunQuery(std::string_view q,
                                              size_t n) override {
        return inner->RunQuery(q, n);
      }
      Result<std::string> FetchDocument(std::string_view handle) override {
        auto text = inner->FetchDocument(handle);
        if (text.ok()) fetched.emplace_back(handle);
        return text;
      }
    };
    Recorder recorder;
    recorder.inner = db;
    QueryBasedSampler sampler(&recorder, opts);
    QBS_ASSIGN_OR_RETURN(SamplingResult result, sampler.Run());
    recorder.fetched.shrink_to_fit();
    total_queries += result.queries_run;
    return std::move(recorder.fetched);
  };

  QBS_ASSIGN_OR_RETURN(std::vector<std::string> capture1,
                       run_once(options.seed_run1));
  QBS_ASSIGN_OR_RETURN(std::vector<std::string> capture2,
                       run_once(options.seed_run2));
  SizeEstimate est =
      CaptureRecapture(capture1, capture2, options.chapman_correction);
  est.queries_run = total_queries;
  return est;
}

LanguageModel ProjectToDatabaseScale(const LanguageModel& learned,
                                     double estimated_docs) {
  if (learned.num_docs() == 0 || estimated_docs <= 0.0) return learned;
  double factor = estimated_docs / static_cast<double>(learned.num_docs());
  LanguageModel projected;
  learned.ForEach([&](const std::string& term, const TermStats& s) {
    uint64_t df = static_cast<uint64_t>(std::llround(s.df * factor));
    uint64_t ctf = static_cast<uint64_t>(std::llround(s.ctf * factor));
    projected.AddTerm(term, std::max<uint64_t>(df, 1),
                      std::max<uint64_t>(ctf, 1));
  });
  projected.set_num_docs(
      static_cast<uint64_t>(std::llround(estimated_docs)));
  return projected;
}

}  // namespace qbs

// Resource accounting for database interactions.
//
// The paper's closing claim (§9): "The resource requirements, measured in
// queries, amount of computation, or amount of network traffic, is low."
// CostMeter is a transparent TextDatabase decorator that measures exactly
// those quantities for any client (sampler, size estimator, service), so
// the claim is checkable rather than asserted.
#ifndef QBS_SAMPLING_COST_METER_H_
#define QBS_SAMPLING_COST_METER_H_

#include <cstdint>
#include <string>

#include "search/text_database.h"
#include "util/logging.h"

namespace qbs {

/// Accumulated interaction costs.
struct InteractionCosts {
  /// Queries issued (RunQuery calls).
  uint64_t queries = 0;
  /// Bytes sent as query text (proxy for uplink traffic).
  uint64_t query_bytes = 0;
  /// Result-list entries returned across all queries.
  uint64_t hits_returned = 0;
  /// Documents fetched (FetchDocument calls that succeeded).
  uint64_t documents_fetched = 0;
  /// Bytes of document text transferred (proxy for downlink traffic).
  uint64_t document_bytes = 0;
  /// Failed interactions of either kind.
  uint64_t errors = 0;

  /// Total transferred bytes, both directions.
  uint64_t total_bytes() const { return query_bytes + document_bytes; }
};

/// Counts every interaction passing through to the wrapped database.
/// Thread-compatible, like TextDatabase implementations themselves.
class CostMeter : public TextDatabase {
 public:
  /// `inner` must outlive the meter.
  explicit CostMeter(TextDatabase* inner) : inner_(inner) {
    QBS_CHECK(inner_ != nullptr);
  }

  std::string name() const override { return inner_->name(); }

  Result<std::vector<SearchHit>> RunQuery(std::string_view query,
                                          size_t max_results) override {
    ++costs_.queries;
    costs_.query_bytes += query.size();
    auto hits = inner_->RunQuery(query, max_results);
    if (hits.ok()) {
      costs_.hits_returned += hits->size();
    } else {
      ++costs_.errors;
    }
    return hits;
  }

  Result<std::string> FetchDocument(std::string_view handle) override {
    auto text = inner_->FetchDocument(handle);
    if (text.ok()) {
      ++costs_.documents_fetched;
      costs_.document_bytes += text->size();
    } else {
      ++costs_.errors;
    }
    return text;
  }

  /// Costs accumulated so far.
  const InteractionCosts& costs() const { return costs_; }

  /// Resets the counters (e.g. between experiment phases).
  void Reset() { costs_ = InteractionCosts(); }

 private:
  TextDatabase* inner_;
  InteractionCosts costs_;
};

}  // namespace qbs

#endif  // QBS_SAMPLING_COST_METER_H_

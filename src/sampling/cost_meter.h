// Resource accounting for database interactions.
//
// The paper's closing claim (§9): "The resource requirements, measured in
// queries, amount of computation, or amount of network traffic, is low."
// CostMeter is a transparent TextDatabase decorator that measures exactly
// those quantities for any client (sampler, size estimator, service), so
// the claim is checkable rather than asserted.
//
// Besides its local counters (readable via costs()), a meter publishes
// every increment to per-database labeled counters in a MetricRegistry —
// `qbs_cost_queries_total{db="<name>"}` and friends — so federation-wide
// cost accounting shows up in the same exposition as every other metric
// instead of living in a silo.
#ifndef QBS_SAMPLING_COST_METER_H_
#define QBS_SAMPLING_COST_METER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "search/text_database.h"
#include "util/logging.h"

namespace qbs {

/// Accumulated interaction costs (a snapshot; see CostMeter::costs()).
struct InteractionCosts {
  /// Queries issued (RunQuery calls).
  uint64_t queries = 0;
  /// Bytes sent as query text (proxy for uplink traffic).
  uint64_t query_bytes = 0;
  /// Result-list entries returned across all queries.
  uint64_t hits_returned = 0;
  /// Documents fetched (FetchDocument calls that succeeded).
  uint64_t documents_fetched = 0;
  /// Bytes of document text transferred (proxy for downlink traffic).
  uint64_t document_bytes = 0;
  /// Failed interactions of either kind.
  uint64_t errors = 0;

  /// Total transferred bytes, both directions.
  uint64_t total_bytes() const { return query_bytes + document_bytes; }
};

/// Counts every interaction passing through to the wrapped database.
///
/// Thread-safety contract: counter updates are relaxed atomics, so
/// concurrent RunQuery/FetchDocument calls through one meter never lose
/// counts and never race — provided the *wrapped* database tolerates the
/// same concurrency (SearchEngine, for one, is only thread-compatible).
/// costs() assembles a snapshot field by field; under concurrent traffic
/// the fields may be mutually inconsistent by a few in-flight operations,
/// which is fine for accounting. Reset() is not atomic with respect to
/// concurrent increments: quiesce traffic first if exact zeroing matters.
class CostMeter : public TextDatabase {
 public:
  /// `inner` must outlive the meter. Metrics are published to `registry`
  /// (default: the process-wide registry) under the wrapped database's
  /// name; pass nullptr for a silent meter (local counters only).
  explicit CostMeter(TextDatabase* inner,
                     MetricRegistry* registry = &MetricRegistry::Default())
      : inner_(inner) {
    QBS_CHECK(inner_ != nullptr);
    if (registry != nullptr) {
      const std::string db = inner_->name();
      queries_published_ = registry->GetCounter(
          WithLabel("qbs_cost_queries_total", "db", db),
          "Queries issued to the database");
      query_bytes_published_ = registry->GetCounter(
          WithLabel("qbs_cost_query_bytes_total", "db", db),
          "Query text bytes sent (uplink proxy)");
      hits_published_ = registry->GetCounter(
          WithLabel("qbs_cost_hits_returned_total", "db", db),
          "Result-list entries returned");
      documents_published_ = registry->GetCounter(
          WithLabel("qbs_cost_documents_fetched_total", "db", db),
          "Documents fetched successfully");
      document_bytes_published_ = registry->GetCounter(
          WithLabel("qbs_cost_document_bytes_total", "db", db),
          "Document text bytes transferred (downlink proxy)");
      errors_published_ = registry->GetCounter(
          WithLabel("qbs_cost_errors_total", "db", db),
          "Failed interactions of either kind");
    }
  }

  std::string name() const override { return inner_->name(); }

  Result<std::vector<SearchHit>> RunQuery(std::string_view query,
                                          size_t max_results) override {
    Bump(queries_, queries_published_, 1);
    Bump(query_bytes_, query_bytes_published_, query.size());
    auto hits = inner_->RunQuery(query, max_results);
    if (hits.ok()) {
      Bump(hits_returned_, hits_published_, hits->size());
    } else {
      Bump(errors_, errors_published_, 1);
    }
    return hits;
  }

  Result<std::string> FetchDocument(std::string_view handle) override {
    auto text = inner_->FetchDocument(handle);
    if (text.ok()) {
      Bump(documents_fetched_, documents_published_, 1);
      Bump(document_bytes_, document_bytes_published_, text->size());
    } else {
      Bump(errors_, errors_published_, 1);
    }
    return text;
  }

  /// Batched calls delegate to the wrapped database's batched methods —
  /// a meter in front of a RemoteTextDatabase must not unbatch its
  /// traffic — and account for them in the same units as the
  /// single-shot paths: one query, N hits, M documents, their bytes.
  Result<QueryAndFetchResult> QueryAndFetch(std::string_view query,
                                            size_t max_results) override {
    Bump(queries_, queries_published_, 1);
    Bump(query_bytes_, query_bytes_published_, query.size());
    auto round = inner_->QueryAndFetch(query, max_results);
    if (round.ok()) {
      Bump(hits_returned_, hits_published_, round->hits.size());
      CountFetched(round->documents);
    } else {
      Bump(errors_, errors_published_, 1);
    }
    return round;
  }

  Result<std::vector<FetchedDocument>> FetchBatch(
      const std::vector<std::string>& handles) override {
    auto documents = inner_->FetchBatch(handles);
    if (documents.ok()) {
      CountFetched(*documents);
    } else {
      Bump(errors_, errors_published_, 1);
    }
    return documents;
  }

  /// Snapshot of the costs accumulated so far.
  InteractionCosts costs() const {
    InteractionCosts c;
    c.queries = queries_.load(std::memory_order_relaxed);
    c.query_bytes = query_bytes_.load(std::memory_order_relaxed);
    c.hits_returned = hits_returned_.load(std::memory_order_relaxed);
    c.documents_fetched = documents_fetched_.load(std::memory_order_relaxed);
    c.document_bytes = document_bytes_.load(std::memory_order_relaxed);
    c.errors = errors_.load(std::memory_order_relaxed);
    return c;
  }

  /// Resets the local counters (e.g. between experiment phases). The
  /// published registry counters are monotonic and are not reset.
  void Reset() {
    queries_.store(0, std::memory_order_relaxed);
    query_bytes_.store(0, std::memory_order_relaxed);
    hits_returned_.store(0, std::memory_order_relaxed);
    documents_fetched_.store(0, std::memory_order_relaxed);
    document_bytes_.store(0, std::memory_order_relaxed);
    errors_.store(0, std::memory_order_relaxed);
  }

 private:
  static void Bump(std::atomic<uint64_t>& local, Counter* published,
                   uint64_t n) {
    local.fetch_add(n, std::memory_order_relaxed);
    if (published != nullptr) published->Increment(n);
  }

  void CountFetched(const std::vector<FetchedDocument>& documents) {
    for (const FetchedDocument& doc : documents) {
      if (doc.status.ok()) {
        Bump(documents_fetched_, documents_published_, 1);
        Bump(document_bytes_, document_bytes_published_, doc.text.size());
      } else {
        Bump(errors_, errors_published_, 1);
      }
    }
  }

  TextDatabase* inner_;
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> query_bytes_{0};
  std::atomic<uint64_t> hits_returned_{0};
  std::atomic<uint64_t> documents_fetched_{0};
  std::atomic<uint64_t> document_bytes_{0};
  std::atomic<uint64_t> errors_{0};
  Counter* queries_published_ = nullptr;
  Counter* query_bytes_published_ = nullptr;
  Counter* hits_published_ = nullptr;
  Counter* documents_published_ = nullptr;
  Counter* document_bytes_published_ = nullptr;
  Counter* errors_published_ = nullptr;
};

}  // namespace qbs

#endif  // QBS_SAMPLING_COST_METER_H_

#include "sampling/term_selector.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace qbs {

bool TermFilter::IsEligible(std::string_view term) const {
  if (term.size() < min_length || term.size() > max_length) return false;
  if (exclude_numbers && IsAllDigits(term)) return false;
  return true;
}

const char* SelectionStrategyName(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kRandomLearned:
      return "random_llm";
    case SelectionStrategy::kDfLearned:
      return "df_llm";
    case SelectionStrategy::kCtfLearned:
      return "ctf_llm";
    case SelectionStrategy::kAvgTfLearned:
      return "avg_tf_llm";
    case SelectionStrategy::kRandomOther:
      return "random_olm";
  }
  return "unknown";
}

namespace {

// Uniform random choice among eligible, unused terms of a model. Uses
// reservoir sampling over the vocabulary so no candidate vector is built.
std::optional<std::string> ReservoirPick(
    const LanguageModel& model, const TermFilter& filter,
    const std::unordered_set<std::string>& used, Rng& rng) {
  std::optional<std::string> pick;
  uint64_t seen = 0;
  model.ForEach([&](const std::string& term, const TermStats&) {
    if (!filter.IsEligible(term)) return;
    if (used.contains(term)) return;
    ++seen;
    if (rng.UniformBelow(seen) == 0) pick = term;
  });
  return pick;
}

class RandomSelector : public TermSelector {
 public:
  RandomSelector(TermFilter filter, const LanguageModel* other)
      : filter_(filter), other_(other) {}

  std::optional<std::string> Select(
      const LanguageModel& learned,
      const std::unordered_set<std::string>& used, Rng& rng) override {
    const LanguageModel& source = other_ != nullptr ? *other_ : learned;
    return ReservoirPick(source, filter_, used, rng);
  }

  std::string name() const override {
    return other_ != nullptr ? "random_olm" : "random_llm";
  }

 private:
  TermFilter filter_;
  const LanguageModel* other_;  // null = use the learned model
};

class FrequencySelector : public TermSelector {
 public:
  FrequencySelector(TermFilter filter, TermMetric metric)
      : filter_(filter), metric_(metric) {}

  std::optional<std::string> Select(
      const LanguageModel& learned,
      const std::unordered_set<std::string>& used, Rng&) override {
    // Highest-scoring eligible unused term; lexicographic tie-break keeps
    // runs deterministic.
    std::optional<std::string> best;
    double best_score = -1.0;
    learned.ForEach([&](const std::string& term, const TermStats& s) {
      if (!filter_.IsEligible(term)) return;
      if (used.contains(term)) return;
      double score = 0.0;
      switch (metric_) {
        case TermMetric::kDf:
          score = static_cast<double>(s.df);
          break;
        case TermMetric::kCtf:
          score = static_cast<double>(s.ctf);
          break;
        case TermMetric::kAvgTf:
          score = s.avg_tf();
          break;
      }
      if (score > best_score ||
          (score == best_score && best.has_value() && term < *best)) {
        best_score = score;
        best = term;
      }
    });
    return best;
  }

  std::string name() const override {
    return std::string(TermMetricName(metric_)) + "_llm";
  }

 private:
  TermFilter filter_;
  TermMetric metric_;
};

}  // namespace

std::unique_ptr<TermSelector> MakeTermSelector(SelectionStrategy strategy,
                                               const TermFilter& filter,
                                               const LanguageModel* other) {
  switch (strategy) {
    case SelectionStrategy::kRandomLearned:
      return std::make_unique<RandomSelector>(filter, nullptr);
    case SelectionStrategy::kDfLearned:
      return std::make_unique<FrequencySelector>(filter, TermMetric::kDf);
    case SelectionStrategy::kCtfLearned:
      return std::make_unique<FrequencySelector>(filter, TermMetric::kCtf);
    case SelectionStrategy::kAvgTfLearned:
      return std::make_unique<FrequencySelector>(filter, TermMetric::kAvgTf);
    case SelectionStrategy::kRandomOther:
      QBS_CHECK(other != nullptr);  // misconfiguration, not runtime input
      return std::make_unique<RandomSelector>(filter, other);
  }
  return nullptr;
}

std::optional<std::string> RandomEligibleTerm(const LanguageModel& model,
                                              const TermFilter& filter,
                                              Rng& rng) {
  static const std::unordered_set<std::string> kNoneUsed;
  return ReservoirPick(model, filter, kNoneUsed, rng);
}

}  // namespace qbs

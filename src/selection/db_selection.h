// Content-based database selection: ranking databases by their likelihood
// of satisfying a query, given only language models (paper §2).
//
// These algorithms are the *consumers* of learned language models. The
// paper defers "how much LM error can selection tolerate" to future work;
// implementing the consumers lets our experiments measure it end-to-end.
#ifndef QBS_SELECTION_DB_SELECTION_H_
#define QBS_SELECTION_DB_SELECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lm/language_model.h"

namespace qbs {

/// A set of databases described by their language models. Entries hold
/// shared read-only views, so one collection can mix heap-built models
/// with models served zero-copy out of a mapped store (src/mstore) —
/// and copying a collection shares the models instead of duplicating
/// them (the broker copies collections into every snapshot).
/// `num_docs` on each model should be set (it is, both for actual
/// models and for learned models).
class DatabaseCollection {
 public:
  DatabaseCollection() = default;

  /// Registers a database under `name`, taking ownership of a copy of
  /// the heap model.
  void Add(std::string name, LanguageModel model);

  /// Registers a database under `name` with a shared view (e.g. a
  /// MappedModelStore's model). `model` must be non-null and immutable
  /// for as long as any copy of this collection is alive.
  void Add(std::string name, std::shared_ptr<const LanguageModelView> model);

  size_t size() const { return entries_.size(); }

  const std::string& name(size_t i) const { return entries_[i].name; }
  const LanguageModelView& model(size_t i) const {
    return *entries_[i].model;
  }
  /// The shared handle, for callers that need to extend a model's
  /// lifetime beyond the collection's.
  const std::shared_ptr<const LanguageModelView>& model_ptr(size_t i) const {
    return entries_[i].model;
  }

  /// Number of databases whose model contains `term`.
  size_t DatabasesContaining(std::string_view term) const;

  /// Mean total-term-count across databases (CORI's avg_cw).
  double AvgCollectionSize() const;

 private:
  struct Entry {
    std::string name;
    std::shared_ptr<const LanguageModelView> model;
  };
  std::vector<Entry> entries_;
};

/// One ranked database.
struct DatabaseScore {
  std::string db_name;
  double score = 0.0;
};

/// Collection-global statistics for one query term: how many databases
/// contain it and its summed (union) collection term frequency. Counters
/// are saturating sums, so aggregating per-shard stats in any order
/// yields the same values the union collection computes directly.
struct TermGlobalStats {
  /// Databases whose model contains the term (CORI/vGlOSS cf).
  uint64_t cf = 0;
  /// Sum of ctf over every database (the KL background model's count).
  uint64_t union_ctf = 0;
};

/// Query-wide collection statistics — everything a ranker needs about
/// databases *other than* the ones it is scoring. A single process
/// computes these from its own collection; a federation computes them
/// by summing per-shard stats (MergeCollectionStats), and because every
/// field is a saturating integer sum, the aggregate is independent of
/// shard count and merge order: RankWith over a partition reproduces
/// Rank over the union bit for bit.
struct CollectionStats {
  /// Databases in the collection (CORI/vGlOSS C).
  uint64_t num_databases = 0;
  /// Sum of total_term_count over all databases; CORI's avg_cw is
  /// sum_cw / num_databases.
  uint64_t sum_cw = 0;
  /// Total term count of the union (background) model. Numerically
  /// equal to sum_cw while models keep total == sum(ctf), but carried
  /// separately because the two are semantically distinct quantities.
  uint64_t union_total_terms = 0;
  /// Index-aligned with the query's analyzed terms.
  std::vector<TermGlobalStats> terms;
};

/// Computes the stats for `query_terms` over one collection.
CollectionStats ComputeCollectionStats(
    const DatabaseCollection& collection,
    const std::vector<std::string>& query_terms);

/// Field-wise saturating sum of `other` into `into`. `into.terms` is
/// resized to match when empty; otherwise the term vectors must be the
/// same length (same analyzed query). Order-independent: merging shard
/// stats in any order yields the union collection's stats.
void MergeCollectionStats(CollectionStats& into, const CollectionStats& other);

/// A database-selection algorithm over a fixed collection.
///
/// Rankers are immutable after construction: Rank() only reads the ranker
/// and its collection, so one ranker instance may serve concurrent Rank()
/// calls from many threads, provided the collection is not mutated while
/// any ranker over it is live. The broker's SelectionSnapshot relies on
/// this to share pre-built rankers across all in-flight Select requests.
class DatabaseRanker {
 public:
  virtual ~DatabaseRanker() = default;

  /// Algorithm name ("cori", "bgloss", "vgloss", "kl").
  virtual std::string name() const = 0;

  /// Ranks every database for a bag-of-words query, best first. Ties are
  /// broken by database name for determinism. Equivalent to RankWith
  /// using stats computed over this ranker's own collection.
  virtual std::vector<DatabaseScore> Rank(
      const std::vector<std::string>& query_terms) const = 0;

  /// Ranks this ranker's databases using externally supplied
  /// collection-global statistics instead of computing them locally.
  /// This is the federation primitive: a shard ranking only its own
  /// databases with the *union's* stats produces exactly the scores a
  /// single ranker over the union collection would, so concatenating
  /// per-shard RankWith results and re-sorting reproduces Rank over the
  /// union bit for bit. `stats.terms` must be index-aligned with
  /// `query_terms` (callers validate; violations are a checked failure).
  virtual std::vector<DatabaseScore> RankWith(
      const std::vector<std::string>& query_terms,
      const CollectionStats& stats) const = 0;
};

/// CORI (Callan et al., 1995): INQUERY-style inference-net belief over
/// collections.
///   T = df / (df + 50 + 150 * cw / avg_cw)
///   I = log((C + 0.5) / cf) / log(C + 1.0)
///   belief(term) = b + (1 - b) * T * I ;  score = mean over query terms
class CoriRanker : public DatabaseRanker {
 public:
  /// `collection` must outlive the ranker.
  explicit CoriRanker(const DatabaseCollection* collection,
                      double default_belief = 0.4);

  std::string name() const override { return "cori"; }
  std::vector<DatabaseScore> Rank(
      const std::vector<std::string>& query_terms) const override;
  std::vector<DatabaseScore> RankWith(
      const std::vector<std::string>& query_terms,
      const CollectionStats& stats) const override;

 private:
  const DatabaseCollection* collection_;
  double default_belief_;
};

/// Boolean GlOSS (Gravano et al.): estimates the number of documents in
/// each database containing *all* query terms, assuming term independence:
///   est = |db| * prod_t (df_t / |db|)
class BglossRanker : public DatabaseRanker {
 public:
  explicit BglossRanker(const DatabaseCollection* collection)
      : collection_(collection) {}

  std::string name() const override { return "bgloss"; }
  std::vector<DatabaseScore> Rank(
      const std::vector<std::string>& query_terms) const override;
  /// bGlOSS needs no collection-global state — each database's estimate
  /// depends only on its own model — so RankWith ignores `stats`.
  std::vector<DatabaseScore> RankWith(
      const std::vector<std::string>& query_terms,
      const CollectionStats& stats) const override;

 private:
  const DatabaseCollection* collection_;
};

/// Vector-space GlOSS, Max(0) variant: goodness is the estimated sum of
/// document similarities, which under the flat-weight assumption reduces to
///   score = sum_t q_t * ctf_t * idf_t
/// with idf computed over databases.
class VglossRanker : public DatabaseRanker {
 public:
  explicit VglossRanker(const DatabaseCollection* collection)
      : collection_(collection) {}

  std::string name() const override { return "vgloss"; }
  std::vector<DatabaseScore> Rank(
      const std::vector<std::string>& query_terms) const override;
  std::vector<DatabaseScore> RankWith(
      const std::vector<std::string>& query_terms,
      const CollectionStats& stats) const override;

 private:
  const DatabaseCollection* collection_;
};

/// Query-likelihood / negative-KL ranker with Jelinek-Mercer smoothing
/// against the union of all database models:
///   score = sum_t log( lambda * p(t | db) + (1 - lambda) * p(t | union) )
class KlRanker : public DatabaseRanker {
 public:
  KlRanker(const DatabaseCollection* collection, double lambda = 0.7);

  std::string name() const override { return "kl"; }
  std::vector<DatabaseScore> Rank(
      const std::vector<std::string>& query_terms) const override;
  std::vector<DatabaseScore> RankWith(
      const std::vector<std::string>& query_terms,
      const CollectionStats& stats) const override;

 private:
  const DatabaseCollection* collection_;
  double lambda_;
};

/// Factory by name; returns nullptr for unknown names.
std::unique_ptr<DatabaseRanker> MakeRanker(const std::string& name,
                                           const DatabaseCollection* collection);

/// Every name MakeRanker accepts, in canonical order. The single source
/// of truth shared by the CLI, the sampling service, and the broker's
/// Select validation.
const std::vector<std::string>& KnownRankerNames();

/// The known ranker names joined for error messages:
/// "cori, bgloss, vgloss, kl".
std::string KnownRankerList();

}  // namespace qbs

#endif  // QBS_SELECTION_DB_SELECTION_H_

#include "selection/redde.h"

#include <algorithm>

#include "util/logging.h"

namespace qbs {

ReddeRanker::ReddeRanker(const std::vector<ReddeSample>& samples,
                         ReddeOptions options)
    : options_(std::move(options)) {
  for (const ReddeSample& sample : samples) {
    QBS_CHECK_GT(sample.estimated_size, 0.0);
    uint32_t db_index = static_cast<uint32_t>(db_names_.size());
    db_names_.push_back(sample.db_name);
    double weight =
        sample.documents.empty()
            ? 0.0
            : sample.estimated_size / static_cast<double>(
                                          sample.documents.size());
    vote_weights_.push_back(weight);
    for (const std::string& text : sample.documents) {
      central_index_.AddDocument(options_.analyzer.Analyze(text));
      doc_db_.push_back(db_index);
    }
  }
  central_index_.ShrinkToFit();
  searcher_ = std::make_unique<Searcher>(&central_index_, &scorer_);
}

std::vector<DatabaseScore> ReddeRanker::Rank(
    const std::vector<std::string>& query_terms) const {
  std::vector<double> votes(db_names_.size(), 0.0);
  std::vector<ScoredDoc> top = searcher_->Search(query_terms, options_.top_n);
  for (const ScoredDoc& doc : top) {
    votes[doc_db_[doc.doc_id]] += vote_weights_[doc_db_[doc.doc_id]];
  }
  std::vector<DatabaseScore> scores(db_names_.size());
  for (size_t i = 0; i < db_names_.size(); ++i) {
    scores[i].db_name = db_names_[i];
    scores[i].score = votes[i];
  }
  std::sort(scores.begin(), scores.end(),
            [](const DatabaseScore& a, const DatabaseScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.db_name < b.db_name;
            });
  return scores;
}

}  // namespace qbs

// Evaluation of selection quality: how closely do database rankings made
// from *learned* language models track rankings made from *actual* ones?
// (The paper's deferred question, §5: "how correlated the rankings need to
// be for accurate database selection".)
#ifndef QBS_SELECTION_EVAL_H_
#define QBS_SELECTION_EVAL_H_

#include <string>
#include <vector>

#include "selection/db_selection.h"

namespace qbs {

/// Agreement statistics between two database rankings for one query.
struct RankingAgreement {
  /// Spearman correlation of the two orderings (over all databases).
  double spearman = 0.0;
  /// |top-k intersection| / k.
  double top_k_overlap = 0.0;
  /// 1 if the same database is ranked first in both, else 0.
  double top_1_match = 0.0;
};

/// Compares two rankings of the same database set. `k` controls the top-k
/// overlap statistic. Databases present in one ranking but not the other
/// are an error (CHECK).
RankingAgreement CompareRankings(const std::vector<DatabaseScore>& reference,
                                 const std::vector<DatabaseScore>& candidate,
                                 size_t k);

/// Mean agreement over a query set: ranks with `reference_ranker` (actual
/// models) and `candidate_ranker` (learned models) and averages the
/// agreement statistics.
RankingAgreement MeanAgreement(
    const DatabaseRanker& reference_ranker,
    const DatabaseRanker& candidate_ranker,
    const std::vector<std::vector<std::string>>& queries, size_t k);

}  // namespace qbs

#endif  // QBS_SELECTION_EVAL_H_

// ReDDE (Relevant Document Distribution Estimation) database selection —
// the landmark follow-up to query-based sampling (Si & Callan, SIGIR 2003),
// built from exactly the artifacts this library produces: per-database
// document samples plus estimated database sizes (see
// sampling/size_estimator.h).
//
// Idea: index the union of samples centrally. For a query, retrieve the
// top-n sample documents; each retrieved document votes for its source
// database with weight estimated_size / sample_size (it "stands in" for
// that many unseen documents). Databases are ranked by total vote mass —
// an estimate of how many relevant documents each database holds.
#ifndef QBS_SELECTION_REDDE_H_
#define QBS_SELECTION_REDDE_H_

#include <memory>
#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "search/scorer.h"
#include "search/searcher.h"
#include "selection/db_selection.h"
#include "text/analyzer.h"

namespace qbs {

/// Options for ReDDE.
struct ReddeOptions {
  /// How many top central-sample documents vote (the algorithm's n).
  size_t top_n = 50;
  /// Analyzer for indexing sampled documents. Queries passed to Rank()
  /// must already be in this term space (as with the other rankers).
  Analyzer analyzer = Analyzer::InqueryLike();
};

/// One database's contribution to the central sample index.
struct ReddeSample {
  std::string db_name;
  /// Raw text of the documents sampled from this database.
  std::vector<std::string> documents;
  /// Estimated number of documents in the full database (e.g. from
  /// EstimateDatabaseSize); must be positive.
  double estimated_size = 0.0;
};

/// ReDDE ranker over a fixed set of database samples.
class ReddeRanker : public DatabaseRanker {
 public:
  /// Builds the central sample index. Sample documents are copied into the
  /// index; the inputs need not outlive the ranker.
  explicit ReddeRanker(const std::vector<ReddeSample>& samples,
                       ReddeOptions options = ReddeOptions());

  std::string name() const override { return "redde"; }

  /// Ranks databases: retrieves the top-n central sample documents for the
  /// query and accumulates size-scaled votes per source database.
  /// `query_terms` must be in the ranker's analyzed term space.
  std::vector<DatabaseScore> Rank(
      const std::vector<std::string>& query_terms) const override;

  /// ReDDE scores come from the central sample index and the size
  /// estimates, not from collection-global term statistics — the
  /// central index already is the union view, with no per-shard
  /// decomposition to re-aggregate. RankWith therefore ignores `stats`
  /// and ranks exactly as Rank does. (The broker's ranker registry and
  /// the federation only route to the collection-statistics rankers,
  /// so this path never affects a federated ranking.)
  std::vector<DatabaseScore> RankWith(
      const std::vector<std::string>& query_terms,
      const CollectionStats& /*stats*/) const override {
    return Rank(query_terms);
  }

  /// Number of documents in the central sample index.
  size_t central_docs() const { return doc_db_.size(); }

 private:
  ReddeOptions options_;
  std::vector<std::string> db_names_;
  std::vector<double> vote_weights_;  // per database: est_size / sample_size
  InvertedIndex central_index_;
  std::vector<uint32_t> doc_db_;  // central DocId -> database index
  TfIdfScorer scorer_;
  mutable std::unique_ptr<Searcher> searcher_;
};

}  // namespace qbs

#endif  // QBS_SELECTION_REDDE_H_

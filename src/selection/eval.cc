#include "selection/eval.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace qbs {

RankingAgreement CompareRankings(const std::vector<DatabaseScore>& reference,
                                 const std::vector<DatabaseScore>& candidate,
                                 size_t k) {
  QBS_CHECK_EQ(reference.size(), candidate.size());
  const size_t n = reference.size();
  RankingAgreement out;
  if (n == 0) return out;

  // Positions by name in each ranking.
  std::unordered_map<std::string, size_t> ref_pos, cand_pos;
  for (size_t i = 0; i < n; ++i) {
    ref_pos[reference[i].db_name] = i;
    cand_pos[candidate[i].db_name] = i;
  }
  QBS_CHECK_EQ(ref_pos.size(), n);   // duplicate names would corrupt ranks
  QBS_CHECK_EQ(cand_pos.size(), n);

  // Spearman over positions (no ties by construction: positions are
  // distinct integers).
  double sum_d2 = 0.0;
  for (const auto& [name, rp] : ref_pos) {
    auto it = cand_pos.find(name);
    QBS_CHECK(it != cand_pos.end());
    double d = static_cast<double>(rp) - static_cast<double>(it->second);
    sum_d2 += d * d;
  }
  if (n >= 2) {
    double dn = static_cast<double>(n);
    out.spearman = 1.0 - 6.0 * sum_d2 / (dn * (dn * dn - 1.0));
  } else {
    out.spearman = 1.0;
  }

  // Top-k overlap.
  size_t kk = std::min(k, n);
  if (kk > 0) {
    std::unordered_set<std::string> ref_top;
    for (size_t i = 0; i < kk; ++i) ref_top.insert(reference[i].db_name);
    size_t hits = 0;
    for (size_t i = 0; i < kk; ++i) {
      if (ref_top.contains(candidate[i].db_name)) ++hits;
    }
    out.top_k_overlap = static_cast<double>(hits) / kk;
    out.top_1_match =
        reference[0].db_name == candidate[0].db_name ? 1.0 : 0.0;
  }
  return out;
}

RankingAgreement MeanAgreement(
    const DatabaseRanker& reference_ranker,
    const DatabaseRanker& candidate_ranker,
    const std::vector<std::vector<std::string>>& queries, size_t k) {
  RankingAgreement mean;
  if (queries.empty()) return mean;
  for (const auto& query : queries) {
    RankingAgreement a = CompareRankings(reference_ranker.Rank(query),
                                         candidate_ranker.Rank(query), k);
    mean.spearman += a.spearman;
    mean.top_k_overlap += a.top_k_overlap;
    mean.top_1_match += a.top_1_match;
  }
  mean.spearman /= queries.size();
  mean.top_k_overlap /= queries.size();
  mean.top_1_match /= queries.size();
  return mean;
}

}  // namespace qbs

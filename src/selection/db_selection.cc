#include "selection/db_selection.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace qbs {

void DatabaseCollection::Add(std::string name, LanguageModel model) {
  entries_.push_back({std::move(name), std::make_shared<const LanguageModel>(
                                           std::move(model))});
}

void DatabaseCollection::Add(std::string name,
                             std::shared_ptr<const LanguageModelView> model) {
  QBS_CHECK(model != nullptr);
  entries_.push_back({std::move(name), std::move(model)});
}

size_t DatabaseCollection::DatabasesContaining(std::string_view term) const {
  size_t count = 0;
  for (const Entry& e : entries_) {
    if (e.model->Contains(term)) ++count;
  }
  return count;
}

double DatabaseCollection::AvgCollectionSize() const {
  if (entries_.empty()) return 0.0;
  double total = 0.0;
  for (const Entry& e : entries_) {
    total += static_cast<double>(e.model->total_term_count());
  }
  return total / entries_.size();
}

namespace {

// Sorts scores descending, tie-broken by name, and returns them.
std::vector<DatabaseScore> Finish(std::vector<DatabaseScore> scores) {
  std::sort(scores.begin(), scores.end(),
            [](const DatabaseScore& a, const DatabaseScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.db_name < b.db_name;
            });
  return scores;
}

}  // namespace

CoriRanker::CoriRanker(const DatabaseCollection* collection,
                       double default_belief)
    : collection_(collection), default_belief_(default_belief) {
  QBS_CHECK(collection_ != nullptr);
  avg_cw_ = collection_->AvgCollectionSize();
}

std::vector<DatabaseScore> CoriRanker::Rank(
    const std::vector<std::string>& query_terms) const {
  const size_t num_dbs = collection_->size();
  std::vector<DatabaseScore> scores(num_dbs);

  // cf (number of databases containing each term) is query-wide.
  std::vector<size_t> cf(query_terms.size());
  for (size_t t = 0; t < query_terms.size(); ++t) {
    cf[t] = collection_->DatabasesContaining(query_terms[t]);
  }

  for (size_t i = 0; i < num_dbs; ++i) {
    const LanguageModelView& lm = collection_->model(i);
    double cw = static_cast<double>(lm.total_term_count());
    double belief_sum = 0.0;
    for (size_t t = 0; t < query_terms.size(); ++t) {
      TermStats s;
      double belief = default_belief_;
      if (lm.FindStats(query_terms[t], &s) && cf[t] > 0) {
        double df = static_cast<double>(s.df);
        double tt = df / (df + 50.0 + 150.0 * (avg_cw_ > 0 ? cw / avg_cw_ : 1.0));
        double ii = std::log((num_dbs + 0.5) / cf[t]) / std::log(num_dbs + 1.0);
        belief = default_belief_ + (1.0 - default_belief_) * tt * ii;
      }
      belief_sum += belief;
    }
    scores[i].db_name = collection_->name(i);
    scores[i].score =
        query_terms.empty() ? 0.0 : belief_sum / query_terms.size();
  }
  return Finish(std::move(scores));
}

std::vector<DatabaseScore> BglossRanker::Rank(
    const std::vector<std::string>& query_terms) const {
  std::vector<DatabaseScore> scores(collection_->size());
  for (size_t i = 0; i < collection_->size(); ++i) {
    const LanguageModelView& lm = collection_->model(i);
    double num_docs = static_cast<double>(lm.num_docs());
    double est = num_docs;
    for (const std::string& term : query_terms) {
      TermStats s;
      if (!lm.FindStats(term, &s) || num_docs == 0.0) {
        est = 0.0;
        break;
      }
      est *= static_cast<double>(s.df) / num_docs;
    }
    scores[i].db_name = collection_->name(i);
    scores[i].score = query_terms.empty() ? 0.0 : est;
  }
  return Finish(std::move(scores));
}

std::vector<DatabaseScore> VglossRanker::Rank(
    const std::vector<std::string>& query_terms) const {
  const size_t num_dbs = collection_->size();
  std::vector<DatabaseScore> scores(num_dbs);

  std::vector<double> idf(query_terms.size(), 0.0);
  for (size_t t = 0; t < query_terms.size(); ++t) {
    size_t cf = collection_->DatabasesContaining(query_terms[t]);
    if (cf > 0) idf[t] = std::log(1.0 + static_cast<double>(num_dbs) / cf);
  }

  for (size_t i = 0; i < num_dbs; ++i) {
    const LanguageModelView& lm = collection_->model(i);
    double score = 0.0;
    for (size_t t = 0; t < query_terms.size(); ++t) {
      TermStats s;
      if (lm.FindStats(query_terms[t], &s)) {
        score += static_cast<double>(s.ctf) * idf[t];
      }
    }
    scores[i].db_name = collection_->name(i);
    scores[i].score = score;
  }
  return Finish(std::move(scores));
}

KlRanker::KlRanker(const DatabaseCollection* collection, double lambda)
    : collection_(collection), lambda_(lambda) {
  QBS_CHECK(collection_ != nullptr);
  QBS_CHECK(lambda_ > 0.0 && lambda_ < 1.0);
  // Integer accumulation over each model's terms: the union is identical
  // whatever order each view iterates in, so heap-built and mapped
  // collections produce the same union model (and the same rankings).
  for (size_t i = 0; i < collection_->size(); ++i) {
    union_model_.Merge(collection_->model(i));
  }
}

std::vector<DatabaseScore> KlRanker::Rank(
    const std::vector<std::string>& query_terms) const {
  std::vector<DatabaseScore> scores(collection_->size());
  double union_total =
      std::max<double>(union_model_.total_term_count(), 1.0);
  // Tiny floor so a term absent everywhere cannot produce log(0).
  const double kFloor = 1e-12;

  for (size_t i = 0; i < collection_->size(); ++i) {
    const LanguageModelView& lm = collection_->model(i);
    double total = std::max<double>(lm.total_term_count(), 1.0);
    double score = 0.0;
    for (const std::string& term : query_terms) {
      TermStats s;
      const TermStats* u = union_model_.Find(term);
      double p_db = lm.FindStats(term, &s) ? s.ctf / total : 0.0;
      double p_bg = u != nullptr ? u->ctf / union_total : 0.0;
      score += std::log(lambda_ * p_db + (1.0 - lambda_) * p_bg + kFloor);
    }
    scores[i].db_name = collection_->name(i);
    scores[i].score = score;
  }
  return Finish(std::move(scores));
}

std::unique_ptr<DatabaseRanker> MakeRanker(
    const std::string& name, const DatabaseCollection* collection) {
  if (name == "cori") return std::make_unique<CoriRanker>(collection);
  if (name == "bgloss") return std::make_unique<BglossRanker>(collection);
  if (name == "vgloss") return std::make_unique<VglossRanker>(collection);
  if (name == "kl") return std::make_unique<KlRanker>(collection);
  return nullptr;
}

const std::vector<std::string>& KnownRankerNames() {
  static const std::vector<std::string> kNames = {"cori", "bgloss", "vgloss",
                                                  "kl"};
  return kNames;
}

std::string KnownRankerList() {
  std::string joined;
  for (const std::string& name : KnownRankerNames()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

}  // namespace qbs

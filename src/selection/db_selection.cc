#include "selection/db_selection.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/logging.h"

namespace qbs {

void DatabaseCollection::Add(std::string name, LanguageModel model) {
  entries_.push_back({std::move(name), std::make_shared<const LanguageModel>(
                                           std::move(model))});
}

void DatabaseCollection::Add(std::string name,
                             std::shared_ptr<const LanguageModelView> model) {
  QBS_CHECK(model != nullptr);
  entries_.push_back({std::move(name), std::move(model)});
}

size_t DatabaseCollection::DatabasesContaining(std::string_view term) const {
  size_t count = 0;
  for (const Entry& e : entries_) {
    if (e.model->Contains(term)) ++count;
  }
  return count;
}

namespace {

// Counters saturate rather than wrap (same policy as LanguageModel):
// min-clamped addition of non-negative values is order-independent, so
// shard-wise aggregation equals the union collection's direct sum.
uint64_t SatAdd(uint64_t a, uint64_t b) {
  uint64_t sum = a + b;
  return sum < a ? std::numeric_limits<uint64_t>::max() : sum;
}

// Sorts scores descending, tie-broken by name, and returns them. With
// unique database names this comparator is a total order, so any
// conforming sort — here, or a federator re-sorting concatenated shard
// rankings — produces the identical sequence.
std::vector<DatabaseScore> Finish(std::vector<DatabaseScore> scores) {
  std::sort(scores.begin(), scores.end(),
            [](const DatabaseScore& a, const DatabaseScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.db_name < b.db_name;
            });
  return scores;
}

}  // namespace

double DatabaseCollection::AvgCollectionSize() const {
  if (entries_.empty()) return 0.0;
  // Integer accumulation, converted once: bit-identical to the
  // federated path, which derives avg_cw from CollectionStats::sum_cw.
  uint64_t total = 0;
  for (const Entry& e : entries_) {
    total = SatAdd(total, e.model->total_term_count());
  }
  return static_cast<double>(total) / static_cast<double>(entries_.size());
}

CollectionStats ComputeCollectionStats(
    const DatabaseCollection& collection,
    const std::vector<std::string>& query_terms) {
  CollectionStats stats;
  stats.num_databases = collection.size();
  for (size_t i = 0; i < collection.size(); ++i) {
    uint64_t cw = collection.model(i).total_term_count();
    stats.sum_cw = SatAdd(stats.sum_cw, cw);
    // Models maintain total_term_count == sum(ctf), so folding totals
    // equals the term-wise union the KL background model would build.
    stats.union_total_terms = SatAdd(stats.union_total_terms, cw);
  }
  stats.terms.resize(query_terms.size());
  for (size_t t = 0; t < query_terms.size(); ++t) {
    for (size_t i = 0; i < collection.size(); ++i) {
      TermStats s;
      if (collection.model(i).FindStats(query_terms[t], &s)) {
        stats.terms[t].cf = SatAdd(stats.terms[t].cf, 1);
        stats.terms[t].union_ctf = SatAdd(stats.terms[t].union_ctf, s.ctf);
      }
    }
  }
  return stats;
}

void MergeCollectionStats(CollectionStats& into, const CollectionStats& other) {
  into.num_databases = SatAdd(into.num_databases, other.num_databases);
  into.sum_cw = SatAdd(into.sum_cw, other.sum_cw);
  into.union_total_terms =
      SatAdd(into.union_total_terms, other.union_total_terms);
  if (into.terms.empty()) into.terms.resize(other.terms.size());
  QBS_CHECK(into.terms.size() == other.terms.size());
  for (size_t t = 0; t < other.terms.size(); ++t) {
    into.terms[t].cf = SatAdd(into.terms[t].cf, other.terms[t].cf);
    into.terms[t].union_ctf =
        SatAdd(into.terms[t].union_ctf, other.terms[t].union_ctf);
  }
}

CoriRanker::CoriRanker(const DatabaseCollection* collection,
                       double default_belief)
    : collection_(collection), default_belief_(default_belief) {
  QBS_CHECK(collection_ != nullptr);
}

std::vector<DatabaseScore> CoriRanker::Rank(
    const std::vector<std::string>& query_terms) const {
  return RankWith(query_terms,
                  ComputeCollectionStats(*collection_, query_terms));
}

std::vector<DatabaseScore> CoriRanker::RankWith(
    const std::vector<std::string>& query_terms,
    const CollectionStats& stats) const {
  QBS_CHECK(stats.terms.size() == query_terms.size());
  const uint64_t num_dbs = stats.num_databases;
  const double avg_cw =
      num_dbs > 0 ? static_cast<double>(stats.sum_cw) /
                        static_cast<double>(num_dbs)
                  : 0.0;
  std::vector<DatabaseScore> scores(collection_->size());

  for (size_t i = 0; i < collection_->size(); ++i) {
    const LanguageModelView& lm = collection_->model(i);
    double cw = static_cast<double>(lm.total_term_count());
    double belief_sum = 0.0;
    for (size_t t = 0; t < query_terms.size(); ++t) {
      TermStats s;
      double belief = default_belief_;
      if (lm.FindStats(query_terms[t], &s) && stats.terms[t].cf > 0) {
        double df = static_cast<double>(s.df);
        double tt = df / (df + 50.0 + 150.0 * (avg_cw > 0 ? cw / avg_cw : 1.0));
        double ii = std::log((num_dbs + 0.5) / stats.terms[t].cf) /
                    std::log(num_dbs + 1.0);
        belief = default_belief_ + (1.0 - default_belief_) * tt * ii;
      }
      belief_sum += belief;
    }
    scores[i].db_name = collection_->name(i);
    scores[i].score =
        query_terms.empty() ? 0.0 : belief_sum / query_terms.size();
  }
  return Finish(std::move(scores));
}

std::vector<DatabaseScore> BglossRanker::Rank(
    const std::vector<std::string>& query_terms) const {
  std::vector<DatabaseScore> scores(collection_->size());
  for (size_t i = 0; i < collection_->size(); ++i) {
    const LanguageModelView& lm = collection_->model(i);
    double num_docs = static_cast<double>(lm.num_docs());
    double est = num_docs;
    for (const std::string& term : query_terms) {
      TermStats s;
      if (!lm.FindStats(term, &s) || num_docs == 0.0) {
        est = 0.0;
        break;
      }
      est *= static_cast<double>(s.df) / num_docs;
    }
    scores[i].db_name = collection_->name(i);
    scores[i].score = query_terms.empty() ? 0.0 : est;
  }
  return Finish(std::move(scores));
}

std::vector<DatabaseScore> BglossRanker::RankWith(
    const std::vector<std::string>& query_terms,
    const CollectionStats& stats) const {
  // Each database's document-count estimate depends only on its own
  // model, so the supplied global stats carry nothing bGlOSS needs.
  (void)stats;
  return Rank(query_terms);
}

std::vector<DatabaseScore> VglossRanker::Rank(
    const std::vector<std::string>& query_terms) const {
  return RankWith(query_terms,
                  ComputeCollectionStats(*collection_, query_terms));
}

std::vector<DatabaseScore> VglossRanker::RankWith(
    const std::vector<std::string>& query_terms,
    const CollectionStats& stats) const {
  QBS_CHECK(stats.terms.size() == query_terms.size());
  const uint64_t num_dbs = stats.num_databases;
  std::vector<DatabaseScore> scores(collection_->size());

  std::vector<double> idf(query_terms.size(), 0.0);
  for (size_t t = 0; t < query_terms.size(); ++t) {
    uint64_t cf = stats.terms[t].cf;
    if (cf > 0) {
      idf[t] = std::log(1.0 + static_cast<double>(num_dbs) /
                                  static_cast<double>(cf));
    }
  }

  for (size_t i = 0; i < collection_->size(); ++i) {
    const LanguageModelView& lm = collection_->model(i);
    double score = 0.0;
    for (size_t t = 0; t < query_terms.size(); ++t) {
      TermStats s;
      if (lm.FindStats(query_terms[t], &s)) {
        score += static_cast<double>(s.ctf) * idf[t];
      }
    }
    scores[i].db_name = collection_->name(i);
    scores[i].score = score;
  }
  return Finish(std::move(scores));
}

KlRanker::KlRanker(const DatabaseCollection* collection, double lambda)
    : collection_(collection), lambda_(lambda) {
  QBS_CHECK(collection_ != nullptr);
  QBS_CHECK(lambda_ > 0.0 && lambda_ < 1.0);
}

std::vector<DatabaseScore> KlRanker::Rank(
    const std::vector<std::string>& query_terms) const {
  // Integer accumulation per query term (ComputeCollectionStats): the
  // union counts are identical whatever order each view iterates in, so
  // heap-built and mapped collections produce the same background model
  // (and the same rankings).
  return RankWith(query_terms,
                  ComputeCollectionStats(*collection_, query_terms));
}

std::vector<DatabaseScore> KlRanker::RankWith(
    const std::vector<std::string>& query_terms,
    const CollectionStats& stats) const {
  QBS_CHECK(stats.terms.size() == query_terms.size());
  std::vector<DatabaseScore> scores(collection_->size());
  double union_total = std::max<double>(
      static_cast<double>(stats.union_total_terms), 1.0);
  // Tiny floor so a term absent everywhere cannot produce log(0).
  const double kFloor = 1e-12;

  for (size_t i = 0; i < collection_->size(); ++i) {
    const LanguageModelView& lm = collection_->model(i);
    double total = std::max<double>(lm.total_term_count(), 1.0);
    double score = 0.0;
    for (size_t t = 0; t < query_terms.size(); ++t) {
      TermStats s;
      double p_db = lm.FindStats(query_terms[t], &s) ? s.ctf / total : 0.0;
      double p_bg =
          stats.terms[t].union_ctf > 0
              ? static_cast<double>(stats.terms[t].union_ctf) / union_total
              : 0.0;
      score += std::log(lambda_ * p_db + (1.0 - lambda_) * p_bg + kFloor);
    }
    scores[i].db_name = collection_->name(i);
    scores[i].score = score;
  }
  return Finish(std::move(scores));
}

std::unique_ptr<DatabaseRanker> MakeRanker(
    const std::string& name, const DatabaseCollection* collection) {
  if (name == "cori") return std::make_unique<CoriRanker>(collection);
  if (name == "bgloss") return std::make_unique<BglossRanker>(collection);
  if (name == "vgloss") return std::make_unique<VglossRanker>(collection);
  if (name == "kl") return std::make_unique<KlRanker>(collection);
  return nullptr;
}

const std::vector<std::string>& KnownRankerNames() {
  static const std::vector<std::string> kNames = {"cori", "bgloss", "vgloss",
                                                  "kl"};
  return kNames;
}

std::string KnownRankerList() {
  std::string joined;
  for (const std::string& name : KnownRankerNames()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

}  // namespace qbs

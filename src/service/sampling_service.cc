#include "service/sampling_service.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "mstore/mapped_model_store.h"
#include "mstore/model_store_writer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/cost_meter.h"
#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "util/thread_pool.h"

namespace qbs {

namespace {

struct ServiceMetrics {
  Counter* refresh_success;
  Counter* refresh_error;
  Histogram* refresh_latency_us;
  Gauge* databases_with_model;

  static const ServiceMetrics& Get() {
    static const ServiceMetrics metrics = [] {
      MetricRegistry& r = MetricRegistry::Default();
      ServiceMetrics m;
      m.refresh_success =
          r.GetCounter("qbs_service_refresh_success_total",
                       "Per-database sampling runs that produced a model");
      m.refresh_error = r.GetCounter("qbs_service_refresh_error_total",
                                     "Per-database sampling runs that failed");
      m.refresh_latency_us = r.GetHistogram(
          "qbs_service_refresh_latency_us",
          Histogram::ExponentialBounds(100.0, 4.0, 12),
          "Wall time to sample one database, bootstrap included (us)");
      m.databases_with_model =
          r.GetGauge("qbs_service_databases_with_model",
                     "Registered databases currently holding a model");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

SamplingService::SamplingService(ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.seed_terms.empty()) {
    // A handful of broadly common English content words; callers serving
    // specialized federations should supply their own.
    options_.seed_terms = {"information", "system",  "report", "time",
                           "service",     "program", "world",  "company",
                           "government",  "people"};
  }
}

Status SamplingService::AddDatabase(TextDatabase* db) {
  if (db == nullptr) {
    return Status::InvalidArgument("database must be non-null");
  }
  for (const DatabaseState& s : states_) {
    if (s.name == db->name()) {
      return Status::InvalidArgument("duplicate database name: " + db->name());
    }
  }
  databases_.push_back(db);
  DatabaseState state;
  state.name = db->name();
  states_.push_back(std::move(state));
  return Status::OK();
}

Status SamplingService::AddDatabase(std::unique_ptr<TextDatabase> db) {
  QBS_RETURN_IF_ERROR(AddDatabase(db.get()));
  owned_databases_.push_back(std::move(db));
  return Status::OK();
}

Status SamplingService::SampleOne(size_t i) {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  DatabaseState& state = states_[i];
  QBS_TRACE_SPAN("service.refresh", state.name);
  ScopedTimerUs timer(metrics.refresh_latency_us);

  // All interactions — the bootstrap probes included — go through a cost
  // meter, so per-database query/traffic totals land in the registry.
  CostMeter db(databases_[i]);

  // Bootstrap: find a seed term this database responds to. A probe that
  // *errors* (vs. matching nothing) is remembered so an unreachable
  // database reports its real failure (e.g. Unavailable), not NotFound.
  std::string initial;
  Status probe_error;
  for (const std::string& seed : options_.seed_terms) {
    auto probe = db.RunQuery(seed, 1);
    if (!probe.ok()) {
      probe_error = probe.status();
      continue;
    }
    if (!probe->empty()) {
      initial = seed;
      break;
    }
  }
  if (initial.empty()) {
    state.last_status =
        !probe_error.ok()
            ? Status(probe_error.code(), "bootstrap of '" + state.name +
                                             "' failed: " +
                                             probe_error.message())
            : Status::NotFound(
                  "no seed term retrieved any document from '" + state.name +
                  "'");
    metrics.refresh_error->Increment();
    QBS_LOG(WARNING) << "refresh of '" << state.name
                     << "' failed: " << state.last_status.ToString();
    return state.last_status;
  }

  SamplerOptions opts = options_.sampler;
  opts.initial_term = initial;
  opts.seed = options_.base_seed + i;
  // The fetch pool is shared across every concurrently refreshed
  // database; it is distinct from the refresh pool running this very
  // function, so samplers blocking on fetch futures cannot starve it.
  opts.fetch_pool = fetch_pool_.get();
  QueryBasedSampler sampler(&db, opts);
  auto result = sampler.Run();
  if (!result.ok()) {
    state.last_status = result.status();
    metrics.refresh_error->Increment();
    QBS_LOG(WARNING) << "refresh of '" << state.name
                     << "' failed: " << state.last_status.ToString();
    return state.last_status;
  }
  state.learned = std::move(result->learned);
  state.learned_stemmed = std::move(result->learned_stemmed);
  state.documents_examined = result->documents_examined;
  state.queries_run = result->queries_run;
  state.has_model = true;
  state.last_status = Status::OK();
  metrics.refresh_success->Increment();
  QBS_LOG(INFO) << "refreshed '" << state.name << "': "
                << state.documents_examined << " documents, "
                << state.queries_run << " queries, "
                << state.learned.vocabulary_size() << " terms";
  return Status::OK();
}

void SamplingService::EnsurePools() {
  if (!refresh_pool_) {
    refresh_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (!fetch_pool_ && options_.fetch_threads > 0) {
    fetch_pool_ = std::make_unique<ThreadPool>(options_.fetch_threads);
  }
}

Status SamplingService::RefreshAll() {
  QBS_TRACE_SPAN("service.refresh_all");
  std::vector<size_t> todo;
  for (size_t i = 0; i < states_.size(); ++i) {
    if (!states_[i].has_model) todo.push_back(i);
  }
  if (todo.empty()) return Status::OK();
  EnsurePools();
  QBS_LOG(INFO) << "RefreshAll: sampling " << todo.size() << " of "
                << states_.size() << " databases on " << options_.num_threads
                << " shared pool threads";

  // One task per database on the long-lived shared pool — refreshing a
  // federation of N databases no longer spawns N (or num_threads) fresh
  // threads per call.
  // SampleOne's status is deliberately dropped here: per-database
  // outcomes land in states_[i].last_error, and the casualty list is
  // assembled from there below once every task has finished.
  for (size_t idx : todo) {
    if (!refresh_pool_->Submit([this, idx] { SampleOne(idx).IgnoreError(); })) {
      SampleOne(idx).IgnoreError();  // pool shut down (teardown race)
    }
  }
  refresh_pool_->Wait();
  UpdateModelGauge();
  // Publish even when some databases failed: the snapshot must mirror
  // states_ (the databases that *do* have models), not the happy path.
  PublishSnapshot();

  // Every failure is reported, not just the first: an operator refreshing
  // a federation needs the complete casualty list in one status.
  StatusCode first_code = StatusCode::kOk;
  size_t failures = 0;
  std::string detail;
  for (size_t i : todo) {
    const Status& s = states_[i].last_status;
    if (s.ok()) continue;
    if (first_code == StatusCode::kOk) first_code = s.code();
    ++failures;
    if (!detail.empty()) detail += "; ";
    detail += "'" + states_[i].name + "' (" + s.ToString() + ")";
  }
  if (failures > 0) {
    return Status(first_code,
                  "RefreshAll: " + std::to_string(failures) + " of " +
                      std::to_string(todo.size()) +
                      " databases failed: " + detail);
  }
  QBS_RETURN_IF_ERROR(SaveModels());
  return SaveStore();
}

void SamplingService::PublishSnapshot() { registry_.Publish(Collection()); }

void SamplingService::UpdateModelGauge() const {
  size_t with_model = 0;
  for (const DatabaseState& s : states_) {
    if (s.has_model) ++with_model;
  }
  ServiceMetrics::Get().databases_with_model->Set(
      static_cast<double>(with_model));
}

Status SamplingService::Refresh(const std::string& name) {
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].name == name) {
      states_[i].has_model = false;
      EnsurePools();
      Status status = SampleOne(i);
      UpdateModelGauge();
      // A failed re-sample dropped this database's model; publish that
      // too, so Select never ranks against a model states_ disowned.
      PublishSnapshot();
      QBS_RETURN_IF_ERROR(status);
      QBS_RETURN_IF_ERROR(SaveModels());
      return SaveStore();
    }
  }
  return Status::NotFound("no database named '" + name + "'");
}

DatabaseCollection SamplingService::Collection() const {
  DatabaseCollection dbs;
  for (const DatabaseState& s : states_) {
    if (!s.has_model) continue;
    dbs.Add(s.name, s.learned_stemmed.WithoutStopwords(
                        StopwordList::DefaultStemmed()));
  }
  return dbs;
}

Result<std::vector<DatabaseScore>> SamplingService::Select(
    const std::string& query, const std::string& ranker_name) const {
  // One lock-free snapshot read replaces the old per-call collection
  // rebuild + ranker construction; the snapshot's rankers were built once
  // at publish time. Must stay result-identical to SelectionBroker's
  // uncached path — the loopback acceptance test holds both to it.
  std::shared_ptr<const SelectionSnapshot> snapshot = registry_.Snapshot();
  const DatabaseRanker* ranker = snapshot->ranker(ranker_name);
  if (ranker == nullptr) {
    return Status::InvalidArgument("unknown ranker '" + ranker_name +
                                   "'; valid rankers: " + KnownRankerList());
  }
  if (snapshot->collection().size() == 0) {
    return Status::FailedPrecondition(
        "no language models available; call RefreshAll() first");
  }
  // Selection models are stemmed and stopped: analyze the query the same
  // way.
  std::vector<std::string> terms = Analyzer::InqueryLike().Analyze(query);
  return ranker->Rank(terms);
}

namespace {

std::string ModelPath(const std::string& dir, const std::string& name) {
  // Database names may contain path-hostile characters; sanitize.
  std::string safe;
  for (char c : name) {
    safe.push_back(
        (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_')
            ? c
            : '_');
  }
  return dir + "/" + safe + ".lm";
}

}  // namespace

Status SamplingService::SaveModels() const {
  if (options_.model_dir.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(options_.model_dir, ec);
  if (ec) {
    return Status::IOError("cannot create " + options_.model_dir + ": " +
                           ec.message());
  }
  for (const DatabaseState& s : states_) {
    if (!s.has_model) continue;
    std::ofstream out(ModelPath(options_.model_dir, s.name));
    if (!out) {
      return Status::IOError("cannot write model for '" + s.name + "'");
    }
    QBS_RETURN_IF_ERROR(s.learned.Save(out));
  }
  return Status::OK();
}

Status SamplingService::LoadModels() {
  if (options_.model_dir.empty()) return Status::OK();
  for (DatabaseState& s : states_) {
    if (s.has_model) continue;
    std::ifstream in(ModelPath(options_.model_dir, s.name));
    if (!in) continue;  // no saved model for this database
    auto model = LanguageModel::Load(in);
    QBS_RETURN_IF_ERROR(model.status());
    s.learned = std::move(*model);
    // Rebuild the stemmed companion from the raw model (df is summed
    // across variants; see LanguageModel::StemCollapsed).
    s.learned_stemmed = s.learned.StemCollapsed();
    s.has_model = true;
    s.last_status = Status::OK();
  }
  UpdateModelGauge();
  PublishSnapshot();
  return Status::OK();
}

Status SamplingService::SaveStore() const {
  if (options_.store_path.empty()) return Status::OK();
  DatabaseCollection dbs = Collection();
  ModelStoreWriter writer;
  for (size_t i = 0; i < dbs.size(); ++i) {
    QBS_RETURN_IF_ERROR(writer.Add(dbs.name(i), dbs.model(i)));
  }
  QBS_RETURN_IF_ERROR(writer.WriteToFile(options_.store_path));
  QBS_LOG(INFO) << "packed " << writer.num_models() << " models into "
                << options_.store_path;
  return Status::OK();
}

Status SamplingService::LoadStore() {
  if (options_.store_path.empty()) {
    return Status::FailedPrecondition(
        "LoadStore requires ServiceOptions::store_path");
  }
  auto store = MappedModelStore::Open(options_.store_path);
  QBS_RETURN_IF_ERROR(store.status());
  // Publish straight from the mapping. states_ stays as-is: these models
  // belong to the store file, not to any registered database, and a later
  // RefreshAll will re-sample and supersede this epoch normally.
  registry_.Publish(CollectionFromStore(*store));
  QBS_LOG(INFO) << "published snapshot of " << (*store)->num_models()
                << " models from store " << options_.store_path
                << " (no sampling)";
  return Status::OK();
}

std::string SamplingService::StatusReport() const {
  std::ostringstream out;
  size_t with_model = 0;
  for (const DatabaseState& s : states_) {
    if (s.has_model) ++with_model;
  }
  out << "SamplingService: " << with_model << "/" << states_.size()
      << " databases modeled\n";
  for (const DatabaseState& s : states_) {
    out << "  " << s.name << ": ";
    if (s.has_model) {
      out << "model of " << s.learned.vocabulary_size() << " terms ("
          << s.documents_examined << " docs, " << s.queries_run
          << " queries)";
    } else {
      out << "no model";
    }
    if (!s.last_status.ok()) {
      out << " [" << s.last_status.ToString() << "]";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace qbs

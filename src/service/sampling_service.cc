#include "service/sampling_service.h"

#include <cctype>
#include <filesystem>
#include <fstream>

#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "util/thread_pool.h"

namespace qbs {

SamplingService::SamplingService(ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.seed_terms.empty()) {
    // A handful of broadly common English content words; callers serving
    // specialized federations should supply their own.
    options_.seed_terms = {"information", "system",  "report", "time",
                           "service",     "program", "world",  "company",
                           "government",  "people"};
  }
}

Status SamplingService::AddDatabase(TextDatabase* db) {
  if (db == nullptr) {
    return Status::InvalidArgument("database must be non-null");
  }
  for (const DatabaseState& s : states_) {
    if (s.name == db->name()) {
      return Status::InvalidArgument("duplicate database name: " + db->name());
    }
  }
  databases_.push_back(db);
  DatabaseState state;
  state.name = db->name();
  states_.push_back(std::move(state));
  return Status::OK();
}

Status SamplingService::SampleOne(size_t i) {
  TextDatabase* db = databases_[i];
  DatabaseState& state = states_[i];

  // Bootstrap: find a seed term this database responds to.
  std::string initial;
  for (const std::string& seed : options_.seed_terms) {
    auto probe = db->RunQuery(seed, 1);
    if (probe.ok() && !probe->empty()) {
      initial = seed;
      break;
    }
  }
  if (initial.empty()) {
    state.last_status = Status::NotFound(
        "no seed term retrieved any document from '" + state.name + "'");
    return state.last_status;
  }

  SamplerOptions opts = options_.sampler;
  opts.initial_term = initial;
  opts.seed = options_.base_seed + i;
  QueryBasedSampler sampler(db, opts);
  auto result = sampler.Run();
  if (!result.ok()) {
    state.last_status = result.status();
    return state.last_status;
  }
  state.learned = std::move(result->learned);
  state.learned_stemmed = std::move(result->learned_stemmed);
  state.documents_examined = result->documents_examined;
  state.queries_run = result->queries_run;
  state.has_model = true;
  state.last_status = Status::OK();
  return Status::OK();
}

Status SamplingService::RefreshAll() {
  std::vector<size_t> todo;
  for (size_t i = 0; i < states_.size(); ++i) {
    if (!states_[i].has_model) todo.push_back(i);
  }
  if (todo.empty()) return Status::OK();

  ThreadPool::ParallelFor(todo.size(), options_.num_threads,
                          [&](size_t t) { SampleOne(todo[t]); });

  Status first_error;
  for (size_t i : todo) {
    if (!states_[i].last_status.ok() && first_error.ok()) {
      first_error = states_[i].last_status;
    }
  }
  QBS_RETURN_IF_ERROR(first_error);
  return SaveModels();
}

Status SamplingService::Refresh(const std::string& name) {
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].name == name) {
      states_[i].has_model = false;
      QBS_RETURN_IF_ERROR(SampleOne(i));
      return SaveModels();
    }
  }
  return Status::NotFound("no database named '" + name + "'");
}

DatabaseCollection SamplingService::Collection() const {
  DatabaseCollection dbs;
  for (const DatabaseState& s : states_) {
    if (!s.has_model) continue;
    dbs.Add(s.name, s.learned_stemmed.WithoutStopwords(
                        StopwordList::DefaultStemmed()));
  }
  return dbs;
}

Result<std::vector<DatabaseScore>> SamplingService::Select(
    const std::string& query, const std::string& ranker_name) const {
  DatabaseCollection dbs = Collection();
  if (dbs.size() == 0) {
    return Status::FailedPrecondition(
        "no language models available; call RefreshAll() first");
  }
  std::unique_ptr<DatabaseRanker> ranker = MakeRanker(ranker_name, &dbs);
  if (ranker == nullptr) {
    return Status::InvalidArgument("unknown ranker: " + ranker_name);
  }
  // Selection models are stemmed and stopped: analyze the query the same
  // way.
  std::vector<std::string> terms = Analyzer::InqueryLike().Analyze(query);
  return ranker->Rank(terms);
}

namespace {

std::string ModelPath(const std::string& dir, const std::string& name) {
  // Database names may contain path-hostile characters; sanitize.
  std::string safe;
  for (char c : name) {
    safe.push_back(
        (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_')
            ? c
            : '_');
  }
  return dir + "/" + safe + ".lm";
}

}  // namespace

Status SamplingService::SaveModels() const {
  if (options_.model_dir.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(options_.model_dir, ec);
  if (ec) {
    return Status::IOError("cannot create " + options_.model_dir + ": " +
                           ec.message());
  }
  for (const DatabaseState& s : states_) {
    if (!s.has_model) continue;
    std::ofstream out(ModelPath(options_.model_dir, s.name));
    if (!out) {
      return Status::IOError("cannot write model for '" + s.name + "'");
    }
    QBS_RETURN_IF_ERROR(s.learned.Save(out));
  }
  return Status::OK();
}

Status SamplingService::LoadModels() {
  if (options_.model_dir.empty()) return Status::OK();
  for (DatabaseState& s : states_) {
    if (s.has_model) continue;
    std::ifstream in(ModelPath(options_.model_dir, s.name));
    if (!in) continue;  // no saved model for this database
    auto model = LanguageModel::Load(in);
    QBS_RETURN_IF_ERROR(model.status());
    s.learned = std::move(*model);
    // Rebuild the stemmed companion from the raw model (df is summed
    // across variants; see LanguageModel::StemCollapsed).
    s.learned_stemmed = s.learned.StemCollapsed();
    s.has_model = true;
    s.last_status = Status::OK();
  }
  return Status::OK();
}

}  // namespace qbs

// The database-selection service, assembled: manages a federation of
// databases, learns their language models by query-based sampling
// (in parallel), persists the models, and answers selection queries.
//
// This is the deployable shape of the paper's proposal: point the service
// at N uncooperative search interfaces and it maintains everything needed
// to route queries.
#ifndef QBS_SERVICE_SAMPLING_SERVICE_H_
#define QBS_SERVICE_SAMPLING_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "broker/model_registry.h"
#include "lm/language_model.h"
#include "sampling/sampler.h"
#include "selection/db_selection.h"
#include "search/text_database.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace qbs {

/// Service-wide configuration.
struct ServiceOptions {
  /// Template sampler options applied to every database. initial_term is
  /// ignored (bootstrap uses seed_terms); seeds are derived per database.
  SamplerOptions sampler;

  /// Bootstrap vocabulary: candidate first-query words tried in order
  /// until one retrieves a document from the target database. Any short
  /// list of plausible content words works (paper §4.4: the choice of
  /// initial term has little effect).
  std::vector<std::string> seed_terms;

  /// Worker threads in the shared refresh pool (each database is sampled
  /// on exactly one worker, so per-database search engines need no
  /// locking). The pool is created on first use and reused by every
  /// later RefreshAll — refreshing N databases costs N tasks, not N
  /// threads.
  size_t num_threads = 4;

  /// Threads in the shared document-fetch pool that samplers use to run
  /// RetrievalMode::kSingleFetch fetches ahead of ingestion. 0 (the
  /// default) fetches inline. Only set this when every registered
  /// database tolerates concurrent FetchDocument calls
  /// (RemoteTextDatabase does; a bare SearchEngine does not). Kept
  /// separate from the refresh pool by construction: a refresh worker
  /// blocked on its own pool's queue would deadlock.
  size_t fetch_threads = 0;

  /// When non-empty, learned models are persisted to
  /// `<model_dir>/<database-name>.lm` after sampling, and LoadModels()
  /// can warm-start from them.
  std::string model_dir;

  /// When non-empty, every successful refresh also packs the selection
  /// collection into a binary model store at this path (docs/STORAGE.md),
  /// and LoadStore() can cold-start the broker by mmapping it — first
  /// snapshot published without re-sampling a single database.
  std::string store_path;

  /// Base RNG seed; database i samples with seed `base_seed + i`.
  uint64_t base_seed = 71;
};

/// Per-database state and sampling outcome.
struct DatabaseState {
  std::string name;
  /// Learned model (raw term space).
  LanguageModel learned;
  /// Stemmed variant used for selection.
  LanguageModel learned_stemmed;
  /// True once a model is available (sampled or loaded).
  bool has_model = false;
  /// Status of the most recent sampling attempt.
  Status last_status;
  /// Sampling statistics from the most recent successful run.
  size_t documents_examined = 0;
  size_t queries_run = 0;
};

/// Orchestrates sampling and selection over a database federation.
///
/// Thread-compatible for mutation: RefreshAll runs internally parallel,
/// and mutating calls (AddDatabase, Refresh*, LoadModels) must not
/// overlap with each other. Select() is the exception: it reads the
/// registry's immutable snapshot, so any number of Select calls may run
/// concurrently with each other *and* with an in-flight refresh — they
/// see the last published epoch until the refresh publishes the next.
class SamplingService {
 public:
  explicit SamplingService(ServiceOptions options);

  /// Registers a database. `db` must outlive the service; names must be
  /// unique.
  Status AddDatabase(TextDatabase* db);

  /// Registers a database the service owns. For databases constructed
  /// dynamically — RemoteTextDatabase from a --remote flag, engines
  /// built from discovery — where the raw-pointer overload's
  /// must-outlive contract would force callers into awkward lifetime
  /// juggling. On failure (duplicate name), `db` is destroyed.
  Status AddDatabase(std::unique_ptr<TextDatabase> db);

  /// Number of registered databases.
  size_t size() const { return databases_.size(); }

  /// Samples every database that has no model yet (in parallel). Returns
  /// OK when every database has a model afterwards; otherwise returns a
  /// single status carrying the first failure's code and a message listing
  /// *every* failed database, with per-database statuses in state().
  Status RefreshAll();

  /// Re-samples one database by name (e.g. after its content changed).
  Status Refresh(const std::string& name);

  /// Per-database state, index-aligned with registration order.
  const std::vector<DatabaseState>& state() const { return states_; }

  /// Builds a fresh selection collection (stemmed models, stopwords
  /// removed). Databases without models are skipped. This is an explicit
  /// copy for callers that want to own one — the serving path does not
  /// pay it; Select() reads the registry snapshot instead.
  DatabaseCollection Collection() const;

  /// The registry of published selection snapshots. Hand this to a
  /// SelectionBroker / BrokerServer to serve this federation's models
  /// remotely; it observes every epoch this service publishes.
  const ModelRegistry& registry() const { return registry_; }

  /// Ranks databases for a free-text query using `ranker_name`
  /// ("cori", "bgloss", "vgloss", "kl"). Fails if no models exist yet.
  /// Served from the registry snapshot: lock-free, and safe concurrently
  /// with a refresh.
  Result<std::vector<DatabaseScore>> Select(
      const std::string& query, const std::string& ranker_name = "cori") const;

  /// Persists all learned models to model_dir (no-op without model_dir).
  Status SaveModels() const;

  /// Loads previously saved models for registered databases that lack one;
  /// missing files are skipped silently.
  Status LoadModels();

  /// Packs the current selection collection into the binary store at
  /// options_.store_path (no-op without store_path). Called automatically
  /// after successful refreshes; exposed for explicit checkpoints.
  Status SaveStore() const;

  /// Publishes a selection snapshot straight from the packed store at
  /// options_.store_path — the instant-restart path. The store is mmapped
  /// and validated, and its models are served zero-copy; no database is
  /// sampled and states_ is untouched. Fails with NotFound when the store
  /// does not exist (callers fall back to RefreshAll), Corruption /
  /// Unimplemented when it is unusable, FailedPrecondition without a
  /// store_path.
  Status LoadStore();

  /// Human-readable per-database summary (model sizes, sampling stats,
  /// last errors) for operators — `qbs service` prints this.
  std::string StatusReport() const;

 private:
  Status SampleOne(size_t i);
  void UpdateModelGauge() const;
  /// Publishes the current Collection() to the registry as a new epoch.
  /// Called whenever the model set may have changed — even a partially
  /// failed refresh publishes, so the snapshot tracks states_ exactly.
  void PublishSnapshot();
  /// Materializes the lazily created pools. Called from the external
  /// (thread-compatible) entry points only, never from pool workers.
  void EnsurePools();

  ServiceOptions options_;
  std::vector<TextDatabase*> databases_;
  /// Databases registered via the owning AddDatabase overload; entries
  /// of databases_ may point here. Declared after databases_ but
  /// destroyed first is fine — nothing touches databases_ on teardown.
  std::vector<std::unique_ptr<TextDatabase>> owned_databases_;
  std::vector<DatabaseState> states_;
  /// Immutable selection snapshots, atomically swapped on publish.
  ModelRegistry registry_;
  /// Declared last so both pools drain before anything they reference
  /// (databases, states) is torn down.
  std::unique_ptr<ThreadPool> refresh_pool_;
  std::unique_ptr<ThreadPool> fetch_pool_;
};

}  // namespace qbs

#endif  // QBS_SERVICE_SAMPLING_SERVICE_H_

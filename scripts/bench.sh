#!/usr/bin/env bash
# Benchmark runner: builds the micro benchmarks in Release, runs them
# with JSON output, and merges the results into one machine-readable
# file named BENCH_<git-sha>.json in the repo root:
#
#   {
#     "git_sha": "…",
#     "benchmarks": [
#       {"name": "BM_RemoteRunQuery", "ns_per_op": 81234.5},
#       {"name": "RemoteSampling/query_and_fetch",
#        "ns_per_op": …, "rpcs_per_doc": 0.19},
#       …
#     ]
#   }
#
# CI runs this nightly and on demand and uploads the file as an
# artifact, so regressions are diagnosed by diffing two JSON files, not
# by rereading log scrollback. Locally:
#
#   scripts/bench.sh                  # all micro_* binaries
#   scripts/bench.sh micro_net        # one suite
#   QBS_BENCH_MIN_TIME=0.05 scripts/bench.sh   # quick smoke pass
set -euo pipefail

cd "$(dirname "$0")/.."
detect_jobs() {
  nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2
}
JOBS="${QBS_CHECK_JOBS:-$(detect_jobs)}"
MIN_TIME="${QBS_BENCH_MIN_TIME:-}"
BUILD_DIR="${QBS_BENCH_BUILD_DIR:-build}"
SHA="$(git rev-parse --short=12 HEAD 2>/dev/null || echo nogit)"
OUT="BENCH_${SHA}.json"

SUITES=("$@")
if [ ${#SUITES[@]} -eq 0 ]; then
  SUITES=(micro_text micro_index micro_search micro_sampling micro_obs micro_net
          micro_broker micro_mstore micro_fed)
fi

if [ ! -d "$BUILD_DIR" ]; then
  cmake --preset default
fi
cmake --build "$BUILD_DIR" -j "$JOBS" --target "${SUITES[@]}"

RAW_DIR="$(mktemp -d)"
trap 'rm -rf "$RAW_DIR"' EXIT
for suite in "${SUITES[@]}"; do
  bin="$BUILD_DIR/bench/$suite"
  if [ ! -x "$bin" ]; then
    echo "bench.sh: missing benchmark binary $bin" >&2
    exit 2
  fi
  echo "=== $suite ==="
  args=(--benchmark_format=json --benchmark_out="$RAW_DIR/$suite.json"
        --benchmark_out_format=json)
  if [ -n "$MIN_TIME" ]; then
    args+=("--benchmark_min_time=$MIN_TIME")
  fi
  "$bin" "${args[@]}" >/dev/null
done

RAW_DIR="$RAW_DIR" OUT="$OUT" SHA="$SHA" python3 - <<'PY'
import glob, json, os

merged = {"git_sha": os.environ["SHA"], "benchmarks": []}
for path in sorted(glob.glob(os.path.join(os.environ["RAW_DIR"], "*.json"))):
    with open(path) as f:
        report = json.load(f)
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # Skipped runs (e.g. the 10k-connection benches on a machine
        # whose RLIMIT_NOFILE cannot hold 2 fds per connection) carry no
        # measurement; keeping them would diff as a fake regression.
        if bench.get("error_occurred"):
            continue
        entry = {"name": bench["name"], "ns_per_op": bench.get("real_time")}
        # Custom counters (rpcs_per_doc and friends) ride along verbatim.
        for key in ("rpcs_per_doc", "selects_per_sec",
                    "selects_per_sec_1k_conns", "selects_per_sec_10k_conns",
                    "p99_select_us", "p99_rpc_us", "models_per_sec",
                    "image_bytes", "items_per_second", "bytes_per_second",
                    "fanout_rpcs_per_select"):
            if key in bench:
                entry[key] = bench[key]
        merged["benchmarks"].append(entry)

out = os.environ["OUT"]
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"bench.sh: wrote {out} ({len(merged['benchmarks'])} benchmarks)")
PY

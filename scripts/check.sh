#!/usr/bin/env bash
# Pre-PR gate: runs the four-configuration correctness matrix and exits
# nonzero on the first finding. This is what "the tree is clean" means:
#
#   werror      build with -Werror plus the extended warning tier
#               (-Wshadow -Wnon-virtual-dtor -Wold-style-cast), full ctest
#   asan-ubsan  AddressSanitizer + UndefinedBehaviorSanitizer, full ctest
#   tsan        ThreadSanitizer, full ctest (concurrency_stress_test is
#               the workload this configuration exists for)
#   tidy        clang-tidy (.clang-tidy config) on every translation unit
#               — skipped with a notice when clang-tidy is not installed
#
# tools/lint.py (repo invariants + clang-format) and tools/analyze.py
# (concurrency/ownership invariants: annotated-mutex usage, no blocking
# call under a lock, no detached threads, no naked new/delete, no
# virtual calls in constructors) always run first: they are the cheapest
# checks and catch structural rot before any compile.
#
# Usage:
#   scripts/check.sh                 # everything
#   scripts/check.sh werror tsan     # a subset, in order
#   QBS_CHECK_JOBS=8 scripts/check.sh
#   QBS_CHECK_LABEL=net scripts/check.sh werror   # only ctest -L net
#   QBS_CHECK_LABEL=obs scripts/check.sh werror   # tracing + admin suites
#   QBS_CHECK_LABEL=fed scripts/check.sh werror   # federation suites
set -euo pipefail

cd "$(dirname "$0")/.."
# nproc is Linux coreutils; fall back to the BSD/macOS spelling, then 2.
detect_jobs() {
  nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2
}
JOBS="${QBS_CHECK_JOBS:-$(detect_jobs)}"
# Optional ctest label filter (unit | stress | net | obs | storage |
# fed | load). Empty runs all. `storage` selects the on-disk-format
# suites: engine storage, raw-fd file_io, and the mmapped model store
# (whose corrupt-image tests are most meaningful under the asan-ubsan
# config); `fed` the sharded-federation suites (scatter-gather,
# snapshot replication).
LABEL="${QBS_CHECK_LABEL:-}"
CTEST_ARGS=()
if [ -n "$LABEL" ]; then
  CTEST_ARGS+=(-L "$LABEL")
fi
CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=(werror asan-ubsan tsan tidy)
fi

banner() { printf '\n=== %s ===\n' "$*"; }

banner "lint (tools/lint.py)"
python3 tools/lint.py --root .
python3 tools/lint.py --self-test >/dev/null

banner "analyze (tools/analyze.py)"
python3 tools/analyze.py --root .
python3 tools/analyze.py --self-test >/dev/null

run_preset() {
  local preset="$1"
  banner "configure+build+test [$preset]"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  # Test presets carry the right ASAN_OPTIONS/TSAN_OPTIONS environment.
  ctest --preset "$preset" -j "$JOBS" "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"
}

for config in "${CONFIGS[@]}"; do
  case "$config" in
    werror|asan-ubsan|tsan)
      run_preset "$config"
      ;;
    tidy)
      if command -v clang-tidy >/dev/null 2>&1; then
        run_preset tidy
      else
        # Gated, not failed: the container toolchain may be gcc-only.
        # The .clang-tidy config is still exercised on machines that
        # have the tool (and in any CI image that installs it).
        banner "tidy SKIPPED: clang-tidy not installed"
      fi
      ;;
    default)
      banner "configure+build+test [default]"
      cmake --preset default
      cmake --build --preset default -j "$JOBS"
      ctest --preset default -j "$JOBS" "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"
      ;;
    *)
      echo "unknown config '$config' (expected: default werror asan-ubsan tsan tidy)" >&2
      exit 2
      ;;
  esac
done

banner "check.sh: all configurations clean"

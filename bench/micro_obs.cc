// Microbenchmarks for the observability layer. The contract that keeps
// instrumentation safe to leave in hot paths (and micro_sampling numbers
// honest): counter increments and the disabled paths of QBS_LOG /
// QBS_TRACE_SPAN must cost single-digit nanoseconds.
#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>
#include <string>

#include "net/socket.h"
#include "obs/admin_server.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {
namespace {

void BM_CounterIncrement(benchmark::State& state) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("bench_total");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterIncrement);

void BM_CounterIncrementContended(benchmark::State& state) {
  static Counter* counter =
      MetricRegistry::Default().GetCounter("bench_contended_total");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterIncrementContended)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  MetricRegistry registry;
  Gauge* gauge = registry.GetGauge("bench_gauge");
  double v = 0;
  for (auto _ : state) {
    gauge->Set(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(gauge->value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  MetricRegistry registry;
  Histogram* h =
      registry.GetHistogram("bench_latency_us", Histogram::LatencyBoundsUs());
  double v = 0;
  for (auto _ : state) {
    h->Observe(v);
    v = v < 1e6 ? v * 1.1 + 1 : 0;  // sweep across buckets
  }
  benchmark::DoNotOptimize(h->count());
}
BENCHMARK(BM_HistogramObserve);

void BM_DisabledLog(benchmark::State& state) {
  SetMinLogLevel(LogLevel::kWarning);
  uint64_t i = 0;
  for (auto _ : state) {
    QBS_LOG(DEBUG) << "never formatted " << ++i;
  }
  benchmark::DoNotOptimize(i);
  SetMinLogLevel(LogLevel::kInfo);
}
BENCHMARK(BM_DisabledLog);

void BM_EnabledLogNullSink(benchmark::State& state) {
  SetMinLogLevel(LogLevel::kInfo);
  SetLogSink([](const LogRecord&) {});
  uint64_t i = 0;
  for (auto _ : state) {
    QBS_LOG(INFO) << "formatted " << ++i;
  }
  benchmark::DoNotOptimize(i);
  SetLogSink(nullptr);
}
BENCHMARK(BM_EnabledLogNullSink);

void BM_DisabledTraceSpan(benchmark::State& state) {
  TraceRecorder::Global().set_enabled(false);
  for (auto _ : state) {
    QBS_TRACE_SPAN("bench.disabled");
  }
}
BENCHMARK(BM_DisabledTraceSpan);

void BM_EnabledTraceSpan(benchmark::State& state) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.set_enabled(true);
  for (auto _ : state) {
    QBS_TRACE_SPAN("bench.enabled");
  }
  recorder.set_enabled(false);
  recorder.Clear();
}
BENCHMARK(BM_EnabledTraceSpan);

void BM_EnabledTraceSpanInContext(benchmark::State& state) {
  // The propagated case: every span under a remote caller's sampled
  // context captures trace ids and parent links. This is the per-span
  // cost servers pay once a v4 client turns tracing on.
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.set_enabled(true);
  TraceContext remote;
  remote.trace_id_hi = 0x1234;
  remote.trace_id_lo = 0x5678;
  remote.parent_span_id = 0x9abc;
  remote.sampled = true;
  TraceContextScope scope(remote, /*request_id=*/42);
  for (auto _ : state) {
    QBS_TRACE_SPAN("bench.in_context");
  }
  recorder.set_enabled(false);
  recorder.Clear();
}
BENCHMARK(BM_EnabledTraceSpanInContext);

void BM_EnabledTraceSpanUnsampledContext(benchmark::State& state) {
  // An unsampled ambient context silences spans even with the recorder
  // on — the cost a server pays per span when an upstream opted out.
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.set_enabled(true);
  TraceContext remote;
  remote.trace_id_hi = 1;
  remote.trace_id_lo = 2;
  remote.sampled = false;
  TraceContextScope scope(remote);
  for (auto _ : state) {
    QBS_TRACE_SPAN("bench.unsampled");
  }
  recorder.set_enabled(false);
  recorder.Clear();
}
BENCHMARK(BM_EnabledTraceSpanUnsampledContext);

void BM_TraceContextScopeInstall(benchmark::State& state) {
  // The per-request server-side cost of installing and restoring the
  // caller's context (FrameServer does this once per request).
  TraceContext remote;
  remote.trace_id_hi = 0xaaaa;
  remote.trace_id_lo = 0xbbbb;
  remote.parent_span_id = 0xcccc;
  remote.sampled = true;
  remote.deadline_budget_us = 500'000;
  uint64_t request_id = 0;
  for (auto _ : state) {
    TraceContextScope scope(remote, ++request_id);
    benchmark::DoNotOptimize(CurrentRequestId());
  }
}
BENCHMARK(BM_TraceContextScopeInstall);

void BM_ScopedTimer(benchmark::State& state) {
  MetricRegistry registry;
  Histogram* h =
      registry.GetHistogram("bench_timer_us", Histogram::LatencyBoundsUs());
  for (auto _ : state) {
    ScopedTimerUs timer(h);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_ScopedTimer);

void BM_PrometheusExport(benchmark::State& state) {
  MetricRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter("c" + std::to_string(i) + "_total")->Increment(i);
  }
  for (int i = 0; i < 8; ++i) {
    registry.GetHistogram("h" + std::to_string(i),
                          Histogram::LatencyBoundsUs())
        ->Observe(i * 100.0);
  }
  for (auto _ : state) {
    std::ostringstream out;
    registry.ExportPrometheus(out);
    benchmark::DoNotOptimize(out.str().size());
  }
}
BENCHMARK(BM_PrometheusExport);

void BM_AdminMetricsScrape(benchmark::State& state) {
  // A full /metrics scrape over loopback HTTP: dial, GET, read to EOF.
  // This is what a Prometheus scraper costs the serving process per
  // scrape interval — dominated by the export, not the socket.
  AdminServer server({});
  if (!server.Start().ok()) {
    state.SkipWithError("admin server failed to start");
    return;
  }
  const std::string request =
      "GET /metrics HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n";
  for (auto _ : state) {
    auto stream = SocketStream::Dial("127.0.0.1", server.port(), 2'000'000);
    if (!stream.ok()) {
      state.SkipWithError("dial failed");
      return;
    }
    if (!(*stream)
             ->WriteAll(reinterpret_cast<const uint8_t*>(request.data()),
                        request.size())
             .ok()) {
      state.SkipWithError("write failed");
      return;
    }
    std::string response;
    uint8_t byte = 0;
    while ((*stream)->ReadFull(&byte, 1).ok()) {
      response.push_back(static_cast<char>(byte));
    }
    benchmark::DoNotOptimize(response.size());
  }
}
BENCHMARK(BM_AdminMetricsScrape);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

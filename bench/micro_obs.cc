// Microbenchmarks for the observability layer. The contract that keeps
// instrumentation safe to leave in hot paths (and micro_sampling numbers
// honest): counter increments and the disabled paths of QBS_LOG /
// QBS_TRACE_SPAN must cost single-digit nanoseconds.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qbs {
namespace {

void BM_CounterIncrement(benchmark::State& state) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("bench_total");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterIncrement);

void BM_CounterIncrementContended(benchmark::State& state) {
  static Counter* counter =
      MetricRegistry::Default().GetCounter("bench_contended_total");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterIncrementContended)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  MetricRegistry registry;
  Gauge* gauge = registry.GetGauge("bench_gauge");
  double v = 0;
  for (auto _ : state) {
    gauge->Set(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(gauge->value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  MetricRegistry registry;
  Histogram* h =
      registry.GetHistogram("bench_latency_us", Histogram::LatencyBoundsUs());
  double v = 0;
  for (auto _ : state) {
    h->Observe(v);
    v = v < 1e6 ? v * 1.1 + 1 : 0;  // sweep across buckets
  }
  benchmark::DoNotOptimize(h->count());
}
BENCHMARK(BM_HistogramObserve);

void BM_DisabledLog(benchmark::State& state) {
  SetMinLogLevel(LogLevel::kWarning);
  uint64_t i = 0;
  for (auto _ : state) {
    QBS_LOG(DEBUG) << "never formatted " << ++i;
  }
  benchmark::DoNotOptimize(i);
  SetMinLogLevel(LogLevel::kInfo);
}
BENCHMARK(BM_DisabledLog);

void BM_EnabledLogNullSink(benchmark::State& state) {
  SetMinLogLevel(LogLevel::kInfo);
  SetLogSink([](const LogRecord&) {});
  uint64_t i = 0;
  for (auto _ : state) {
    QBS_LOG(INFO) << "formatted " << ++i;
  }
  benchmark::DoNotOptimize(i);
  SetLogSink(nullptr);
}
BENCHMARK(BM_EnabledLogNullSink);

void BM_DisabledTraceSpan(benchmark::State& state) {
  TraceRecorder::Global().set_enabled(false);
  for (auto _ : state) {
    QBS_TRACE_SPAN("bench.disabled");
  }
}
BENCHMARK(BM_DisabledTraceSpan);

void BM_EnabledTraceSpan(benchmark::State& state) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.set_enabled(true);
  for (auto _ : state) {
    QBS_TRACE_SPAN("bench.enabled");
  }
  recorder.set_enabled(false);
  recorder.Clear();
}
BENCHMARK(BM_EnabledTraceSpan);

void BM_ScopedTimer(benchmark::State& state) {
  MetricRegistry registry;
  Histogram* h =
      registry.GetHistogram("bench_timer_us", Histogram::LatencyBoundsUs());
  for (auto _ : state) {
    ScopedTimerUs timer(h);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_ScopedTimer);

void BM_PrometheusExport(benchmark::State& state) {
  MetricRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter("c" + std::to_string(i) + "_total")->Increment(i);
  }
  for (int i = 0; i < 8; ++i) {
    registry.GetHistogram("h" + std::to_string(i),
                          Histogram::LatencyBoundsUs())
        ->Observe(i * 100.0);
  }
  for (auto _ : state) {
    std::ostringstream out;
    registry.ExportPrometheus(out);
    benchmark::DoNotOptimize(out.str().size());
  }
}
BENCHMARK(BM_PrometheusExport);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

// E8 — Table 4: summarizing a database's contents from its learned model.
//
// The paper sampled the Microsoft Customer Support database from the Web
// (25 documents per query, their earliest protocol) and showed the top 50
// terms ranked by avg_tf — product words like excel, foxpro, microsoft,
// nt, access, windows surfaced at the top. We sample the synthetic
// support-KB stand-in the same way and print the same artifact, plus the
// df/ctf rankings the paper found less informative.
#include <cstdio>

#include "harness/experiment.h"
#include "summarize/summarizer.h"

namespace qbs {
namespace bench {
namespace {

void Run() {
  PrintHeader("E8 (Table 4)",
              "Top terms of a sampled support database, by avg_tf");

  SyntheticCorpusSpec kb = SupportKbLikeSpec();
  SearchEngine* engine = CorpusCache::Instance().Engine(kb);
  const LanguageModel& actual = CorpusCache::Instance().ActualLm(kb);

  SamplerOptions opts;
  opts.docs_per_query = 25;  // as in the paper's early protocol (§7)
  opts.stopping.max_documents = 300;
  opts.seed = 1999;
  Rng rng(42);
  auto initial = RandomEligibleTerm(actual, opts.filter, rng);
  QBS_CHECK(initial.has_value());
  opts.initial_term = *initial;
  auto result = QueryBasedSampler(engine, opts).Run();
  QBS_CHECK(result.ok());

  SummaryOptions sum_opts;
  sum_opts.metric = TermMetric::kAvgTf;
  sum_opts.top_k = 50;
  DatabaseSummary summary =
      SummarizeDatabase(engine->name(), result->learned, sum_opts);

  std::printf("### Top 50 terms by avg_tf (learned from %zu documents, %zu "
              "queries)\n\n",
              result->documents_examined, result->queries_run);
  MarkdownTable table({"term", "avg_tf", "term ", "avg_tf ", "term  ",
                       "avg_tf  ", "term   ", "avg_tf   ", "term    ",
                       "avg_tf    "});
  for (size_t row = 0; row < 10; ++row) {
    std::vector<std::string> cells;
    for (size_t col = 0; col < 5; ++col) {
      size_t i = col * 10 + row;  // column-major, like the paper's layout
      if (i < summary.terms.size()) {
        cells.push_back(summary.terms[i].first);
        cells.push_back(Fmt(summary.terms[i].second, 2));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }
    table.AddRow(std::move(cells));
  }
  table.Print();

  // How many of the injected product-theme terms made the top 50?
  size_t theme_hits = 0;
  for (const auto& [term, score] : summary.terms) {
    for (const std::string& theme : kb.theme_terms) {
      if (term == theme) {
        ++theme_hits;
        break;
      }
    }
  }
  std::printf("\nProduct-theme terms in the top 50: %zu of %zu injected.\n",
              theme_hits, kb.theme_terms.size());

  // The paper's comparison: df and ctf rankings are usable but less
  // informative (dominated by broad, flat terms).
  for (TermMetric metric : {TermMetric::kDf, TermMetric::kCtf}) {
    SummaryOptions alt;
    alt.metric = metric;
    alt.top_k = 10;
    DatabaseSummary s = SummarizeDatabase(engine->name(), result->learned, alt);
    std::printf("\n### Top 10 by %s (for comparison)\n\n",
                TermMetricName(metric));
    MarkdownTable t({"term", TermMetricName(metric)});
    for (const auto& [term, score] : s.terms) {
      t.AddRow({term, Fmt(score, 1)});
    }
    t.Print();
  }

  std::printf(
      "\nShape check (paper): avg_tf surfaces content-bearing product terms "
      "at the top; df/ctf rankings are flatter and more generic.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

// E4 — Figure 2: agreement between the learned and actual term rankings
// (Spearman rank correlation of df-ordered rankings over common terms),
// as a function of documents examined. Baseline protocol as Fig. 1.
//
// Expected shape (paper): the small homogeneous corpus converges fastest
// (CACM > 0.9 by ~82 docs), the medium corpus slower (WSJ88 ~0.76 at 300),
// the large heterogeneous corpus slowest (TREC-123 ~0.4 at 500) — unlike
// ctf ratio, rank convergence IS size-dependent.
#include <cstdio>

#include "harness/experiment.h"

namespace qbs {
namespace bench {
namespace {

void Run() {
  PrintHeader("E4 (Fig. 2)",
              "Spearman rank correlation between learned and actual "
              "term rankings (by df)");

  struct Job {
    SyntheticCorpusSpec spec;
    size_t max_docs;
  };
  Job jobs[] = {
      {CacmLikeSpec(), 300},
      {Wsj88LikeSpec(), 300},
      {Trec123LikeSpec(), 500},
  };

  std::vector<std::vector<TrajectoryPoint>> series;
  std::vector<std::string> names;
  for (const Job& job : jobs) {
    SearchEngine* engine = CorpusCache::Instance().Engine(job.spec);
    const LanguageModel& actual = CorpusCache::Instance().ActualLm(job.spec);
    TrajectoryConfig config;
    config.max_docs = job.max_docs;
    config.docs_per_query = 4;
    config.measure_interval = 25;
    config.seed = 4096;
    TrajectoryResult result = RunTrajectory(engine, actual, config);
    series.push_back(std::move(result.points));
    names.push_back(job.spec.name);
  }

  MarkdownTable table(
      {"Docs examined", names[0], names[1], names[2]});
  size_t max_points = 0;
  for (const auto& s : series) max_points = std::max(max_points, s.size());
  for (size_t i = 0; i < max_points; ++i) {
    std::vector<std::string> row;
    row.push_back(i < series[0].size() ? std::to_string(series[0][i].docs)
                                       : std::to_string(series[2][i].docs));
    for (const auto& s : series) {
      row.push_back(i < s.size() ? Fmt(s[i].spearman_df, 3) : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\nShape check (paper): convergence speed orders small-homogeneous > "
      "medium > large-heterogeneous; the largest corpus is far from 1.0 at "
      "its budget while the smallest exceeds 0.9 quickly.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

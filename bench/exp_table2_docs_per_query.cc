// E5 — Table 2: effect of the number of documents examined per query (N)
// on how quickly a sampling run reaches a ctf ratio of 80%, and on the
// Spearman correlation at that point. N in {1, 2, 4, 6, 8, 10}.
//
// Expected shape (paper): small N (1-4) is as good or better than large N;
// on the large heterogeneous corpus large N is noticeably worse because
// documents retrieved by one query are topically similar (less diverse
// samples). Includes the dedup ablation called out in DESIGN.md §5.
#include <cstdio>

#include "harness/experiment.h"

namespace qbs {
namespace bench {
namespace {

struct Cell {
  size_t docs = 0;        // docs examined to reach ctf >= 0.80 (0 = never)
  double srcc = 0.0;      // Spearman at that point
};

Cell Measure(SearchEngine* engine, const LanguageModel& actual,
             size_t docs_per_query, size_t max_docs, bool dedup) {
  SamplerOptions opts;
  opts.docs_per_query = docs_per_query;
  opts.dedup_documents = dedup;
  opts.stopping.max_documents = max_docs;
  opts.stopping.max_queries = max_docs * 50;
  opts.seed = 31337 + docs_per_query;
  Rng rng(777);
  auto initial = RandomEligibleTerm(actual, opts.filter, rng);
  QBS_CHECK(initial.has_value());
  opts.initial_term = *initial;

  Cell cell;
  QueryBasedSampler sampler(engine, opts);
  sampler.set_document_observer(
      [&](size_t docs, const LanguageModel&, const LanguageModel& stemmed) {
        if (cell.docs != 0) return;
        if (docs % 4 != 0) return;  // measure every 4 documents
        double ratio = CtfRatio(stemmed, actual);
        if (ratio >= 0.80) {
          cell.docs = docs;
          cell.srcc = SpearmanRankCorrelation(stemmed, actual);
        }
      });
  auto result = sampler.Run();
  QBS_CHECK(result.ok());
  if (cell.docs == 0) {
    // Never reached within budget; report the end state.
    cell.docs = result->documents_examined;
    cell.srcc = SpearmanRankCorrelation(result->learned_stemmed, actual);
  }
  return cell;
}

void Run() {
  PrintHeader("E5 (Table 2)",
              "Documents examined per query vs. cost of reaching an 80% "
              "ctf ratio");

  struct Job {
    SyntheticCorpusSpec spec;
    size_t max_docs;
  };
  Job jobs[] = {
      {CacmLikeSpec(), 600},
      {Wsj88LikeSpec(), 600},
      {Trec123LikeSpec(), 800},
  };
  const size_t kDocsPerQuery[] = {1, 2, 4, 6, 8, 10};

  MarkdownTable table({"Docs/query", "cacm-like docs", "cacm-like SRCC",
                       "wsj88-like docs", "wsj88-like SRCC",
                       "trec123-like docs", "trec123-like SRCC"});
  for (size_t n : kDocsPerQuery) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const Job& job : jobs) {
      SearchEngine* engine = CorpusCache::Instance().Engine(job.spec);
      const LanguageModel& actual = CorpusCache::Instance().ActualLm(job.spec);
      WallTimer timer;
      Cell cell = Measure(engine, actual, n, job.max_docs, /*dedup=*/true);
      std::fprintf(stderr, "[table2] %s N=%zu -> %zu docs (%.1fs)\n",
                   job.spec.name.c_str(), n, cell.docs, timer.Seconds());
      row.push_back(std::to_string(cell.docs));
      row.push_back(Fmt(cell.srcc, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  // Ablation: document dedup on/off at the baseline N=4 (design choice 1
  // in DESIGN.md §5; the paper is silent on re-retrieved documents).
  std::printf("\n### Ablation: dedup of already-seen documents (N=4)\n\n");
  MarkdownTable ab({"Corpus", "dedup docs to 80%", "no-dedup docs to 80%"});
  for (const Job& job : jobs) {
    SearchEngine* engine = CorpusCache::Instance().Engine(job.spec);
    const LanguageModel& actual = CorpusCache::Instance().ActualLm(job.spec);
    Cell with = Measure(engine, actual, 4, job.max_docs, true);
    Cell without = Measure(engine, actual, 4, job.max_docs, false);
    ab.AddRow({job.spec.name, std::to_string(with.docs),
               std::to_string(without.docs)});
  }
  ab.Print();

  std::printf(
      "\nShape check (paper): N in {1,2,4} roughly equivalent; large N "
      "degrades on the large heterogeneous corpus. Paper's Table 2 reached "
      "80%% at 100-130 docs (CACM), ~112-204 (WSJ88), ~148-356 "
      "(TREC-123).\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

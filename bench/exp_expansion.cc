// E10 — Extension (paper §8): co-occurrence query expansion from the union
// of database samples.
//
// The paper argues the union of per-database samples is the right corpus
// for expanding queries during database selection, because expansion from
// any *single* database biases selection toward that database. We measure
// that bias directly: expansion terms derived from one database's sample
// vs the union, and how each choice shifts CORI selection.
#include <cstdio>

#include "expansion/cooccurrence.h"
#include "harness/experiment.h"
#include "selection/db_selection.h"
#include "text/stopwords.h"

namespace qbs {
namespace bench {
namespace {

constexpr size_t kNumDbs = 6;

SyntheticCorpusSpec ExpDbSpec(size_t i) {
  SyntheticCorpusSpec spec;
  spec.name = "expdb-" + std::to_string(i);
  spec.num_docs = 2'000;
  spec.vocab_size = 120'000;
  spec.num_topics = 4;
  spec.topic_vocab_size = 700;
  spec.topic_mix = 0.45;
  spec.seed = 61000 + 13 * i;
  return spec;
}

void Run() {
  PrintHeader("E10 (extension, paper §8)",
              "Query expansion from the union of samples");

  // Sample every database, keeping the raw documents.
  std::vector<SearchEngine*> engines;
  std::vector<SamplingResult> samples;
  for (size_t i = 0; i < kNumDbs; ++i) {
    SyntheticCorpusSpec spec = ExpDbSpec(i);
    SearchEngine* engine = CorpusCache::Instance().Engine(spec);
    const LanguageModel& actual = CorpusCache::Instance().ActualLm(spec);
    SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = 200;
    opts.collect_documents = true;
    opts.seed = 9100 + i;
    Rng rng(9200 + i);
    auto initial = RandomEligibleTerm(actual, opts.filter, rng);
    QBS_CHECK(initial.has_value());
    opts.initial_term = *initial;
    auto result = QueryBasedSampler(engine, opts).Run();
    QBS_CHECK(result.ok());
    engines.push_back(engine);
    samples.push_back(std::move(*result));
  }

  // Union co-occurrence model and one single-database model.
  CooccurrenceModel union_model;
  for (const SamplingResult& s : samples) {
    for (const std::string& text : s.sampled_documents) {
      union_model.AddDocument(text);
    }
  }
  CooccurrenceModel single_model;  // database 0 only
  for (const std::string& text : samples[0].sampled_documents) {
    single_model.AddDocument(text);
  }
  std::fprintf(stderr, "[expansion] union=%zu docs, single=%zu docs\n",
               union_model.num_docs(), single_model.num_docs());

  // Probe terms: content terms *shared* by every database's sample (the
  // realistic selection workload where expansion matters — a distinctive
  // term already nails its database without expansion). Single-db
  // expansion can only exert its bias on queries it has material for.
  std::vector<std::string> probe_terms;
  {
    LanguageModel content = samples[0].learned_stemmed.WithoutStopwords(
        StopwordList::DefaultStemmed());
    for (const auto& [term, score] :
         content.RankedTerms(TermMetric::kCtf, 400)) {
      if (term.size() < 3) continue;
      bool shared = true;
      for (size_t j = 1; j < kNumDbs && shared; ++j) {
        shared = samples[j].learned_stemmed.Contains(term);
      }
      if (shared) {
        probe_terms.push_back(term);
        if (probe_terms.size() == 12) break;
      }
    }
  }
  QBS_CHECK(!probe_terms.empty());

  // 1) Show expansions from the union.
  QueryExpander union_expander(&union_model);
  std::printf("### Expansion terms from the union of samples\n\n");
  MarkdownTable ex({"Probe term", "Expansion terms (EMIM, top 5)"});
  for (const std::string& probe : probe_terms) {
    auto terms = union_expander.ExpansionTerms({probe}, 5);
    std::string joined;
    for (const auto& [t, score] : terms) {
      if (!joined.empty()) joined += ", ";
      joined += t;
    }
    ex.AddRow({probe, joined.empty() ? "(none)" : joined});
  }
  ex.Print();

  // 2) Bias measurement: expand each probe with the single-db model vs the
  // union model, select with CORI over the learned LMs, and count how
  // often each choice steers selection to database 0.
  DatabaseCollection learned_dbs;
  for (size_t i = 0; i < kNumDbs; ++i) {
    learned_dbs.Add(engines[i]->name(),
                    samples[i].learned_stemmed.WithoutStopwords(
                        StopwordList::DefaultStemmed()));
  }
  CoriRanker ranker(&learned_dbs);
  QueryExpander single_expander(&single_model);

  // Bias metric: expdb-0's mean rank position (1 = selected first) across
  // the probes, under each expansion regime; plus how many probes ended
  // with expdb-0 in first place.
  auto rank_of_db0 = [&](const std::vector<std::string>& query) {
    auto ranking = ranker.Rank(query);
    for (size_t r = 0; r < ranking.size(); ++r) {
      if (ranking[r].db_name == engines[0]->name()) return r + 1;
    }
    return ranking.size() + 1;
  };
  double none_rank = 0, single_rank = 0, union_rank = 0;
  size_t none_top1 = 0, single_top1 = 0, union_top1 = 0;
  for (const std::string& probe : probe_terms) {
    std::vector<std::string> base = {probe};
    size_t r0 = rank_of_db0(base);
    none_rank += static_cast<double>(r0);
    none_top1 += (r0 == 1);

    std::vector<std::string> with_single = base;
    for (auto& [t, s] : single_expander.ExpansionTerms(base, 5)) {
      with_single.push_back(t);
    }
    size_t r1 = rank_of_db0(with_single);
    single_rank += static_cast<double>(r1);
    single_top1 += (r1 == 1);

    std::vector<std::string> with_union = base;
    for (auto& [t, s] : union_expander.ExpansionTerms(base, 5)) {
      with_union.push_back(t);
    }
    size_t r2 = rank_of_db0(with_union);
    union_rank += static_cast<double>(r2);
    union_top1 += (r2 == 1);
  }
  double n = static_cast<double>(probe_terms.size());

  std::printf("\n### Selection bias of the expansion corpus (%zu shared "
              "probe terms, %zu databases)\n\n",
              probe_terms.size(), kNumDbs);
  MarkdownTable bias({"Expansion source", "Mean rank of expdb-0",
                      "Probes putting expdb-0 first"});
  bias.AddRow({"no expansion", Fmt(none_rank / n, 2),
               std::to_string(none_top1)});
  bias.AddRow({"single db (expdb-0) sample", Fmt(single_rank / n, 2),
               std::to_string(single_top1)});
  bias.AddRow({"union of samples", Fmt(union_rank / n, 2),
               std::to_string(union_top1)});
  bias.Print();

  std::printf(
      "\nReading: expanding from a single database's sample pulls selection "
      "toward that database; the union of samples does not (paper §8: the "
      "union \"favors no specific database\").\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

// E7 — Figure 4: rdiff between learned-model snapshots taken 50 documents
// apart, per corpus (random-llm, 4 docs/query). rdiff is the average
// distance a term must move (as a fraction of the number of ranks) to turn
// one snapshot's df-ranking into the next one's.
//
// Expected shape (paper): rdiff values are small (~0.01 at 100 docs),
// fall as more documents are examined, and do so roughly independently of
// database size — making rdiff usable as a self-contained stopping
// criterion. Also demonstrates the rdiff-based stopping rule end to end.
#include <cstdio>

#include "harness/experiment.h"

namespace qbs {
namespace bench {
namespace {

void Run() {
  PrintHeader("E7 (Fig. 4)",
              "rdiff between language-model snapshots 50 documents apart");

  struct Job {
    SyntheticCorpusSpec spec;
    size_t max_docs;
  };
  Job jobs[] = {
      {CacmLikeSpec(), 300},
      {Wsj88LikeSpec(), 300},
      {Trec123LikeSpec(), 500},
  };

  std::vector<std::vector<SamplingSnapshot>> snaps;
  std::vector<std::string> names;
  for (const Job& job : jobs) {
    SearchEngine* engine = CorpusCache::Instance().Engine(job.spec);
    const LanguageModel& actual = CorpusCache::Instance().ActualLm(job.spec);
    TrajectoryConfig config;
    config.max_docs = job.max_docs;
    config.docs_per_query = 4;
    config.measure_interval = 1000000;  // metrics not needed; snapshots are
    config.seed = 808;
    TrajectoryResult result = RunTrajectory(engine, actual, config);
    snaps.push_back(result.sampling.snapshots);
    names.push_back(job.spec.name);
  }

  MarkdownTable table({"Docs examined", names[0], names[1], names[2]});
  size_t max_rows = 0;
  for (const auto& s : snaps) max_rows = std::max(max_rows, s.size());
  for (size_t i = 1; i < max_rows; ++i) {  // skip first snapshot (no rdiff)
    std::vector<std::string> row;
    row.push_back(std::to_string((i + 1) * 50));
    for (const auto& s : snaps) {
      row.push_back(i < s.size() ? Fmt(s[i].rdiff_from_prev, 4) : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  // The stopping criterion built on this signal (paper §6: "a language
  // model might be accurate enough when rdiff < some threshold over 2
  // consecutive 50 document spans").
  std::printf("\n### rdiff stopping rule (threshold 0.015, 2 consecutive)\n\n");
  MarkdownTable stop_table(
      {"Corpus", "Stopped at docs", "Queries", "ctf ratio at stop"});
  for (const Job& job : jobs) {
    SearchEngine* engine = CorpusCache::Instance().Engine(job.spec);
    const LanguageModel& actual = CorpusCache::Instance().ActualLm(job.spec);
    SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = 2000;
    opts.stopping.max_queries = 50000;
    opts.stopping.rdiff_threshold = 0.015;
    opts.stopping.rdiff_consecutive = 2;
    opts.seed = 809;
    Rng rng(810);
    auto initial = RandomEligibleTerm(actual, opts.filter, rng);
    QBS_CHECK(initial.has_value());
    opts.initial_term = *initial;
    auto result = QueryBasedSampler(engine, opts).Run();
    QBS_CHECK(result.ok());
    stop_table.AddRow({job.spec.name,
                       std::to_string(result->documents_examined),
                       std::to_string(result->queries_run),
                       Pct(CtfRatio(result->learned_stemmed, actual), 1)});
  }
  stop_table.Print();

  std::printf(
      "\nShape check (paper): rdiff decays with documents examined, roughly "
      "independently of corpus size, supporting a constant-size sampling "
      "budget.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

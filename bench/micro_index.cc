// Microbenchmarks: inverted-index construction and posting decoding.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "index/inverted_index.h"
#include "text/analyzer.h"

namespace qbs {
namespace {

// Pre-analyzed documents for indexing benchmarks.
const std::vector<std::vector<std::string>>& AnalyzedDocs() {
  static const auto* docs = [] {
    SyntheticCorpusSpec spec;
    spec.name = "bench";
    spec.num_docs = 2'000;
    spec.seed = 6;
    Analyzer analyzer = Analyzer::InqueryLike();
    auto* out = new std::vector<std::vector<std::string>>();
    Status s = GenerateSyntheticCorpus(
        spec, [&](const std::string&, const std::string& text) {
          out->push_back(analyzer.Analyze(text));
        });
    QBS_CHECK(s.ok());
    return out;
  }();
  return *docs;
}

void BM_IndexAddDocument(benchmark::State& state) {
  const auto& docs = AnalyzedDocs();
  size_t i = 0;
  InvertedIndex index;
  uint64_t terms = 0;
  for (auto _ : state) {
    index.AddDocument(docs[i % docs.size()]);
    terms += docs[i % docs.size()].size();
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(terms));
}
BENCHMARK(BM_IndexAddDocument);

void BM_IndexBulkBuild(benchmark::State& state) {
  const auto& docs = AnalyzedDocs();
  for (auto _ : state) {
    InvertedIndex index;
    for (const auto& doc : docs) index.AddDocument(doc);
    benchmark::DoNotOptimize(index.total_terms());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(docs.size()));
}
BENCHMARK(BM_IndexBulkBuild);

void BM_PostingListIterate(benchmark::State& state) {
  PostingList plist;
  for (DocId d = 0; d < 100'000; ++d) plist.Append(d * 3 + 1, 1 + d % 7);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (auto it = plist.NewIterator(); it.Valid(); it.Next()) {
      sum += it.Get().tf;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_PostingListIterate);

void BM_PostingListAppend(benchmark::State& state) {
  for (auto _ : state) {
    PostingList plist;
    for (DocId d = 0; d < 10'000; ++d) plist.Append(d * 2 + 1, 1 + d % 5);
    benchmark::DoNotOptimize(plist.byte_size());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_PostingListAppend);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

// Microbenchmarks for the selection broker: lock-free snapshot reads
// (alone and contended), Select through the result cache on both the
// hit and miss paths, snapshot publication cost, and the full Select
// RPC over loopback TCP — alone and while the event loop holds 1k/10k
// open connections. selects_per_sec (and its _1k_conns/_10k_conns
// variants) plus p99_select_us are the serving-throughput headlines
// bench.sh extracts into BENCH_<sha>.json.
//
// JSON output for dashboards: --benchmark_format=json
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker_server.h"
#include "broker/model_registry.h"
#include "broker/remote_selector.h"
#include "broker/selection_broker.h"
#include "corpus/synthetic.h"
#include "lm/language_model.h"

namespace qbs {
namespace {

struct Fixture {
  ModelRegistry registry;
  std::unique_ptr<SelectionBroker> broker;
  std::unique_ptr<BrokerServer> server;
  std::unique_ptr<RemoteSelector> remote;
  DatabaseCollection collection;  // template for republish benchmarks
  std::vector<std::string> queries;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    for (size_t i = 0; i < 4; ++i) {
      SyntheticCorpusSpec spec;
      spec.name = "bench-broker-" + std::to_string(i);
      spec.num_docs = 1'000;
      spec.vocab_size = 40'000;
      spec.num_topics = 3;
      spec.seed = 91 + 7 * i;
      auto engine = BuildSyntheticEngine(spec);
      QBS_CHECK(engine.ok());
      LanguageModel actual = (*engine)->ActualLanguageModel();
      if (i == 0) {
        auto ranked = actual.RankedTerms(TermMetric::kDf);
        for (size_t t = 0; t < 16 && t < ranked.size(); ++t) {
          f->queries.push_back(ranked[t].first);
        }
      }
      f->collection.Add(spec.name, std::move(actual));
    }
    f->registry.Publish(f->collection);
    f->broker = std::make_unique<SelectionBroker>(&f->registry);

    f->server = std::make_unique<BrokerServer>(f->broker.get(),
                                               BrokerServerOptions{});
    QBS_CHECK(f->server->Start().ok());
    WireClientOptions client;
    client.host = "127.0.0.1";
    client.port = f->server->port();
    f->remote = std::make_unique<RemoteSelector>(client);
    QBS_CHECK(f->remote->Connect().ok());
    return f;
  }();
  return *fixture;
}

// The read path's first instruction: grabbing the current snapshot.
// Run with threads to measure contention on the atomic shared_ptr —
// this is what every concurrent Select pays before any ranking work.
void BM_SnapshotAcquire(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    auto snapshot = f.registry.Snapshot();
    benchmark::DoNotOptimize(snapshot);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotAcquire)->ThreadRange(1, 8);

// What a refresh pays to publish: building the collection copy, all
// four rankers, and the atomic swap.
void BM_PublishSnapshot(benchmark::State& state) {
  const Fixture& f = GetFixture();
  ModelRegistry registry;
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Publish(f.collection));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PublishSnapshot);

// Steady-state serving of a repeated query: one snapshot read, one
// analysis, one cache hit.
void BM_BrokerSelectCacheHit(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    auto result = f.broker->Select(f.queries[0], "cori");
    benchmark::DoNotOptimize(result);
    QBS_CHECK(result.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BrokerSelectCacheHit);

// The uncached path: a cache sized to never hit (capacity 1, 16 cycled
// queries) forces a full ranking per Select. hit - miss is what the
// cache buys.
void BM_BrokerSelectCacheMiss(benchmark::State& state) {
  const Fixture& f = GetFixture();
  BrokerOptions options;
  options.cache.num_shards = 1;
  options.cache.capacity_per_shard = 1;
  SelectionBroker uncached(&f.registry, options);
  size_t i = 0;
  for (auto _ : state) {
    auto result = uncached.Select(f.queries[i++ % f.queries.size()], "cori");
    benchmark::DoNotOptimize(result);
    QBS_CHECK(result.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BrokerSelectCacheMiss);

// The full RPC: frame + TCP loopback + admission + Select + frame back.
// selects_per_sec is the headline serving-rate counter.
void BM_RemoteSelect(benchmark::State& state) {
  const Fixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    auto result = f.remote->Select(f.queries[i++ % f.queries.size()], "cori");
    benchmark::DoNotOptimize(result);
    QBS_CHECK(result.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["selects_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RemoteSelect);

/// Raises RLIMIT_NOFILE toward its hard cap (2 fds per held
/// connection) and reports the resulting soft limit.
size_t RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 1024;
  if (limit.rlim_cur < limit.rlim_max) {
    rlimit raised = limit;
    raised.rlim_cur = limit.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) limit = raised;
  }
  return static_cast<size_t>(limit.rlim_cur);
}

/// N connected selector clients held open against the shared broker
/// server, cached per N: google-benchmark re-enters the function to
/// hit min time, and redialing 10k connections each pass would swamp
/// the measurement.
const std::vector<std::unique_ptr<RemoteSelector>>* ConnPool(size_t conns) {
  static auto* pools =
      new std::vector<std::pair<size_t,
                                std::vector<std::unique_ptr<RemoteSelector>>>>;
  for (auto& [n, pool] : *pools) {
    if (n == conns) return &pool;
  }
  const Fixture& f = GetFixture();
  std::vector<std::unique_ptr<RemoteSelector>> pool;
  pool.reserve(conns);
  for (size_t i = 0; i < conns; ++i) {
    WireClientOptions copts;
    copts.host = "127.0.0.1";
    copts.port = f.server->port();
    auto client = std::make_unique<RemoteSelector>(copts);
    // Connect() is a negotiation round trip, so the dial loop
    // self-paces against the server's accept loop instead of
    // overrunning the listen backlog.
    if (!client->Connect().ok()) return nullptr;
    pool.push_back(std::move(client));
  }
  pools->emplace_back(conns, std::move(pool));
  return &pools->back().second;
}

// The C10K question, measured: Select latency while the server holds
// 1k / 10k open connections on one epoll loop. The request rotates
// across the pool so every connection stays live in the epoll interest
// set; selects_per_sec_<n>_conns and p99_select_us are the headline
// counters bench.sh extracts and CI's load job diffs.
void BM_RemoteSelectAtScale(benchmark::State& state) {
  const size_t conns = static_cast<size_t>(state.range(0));
  const size_t fd_limit = RaiseFdLimit();
  if (fd_limit < 2 * conns + 128) {
    state.SkipWithError("RLIMIT_NOFILE too low for this connection count");
    return;
  }
  const auto* pool = ConnPool(conns);
  if (pool == nullptr) {
    state.SkipWithError("failed to dial the connection pool");
    return;
  }
  const Fixture& f = GetFixture();
  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 16);
  size_t i = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto result = (*pool)[i % pool->size()]->Select(
        f.queries[i % f.queries.size()], "cori");
    const auto stop = std::chrono::steady_clock::now();
    ++i;
    benchmark::DoNotOptimize(result);
    QBS_CHECK(result.ok());
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  const std::string rate_counter =
      "selects_per_sec_" + std::to_string(conns / 1000) + "k_conns";
  state.counters[rate_counter] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    state.counters["p99_select_us"] = latencies_us[std::min(
        latencies_us.size() - 1, latencies_us.size() * 99 / 100)];
  }
}
BENCHMARK(BM_RemoteSelectAtScale)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

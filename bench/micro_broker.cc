// Microbenchmarks for the selection broker: lock-free snapshot reads
// (alone and contended), Select through the result cache on both the
// hit and miss paths, snapshot publication cost, and the full Select
// RPC over loopback TCP. The selects_per_sec counter on the RPC
// benchmark is the serving-throughput headline bench.sh extracts into
// BENCH_<sha>.json.
//
// JSON output for dashboards: --benchmark_format=json
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "broker/broker_server.h"
#include "broker/model_registry.h"
#include "broker/remote_selector.h"
#include "broker/selection_broker.h"
#include "corpus/synthetic.h"
#include "lm/language_model.h"

namespace qbs {
namespace {

struct Fixture {
  ModelRegistry registry;
  std::unique_ptr<SelectionBroker> broker;
  std::unique_ptr<BrokerServer> server;
  std::unique_ptr<RemoteSelector> remote;
  DatabaseCollection collection;  // template for republish benchmarks
  std::vector<std::string> queries;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    for (size_t i = 0; i < 4; ++i) {
      SyntheticCorpusSpec spec;
      spec.name = "bench-broker-" + std::to_string(i);
      spec.num_docs = 1'000;
      spec.vocab_size = 40'000;
      spec.num_topics = 3;
      spec.seed = 91 + 7 * i;
      auto engine = BuildSyntheticEngine(spec);
      QBS_CHECK(engine.ok());
      LanguageModel actual = (*engine)->ActualLanguageModel();
      if (i == 0) {
        auto ranked = actual.RankedTerms(TermMetric::kDf);
        for (size_t t = 0; t < 16 && t < ranked.size(); ++t) {
          f->queries.push_back(ranked[t].first);
        }
      }
      f->collection.Add(spec.name, std::move(actual));
    }
    f->registry.Publish(f->collection);
    f->broker = std::make_unique<SelectionBroker>(&f->registry);

    f->server = std::make_unique<BrokerServer>(f->broker.get(),
                                               BrokerServerOptions{});
    QBS_CHECK(f->server->Start().ok());
    WireClientOptions client;
    client.host = "127.0.0.1";
    client.port = f->server->port();
    f->remote = std::make_unique<RemoteSelector>(client);
    QBS_CHECK(f->remote->Connect().ok());
    return f;
  }();
  return *fixture;
}

// The read path's first instruction: grabbing the current snapshot.
// Run with threads to measure contention on the atomic shared_ptr —
// this is what every concurrent Select pays before any ranking work.
void BM_SnapshotAcquire(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    auto snapshot = f.registry.Snapshot();
    benchmark::DoNotOptimize(snapshot);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotAcquire)->ThreadRange(1, 8);

// What a refresh pays to publish: building the collection copy, all
// four rankers, and the atomic swap.
void BM_PublishSnapshot(benchmark::State& state) {
  const Fixture& f = GetFixture();
  ModelRegistry registry;
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Publish(f.collection));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PublishSnapshot);

// Steady-state serving of a repeated query: one snapshot read, one
// analysis, one cache hit.
void BM_BrokerSelectCacheHit(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    auto result = f.broker->Select(f.queries[0], "cori");
    benchmark::DoNotOptimize(result);
    QBS_CHECK(result.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BrokerSelectCacheHit);

// The uncached path: a cache sized to never hit (capacity 1, 16 cycled
// queries) forces a full ranking per Select. hit - miss is what the
// cache buys.
void BM_BrokerSelectCacheMiss(benchmark::State& state) {
  const Fixture& f = GetFixture();
  BrokerOptions options;
  options.cache.num_shards = 1;
  options.cache.capacity_per_shard = 1;
  SelectionBroker uncached(&f.registry, options);
  size_t i = 0;
  for (auto _ : state) {
    auto result = uncached.Select(f.queries[i++ % f.queries.size()], "cori");
    benchmark::DoNotOptimize(result);
    QBS_CHECK(result.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BrokerSelectCacheMiss);

// The full RPC: frame + TCP loopback + admission + Select + frame back.
// selects_per_sec is the headline serving-rate counter.
void BM_RemoteSelect(benchmark::State& state) {
  const Fixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    auto result = f.remote->Select(f.queries[i++ % f.queries.size()], "cori");
    benchmark::DoNotOptimize(result);
    QBS_CHECK(result.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["selects_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RemoteSelect);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

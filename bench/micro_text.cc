// Microbenchmarks: tokenization, stemming, stopword lookup, full analysis.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace qbs {
namespace {

// A representative ~2KB document, generated once.
const std::string& SampleDoc() {
  static const std::string* doc = [] {
    SyntheticCorpusSpec spec;
    spec.name = "bench";
    spec.num_docs = 64;  // floor of ScaledDocCount
    spec.doc_length_mu = 5.8;  // ~330 tokens
    spec.seed = 5;
    auto* out = new std::string();
    Status s = GenerateSyntheticCorpus(
        spec, [&](const std::string&, const std::string& text) {
          if (out->empty()) *out = text;
        });
    QBS_CHECK(s.ok());
    return out;
  }();
  return *doc;
}

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tokenizer;
  std::vector<std::string> out;
  for (auto _ : state) {
    out.clear();
    tokenizer.Tokenize(SampleDoc(), out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * SampleDoc().size());
}
BENCHMARK(BM_Tokenize);

void BM_PorterStem(benchmark::State& state) {
  const std::vector<std::string> words = Tokenizer().Tokenize(SampleDoc());
  size_t i = 0;
  for (auto _ : state) {
    std::string w = words[i++ % words.size()];
    PorterStemmer::StemInPlace(w);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_PorterStem);

void BM_StopwordLookup(benchmark::State& state) {
  const StopwordList& list = StopwordList::Default();
  const std::vector<std::string> words = Tokenizer().Tokenize(SampleDoc());
  size_t i = 0;
  for (auto _ : state) {
    bool hit = list.Contains(words[i++ % words.size()]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_StopwordLookup);

void BM_AnalyzeInqueryLike(benchmark::State& state) {
  Analyzer analyzer = Analyzer::InqueryLike();
  std::vector<std::string> out;
  for (auto _ : state) {
    out.clear();
    analyzer.Analyze(SampleDoc(), out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * SampleDoc().size());
}
BENCHMARK(BM_AnalyzeInqueryLike);

void BM_AnalyzeRaw(benchmark::State& state) {
  Analyzer analyzer = Analyzer::Raw();
  std::vector<std::string> out;
  for (auto _ : state) {
    out.clear();
    analyzer.Analyze(SampleDoc(), out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * SampleDoc().size());
}
BENCHMARK(BM_AnalyzeRaw);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

// E9 — Extension: how learned-model error propagates into database
// selection (the paper's declared open question, §5/§9: "it is an open
// problem how correlated the rankings need to be for accurate database
// selection").
//
// Protocol: a federation of 12 topically distinct databases. Each is
// sampled at increasing budgets (50..300 docs). For each ranker
// (CORI, bGlOSS, vGlOSS, KL) and budget we compare the database ranking
// produced from learned models against the ranking from actual models,
// over a probe-query set of distinctive database terms.
#include <cstdio>

#include "harness/experiment.h"
#include "sampling/size_estimator.h"
#include "selection/db_selection.h"
#include "selection/eval.h"
#include "selection/redde.h"
#include "text/stopwords.h"

namespace qbs {
namespace bench {
namespace {

constexpr size_t kNumDbs = 12;
constexpr size_t kProbesPerDb = 4;

SyntheticCorpusSpec FederationSpec(size_t i) {
  SyntheticCorpusSpec spec;
  spec.name = "seldb-" + std::to_string(i);
  spec.num_docs = 2'000;
  spec.vocab_size = 150'000;
  spec.num_topics = 4;
  spec.topic_vocab_size = 800;
  spec.topic_mix = 0.45;
  spec.seed = 31000 + 97 * i;
  return spec;
}

// Probe queries: per database, frequent terms that are distinctive to it.
// `sources[p]` records which database probe p belongs to.
struct ProbeSet {
  std::vector<std::vector<std::string>> probes;
  std::vector<size_t> sources;
};

ProbeSet BuildProbes(const std::vector<const LanguageModel*>& actuals) {
  ProbeSet out;
  for (size_t i = 0; i < actuals.size(); ++i) {
    size_t taken = 0;
    for (const auto& [term, score] :
         actuals[i]->RankedTerms(TermMetric::kCtf, 120)) {
      bool distinctive = true;
      for (size_t j = 0; j < actuals.size() && distinctive; ++j) {
        if (j == i) continue;
        const TermStats* other = actuals[j]->Find(term);
        if (other != nullptr && other->ctf * 4 > score) distinctive = false;
      }
      if (distinctive) {
        out.probes.push_back({term});
        out.sources.push_back(i);
        if (++taken == kProbesPerDb) break;
      }
    }
  }
  return out;
}

void Run() {
  PrintHeader("E9 (extension)",
              "Database-selection accuracy from learned vs actual models");

  // Build the federation.
  std::vector<SearchEngine*> engines;
  std::vector<const LanguageModel*> actuals;
  for (size_t i = 0; i < kNumDbs; ++i) {
    SyntheticCorpusSpec spec = FederationSpec(i);
    engines.push_back(CorpusCache::Instance().Engine(spec));
    actuals.push_back(&CorpusCache::Instance().ActualLm(spec));
  }
  ProbeSet probe_set = BuildProbes(actuals);
  const std::vector<std::vector<std::string>>& probes = probe_set.probes;
  std::fprintf(stderr, "[selection] %zu probe queries\n", probes.size());

  DatabaseCollection actual_dbs;
  for (size_t i = 0; i < kNumDbs; ++i) {
    actual_dbs.Add(engines[i]->name(), *actuals[i]);
  }

  const size_t kBudgets[] = {50, 100, 200, 300};
  const char* kRankers[] = {"cori", "bgloss", "vgloss", "kl"};

  MarkdownTable table({"Sample docs/db", "Ranker", "Spearman (db ranking)",
                       "Top-3 overlap", "Top-1 match"});
  for (size_t budget : kBudgets) {
    // Sample every database at this budget.
    DatabaseCollection learned_dbs;
    for (size_t i = 0; i < kNumDbs; ++i) {
      SamplerOptions opts;
      opts.docs_per_query = 4;
      opts.stopping.max_documents = budget;
      opts.seed = 7000 + i;
      Rng rng(8000 + i);
      auto initial = RandomEligibleTerm(*actuals[i], opts.filter, rng);
      QBS_CHECK(initial.has_value());
      opts.initial_term = *initial;
      auto result = QueryBasedSampler(engines[i], opts).Run();
      QBS_CHECK(result.ok());
      learned_dbs.Add(engines[i]->name(),
                      result->learned_stemmed.WithoutStopwords(
                          StopwordList::DefaultStemmed()));
    }
    for (const char* ranker_name : kRankers) {
      auto ref = MakeRanker(ranker_name, &actual_dbs);
      auto cand = MakeRanker(ranker_name, &learned_dbs);
      RankingAgreement agree = MeanAgreement(*ref, *cand, probes, 3);
      table.AddRow({std::to_string(budget), ranker_name,
                    Fmt(agree.spearman, 3), Fmt(agree.top_k_overlap, 2),
                    Fmt(agree.top_1_match, 2)});
    }
    std::fprintf(stderr, "[selection] budget %zu done\n", budget);
  }
  table.Print();

  std::printf(
      "\nReading: selection from learned models approaches actual-model "
      "selection as the per-database sample budget grows; even modest "
      "budgets give high top-1 agreement, supporting the paper's claim "
      "that a few hundred documents suffice.\n\n");

  // --- ReDDE (Si & Callan 2003) on the same samples, with database sizes
  // estimated by capture-recapture (E12): the follow-up work this paper
  // enabled, evaluated on ground truth: each probe is distinctive to one
  // source database, so "probe ranks its source first" is exact.
  std::printf("### Probe accuracy: learned-model rankers vs ReDDE "
              "(200-doc samples, estimated sizes)\n\n");
  DatabaseCollection learned_dbs;
  std::vector<ReddeSample> redde_samples;
  for (size_t i = 0; i < kNumDbs; ++i) {
    SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = 200;
    opts.collect_documents = true;
    opts.seed = 7400 + i;
    Rng rng(8400 + i);
    auto initial = RandomEligibleTerm(*actuals[i], opts.filter, rng);
    QBS_CHECK(initial.has_value());
    opts.initial_term = *initial;
    auto result = QueryBasedSampler(engines[i], opts).Run();
    QBS_CHECK(result.ok());
    learned_dbs.Add(engines[i]->name(),
                    result->learned_stemmed.WithoutStopwords(
                        StopwordList::DefaultStemmed()));

    SizeEstimateOptions size_opts;
    size_opts.docs_per_run = 150;
    size_opts.initial_term = *initial;
    size_opts.seed_run1 = 910 + i;
    size_opts.seed_run2 = 10910 + i;
    auto est = EstimateDatabaseSize(engines[i], size_opts);
    QBS_CHECK(est.ok());
    redde_samples.push_back({engines[i]->name(),
                             std::move(result->sampled_documents),
                             std::max(est->estimated_docs, 1.0)});
  }
  ReddeRanker redde(redde_samples);

  MarkdownTable acc({"Ranker", "Probes selecting source db first"});
  for (const char* ranker_name : kRankers) {
    auto ranker = MakeRanker(ranker_name, &learned_dbs);
    size_t correct = 0;
    for (size_t p = 0; p < probes.size(); ++p) {
      size_t source = probe_set.sources[p];
      if (ranker->Rank(probes[p])[0].db_name == engines[source]->name()) {
        ++correct;
      }
    }
    acc.AddRow({ranker_name, std::to_string(correct) + " / " +
                                 std::to_string(probes.size())});
  }
  {
    size_t correct = 0;
    for (size_t p = 0; p < probes.size(); ++p) {
      size_t source = probe_set.sources[p];
      if (redde.Rank(probes[p])[0].db_name == engines[source]->name()) {
        ++correct;
      }
    }
    acc.AddRow({"redde (est. sizes)", std::to_string(correct) + " / " +
                                          std::to_string(probes.size())});
  }
  acc.Print();
  std::printf(
      "\nReDDE selects from a central index of the union of samples plus "
      "capture-recapture size estimates — entirely from artifacts "
      "query-based sampling produces.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

// Microbenchmarks: the sampling loop and the language-model metrics.
#include <benchmark/benchmark.h>

#include <memory>

#include "corpus/synthetic.h"
#include "lm/language_model.h"
#include "lm/metrics.h"
#include "sampling/sampler.h"

namespace qbs {
namespace {

struct Fixture {
  std::unique_ptr<SearchEngine> engine;
  LanguageModel actual;
  LanguageModel learned;  // a 100-document learned (stemmed) model
  std::string initial_term;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    SyntheticCorpusSpec spec;
    spec.name = "bench-sampling";
    spec.num_docs = 5'000;
    spec.vocab_size = 200'000;
    spec.seed = 8;
    auto engine = BuildSyntheticEngine(spec);
    QBS_CHECK(engine.ok());
    auto* f = new Fixture();
    f->engine = std::move(*engine);
    f->actual = f->engine->ActualLanguageModel();
    Rng rng(11);
    auto initial = RandomEligibleTerm(f->actual, TermFilter{}, rng);
    QBS_CHECK(initial.has_value());
    f->initial_term = *initial;

    SamplerOptions opts;
    opts.stopping.max_documents = 100;
    opts.initial_term = f->initial_term;
    auto result = QueryBasedSampler(f->engine.get(), opts).Run();
    QBS_CHECK(result.ok());
    f->learned = std::move(result->learned_stemmed);
    return f;
  }();
  return *fixture;
}

void BM_SampleDatabase(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const size_t docs = static_cast<size_t>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    SamplerOptions opts;
    opts.stopping.max_documents = docs;
    opts.initial_term = f.initial_term;
    opts.seed = seed++;
    auto result =
        QueryBasedSampler(f.engine.get(), opts).Run();
    QBS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->learned.vocabulary_size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(docs));
}
BENCHMARK(BM_SampleDatabase)->Arg(50)->Arg(100)->Arg(200);

// The same loop under each retrieval mode, in-process. With no wire to
// amortize, this isolates the sampler-side batching overhead (building
// handle lists, dedup-on-arrival) — the modes should be within noise of
// each other, and the learned model is identical by construction.
void SampleDatabaseMode(benchmark::State& state, RetrievalMode mode) {
  const Fixture& f = GetFixture();
  uint64_t seed = 1;
  for (auto _ : state) {
    SamplerOptions opts;
    opts.retrieval = mode;
    opts.stopping.max_documents = 100;
    opts.initial_term = f.initial_term;
    opts.seed = seed++;
    auto result = QueryBasedSampler(f.engine.get(), opts).Run();
    QBS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->learned.vocabulary_size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK_CAPTURE(SampleDatabaseMode, single_fetch,
                  RetrievalMode::kSingleFetch);
BENCHMARK_CAPTURE(SampleDatabaseMode, fetch_batch,
                  RetrievalMode::kFetchBatch);
BENCHMARK_CAPTURE(SampleDatabaseMode, query_and_fetch,
                  RetrievalMode::kQueryAndFetch);

void BM_CtfRatio(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    double r = CtfRatio(f.learned, f.actual);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CtfRatio);

void BM_SpearmanSimple(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    double r = SpearmanRankCorrelation(f.learned, f.actual);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SpearmanSimple);

void BM_SpearmanTieCorrected(benchmark::State& state) {
  const Fixture& f = GetFixture();
  SpearmanOptions opts;
  opts.tie_corrected = true;
  for (auto _ : state) {
    double r = SpearmanRankCorrelation(f.learned, f.actual, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SpearmanTieCorrected);

void BM_RDiff(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    double r = RDiff(f.learned, f.actual);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RDiff);

void BM_CompareLanguageModels(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    LmComparison cmp = CompareLanguageModels(f.learned, f.actual);
    benchmark::DoNotOptimize(cmp.ctf_ratio);
  }
}
BENCHMARK(BM_CompareLanguageModels);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

#include "harness/experiment.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "sampling/term_selector.h"
#include "util/logging.h"

namespace qbs {
namespace bench {

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

MarkdownTable::MarkdownTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void MarkdownTable::AddRow(std::vector<std::string> cells) {
  QBS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void MarkdownTable::Print() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(width[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

CorpusCache& CorpusCache::Instance() {
  static CorpusCache* cache = new CorpusCache();
  return *cache;
}

CorpusCache::Entry& CorpusCache::GetOrBuild(const SyntheticCorpusSpec& spec) {
  auto it = entries_.find(spec.name);
  if (it != entries_.end()) return it->second;

  WallTimer timer;
  std::fprintf(stderr, "[corpus] building %s (%u docs)...\n",
               spec.name.c_str(), spec.num_docs);
  auto engine = BuildSyntheticEngine(spec);
  QBS_CHECK(engine.ok());
  Entry entry;
  entry.engine = std::move(*engine);
  entry.actual =
      std::make_unique<LanguageModel>(entry.engine->ActualLanguageModel());
  std::fprintf(stderr,
               "[corpus] %s ready in %.1fs: %u docs, %zu unique terms, "
               "%" PRIu64 " total terms\n",
               spec.name.c_str(), timer.Seconds(), entry.engine->num_docs(),
               entry.engine->index().unique_terms(),
               entry.engine->index().total_terms());
  return entries_.emplace(spec.name, std::move(entry)).first->second;
}

SearchEngine* CorpusCache::Engine(const SyntheticCorpusSpec& spec) {
  return GetOrBuild(spec).engine.get();
}

const LanguageModel& CorpusCache::ActualLm(const SyntheticCorpusSpec& spec) {
  return *GetOrBuild(spec).actual;
}

TrajectoryResult RunTrajectory(SearchEngine* engine,
                               const LanguageModel& actual,
                               const TrajectoryConfig& config) {
  SamplerOptions opts;
  opts.strategy = config.strategy;
  opts.other_model = config.other_model;
  opts.docs_per_query = config.docs_per_query;
  opts.stopping.max_documents = config.max_docs;
  opts.stopping.max_queries = config.max_docs * 50;  // generous safety cap
  opts.seed = config.seed;
  if (!config.initial_term.empty()) {
    opts.initial_term = config.initial_term;
  } else {
    Rng rng(config.seed ^ 0xA5A5A5A5ULL);
    auto term = RandomEligibleTerm(actual, opts.filter, rng);
    QBS_CHECK(term.has_value());
    opts.initial_term = *term;
  }

  TrajectoryResult result;
  QueryBasedSampler sampler(engine, opts);
  size_t queries_seen = 0;
  sampler.set_document_observer(
      [&](size_t docs, const LanguageModel& /*raw*/,
          const LanguageModel& stemmed) {
        if (docs % config.measure_interval != 0 && docs != config.max_docs) {
          return;
        }
        LmComparison cmp = CompareLanguageModels(stemmed, actual);
        TrajectoryPoint point;
        point.docs = docs;
        point.queries = queries_seen;  // approximate: queries completed so far
        point.pct_vocab = cmp.pct_vocab_learned;
        point.ctf_ratio = cmp.ctf_ratio;
        point.spearman_df = cmp.spearman_df;
        result.points.push_back(point);
      });
  auto run = sampler.Run();
  QBS_CHECK(run.ok());
  result.sampling = std::move(*run);
  // Fill in the true query counts per point from the query log.
  size_t qi = 0, docs_so_far = 0;
  size_t pi = 0;
  for (const QueryRecord& q : result.sampling.queries) {
    ++qi;
    docs_so_far += q.new_docs;
    while (pi < result.points.size() && result.points[pi].docs <= docs_so_far) {
      result.points[pi].queries = qi;
      ++pi;
    }
  }
  return result;
}

const TrajectoryPoint* FirstReaching(const std::vector<TrajectoryPoint>& points,
                                     double threshold) {
  for (const TrajectoryPoint& p : points) {
    if (p.ctf_ratio >= threshold) return &p;
  }
  return nullptr;
}

void PrintHeader(const std::string& experiment_id, const std::string& title) {
  std::printf("## %s: %s\n\n", experiment_id.c_str(), title.c_str());
  const char* scale = std::getenv("QBS_SCALE");
  std::printf(
      "Corpora are synthetic stand-ins for the paper's test collections "
      "(see DESIGN.md); QBS_SCALE=%s.\n\n",
      scale != nullptr ? scale : "1.0 (default)");
}

}  // namespace bench
}  // namespace qbs

// Shared infrastructure for the experiment (table/figure reproduction)
// binaries: markdown output, wall timing, per-process corpus cache, and the
// sampling-trajectory runner used by most figures.
#ifndef QBS_BENCH_HARNESS_EXPERIMENT_H_
#define QBS_BENCH_HARNESS_EXPERIMENT_H_

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "lm/language_model.h"
#include "lm/metrics.h"
#include "sampling/sampler.h"
#include "search/search_engine.h"

namespace qbs {
namespace bench {

/// Formats a double with fixed precision.
std::string Fmt(double v, int precision = 3);

/// Formats a fraction as a percentage string, e.g. 0.862 -> "86.2%".
std::string Pct(double v, int precision = 1);

/// A GitHub-markdown table with aligned columns.
class MarkdownTable {
 public:
  explicit MarkdownTable(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Simple wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Builds and caches corpus engines and their actual language models, so
/// one binary reusing a corpus across sub-experiments pays the build cost
/// once. Build progress is reported on stderr.
class CorpusCache {
 public:
  static CorpusCache& Instance();

  /// Returns the engine for `spec`, building it on first use (keyed by
  /// spec.name).
  SearchEngine* Engine(const SyntheticCorpusSpec& spec);

  /// Returns the actual (database-side) language model for `spec`.
  const LanguageModel& ActualLm(const SyntheticCorpusSpec& spec);

 private:
  struct Entry {
    std::unique_ptr<SearchEngine> engine;
    std::unique_ptr<LanguageModel> actual;
  };
  Entry& GetOrBuild(const SyntheticCorpusSpec& spec);

  std::map<std::string, Entry> entries_;
};

/// One measured point along a sampling run.
struct TrajectoryPoint {
  size_t docs = 0;
  size_t queries = 0;
  double pct_vocab = 0.0;
  double ctf_ratio = 0.0;
  double spearman_df = 0.0;
};

/// Configuration for RunTrajectory.
struct TrajectoryConfig {
  size_t max_docs = 300;
  size_t docs_per_query = 4;
  SelectionStrategy strategy = SelectionStrategy::kRandomLearned;
  const LanguageModel* other_model = nullptr;
  uint64_t seed = 11;
  /// Metrics are recorded every this many documents (and at the end).
  size_t measure_interval = 10;
  /// Initial query term; when empty, one is drawn at random from the
  /// actual model with `seed` (the paper drew it from a reference model
  /// and found the choice had little effect, §4.4).
  std::string initial_term;
};

/// A full sampling run plus the metric trajectory against `actual`.
struct TrajectoryResult {
  std::vector<TrajectoryPoint> points;
  SamplingResult sampling;
};

/// Samples `engine` per the paper's algorithm, measuring the learned
/// (stemmed) model against `actual` along the way. Aborts the process on
/// configuration errors (experiments are not recoverable).
TrajectoryResult RunTrajectory(SearchEngine* engine,
                               const LanguageModel& actual,
                               const TrajectoryConfig& config);

/// Interpolation helper: the first measured point whose ctf ratio reaches
/// `threshold`, or nullptr if never reached.
const TrajectoryPoint* FirstReaching(const std::vector<TrajectoryPoint>& points,
                                     double threshold);

/// Prints the standard experiment header (title + corpus scale note).
void PrintHeader(const std::string& experiment_id, const std::string& title);

}  // namespace bench
}  // namespace qbs

#endif  // QBS_BENCH_HARNESS_EXPERIMENT_H_

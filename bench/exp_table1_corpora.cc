// E1 — Table 1: test corpora characteristics.
//
// Paper values (for the real CACM / WSJ88 / TREC-123):
//   CACM:     2MB,      3,204 docs, small vocabulary,  homogeneous
//   WSJ88:    104MB,   39,904 docs, medium vocabulary, heterogeneous
//   TREC-123: 3.2GB, 1,078,166 docs, huge vocabulary,  very heterogeneous
//
// Our synthetic stand-ins preserve the ordering and ratios at laptop scale
// (TREC-like is scaled to ~240k documents by default).
#include <cstdio>

#include "corpus/corpus_stats.h"
#include "harness/experiment.h"
#include "util/string_util.h"

namespace qbs {
namespace bench {
namespace {

void Run() {
  PrintHeader("E1 (Table 1)", "Test corpora");

  MarkdownTable table({"Name", "Size, bytes", "Size, documents",
                       "Size, unique terms", "Size, total terms",
                       "Avg doc len", "Variety"});
  struct Row {
    SyntheticCorpusSpec spec;
    const char* variety;
  };
  Row rows[] = {
      {CacmLikeSpec(), "very homogeneous"},
      {Wsj88LikeSpec(), "homogeneous"},
      {Trec123LikeSpec(), "heterogeneous"},
      {SupportKbLikeSpec(), "homogeneous (product support)"},
  };
  for (const Row& row : rows) {
    SearchEngine* engine = CorpusCache::Instance().Engine(row.spec);
    CorpusStats stats = ComputeCorpusStats(*engine);
    table.AddRow({stats.name, HumanBytes(stats.bytes),
                  WithThousands(stats.num_docs),
                  WithThousands(stats.unique_terms),
                  WithThousands(stats.total_terms),
                  Fmt(stats.avg_doc_length(), 1), row.variety});
  }
  table.Print();

  std::printf(
      "\nPaper reference (real corpora): CACM 2MB / 3,204 docs; WSJ88 "
      "104MB / 39,904 docs; TREC-123 3.2GB / 1,078,166 docs.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

// Microbenchmarks for the mapped model store: pack rate (heap models ->
// on-disk image), store-open latency with and without verification (the
// "instant broker restart" number), and per-lookup cost of the mapped
// front-coded dictionary against the heap hash map it replaces at serve
// time. models_per_sec on the pack benchmark and the open/lookup ns/op
// are what bench.sh extracts into BENCH_<sha>.json.
//
// JSON output for dashboards: --benchmark_format=json
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "corpus/synthetic.h"
#include "lm/language_model.h"
#include "mstore/mapped_model_store.h"
#include "mstore/model_store_writer.h"

namespace qbs {
namespace {

struct Fixture {
  std::vector<std::pair<std::string, LanguageModel>> models;
  std::string path;        // packed image of `models`
  uint64_t image_bytes = 0;
  std::shared_ptr<const MappedModelStore> store;
  std::vector<std::string> probes;  // alternating present / absent terms

  Fixture() {
    for (size_t i = 0; i < 4; ++i) {
      SyntheticCorpusSpec spec;
      spec.name = "bench-mstore-" + std::to_string(i);
      spec.num_docs = 1'000;
      spec.vocab_size = 40'000;
      spec.num_topics = 3;
      spec.seed = 137 + 11 * i;
      auto engine = BuildSyntheticEngine(spec);
      QBS_CHECK(engine.ok());
      models.emplace_back(spec.name, (*engine)->ActualLanguageModel());
    }
    ModelStoreWriter writer;
    for (const auto& [name, model] : models) {
      QBS_CHECK(writer.Add(name, model).ok());
    }
    path = (std::filesystem::temp_directory_path() / "qbs_micro_mstore.qms")
               .string();
    QBS_CHECK(writer.WriteToFile(path).ok());
    auto opened = MappedModelStore::Open(path);
    QBS_CHECK(opened.ok());
    store = *opened;
    image_bytes = store->file_size();
    // Probe terms spread across the df spectrum, interleaved with misses
    // so the lookup benchmarks pay for both outcomes.
    auto ranked = models[0].second.RankedTerms(TermMetric::kDf);
    for (size_t t = 0; t < ranked.size() && probes.size() < 64; t += 97) {
      probes.push_back(ranked[t].first);
      probes.push_back("absent-" + std::to_string(t));
    }
  }
  ~Fixture() { std::remove(path.c_str()); }
};

const Fixture& GetFixture() {
  static Fixture fixture;
  return fixture;
}

// Packing cost: snapshot + sort + front-code + checksum for the whole
// federation, image in memory (no disk). models_per_sec is the rate a
// refresh cycle can afford to persist at.
void BM_PackModels(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    ModelStoreWriter writer;
    for (const auto& [name, model] : f.models) {
      QBS_CHECK(writer.Add(name, model).ok());
    }
    auto image = writer.Serialize();
    QBS_CHECK(image.ok());
    benchmark::DoNotOptimize(*image);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * f.models.size()));
  state.counters["models_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * f.models.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PackModels);

// Cold-start latency, full integrity pass: every section CRC, the whole
// dictionary walked in order. This is the worst-case restart cost.
void BM_StoreOpenVerify(benchmark::State& state) {
  const Fixture& f = GetFixture();
  MappedModelStore::OpenOptions opts;
  opts.verify = true;
  for (auto _ : state) {
    auto store = MappedModelStore::Open(f.path, opts);
    QBS_CHECK(store.ok());
    benchmark::DoNotOptimize(*store);
  }
  state.counters["image_bytes"] =
      benchmark::Counter(static_cast<double>(f.image_bytes));
}
BENCHMARK(BM_StoreOpenVerify);

// Restart latency with structural checks only — header, directory, and
// section bounds, no CRC sweep. "mmap and publish" costs this.
void BM_StoreOpenNoVerify(benchmark::State& state) {
  const Fixture& f = GetFixture();
  MappedModelStore::OpenOptions opts;
  opts.verify = false;
  for (auto _ : state) {
    auto store = MappedModelStore::Open(f.path, opts);
    QBS_CHECK(store.ok());
    benchmark::DoNotOptimize(*store);
  }
}
BENCHMARK(BM_StoreOpenNoVerify);

// Per-lookup cost of the mapped dictionary: block binary search plus a
// bounded front-coded scan, straight off the mapping.
void BM_MappedFindStats(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const LanguageModelView& view = f.store->model(0);
  size_t i = 0;
  for (auto _ : state) {
    TermStats stats;
    benchmark::DoNotOptimize(
        view.FindStats(f.probes[i++ % f.probes.size()], &stats));
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MappedFindStats);

// The heap hash map the mapping competes with, on identical probes —
// the delta is the price of zero-copy restart.
void BM_HeapFindStats(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const LanguageModelView& view = f.models[0].second;
  size_t i = 0;
  for (auto _ : state) {
    TermStats stats;
    benchmark::DoNotOptimize(
        view.FindStats(f.probes[i++ % f.probes.size()], &stats));
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HeapFindStats);

// Full dictionary scan: what a Merge or model export pays per term when
// reading straight from the mapping.
void BM_MappedForEachTerm(benchmark::State& state) {
  const Fixture& f = GetFixture();
  const LanguageModelView& view = f.store->model(0);
  uint64_t terms = 0;
  for (auto _ : state) {
    uint64_t df_sum = 0;
    view.ForEachTerm([&df_sum](std::string_view, const TermStats& stats) {
      df_sum += stats.df;
    });
    benchmark::DoNotOptimize(df_sum);
    terms += view.vocabulary_size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(terms));
}
BENCHMARK(BM_MappedForEachTerm);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

// Microbenchmarks: ranked query evaluation over a mid-sized engine.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "lm/language_model.h"
#include "search/search_engine.h"

namespace qbs {
namespace {

struct Fixture {
  std::unique_ptr<SearchEngine> engine;
  std::vector<std::string> frequent_terms;   // high-df query terms
  std::vector<std::string> rare_terms;       // low-df query terms
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    SyntheticCorpusSpec spec;
    spec.name = "bench-search";
    spec.num_docs = 10'000;
    spec.vocab_size = 300'000;
    spec.seed = 7;
    auto engine = BuildSyntheticEngine(spec);
    QBS_CHECK(engine.ok());
    auto* f = new Fixture();
    f->engine = std::move(*engine);
    LanguageModel actual = f->engine->ActualLanguageModel();
    auto ranked = actual.RankedTerms(TermMetric::kDf);
    for (size_t i = 0; i < 16 && i < ranked.size(); ++i) {
      f->frequent_terms.push_back(ranked[i].first);
    }
    for (size_t i = 0; i < 16 && i < ranked.size(); ++i) {
      f->rare_terms.push_back(ranked[ranked.size() / 2 + i].first);
    }
    return f;
  }();
  return *fixture;
}

void BM_OneTermQueryFrequent(benchmark::State& state) {
  const Fixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    auto hits = f.engine->RunQuery(f.frequent_terms[i++ % 16], 4);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_OneTermQueryFrequent);

void BM_OneTermQueryRare(benchmark::State& state) {
  const Fixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    auto hits = f.engine->RunQuery(f.rare_terms[i++ % 16], 4);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_OneTermQueryRare);

void BM_MultiTermQuery(benchmark::State& state) {
  const Fixture& f = GetFixture();
  std::string query = f.frequent_terms[0] + " " + f.rare_terms[0] + " " +
                      f.frequent_terms[1] + " " + f.rare_terms[1];
  for (auto _ : state) {
    auto hits = f.engine->RunQuery(query, 10);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_MultiTermQuery);

void BM_FetchDocument(benchmark::State& state) {
  const Fixture& f = GetFixture();
  auto hits = f.engine->RunQuery(f.frequent_terms[0], 4);
  QBS_CHECK(hits.ok() && !hits->empty());
  std::string handle = (*hits)[0].handle;
  for (auto _ : state) {
    auto text = f.engine->FetchDocument(handle);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_FetchDocument);

void BM_ActualLanguageModelExport(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    LanguageModel lm = f.engine->ActualLanguageModel();
    benchmark::DoNotOptimize(lm.vocabulary_size());
  }
}
BENCHMARK(BM_ActualLanguageModelExport);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

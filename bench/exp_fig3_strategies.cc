// E6 — Figure 3 + Table 3: query-term selection strategies on the
// WSJ88-like corpus (4 documents per query, 300-document budget).
//   Fig. 3a: ctf ratio vs docs examined, per strategy
//   Fig. 3b: Spearman rank correlation vs docs examined, per strategy
//   Table 3: queries required to retrieve 300 documents, per strategy
//
// Strategies: random from learned model (baseline), highest avg_tf / df /
// ctf from learned model, and random from an *other* language model (the
// large reference corpus's actual model, mirroring the paper's use of the
// full TREC-123 model).
//
// Expected shape (paper): random-llm and random-olm learn comparably per
// *document*; random-olm needs ~2x the queries (failed/low-yield queries);
// frequency-based strategies (especially ctf) lag on both measures.
#include <cstdio>

#include "harness/experiment.h"

namespace qbs {
namespace bench {
namespace {

void Run() {
  PrintHeader("E6 (Fig. 3a/3b + Table 3)",
              "Query selection strategies (wsj88-like, 4 docs/query)");

  SyntheticCorpusSpec wsj = Wsj88LikeSpec();
  SearchEngine* engine = CorpusCache::Instance().Engine(wsj);
  const LanguageModel& actual = CorpusCache::Instance().ActualLm(wsj);

  // The "other" model: the big reference corpus's actual model. Note this
  // is a favourable choice for olm, exactly as the paper cautions (§5.2).
  const LanguageModel& other =
      CorpusCache::Instance().ActualLm(Trec123LikeSpec());

  struct Job {
    std::string label;
    SelectionStrategy strategy;
    const LanguageModel* other_model;
  };
  Job jobs[] = {
      {"random_olm", SelectionStrategy::kRandomOther, &other},
      {"random_llm", SelectionStrategy::kRandomLearned, nullptr},
      {"avg_tf_llm", SelectionStrategy::kAvgTfLearned, nullptr},
      {"df_llm", SelectionStrategy::kDfLearned, nullptr},
      {"ctf_llm", SelectionStrategy::kCtfLearned, nullptr},
  };

  std::vector<std::vector<TrajectoryPoint>> series;
  std::vector<size_t> queries_needed;
  std::vector<size_t> failed_queries;
  for (const Job& job : jobs) {
    TrajectoryConfig config;
    config.max_docs = 300;
    config.docs_per_query = 4;
    config.measure_interval = 25;
    config.strategy = job.strategy;
    config.other_model = job.other_model;
    config.seed = 555;
    WallTimer timer;
    TrajectoryResult result = RunTrajectory(engine, actual, config);
    std::fprintf(stderr, "[fig3] %s: %zu queries, %zu failed (%.1fs)\n",
                 job.label.c_str(), result.sampling.queries_run,
                 result.sampling.failed_queries, timer.Seconds());
    series.push_back(std::move(result.points));
    queries_needed.push_back(result.sampling.queries_run);
    failed_queries.push_back(result.sampling.failed_queries);
  }

  auto print_series = [&](const char* title, auto getter, int precision,
                          bool as_pct) {
    std::printf("%s\n\n", title);
    std::vector<std::string> headers = {"Docs examined"};
    for (const Job& job : jobs) headers.push_back(job.label);
    MarkdownTable table(std::move(headers));
    for (size_t i = 0; i < series[0].size(); ++i) {
      std::vector<std::string> row = {std::to_string(series[0][i].docs)};
      for (size_t s = 0; s < series.size(); ++s) {
        double v = i < series[s].size() ? getter(series[s][i]) : 0.0;
        row.push_back(as_pct ? Pct(v, 1) : Fmt(v, precision));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  };

  print_series("### Fig. 3a: ctf ratio vs docs examined",
               [](const TrajectoryPoint& p) { return p.ctf_ratio; }, 1, true);
  print_series("### Fig. 3b: Spearman rank correlation vs docs examined",
               [](const TrajectoryPoint& p) { return p.spearman_df; }, 3,
               false);

  std::printf("### Table 3: queries required to retrieve 300 documents\n\n");
  MarkdownTable t3({"Strategy", "Queries", "Failed queries"});
  for (size_t s = 0; s < series.size(); ++s) {
    t3.AddRow({jobs[s].label, std::to_string(queries_needed[s]),
               std::to_string(failed_queries[s])});
  }
  t3.Print();

  std::printf(
      "\nShape check (paper): Table 3 was 178 (random_olm) vs 89 "
      "(random_llm) vs 96-99 (frequency-based); random selection matches "
      "or beats frequency-based selection on accuracy.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

// Microbenchmarks: the cost of putting the wire between sampler and
// database. Local RunQuery/FetchDocument vs. the same calls through
// DbServer + RemoteTextDatabase over loopback TCP, raw ping RTT (alone
// and at 1k/10k held connections — p99_rpc_us is the tail-latency
// headline), and wire encode/decode throughput.
//
// JSON output for dashboards: --benchmark_format=json
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "corpus/synthetic.h"
#include "lm/language_model.h"
#include "net/db_server.h"
#include "net/remote_db.h"
#include "net/wire.h"
#include "sampling/sampler.h"
#include "search/search_engine.h"

namespace qbs {
namespace {

struct Fixture {
  std::unique_ptr<SearchEngine> engine;
  std::unique_ptr<DbServer> server;
  std::unique_ptr<RemoteTextDatabase> remote;
  std::vector<std::string> terms;
  std::string handle;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    SyntheticCorpusSpec spec;
    spec.name = "bench-net";
    spec.num_docs = 5'000;
    spec.vocab_size = 100'000;
    spec.seed = 17;
    auto engine = BuildSyntheticEngine(spec);
    QBS_CHECK(engine.ok());
    auto* f = new Fixture();
    f->engine = std::move(*engine);

    f->server = std::make_unique<DbServer>(f->engine.get(), DbServerOptions{});
    QBS_CHECK(f->server->Start().ok());
    RemoteDatabaseOptions client;
    client.host = "127.0.0.1";
    client.port = f->server->port();
    f->remote = std::make_unique<RemoteTextDatabase>(client);
    QBS_CHECK(f->remote->Connect().ok());

    LanguageModel actual = f->engine->ActualLanguageModel();
    auto ranked = actual.RankedTerms(TermMetric::kDf);
    for (size_t i = 0; i < 16 && i < ranked.size(); ++i) {
      f->terms.push_back(ranked[i].first);
    }
    auto hits = f->engine->RunQuery(f->terms[0], 4);
    QBS_CHECK(hits.ok() && !hits->empty());
    f->handle = (*hits)[0].handle;
    return f;
  }();
  return *fixture;
}

// Baseline: the database answered in-process, no wire involved.
void BM_LocalRunQuery(benchmark::State& state) {
  const Fixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    auto hits = f.engine->RunQuery(f.terms[i++ % f.terms.size()], 4);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LocalRunQuery);

// The same query through frame + TCP loopback + server + frame back.
// items_per_second here is remote queries/sec on one connection.
void BM_RemoteRunQuery(benchmark::State& state) {
  const Fixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    auto hits = f.remote->RunQuery(f.terms[i++ % f.terms.size()], 4);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteRunQuery);

void BM_LocalFetchDocument(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    auto text = f.engine->FetchDocument(f.handle);
    benchmark::DoNotOptimize(text);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LocalFetchDocument);

void BM_RemoteFetchDocument(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    auto text = f.remote->FetchDocument(f.handle);
    benchmark::DoNotOptimize(text);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteFetchDocument);

// The floor under every remote call: one minimal frame each way over
// loopback. Everything above this number is payload and server work.
void BM_RemotePingRtt(benchmark::State& state) {
  const Fixture& f = GetFixture();
  for (auto _ : state) {
    Status status = f.remote->Connect();
    benchmark::DoNotOptimize(status);
    QBS_CHECK(status.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RemotePingRtt);

// One v2 round trip carrying the query AND its documents, against the
// query-then-fetch-each sequence it replaces (compare with
// BM_RemoteRunQuery + 4x BM_RemoteFetchDocument).
void BM_RemoteQueryAndFetch(benchmark::State& state) {
  const Fixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    auto round = f.remote->QueryAndFetch(f.terms[i++ % f.terms.size()], 4);
    benchmark::DoNotOptimize(round);
    QBS_CHECK(round.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteQueryAndFetch);

// End-to-end sampling runs over loopback, one per retrieval mode. The
// ns/op numbers compare wall time; the rpcs_per_doc counter is the
// wire-efficiency headline (v1 ~ 1 + queries/docs, kQueryAndFetch ~
// queries/docs). bench.sh extracts both into BENCH_<sha>.json.
void RemoteSampling(benchmark::State& state, RetrievalMode mode,
                    bool enable_batching) {
  const Fixture& f = GetFixture();
  RemoteDatabaseOptions copts;
  copts.host = "127.0.0.1";
  copts.port = f.server->port();
  copts.enable_batching = enable_batching;
  RemoteTextDatabase remote(copts);
  QBS_CHECK(remote.Connect().ok());
  uint64_t rpcs_before = remote.rpcs();

  SamplerOptions opts;
  opts.retrieval = mode;
  opts.docs_per_query = 8;
  opts.stopping.max_documents = 40;
  opts.initial_term = f.terms[0];
  opts.seed = 23;

  size_t docs = 0;
  for (auto _ : state) {
    auto result = QueryBasedSampler(&remote, opts).Run();
    QBS_CHECK(result.ok());
    docs += result->documents_examined;
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs));
  state.counters["rpcs_per_doc"] = benchmark::Counter(
      static_cast<double>(remote.rpcs() - rpcs_before) /
      static_cast<double>(docs == 0 ? 1 : docs));
}
BENCHMARK_CAPTURE(RemoteSampling, v1_single_fetch,
                  RetrievalMode::kSingleFetch, false);
BENCHMARK_CAPTURE(RemoteSampling, fetch_batch,
                  RetrievalMode::kFetchBatch, true);
BENCHMARK_CAPTURE(RemoteSampling, query_and_fetch,
                  RetrievalMode::kQueryAndFetch, true);

// The v1 wire shape again, but with fetches pipelined ahead of
// ingestion on a small pool — same RPC count as v1_single_fetch, less
// wall time per document. This is the mode for old servers that will
// never speak v2.
void BM_RemoteSamplingPipelined(benchmark::State& state) {
  const Fixture& f = GetFixture();
  RemoteDatabaseOptions copts;
  copts.host = "127.0.0.1";
  copts.port = f.server->port();
  copts.enable_batching = false;
  RemoteTextDatabase remote(copts);
  QBS_CHECK(remote.Connect().ok());
  uint64_t rpcs_before = remote.rpcs();
  ThreadPool pool(3);

  SamplerOptions opts;
  opts.retrieval = RetrievalMode::kSingleFetch;
  opts.fetch_pool = &pool;
  opts.prefetch_depth = 4;
  opts.docs_per_query = 8;
  opts.stopping.max_documents = 40;
  opts.initial_term = f.terms[0];
  opts.seed = 23;

  size_t docs = 0;
  for (auto _ : state) {
    auto result = QueryBasedSampler(&remote, opts).Run();
    QBS_CHECK(result.ok());
    docs += result->documents_examined;
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs));
  state.counters["rpcs_per_doc"] = benchmark::Counter(
      static_cast<double>(remote.rpcs() - rpcs_before) /
      static_cast<double>(docs == 0 ? 1 : docs));
}
BENCHMARK(BM_RemoteSamplingPipelined);

/// Raises RLIMIT_NOFILE toward its hard cap (2 fds per held
/// connection) and reports the resulting soft limit.
size_t RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 1024;
  if (limit.rlim_cur < limit.rlim_max) {
    rlimit raised = limit;
    raised.rlim_cur = limit.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) limit = raised;
  }
  return static_cast<size_t>(limit.rlim_cur);
}

/// N connected clients held open against the shared DbServer, cached
/// per N — benchmark re-entry must not redial the whole pool.
const std::vector<std::unique_ptr<RemoteTextDatabase>>* ConnPool(
    size_t conns) {
  static auto* pools = new std::vector<
      std::pair<size_t, std::vector<std::unique_ptr<RemoteTextDatabase>>>>;
  for (auto& [n, pool] : *pools) {
    if (n == conns) return &pool;
  }
  const Fixture& f = GetFixture();
  std::vector<std::unique_ptr<RemoteTextDatabase>> pool;
  pool.reserve(conns);
  for (size_t i = 0; i < conns; ++i) {
    RemoteDatabaseOptions copts;
    copts.host = "127.0.0.1";
    copts.port = f.server->port();
    auto client = std::make_unique<RemoteTextDatabase>(copts);
    // Connect() is a ping round trip: the dial loop self-paces against
    // the accept loop instead of overrunning the listen backlog.
    if (!client->Connect().ok()) return nullptr;
    pool.push_back(std::move(client));
  }
  pools->emplace_back(conns, std::move(pool));
  return &pools->back().second;
}

// Ping RTT while the event loop holds state.range(0) open connections:
// the floor under every RPC at connection scale, rotating across the
// pool so the whole epoll interest set stays live. p99_rpc_us is the
// tail-latency counter bench.sh extracts; CI's load job diffs it.
void BM_RemotePingRttAtScale(benchmark::State& state) {
  const size_t conns = static_cast<size_t>(state.range(0));
  const size_t fd_limit = RaiseFdLimit();
  if (fd_limit < 2 * conns + 128) {
    state.SkipWithError("RLIMIT_NOFILE too low for this connection count");
    return;
  }
  const auto* pool = ConnPool(conns);
  if (pool == nullptr) {
    state.SkipWithError("failed to dial the connection pool");
    return;
  }
  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 16);
  size_t i = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    Status status = (*pool)[i++ % pool->size()]->Connect();
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(status);
    QBS_CHECK(status.ok());
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    state.counters["p99_rpc_us"] = latencies_us[std::min(
        latencies_us.size() - 1, latencies_us.size() * 99 / 100)];
  }
}
BENCHMARK(BM_RemotePingRttAtScale)->Arg(1000)->Arg(10000);

// Pure serialization cost, no socket: how fast frames are built/parsed.
void BM_WireEncodeDecodeResponse(benchmark::State& state) {
  WireResponse response;
  response.request_id = 1;
  response.method = WireMethod::kRunQuery;
  for (int i = 0; i < 10; ++i) {
    response.hits.push_back({"doc-" + std::to_string(i), 1.0 / (i + 1)});
  }
  for (auto _ : state) {
    auto decoded = DecodeResponse(EncodeResponse(response));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WireEncodeDecodeResponse);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

// E12 — Extension: database-size estimation by capture-recapture, closing
// the paper's declared open problem (§3: "it is unclear how to estimate
// database size by sampling"). Two independent query-based samples per
// database; Chapman-corrected Lincoln-Petersen estimate from their
// overlap. Also demonstrates the paper's proposed use: projecting learned
// frequencies to full-database scale.
#include <cstdio>

#include "harness/experiment.h"
#include "sampling/size_estimator.h"

namespace qbs {
namespace bench {
namespace {

void Run() {
  PrintHeader("E12 (extension)",
              "Database-size estimation by capture-recapture");

  struct Job {
    const char* label;
    uint32_t true_docs;
    SyntheticCorpusSpec spec;
  };
  std::vector<Job> jobs;
  for (uint32_t docs : {1'000u, 4'000u, 16'000u, 64'000u}) {
    SyntheticCorpusSpec spec;
    spec.name = "sizedb-" + std::to_string(docs);
    spec.num_docs = docs;
    spec.vocab_size = 400'000;
    spec.zipf_s = 1.3;
    spec.num_topics = 32;
    spec.seed = 52000 + docs;
    jobs.push_back({"", docs, spec});
  }

  MarkdownTable table({"True docs", "Capture size", "Overlap",
                       "Estimated docs", "Estimate / truth", "Queries"});
  for (const Job& job : jobs) {
    SearchEngine* engine = CorpusCache::Instance().Engine(job.spec);
    const LanguageModel& actual = CorpusCache::Instance().ActualLm(job.spec);
    for (size_t capture : {200, 400}) {
      if (capture >= job.true_docs) continue;
      SizeEstimateOptions opts;
      opts.docs_per_run = capture;
      opts.seed_run1 = 17 + job.true_docs;
      opts.seed_run2 = 10007 + job.true_docs;
      Rng rng(4 + job.true_docs);
      auto initial = RandomEligibleTerm(actual, TermFilter{}, rng);
      QBS_CHECK(initial.has_value());
      opts.initial_term = *initial;
      auto est = EstimateDatabaseSize(engine, opts);
      QBS_CHECK(est.ok());
      table.AddRow({std::to_string(job.true_docs), std::to_string(capture),
                    std::to_string(est->overlap),
                    Fmt(est->estimated_docs, 0),
                    Fmt(est->estimated_docs / job.true_docs, 2),
                    std::to_string(est->queries_run)});
    }
    std::fprintf(stderr, "[size] %u-doc database done\n", job.true_docs);
  }
  table.Print();

  std::printf(
      "\nReading: the estimate tracks true size across a 64x range. It is "
      "popularity-biased (query-based captures over-sample retrievable "
      "documents), so it reads as a lower bound — still sufficient for the "
      "paper's purpose of scaling learned frequencies across databases of "
      "different sizes (§3).\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

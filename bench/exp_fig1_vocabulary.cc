// E2/E3 — Figure 1: how well a learned language model covers the
// vocabulary of a full-text database.
//   (a) percentage of database terms covered by the learned model
//   (b) percentage of database word occurrences (ctf ratio) covered
// Baseline protocol: random-llm term selection, 4 documents per query,
// 300 documents for CACM/WSJ88 and 500 for TREC-123 (paper §4.4, §5).
//
// Expected shape (paper): (a) stays low and is corpus-size dependent
// (~35% CACM, ~1% TREC-123 at 250 docs); (b) exceeds 80% for ALL corpora
// by ~250 documents and levels off — the headline result.
#include <cstdio>

#include "harness/experiment.h"

namespace qbs {
namespace bench {
namespace {

struct Series {
  std::string name;
  std::vector<TrajectoryPoint> points;
};

void Run() {
  PrintHeader("E2+E3 (Fig. 1a/1b)",
              "Vocabulary coverage of learned language models");

  struct Job {
    SyntheticCorpusSpec spec;
    size_t max_docs;
  };
  Job jobs[] = {
      {CacmLikeSpec(), 300},
      {Wsj88LikeSpec(), 300},
      {Trec123LikeSpec(), 500},
  };

  std::vector<Series> series;
  for (const Job& job : jobs) {
    SearchEngine* engine = CorpusCache::Instance().Engine(job.spec);
    const LanguageModel& actual = CorpusCache::Instance().ActualLm(job.spec);
    TrajectoryConfig config;
    config.max_docs = job.max_docs;
    config.docs_per_query = 4;
    config.measure_interval = 25;
    config.seed = 2024;
    WallTimer timer;
    TrajectoryResult result = RunTrajectory(engine, actual, config);
    std::fprintf(stderr, "[fig1] %s sampled in %.1fs (%zu queries)\n",
                 job.spec.name.c_str(), timer.Seconds(),
                 result.sampling.queries_run);
    series.push_back({job.spec.name, std::move(result.points)});
  }

  std::printf("### Fig. 1a: %% of database terms in the learned model\n\n");
  MarkdownTable ta({"Docs examined", series[0].name, series[1].name,
                    series[2].name});
  size_t max_points = 0;
  for (const Series& s : series) max_points = std::max(max_points, s.points.size());
  for (size_t i = 0; i < max_points; ++i) {
    std::vector<std::string> row;
    row.push_back(i < series[0].points.size()
                      ? std::to_string(series[0].points[i].docs)
                      : std::to_string(series[2].points[i].docs));
    for (const Series& s : series) {
      row.push_back(i < s.points.size() ? Pct(s.points[i].pct_vocab, 2) : "-");
    }
    ta.AddRow(std::move(row));
  }
  ta.Print();

  std::printf(
      "\n### Fig. 1b: %% of database word occurrences (ctf ratio) covered\n\n");
  MarkdownTable tb({"Docs examined", series[0].name, series[1].name,
                    series[2].name});
  for (size_t i = 0; i < max_points; ++i) {
    std::vector<std::string> row;
    row.push_back(i < series[0].points.size()
                      ? std::to_string(series[0].points[i].docs)
                      : std::to_string(series[2].points[i].docs));
    for (const Series& s : series) {
      row.push_back(i < s.points.size() ? Pct(s.points[i].ctf_ratio, 1) : "-");
    }
    tb.AddRow(std::move(row));
  }
  tb.Print();

  std::printf("\nShape check (paper): ctf ratio > 80%% for all corpora by "
              "~250 docs, while %% terms learned differs by orders of "
              "magnitude across corpus sizes.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

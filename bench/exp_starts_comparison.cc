// E11 — Extension (paper §2.2): why the cooperative (STARTS-style)
// approach fails in multi-party environments, measured.
//
//   1. Incomparability: databases index with different conventions
//      (stemming / stopwords / case). We export each database's own-term-
//      space model and measure pairwise term-space overlap — cooperative
//      statistics cannot be merged; sampled models (built uniformly by the
//      selection service) can.
//   2. Misrepresentation: a spamming database inflates and injects terms in
//      its cooperative export, hijacking selection; the sampled model of
//      the same database is immune.
//   3. Refusal: legacy databases simply cannot export; sampling still works.
#include <cstdio>

#include "harness/experiment.h"
#include "selection/db_selection.h"
#include "starts/starts.h"
#include "text/stopwords.h"

namespace qbs {
namespace bench {
namespace {

// One corpus indexed under four different conventions.
struct Convention {
  const char* label;
  bool stem;
  bool stop;
  const StopwordList* stopwords;  // nullptr = default
};

void Run() {
  PrintHeader("E11 (extension, paper §2.2)",
              "Cooperative STARTS exchange vs query-based sampling");

  // --- Part 1: term-space incomparability ---
  Convention conventions[] = {
      {"stem+stop", true, true, nullptr},
      {"stem only", true, false, nullptr},
      {"stop only", false, true, nullptr},
      {"raw", false, false, nullptr},
  };
  SyntheticCorpusSpec base = CacmLikeSpec();
  std::vector<std::unique_ptr<SearchEngine>> variants;
  for (const Convention& conv : conventions) {
    SearchEngineOptions opts;
    AnalyzerOptions aopts;
    aopts.stem = conv.stem;
    aopts.remove_stopwords = conv.stop;
    aopts.stopwords = conv.stopwords;
    opts.analyzer = Analyzer(aopts);
    auto engine = std::make_unique<SearchEngine>(
        std::string("cacm/") + conv.label, std::move(opts));
    Status add_ok = Status::OK();
    Status gen = GenerateSyntheticCorpus(
        base, [&](const std::string& name, const std::string& text) {
          if (add_ok.ok()) add_ok = engine->AddDocument(name, text);
        });
    QBS_CHECK(gen.ok());
    QBS_CHECK(add_ok.ok());
    engine->FinishLoading();
    variants.push_back(std::move(engine));
  }

  std::printf("### Term-space overlap of cooperative exports (ctf mass of "
              "row's terms found in column's vocabulary)\n\n");
  std::vector<std::string> headers = {"export of \\ vs"};
  for (const Convention& conv : conventions) headers.push_back(conv.label);
  MarkdownTable overlap(std::move(headers));
  std::vector<LanguageModel> exports;
  for (auto& v : variants) {
    HonestSource source(v.get());
    auto e = source.ExportLanguageModel();
    QBS_CHECK(e.ok());
    exports.push_back(std::move(e->model));
  }
  for (size_t i = 0; i < exports.size(); ++i) {
    std::vector<std::string> row = {conventions[i].label};
    for (size_t j = 0; j < exports.size(); ++j) {
      row.push_back(Pct(TermSpaceOverlap(exports[i], exports[j]), 1));
    }
    overlap.AddRow(std::move(row));
  }
  overlap.Print();

  // Sampled models of the same four databases live in ONE term space
  // chosen by the selection service.
  std::printf("\n### Term-space overlap of SAMPLED models of the same four "
              "databases (service-controlled term space)\n\n");
  std::vector<LanguageModel> sampled;
  for (auto& v : variants) {
    LanguageModel actual = v->ActualLanguageModel();
    SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = 150;
    opts.seed = 4242;
    Rng rng(4243);
    auto initial = RandomEligibleTerm(actual, opts.filter, rng);
    QBS_CHECK(initial.has_value());
    opts.initial_term = *initial;
    auto result = QueryBasedSampler(v.get(), opts).Run();
    QBS_CHECK(result.ok());
    sampled.push_back(std::move(result->learned));
  }
  MarkdownTable overlap2({"sample of \\ vs", conventions[0].label,
                          conventions[1].label, conventions[2].label,
                          conventions[3].label});
  for (size_t i = 0; i < sampled.size(); ++i) {
    std::vector<std::string> row = {conventions[i].label};
    for (size_t j = 0; j < sampled.size(); ++j) {
      row.push_back(Pct(TermSpaceOverlap(sampled[i], sampled[j]), 1));
    }
    overlap2.AddRow(std::move(row));
  }
  overlap2.Print();

  // --- Part 2: misrepresentation ---
  std::printf("\n### Misrepresentation: selection for query 'casino "
              "jackpot' across 4 databases\n\n");
  std::vector<SearchEngine*> fed;
  std::vector<const LanguageModel*> fed_actuals;
  for (size_t i = 0; i < 4; ++i) {
    SyntheticCorpusSpec spec;
    spec.name = "startsdb-" + std::to_string(i);
    spec.num_docs = 1'500;
    spec.vocab_size = 100'000;
    spec.num_topics = 4;
    spec.seed = 72000 + i * 7;
    fed.push_back(CorpusCache::Instance().Engine(spec));
    fed_actuals.push_back(&CorpusCache::Instance().ActualLm(spec));
  }

  // Database 3 lies in its cooperative export.
  MisrepresentationOptions lie;
  lie.frequency_inflation = 3.0;
  lie.injected_terms = {"casino", "jackpot", "lottery"};
  lie.injected_df = 1'000;
  lie.injected_ctf = 25'000;

  DatabaseCollection coop_dbs;
  for (size_t i = 0; i < 4; ++i) {
    if (i == 3) {
      MisrepresentingSource liar(fed[i], lie);
      auto e = liar.ExportLanguageModel();
      QBS_CHECK(e.ok());
      coop_dbs.Add(fed[i]->name(), std::move(e->model));
    } else {
      HonestSource honest(fed[i]);
      auto e = honest.ExportLanguageModel();
      QBS_CHECK(e.ok());
      coop_dbs.Add(fed[i]->name(), std::move(e->model));
    }
  }

  DatabaseCollection sampled_dbs;
  for (size_t i = 0; i < 4; ++i) {
    SamplerOptions opts;
    opts.docs_per_query = 4;
    opts.stopping.max_documents = 150;
    opts.seed = 9300 + i;
    Rng rng(9400 + i);
    auto initial = RandomEligibleTerm(*fed_actuals[i], opts.filter, rng);
    QBS_CHECK(initial.has_value());
    opts.initial_term = *initial;
    auto result = QueryBasedSampler(fed[i], opts).Run();
    QBS_CHECK(result.ok());
    sampled_dbs.Add(fed[i]->name(),
                    result->learned_stemmed.WithoutStopwords(
                        StopwordList::DefaultStemmed()));
  }

  CoriRanker coop_ranker(&coop_dbs);
  CoriRanker sampled_ranker(&sampled_dbs);
  std::vector<std::string> spam_query = {"casino", "jackpot"};
  MarkdownTable spam({"Acquisition", "Rank 1", "Rank 2", "Rank 3", "Rank 4"});
  auto row_of = [&](const char* label, const std::vector<DatabaseScore>& r) {
    std::vector<std::string> row = {label};
    for (const auto& d : r) {
      row.push_back(d.db_name + " (" + Fmt(d.score, 3) + ")");
    }
    return row;
  };
  spam.AddRow(row_of("cooperative (db-3 lies)", coop_ranker.Rank(spam_query)));
  spam.AddRow(row_of("query-based sampling", sampled_ranker.Rank(spam_query)));
  spam.Print();

  // --- Part 3: refusal ---
  std::printf("\n### Refusal: acquisition success across a mixed federation\n\n");
  MarkdownTable refusal({"Database", "STARTS export", "Query-based sample"});
  for (size_t i = 0; i < 4; ++i) {
    bool refuses = (i % 2 == 1);  // half the federation is legacy
    std::string coop_result;
    if (refuses) {
      RefusingSource legacy(fed[i]->name());
      coop_result = legacy.ExportLanguageModel().status().ToString();
    } else {
      coop_result = "OK";
    }
    refusal.AddRow({fed[i]->name(), coop_result, "OK (150 docs)"});
  }
  refusal.Print();

  std::printf(
      "\nReading: cooperative exports are mutually incomparable across "
      "indexing conventions and spoofable by a single lying database; "
      "sampled models live in one service-controlled term space, reflect "
      "only retrievable documents, and need no cooperation.\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace qbs

int main() {
  qbs::bench::Run();
  return 0;
}

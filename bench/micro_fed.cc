// Microbenchmarks for the federation layer: the two-phase scatter-gather
// Select at 1 / 4 / 16 shards over loopback TCP, and snapshot
// replication throughput via the chunked v5 fetch. The shard sweep
// re-partitions the SAME 16 databases, so the axis isolates fan-out
// cost (more RPCs, same ranking work) rather than collection growth.
// selects_per_sec, fanout_rpcs_per_select, and bytes_per_second are the
// counters bench.sh extracts into BENCH_<sha>.json.
//
// JSON output for dashboards: --benchmark_format=json
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "broker/broker_server.h"
#include "broker/model_registry.h"
#include "broker/selection_broker.h"
#include "broker/snapshot_provider.h"
#include "corpus/synthetic.h"
#include "fed/federated_selector.h"
#include "fed/snapshot_client.h"
#include "lm/language_model.h"
#include "net/wire_client.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace qbs {
namespace {

constexpr size_t kDatabases = 16;

/// The 16 database models every fleet re-partitions, built once.
const std::vector<std::pair<std::string, LanguageModel>>& SharedModels() {
  static const auto* models = [] {
    auto* m = new std::vector<std::pair<std::string, LanguageModel>>();
    for (size_t i = 0; i < kDatabases; ++i) {
      SyntheticCorpusSpec spec;
      spec.name = "bench-fed-" + std::to_string(i);
      spec.num_docs = 300;
      spec.vocab_size = 10'000;
      spec.num_topics = 3;
      spec.seed = 131 + 5 * i;
      auto engine = BuildSyntheticEngine(spec);
      QBS_CHECK(engine.ok());
      m->emplace_back(spec.name, (*engine)->ActualLanguageModel());
    }
    return m;
  }();
  return *models;
}

const std::vector<std::string>& Queries() {
  static const auto* queries = [] {
    auto* q = new std::vector<std::string>();
    auto ranked = SharedModels()[0].second.RankedTerms(TermMetric::kDf);
    for (size_t t = 0; t < 16 && t < ranked.size(); ++t) {
      q->push_back(ranked[t].first);
    }
    return q;
  }();
  return *queries;
}

struct ShardNode {
  ModelRegistry registry;
  std::unique_ptr<SelectionBroker> broker;
  std::unique_ptr<SnapshotProvider> provider;
  std::unique_ptr<BrokerServer> server;
};

struct Fleet {
  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::unique_ptr<FederatedSelector> fed;
};

/// A running fleet of `num_shards` shard brokers holding the shared 16
/// databases round-robin, cached per shard count: google-benchmark
/// re-enters the function to hit min time, and respawning servers each
/// pass would swamp the measurement.
const Fleet* GetFleet(size_t num_shards) {
  static auto* fleets =
      new std::vector<std::pair<size_t, std::unique_ptr<Fleet>>>;
  for (auto& [n, fleet] : *fleets) {
    if (n == num_shards) return fleet.get();
  }
  auto fleet = std::make_unique<Fleet>();
  std::vector<std::string> addresses;
  for (size_t s = 0; s < num_shards; ++s) {
    auto node = std::make_unique<ShardNode>();
    DatabaseCollection collection;
    for (size_t i = s; i < SharedModels().size(); i += num_shards) {
      collection.Add(SharedModels()[i].first, SharedModels()[i].second);
    }
    node->registry.Publish(collection);
    node->broker = std::make_unique<SelectionBroker>(&node->registry);
    node->provider = std::make_unique<SnapshotProvider>(&node->registry);
    BrokerServerOptions options;
    options.snapshot_source = [provider = node->provider.get()] {
      return provider->Get();
    };
    node->server =
        std::make_unique<BrokerServer>(node->broker.get(), options);
    QBS_CHECK(node->server->Start().ok());
    addresses.push_back("127.0.0.1:" + std::to_string(node->server->port()));
    fleet->nodes.push_back(std::move(node));
  }
  FederatedSelectorOptions options;
  options.shards = std::move(addresses);
  fleet->fed = std::make_unique<FederatedSelector>(options);
  fleets->emplace_back(num_shards, std::move(fleet));
  return fleets->back().second.get();
}

// The federated serving rate: both fan-out phases, the stats merge, and
// the rank merge, end to end over loopback. fanout_rpcs_per_select
// (read off the qbs_fed_fanout_rpcs_total delta) pins the RPC amplification
// — 2 per live shard; a drift upward means retries or a third phase
// crept in.
void BM_FederatedSelect(benchmark::State& state) {
  const Fleet* fleet = GetFleet(static_cast<size_t>(state.range(0)));
  Counter* fanout =
      MetricRegistry::Default().GetCounter("qbs_fed_fanout_rpcs_total");
  const uint64_t fanout_before = fanout->value();
  size_t i = 0;
  for (auto _ : state) {
    auto result =
        fleet->fed->Select(Queries()[i++ % Queries().size()], "cori");
    benchmark::DoNotOptimize(result);
    QBS_CHECK(result.ok());
    QBS_CHECK(!result->partial);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["selects_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  if (state.iterations() > 0) {
    state.counters["fanout_rpcs_per_select"] =
        static_cast<double>(fanout->value() - fanout_before) /
        static_cast<double>(state.iterations());
  }
}
BENCHMARK(BM_FederatedSelect)->Arg(1)->Arg(4)->Arg(16);

// Replica bootstrap throughput: the chunked epoch-pinned fetch of a
// shard's packed model-store image into a local file (atomic write
// included — that is what a real replica pays). bytes_per_second is the
// headline; the image is re-fetched whole each iteration.
void BM_SnapshotFetch(benchmark::State& state) {
  const Fleet* fleet = GetFleet(1);
  WireClientOptions copts;
  copts.host = "127.0.0.1";
  copts.port = fleet->nodes[0]->server->port();
  WireClient client(copts);
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                           "/micro_fed_snapshot_" +
                           std::to_string(::getpid()) + ".mstore";
  int64_t bytes = 0;
  for (auto _ : state) {
    auto fetched = FetchSnapshotToFile(client, path);
    benchmark::DoNotOptimize(fetched);
    QBS_CHECK(fetched.ok());
    bytes += static_cast<int64_t>(fetched->bytes);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SnapshotFetch);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();

#!/usr/bin/env python3
"""Diff two BENCH_<sha>.json files produced by scripts/bench.sh.

Compares the current run against a committed baseline and reports every
benchmark whose headline metric moved more than --threshold (fraction,
default 0.10). Direction-aware:

  ns_per_op            lower is better  -> regression when it RISES
  rpcs_per_doc         lower is better  -> regression when it RISES
  fanout_rpcs_per_select  lower is better -> regression when it RISES
  p99_select_us        lower is better  -> regression when it RISES
  p99_rpc_us           lower is better  -> regression when it RISES
  selects_per_sec      higher is better -> regression when it FALLS
  selects_per_sec_1k_conns   higher is better -> regression when it FALLS
  selects_per_sec_10k_conns  higher is better -> regression when it FALLS
  models_per_sec       higher is better -> regression when it FALLS
  items_per_second     higher is better -> regression when it FALLS
  bytes_per_second     higher is better -> regression when it FALLS

The exit code is always 0: nightly CI runs this advisorily (shared
runners are noisy), and with --github-annotations each regression is
emitted as a `::warning::` line so it surfaces on the run summary
without blocking anything. Benchmarks present in only one file are
listed but never warned about — suites come and go across PRs.

Usage:
  tools/bench_diff.py --baseline bench/baseline/BENCH_abc.json \
                      --current BENCH_def.json [--threshold 0.10] \
                      [--github-annotations]
  tools/bench_diff.py --self-test
"""

import argparse
import json
import sys

# metric -> True when a larger value is better (so a drop regresses).
HIGHER_IS_BETTER = {
    "ns_per_op": False,
    "rpcs_per_doc": False,
    "fanout_rpcs_per_select": False,
    "p99_select_us": False,
    "p99_rpc_us": False,
    "selects_per_sec": True,
    "selects_per_sec_1k_conns": True,
    "selects_per_sec_10k_conns": True,
    "models_per_sec": True,
    "items_per_second": True,
    "bytes_per_second": True,
}

# Report order: the paper-level metrics first, raw latency last.
METRIC_ORDER = [
    "selects_per_sec",
    "selects_per_sec_1k_conns",
    "selects_per_sec_10k_conns",
    "models_per_sec",
    "rpcs_per_doc",
    "fanout_rpcs_per_select",
    "p99_select_us",
    "p99_rpc_us",
    "items_per_second",
    "bytes_per_second",
    "ns_per_op",
]


def load(path):
    with open(path) as f:
        report = json.load(f)
    out = {}
    for bench in report.get("benchmarks", []):
        out[bench["name"]] = bench
    return report.get("git_sha", "?"), out


def compare(baseline, current, threshold):
    """Return (regressions, improvements, only_in_one) lists.

    Each regression/improvement entry is a dict with name, metric,
    baseline value, current value, and the signed relative delta
    (positive = metric rose).
    """
    regressions, improvements, only = [], [], []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            only.append((name, "current-only"))
            continue
        if name not in current:
            only.append((name, "baseline-only"))
            continue
        for metric in METRIC_ORDER:
            b = baseline[name].get(metric)
            c = current[name].get(metric)
            if b is None or c is None or b == 0:
                continue
            delta = (c - b) / abs(b)
            entry = {
                "name": name,
                "metric": metric,
                "baseline": b,
                "current": c,
                "delta": delta,
            }
            worse = -delta if HIGHER_IS_BETTER[metric] else delta
            if worse > threshold:
                regressions.append(entry)
            elif worse < -threshold:
                improvements.append(entry)
    return regressions, improvements, only


def fmt(entry):
    return (
        f"{entry['name']} {entry['metric']}: "
        f"{entry['baseline']:.4g} -> {entry['current']:.4g} "
        f"({entry['delta']:+.1%})"
    )


def run_diff(args):
    base_sha, baseline = load(args.baseline)
    cur_sha, current = load(args.current)
    regressions, improvements, only = compare(
        baseline, current, args.threshold
    )

    print(f"bench_diff: baseline {base_sha} -> current {cur_sha} "
          f"(threshold {args.threshold:.0%})")
    for name, side in only:
        print(f"  [{side}] {name}")
    for entry in improvements:
        print(f"  [improved]  {fmt(entry)}")
    for entry in regressions:
        print(f"  [REGRESSED] {fmt(entry)}")
        if args.github_annotations:
            print(f"::warning::bench regression: {fmt(entry)}")
    if not regressions:
        print("  no regressions beyond threshold")
    # Always advisory: CI reads the warnings, never a red X.
    return 0


def self_test():
    baseline = {
        "Select": {"name": "Select", "selects_per_sec": 100.0,
                   "ns_per_op": 50.0},
        "Sample": {"name": "Sample", "rpcs_per_doc": 0.20},
        "Gone": {"name": "Gone", "ns_per_op": 1.0},
    }
    current = {
        # selects_per_sec fell 20% (regression), ns_per_op fell 20%
        # (improvement: lower is better).
        "Select": {"name": "Select", "selects_per_sec": 80.0,
                   "ns_per_op": 40.0},
        # rpcs_per_doc rose 50%: regression.
        "Sample": {"name": "Sample", "rpcs_per_doc": 0.30},
        "New": {"name": "New", "ns_per_op": 1.0},
    }
    regressions, improvements, only = compare(baseline, current, 0.10)
    got = {(e["name"], e["metric"]) for e in regressions}
    want = {("Select", "selects_per_sec"), ("Sample", "rpcs_per_doc")}
    assert got == want, f"regressions {got} != {want}"
    got_imp = {(e["name"], e["metric"]) for e in improvements}
    assert got_imp == {("Select", "ns_per_op")}, got_imp
    assert set(only) == {("Gone", "baseline-only"),
                         ("New", "current-only")}, only

    # Inside the threshold: silence in both directions.
    regressions, improvements, _ = compare(
        {"A": {"name": "A", "ns_per_op": 100.0}},
        {"A": {"name": "A", "ns_per_op": 105.0}}, 0.10)
    assert not regressions and not improvements

    # Zero baseline must not divide; metric is skipped.
    regressions, _, _ = compare(
        {"A": {"name": "A", "ns_per_op": 0.0}},
        {"A": {"name": "A", "ns_per_op": 5.0}}, 0.10)
    assert not regressions

    # Connection-scale series: p99 latency regresses upward, the
    # at-scale throughput series regress downward.
    regressions, improvements, _ = compare(
        {"Scale": {"name": "Scale", "p99_select_us": 100.0,
                   "p99_rpc_us": 50.0,
                   "selects_per_sec_1k_conns": 1000.0,
                   "selects_per_sec_10k_conns": 800.0}},
        {"Scale": {"name": "Scale", "p99_select_us": 150.0,
                   "p99_rpc_us": 40.0,
                   "selects_per_sec_1k_conns": 700.0,
                   "selects_per_sec_10k_conns": 900.0}}, 0.10)
    got = {(e["name"], e["metric"]) for e in regressions}
    want = {("Scale", "p99_select_us"), ("Scale", "selects_per_sec_1k_conns")}
    assert got == want, f"regressions {got} != {want}"
    got_imp = {(e["name"], e["metric"]) for e in improvements}
    want_imp = {("Scale", "p99_rpc_us"),
                ("Scale", "selects_per_sec_10k_conns")}
    assert got_imp == want_imp, f"improvements {got_imp} != {want_imp}"

    # Federation fan-out: RPC amplification rising is a regression (a
    # retry or extra phase crept into the scatter-gather).
    regressions, _, _ = compare(
        {"Fed": {"name": "Fed", "fanout_rpcs_per_select": 8.0}},
        {"Fed": {"name": "Fed", "fanout_rpcs_per_select": 12.0}}, 0.10)
    got = {(e["name"], e["metric"]) for e in regressions}
    assert got == {("Fed", "fanout_rpcs_per_select")}, got

    print("bench_diff: self-test ok (6 scenarios)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed BENCH_<sha>.json")
    parser.add_argument("--current", help="freshly produced BENCH_<sha>.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change that counts as a regression")
    parser.add_argument("--github-annotations", action="store_true",
                        help="emit ::warning:: lines for regressions")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required")
    return run_diff(args)


if __name__ == "__main__":
    sys.exit(main())

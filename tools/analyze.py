#!/usr/bin/env python3
"""AST-aware concurrency/error-handling analyzer for qbs.

Enforces the whole-program invariants the compiler cannot see from one
translation unit at a time (and gcc cannot see at all):

  stdmutex     no raw std::mutex / std::shared_mutex /
               std::condition_variable / std::lock_guard /
               std::unique_lock / std::scoped_lock in src/ outside
               util/mutex.h — locking goes through the annotated
               qbs::Mutex wrappers so Clang's -Wthread-safety can reason
               about it (std::once_flag and <mutex> includes are fine)
  blockinglock no blocking transport/pool primitive (Dial, Accept,
               ReadFull, WriteAll, ReadFrame, WriteFrame, sleep_for,
               ParallelFor, thread join) called, directly or through a
               same-file callee chain, while a MutexLock is lexically
               held — the deadlock shape every Stop()-style bug in a
               server has
  detach       no detached threads in src/ — a detached thread outlives
               the state it captures and cannot be joined at shutdown
  rawnew       no naked new/delete expressions in src/ outside
               src/util/ — ownership goes through
               make_unique/make_shared; the handful of deliberate
               static-leak singletons carry an analyze:allow(rawnew)
               marker stating why
  ctorvirtual  no call to one of the class's own virtual methods from a
               constructor or destructor — dispatch there ignores the
               override and runs the base version silently
  rawio        no direct mmap/munmap/open syscalls in src/ outside
               src/storage/ and src/mstore/ — raw descriptors and
               mappings bypass the EINTR-safe, typed-Status I/O layer
               (storage/file_io.h) and the validated MappedModelStore
               open path; methods like f.open() are fine

A finding is suppressed by a marker comment on the same or the
preceding line:

    // analyze:allow(rawnew): interned for process lifetime on purpose

The marker names the check it silences, so suppressions are grep-able
and reviewable.

Frontends: `--frontend=libclang` parses with the clang AST via the
clang.cindex python bindings when they are installed; `--frontend=
internal` uses the built-in comment/string-aware tokenizer frontend
that needs nothing beyond python3. The default `auto` prefers libclang
and silently falls back (per file) to the internal frontend when the
bindings are missing or a parse fails, so the gate runs everywhere.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.

`--self-test` runs every check against seeded fixture trees (one
violating file per invariant plus a clean tree and an allow-marker
case) and verifies each is caught; it is wired into ctest (label
`analysis`) so the analyzer itself stays honest.
"""

import argparse
import os
import re
import sys
import tempfile

# Directories scanned, relative to the repo root. The invariants are
# library invariants: tests and tools may use whatever std primitives
# they like.
SCAN_DIRS = ("src",)
CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# The one file allowed to touch raw std locking: the annotated wrapper.
STDMUTEX_EXEMPT = ("src/util/mutex.h",)

# Raw new/delete is the business of the allocator-adjacent util layer
# (and the annotated wrapper machinery); everything else goes through
# make_unique/make_shared or an allow marker.
RAWNEW_ALLOWED_PREFIXES = ("src/util/",)

# The only modules allowed to issue raw mmap/munmap/open syscalls:
# the fd layer and the mapped model store built on it.
RAWIO_ALLOWED_PREFIXES = ("src/storage/", "src/mstore/")

FORBIDDEN_STD_LOCKING = (
    "std::mutex",
    "std::shared_mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
    "std::condition_variable",
    "std::condition_variable_any",
    "std::lock_guard",
    "std::unique_lock",
    "std::shared_lock",
    "std::scoped_lock",
)

# Primitives that block the calling thread (socket I/O, thread joins,
# sleeps, pool fan-out). CondVar::Wait/WaitFor are deliberately NOT
# here: waiting on a condition variable *requires* the lock, and the
# thread-safety annotations already check that pairing.
BLOCKING_CALLS = frozenset({
    "Dial",
    "Accept",
    "ReadFull",
    "WriteAll",
    "ReadFrame",
    "WriteFrame",
    "sleep_for",
    "sleep_until",
    "ParallelFor",
    "join",
})

# Call-looking tokens that are never function calls of interest.
CALL_NOISE = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "defined", "catch", "assert", "decltype", "noexcept", "new",
    "delete", "static_assert", "alignas", "typeid", "throw",
})

ALLOW_MARKER_RE = re.compile(r"analyze:allow\(([a-z]+)\)")

MAX_CALL_DEPTH = 8


def find_repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def rel(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def cxx_files(root):
    for scan in SCAN_DIRS:
        top = os.path.join(root, scan)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def strip_comments_and_strings(text):
    """Blanks comments, string and char literals (newlines preserved, so
    offsets and line numbers survive)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(" " * (end - i))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n - 2 if end == -1 else end
            chunk = text[i:end + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = end + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed_lines(text, check):
    """Line numbers suppressed for `check`: marker lines plus the line
    after each (a marker can sit on its own line above the code)."""
    allowed = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        for match in ALLOW_MARKER_RE.finditer(line):
            if match.group(1) == check:
                allowed.add(lineno)
                allowed.add(lineno + 1)
    return allowed


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# --- the analysis model ---------------------------------------------------
#
# Both frontends reduce a file to the same model:
#   FileModel.functions: list of FunctionDef
#     .name        simple name ("Stop"), qualifiers dropped
#     .qualname    as written ("AdminServer::Stop")
#     .start_line  1-based line of the definition
#     .calls       [(callee_simple_name, line)], body order
#     .lock_calls  calls made while a MutexLock is lexically held
# The checks only consume the model, so the frontends stay swappable.


class FunctionDef:
    def __init__(self, name, qualname, start_line):
        self.name = name
        self.qualname = qualname
        self.start_line = start_line
        self.calls = []
        self.lock_calls = []


class FileModel:
    def __init__(self, relpath, text, clean):
        self.relpath = relpath
        self.text = text
        self.clean = clean
        self.functions = []
        self.by_name = {}

    def add(self, fn):
        self.functions.append(fn)
        self.by_name.setdefault(fn.name, fn)


# --- internal frontend ----------------------------------------------------

FUNC_DEF_RE = re.compile(
    r"(?:^|[;}])\s*"                      # after the previous decl
    r"(?:template\s*<[^<>]*>\s*)?"        # one-level template heads
    r"[\w:<>,~&*\s\[\]]*?"                # return type soup
    r"\b((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)\s*"  # qualified name
    r"\(([^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)\s*"  # params (1 nesting)
    r"(?:const\s*|noexcept\s*|override\s*|final\s*|->\s*[\w:<>]+\s*"
    r"|QBS_\w+\s*(?:\([^()]*\)\s*)?)*"    # trailers incl. annotations
    r"(?::\s*[^{;]*)?"                    # ctor init list
    r"\{", re.MULTILINE)

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

KEYWORD_HEADS = frozenset({
    "if", "for", "while", "switch", "return", "catch", "do", "else",
})


def match_brace(text, open_pos):
    """Offset just past the brace matching text[open_pos] == '{'."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


LAMBDA_RE = re.compile(r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?"
                       r"(?:noexcept\s*)?(?:->\s*[\w:<>]+\s*)?\{")


def blank_lambdas(body):
    """Blanks lambda bodies (newlines kept): code inside a lambda runs
    when the lambda is invoked — on a pool worker or a spawned thread —
    not at the capture site, so its calls are not the enclosing
    function's calls (and are not made under the enclosing locks)."""
    out = body
    while True:
        m = LAMBDA_RE.search(out)
        if m is None:
            return out
        end = match_brace(out, m.end() - 1)
        blanked = "".join(c if c == "\n" else " " for c in out[m.start():end])
        out = out[:m.start()] + blanked + out[end:]


def body_calls(body, base_offset, clean):
    """[(name, line, offset, qualified)] for every call-looking token in
    `body`. `qualified` marks calls through . / -> / :: — calls on some
    other object, which must not resolve to a same-file function that
    merely shares the method name."""
    calls = []
    for m in CALL_RE.finditer(body):
        name = m.group(1)
        if name in CALL_NOISE or name in KEYWORD_HEADS:
            continue
        before = body[:m.start()].rstrip()
        qualified = before.endswith((".", "->", "::"))
        off = base_offset + m.start()
        calls.append((name, line_of(clean, off), m.start(), qualified))
    return calls


LOCK_DECL_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]")


def lock_scopes(body):
    """[(start, end)] body offsets where a MutexLock is lexically held:
    from its declaration to the close of the enclosing brace scope."""
    scopes = []
    for m in LOCK_DECL_RE.finditer(body):
        start = m.end()
        depth = 0
        end = len(body)
        for i in range(start, len(body)):
            if body[i] == "{":
                depth += 1
            elif body[i] == "}":
                depth -= 1
                if depth < 0:
                    end = i
                    break
        scopes.append((start, end))
    return scopes


def parse_file_internal(relpath, text):
    clean = strip_comments_and_strings(text)
    model = FileModel(relpath, text, clean)
    pos = 0
    while True:
        m = FUNC_DEF_RE.search(clean, pos)
        if m is None:
            break
        qualname = m.group(1)
        simple = qualname.rsplit("::", 1)[-1]
        if simple in KEYWORD_HEADS or simple in CALL_NOISE:
            pos = m.start() + 1
            continue
        open_brace = clean.index("{", m.end() - 1)
        body_end = match_brace(clean, open_brace)
        body = blank_lambdas(clean[open_brace:body_end])
        fn = FunctionDef(simple, qualname, line_of(clean, m.start(1)))
        calls = body_calls(body, open_brace, clean)
        fn.calls = [(n, ln, q) for n, ln, _, q in calls]
        scopes = lock_scopes(body)
        fn.lock_calls = [(n, ln, q) for n, ln, off, q in calls
                         if any(s <= off < e for s, e in scopes)]
        model.add(fn)
        pos = body_end
    return model


# --- libclang frontend ----------------------------------------------------


def load_libclang():
    try:
        from clang import cindex  # noqa: F401  (optional dependency)
        cindex.Index.create()
        return cindex
    except Exception:  # missing module or unloadable libclang
        return None


def parse_file_libclang(cindex, relpath, text, root):
    """Same model via the clang AST. Returns None on parse trouble so
    the caller can fall back to the internal frontend."""
    try:
        index = cindex.Index.create()
        tu = index.parse(
            relpath, args=["-std=c++20", "-I" + os.path.join(root, "src"),
                           "-xc++"],
            unsaved_files=[(relpath, text)],
            options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)
    except Exception:
        return None
    clean = strip_comments_and_strings(text)
    model = FileModel(relpath, text, clean)
    K = cindex.CursorKind

    def walk_body(cursor, fn, fn_parent, in_lock):
        for child in cursor.get_children():
            if child.kind == K.LAMBDA_EXPR:
                continue  # deferred execution: not this function's calls
            held = in_lock
            if (child.kind == K.VAR_DECL and
                    "MutexLock" in (child.type.spelling or "")):
                in_lock = True  # rest of this compound scope
            if child.kind == K.CALL_EXPR and child.spelling:
                qualified = True
                try:
                    ref = child.referenced
                    if ref is not None:
                        ref_parent = ref.semantic_parent
                        if ref_parent is None or \
                                ref_parent.kind == K.TRANSLATION_UNIT or \
                                (fn_parent is not None and
                                 ref_parent.spelling == fn_parent.spelling):
                            qualified = False
                except Exception:
                    pass
                entry = (child.spelling, child.location.line, qualified)
                fn.calls.append(entry)
                if held:
                    fn.lock_calls.append(entry)
            walk_body(child, fn, fn_parent, in_lock)

    def visit(cursor):
        for child in cursor.get_children():
            if child.location.file and \
                    os.path.abspath(str(child.location.file)) != \
                    os.path.abspath(relpath):
                continue
            if child.kind in (K.CXX_METHOD, K.FUNCTION_DECL,
                              K.CONSTRUCTOR, K.DESTRUCTOR) and \
                    child.is_definition():
                qual = child.spelling
                parent = child.semantic_parent
                if parent is not None and parent.kind in (
                        K.CLASS_DECL, K.STRUCT_DECL):
                    qual = parent.spelling + "::" + child.spelling
                fn = FunctionDef(child.spelling, qual,
                                 child.location.line)
                walk_body(child, fn, child.semantic_parent, False)
                model.add(fn)
            else:
                visit(child)

    try:
        visit(tu.cursor)
    except Exception:
        return None
    return model


# --- checks ---------------------------------------------------------------


def check_stdmutex(root, models):
    violations = []
    for model in models:
        if model.relpath in STDMUTEX_EXEMPT:
            continue
        allowed = allowed_lines(model.text, "stdmutex")
        for token in FORBIDDEN_STD_LOCKING:
            for m in re.finditer(re.escape(token) + r"\b", model.clean):
                lineno = line_of(model.clean, m.start())
                if lineno in allowed:
                    continue
                violations.append(
                    (model.relpath, lineno,
                     f"raw {token} is invisible to thread-safety "
                     f"analysis; use the annotated qbs::Mutex / "
                     f"MutexLock / CondVar (util/mutex.h)"))
    return violations


def check_detach(root, models):
    violations = []
    for model in models:
        allowed = allowed_lines(model.text, "detach")
        for m in re.finditer(r"[.\->]\s*detach\s*\(\s*\)", model.clean):
            lineno = line_of(model.clean, m.start())
            if lineno in allowed:
                continue
            violations.append(
                (model.relpath, lineno,
                 "detached thread: it outlives the state it captures "
                 "and cannot be joined at shutdown; keep the handle "
                 "and join"))
    return violations


RAW_NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")
RAW_DELETE_RE = re.compile(r"(?<![\w.])delete\b(\s*\[\s*\])?")


def check_rawnew(root, models):
    violations = []
    for model in models:
        if model.relpath.startswith(RAWNEW_ALLOWED_PREFIXES):
            continue
        allowed = allowed_lines(model.text, "rawnew")
        for m in RAW_NEW_RE.finditer(model.clean):
            lineno = line_of(model.clean, m.start())
            if lineno in allowed:
                continue
            violations.append(
                (model.relpath, lineno,
                 "naked new outside src/util/; use make_unique / "
                 "make_shared, or mark a deliberate static leak with "
                 "analyze:allow(rawnew)"))
        for m in RAW_DELETE_RE.finditer(model.clean):
            lineno = line_of(model.clean, m.start())
            if lineno in allowed:
                continue
            before = model.clean[:m.start()].rstrip()
            if before.endswith("="):  # deleted special member
                continue
            violations.append(
                (model.relpath, lineno,
                 "naked delete outside src/util/; ownership belongs to "
                 "a smart pointer"))
    return violations


def blocking_chain(model, name, qualified, visited, depth):
    """Call-name path from `name` to a blocking primitive via same-file
    unqualified callees, or None. Blocking primitives match whether or
    not the call is qualified (`stream->ReadFull`, `SocketStream::Dial`);
    resolution into a same-file function body only happens for
    unqualified calls — `other_->Start()` is some other object's Start,
    not ours."""
    if name in BLOCKING_CALLS:
        return []
    if qualified or depth >= MAX_CALL_DEPTH or name in visited:
        return None
    fn = model.by_name.get(name)
    if fn is None:
        return None
    visited.add(name)
    for callee, _, q in fn.calls:
        tail = blocking_chain(model, callee, q, visited, depth + 1)
        if tail is not None:
            return [callee] + tail
    return None


def check_blockinglock(root, models):
    violations = []
    for model in models:
        allowed = allowed_lines(model.text, "blockinglock")
        for fn in model.functions:
            for callee, line, qualified in fn.lock_calls:
                if line in allowed:
                    continue
                if callee in BLOCKING_CALLS:
                    violations.append(
                        (model.relpath, line,
                         f"{fn.qualname} calls blocking '{callee}' while "
                         f"holding a MutexLock; release the lock first "
                         f"(deadlock shape: the blocked-on thread may "
                         f"need this lock)"))
                    continue
                tail = blocking_chain(model, callee, qualified, set(), 0)
                if tail is not None:
                    chain = " -> ".join([fn.qualname, callee] + tail)
                    violations.append(
                        (model.relpath, line,
                         f"{fn.qualname} holds a MutexLock across "
                         f"'{callee}', which reaches a blocking "
                         f"primitive ({chain})"))
    return violations


# A raw-syscall spelling: bare or ::-qualified mmap/munmap/open followed
# by a call paren. The lookbehind rejects member calls (f.open, s->open)
# and longer identifiers (fopen, is_open, MmapFile).
RAW_IO_RE = re.compile(r"(?<![\w.>])(::\s*)?(mmap|munmap|open)\s*\(")


def check_rawio(root, models):
    violations = []
    for model in models:
        if model.relpath.startswith(RAWIO_ALLOWED_PREFIXES):
            continue
        allowed = allowed_lines(model.text, "rawio")
        for m in RAW_IO_RE.finditer(model.clean):
            lineno = line_of(model.clean, m.start())
            if lineno in allowed:
                continue
            violations.append(
                (model.relpath, lineno,
                 f"raw ::{m.group(2)}() outside src/storage/ and "
                 f"src/mstore/; go through storage/file_io.h (EINTR-safe,"
                 f" typed Status) or MappedModelStore (validated mmap)"))
    return violations


CLASS_DEF_RE = re.compile(r"\b(?:class|struct)\s+(?:QBS_\w+(?:\(\s*[^)]*\))?"
                          r"\s+)*([A-Za-z_]\w*)\s*(?:final\s*)?"
                          r"(?::[^{;]*)?\{")
VIRTUAL_RE = re.compile(r"\bvirtual\s+[\w:<>&*\s]+?\b([A-Za-z_]\w*)\s*\(")
OVERRIDE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\([^;{}]*\)\s*"
                         r"(?:const\s*)?(?:noexcept\s*)?override\b")


def virtual_methods(models):
    """class name -> set of its virtual/overridden method names, from
    every scanned file (headers define, sources may override)."""
    virtuals = {}
    for model in models:
        pos = 0
        while True:
            m = CLASS_DEF_RE.search(model.clean, pos)
            if m is None:
                break
            body_end = match_brace(model.clean, m.end() - 1)
            body = model.clean[m.end():body_end]
            names = set(VIRTUAL_RE.findall(body))
            names |= set(OVERRIDE_RE.findall(body))
            names.discard(m.group(1))  # a virtual dtor is not a call
            if names:
                virtuals.setdefault(m.group(1), set()).update(names)
            pos = m.end()
    return virtuals


def check_ctorvirtual(root, models):
    violations = []
    virtuals = virtual_methods(models)
    for model in models:
        allowed = allowed_lines(model.text, "ctorvirtual")
        for fn in model.functions:
            parts = fn.qualname.split("::")
            cls = None
            if len(parts) >= 2 and parts[-1].lstrip("~") == parts[-2]:
                cls = parts[-2]          # Foo::Foo / Foo::~Foo
            elif fn.name.lstrip("~") == fn.name and \
                    fn.name in virtuals and len(parts) == 1:
                cls = None               # free function named like a class
            if cls is None or cls not in virtuals:
                continue
            for callee, line, _ in fn.calls:
                if callee in virtuals[cls] and line not in allowed:
                    violations.append(
                        (model.relpath, line,
                         f"{fn.qualname} calls virtual '{callee}' during "
                         f"construction/destruction; dispatch ignores "
                         f"overrides there — make it non-virtual or move "
                         f"the call after construction"))
    return violations


CHECKS = {
    "stdmutex": check_stdmutex,
    "blockinglock": check_blockinglock,
    "detach": check_detach,
    "rawnew": check_rawnew,
    "rawio": check_rawio,
    "ctorvirtual": check_ctorvirtual,
}


def build_models(root, frontend):
    cindex = load_libclang() if frontend in ("auto", "libclang") else None
    if frontend == "libclang" and cindex is None:
        print("analyze: --frontend=libclang but the clang python bindings "
              "are not importable", file=sys.stderr)
        return None
    models = []
    for path in cxx_files(root):
        relpath = rel(root, path)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        model = None
        if cindex is not None:
            model = parse_file_libclang(cindex, path, text, root)
            if model is not None:
                model.relpath = relpath
        if model is None:
            model = parse_file_internal(relpath, text)
        models.append(model)
    return models


def run_analysis(root, frontend="auto", checks=None):
    models = build_models(root, frontend)
    if models is None:
        return 2
    violations = []
    for name in (checks or list(CHECKS)):
        violations += [(p, l, f"[{name}] {m}")
                       for p, l, m in CHECKS[name](root, models)]
    violations.sort()
    for path, lineno, message in violations:
        print(f"{path}:{lineno}: {message}")
    return 1 if violations else 0


# --- self test ------------------------------------------------------------

FIXTURE_CLEAN = """\
#include "util/mutex.h"
namespace qbs {
class Counter {
 public:
  void Add(int n) {
    MutexLock lock(mu_);
    value_ += n;
  }
  int value() const {
    MutexLock lock(mu_);
    return value_;
  }
 private:
  mutable Mutex mu_;
  int value_ = 0;
};
}  // namespace qbs
"""

FIXTURE_STDMUTEX = """\
#include <mutex>
namespace qbs {
class Bad {
  std::mutex mu_;
  int v_ = 0;
};
}  // namespace qbs
"""

FIXTURE_DETACH = """\
#include <thread>
namespace qbs {
void FireAndForget() {
  std::thread([] {}).detach();
}
}  // namespace qbs
"""

FIXTURE_RAWNEW = """\
namespace qbs {
int* Make() { return new int(7); }
void Drop(int* p) { delete p; }
}  // namespace qbs
"""

FIXTURE_RAWNEW_ALLOWED = """\
namespace qbs {
struct Thing { int v = 0; };
Thing* Singleton() {
  // analyze:allow(rawnew): interned for the process lifetime on purpose
  static Thing* t = new Thing();
  return t;
}
}  // namespace qbs
"""

FIXTURE_BLOCKING_DIRECT = """\
#include "util/mutex.h"
namespace qbs {
class Server {
 public:
  void Stop() {
    MutexLock lock(mu_);
    thread_.join();
  }
 private:
  Mutex mu_;
  std::thread thread_;
};
}  // namespace qbs
"""

FIXTURE_BLOCKING_TRANSITIVE = """\
#include "util/mutex.h"
namespace qbs {
class Client {
 public:
  void Refresh() {
    MutexLock lock(mu_);
    Redial();
  }
 private:
  void Redial() { Reconnect(); }
  void Reconnect() { Dial("127.0.0.1", 80); }
  Mutex mu_;
};
}  // namespace qbs
"""

FIXTURE_BLOCKING_OK = """\
#include "util/mutex.h"
namespace qbs {
class Server {
 public:
  void Stop() {
    {
      MutexLock lock(mu_);
      stopped_ = true;
    }
    thread_.join();
  }
 private:
  Mutex mu_;
  bool stopped_ = false;
  std::thread thread_;
};
}  // namespace qbs
"""

FIXTURE_RAWIO = """\
#include <fcntl.h>
namespace qbs {
int Sneaky(const char* path) {
  return ::open(path, O_RDONLY);
}
}  // namespace qbs
"""

FIXTURE_RAWIO_OK = """\
#include <fstream>
namespace qbs {
bool Fine(const char* path) {
  std::ifstream f;
  f.open(path);
  return f.is_open();
}
}  // namespace qbs
"""

FIXTURE_CTORVIRTUAL_H = """\
namespace qbs {
class Widget {
 public:
  Widget();
  virtual ~Widget() = default;
  virtual void Reset();
};
}  // namespace qbs
"""

FIXTURE_CTORVIRTUAL_CC = """\
#include "widget.h"
namespace qbs {
Widget::Widget() {
  Reset();
}
void Widget::Reset() {}
}  // namespace qbs
"""


def seed_tree(root, files):
    for relpath, content in files.items():
        full = os.path.join(root, relpath)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w") as f:
            f.write(content)


def self_test(frontend):
    failures = []

    def expect(condition, label):
        print(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    def run(files, checks=None):
        with tempfile.TemporaryDirectory() as tmp:
            seed_tree(tmp, files)
            return run_analysis(tmp, frontend=frontend, checks=checks)

    expect(run({"src/util/clean.cc": FIXTURE_CLEAN}) == 0,
           "clean annotated code passes every check")
    expect(run({"src/net/bad.h": FIXTURE_STDMUTEX},
               checks=["stdmutex"]) == 1,
           "raw std::mutex member trips 'stdmutex'")
    expect(run({"src/util/mutex.h": "namespace qbs { }\n",
                "src/util/wrapped.h": FIXTURE_STDMUTEX},
               checks=["stdmutex"]) == 1,
           "'stdmutex' exempts only util/mutex.h itself")
    expect(run({"src/net/fire.cc": FIXTURE_DETACH},
               checks=["detach"]) == 1,
           "detached thread trips 'detach'")
    expect(run({"src/net/owner.cc": FIXTURE_RAWNEW},
               checks=["rawnew"]) == 1,
           "naked new/delete trips 'rawnew'")
    expect(run({"src/net/singleton.cc": FIXTURE_RAWNEW_ALLOWED},
               checks=["rawnew"]) == 0,
           "analyze:allow(rawnew) marker suppresses 'rawnew'")
    expect(run({"src/net/server.cc": FIXTURE_BLOCKING_DIRECT},
               checks=["blockinglock"]) == 1,
           "join under MutexLock trips 'blockinglock'")
    expect(run({"src/net/client.cc": FIXTURE_BLOCKING_TRANSITIVE},
               checks=["blockinglock"]) == 1,
           "transitive Dial under MutexLock trips 'blockinglock'")
    expect(run({"src/net/server.cc": FIXTURE_BLOCKING_OK},
               checks=["blockinglock"]) == 0,
           "join after the lock scope closes passes 'blockinglock'")
    expect(run({"src/net/sneaky.cc": FIXTURE_RAWIO},
               checks=["rawio"]) == 1,
           "raw ::open outside storage/mstore trips 'rawio'")
    expect(run({"src/net/fine.cc": FIXTURE_RAWIO_OK},
               checks=["rawio"]) == 0,
           "member f.open() passes 'rawio'")
    expect(run({"src/storage/fd_layer.cc": FIXTURE_RAWIO},
               checks=["rawio"]) == 0,
           "'rawio' exempts src/storage/ and src/mstore/")
    expect(run({"src/ui/widget.h": FIXTURE_CTORVIRTUAL_H,
                "src/ui/widget.cc": FIXTURE_CTORVIRTUAL_CC},
               checks=["ctorvirtual"]) == 1,
           "virtual call in constructor trips 'ctorvirtual'")

    print(f"self-test ({frontend} frontend): {len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "libclang", "internal"),
                        help="parser: clang AST bindings, the built-in "
                             "tokenizer, or auto (libclang when "
                             "importable, else internal)")
    parser.add_argument("--check", action="append", dest="checks",
                        choices=list(CHECKS),
                        help="run only the named check (repeatable)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each check catches a seeded "
                             "violation (and that clean code passes)")
    args = parser.parse_args()
    if args.self_test:
        frontend = args.frontend
        if frontend == "auto":
            frontend = "internal"  # deterministic in every environment
        rc = self_test(frontend)
        if rc == 0 and args.frontend == "auto" and \
                load_libclang() is not None:
            rc = self_test("libclang")
        return rc
    root = os.path.abspath(args.root) if args.root else find_repo_root()
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"analyze: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    return run_analysis(root, frontend=args.frontend, checks=args.checks)


if __name__ == "__main__":
    sys.exit(main())

// qbs command-line tool: sample databases, inspect and compare language
// models, and rank databases from the shell.
//
//   qbs sample    --synthetic cacm | --trec FILE [options]  > model.lm
//   qbs export    --synthetic cacm | --trec FILE [--out FILE]
//   qbs stats     --trec FILE...
//   qbs summarize --model FILE [--metric avg_tf] [--top N]
//   qbs compare   --learned FILE --actual FILE
//   qbs select    --query "..." --model NAME=FILE [--model NAME=FILE ...]
//                 [--ranker cori|bgloss|vgloss|kl]
//   qbs select    --query "..." --remote HOST:PORT [--ranker NAME] [--top N]
//   qbs pack-models --model NAME=FILE... --out STORE [--block-size N]
//   qbs inspect-store --store FILE [--no-verify]
//   qbs estimate  (--synthetic PRESET | --trec FILE) [--capture N]
//   qbs service   --synthetic PRESET [--synthetic PRESET ...]
//                 [--trec FILE ...] [--remote HOST:PORT ...]
//                 [--docs N] [--threads N]
//                 [--query "..."] [--ranker NAME]
//   qbs serve-db  (--synthetic PRESET | --trec FILE)
//                 [--host ADDR] [--port N] [--threads N] [--admin_port N]
//   qbs serve-broker (--synthetic PRESET | --trec FILE | --remote HOST:PORT)...
//                 [--docs N] [--host ADDR] [--port N] [--threads N]
//                 [--max-inflight N] [--admin_port N]
//   qbs serve-fed --shards HOST:PORT,HOST:PORT,...
//                 [--host ADDR] [--port N] [--threads N]
//                 [--max-inflight N] [--admin_port N]
//   qbs select    --query "..." --fed HOST:PORT [--ranker NAME] [--top N]
//   qbs fetch-snapshot --remote HOST:PORT --out STORE [--chunk-bytes N]
//
// Observability (any command):
//   --metrics_out FILE   Prometheus text dump of all metrics on exit
//   --trace_out FILE     Chrome trace_event JSON (chrome://tracing)
//   --log_level LEVEL    debug|info|warning|error|off (default info)
// Observability (serve-db / serve-broker):
//   --admin_port N       embedded admin HTTP endpoint (/metrics, /statusz,
//                        /tracez, /trace.json); 0 = ephemeral port
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker_server.h"
#include "broker/remote_selector.h"
#include "broker/selection_broker.h"
#include "broker/snapshot_provider.h"
#include "fed/federated_selector.h"
#include "fed/federation_server.h"
#include "fed/snapshot_client.h"
#include "corpus/corpus_stats.h"
#include "corpus/synthetic.h"
#include "corpus/trec_parser.h"
#include "lm/language_model.h"
#include "lm/metrics.h"
#include "mstore/mapped_model_store.h"
#include "mstore/model_store_writer.h"
#include "net/db_server.h"
#include "net/remote_db.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/sampler.h"
#include "sampling/size_estimator.h"
#include "selection/db_selection.h"
#include "service/sampling_service.h"
#include "summarize/summarizer.h"
#include "util/string_util.h"

namespace qbs {
namespace {

int Usage() {
  std::fprintf(stderr, R"(usage:
  qbs sample    (--synthetic cacm|wsj88|trec123|supportkb | --trec FILE)
                [--docs N] [--docs-per-query N]
                [--strategy random|df|ctf|avg_tf] [--seed N] [--out FILE]
  qbs export    (--synthetic PRESET | --trec FILE) [--out FILE]
                 writes the database's ACTUAL (cooperative) language model
  qbs stats     --trec FILE [--trec FILE ...]
  qbs summarize --model FILE [--metric df|ctf|avg_tf] [--top N]
  qbs compare   --learned FILE --actual FILE
  qbs select    --query "..." --model NAME=FILE [--model NAME=FILE ...]
                [--ranker cori|bgloss|vgloss|kl]
  qbs select    --query "..." --remote HOST:PORT [--ranker NAME] [--top N]
                 ask a running broker (serve-broker) to rank its databases
  qbs pack-models --model NAME=FILE [--model NAME=FILE ...] --out STORE
                [--block-size N]
                 pack #QBSLM text models into one binary model store
  qbs inspect-store --store FILE [--no-verify]
                 validate a binary model store and print its contents
  qbs estimate  (--synthetic PRESET | --trec FILE) [--capture N]
                 capture-recapture database size estimate
  qbs service   (--synthetic PRESET | --trec FILE | --remote HOST:PORT)...
                [--docs N] [--threads N] [--query "..."] [--ranker NAME]
                 run the sampling service over a federation and report;
                 --remote databases are sampled over the wire protocol
  qbs serve-db  (--synthetic PRESET | --trec FILE)
                [--host ADDR] [--port N] [--threads N] [--admin_port N]
                 expose one database on a TCP port (port 0 = ephemeral);
                 prints the bound address, serves until stdin closes
  qbs serve-broker (--synthetic PRESET | --trec FILE | --remote HOST:PORT)...
                [--docs N] [--host ADDR] [--port N] [--threads N]
                [--max-inflight N] [--admin_port N] [--store FILE]
                 sample the federation, then serve Select RPCs (wire v3)
                 from lock-free model snapshots until stdin closes;
                 with --store, a valid packed store is mmapped and served
                 instantly (no re-sampling), and fresh samples are packed
                 back to it
  qbs serve-fed --shards HOST:PORT,HOST:PORT,...
                [--host ADDR] [--port N] [--threads N]
                [--max-inflight N] [--admin_port N]
                 front a fleet of serve-broker shards with one
                 scatter-gather Select endpoint (wire v5)
  qbs select    --query "..." --fed HOST:PORT [--ranker NAME] [--top N]
                 like --remote, and also print the federation fields
                 (partial flag, down shards, per-shard epochs)
  qbs fetch-snapshot --remote HOST:PORT --out STORE [--chunk-bytes N]
                 stream a shard broker's packed model store to a local
                 file (restorable with serve-broker --store)

observability flags, valid with every command:
  --metrics_out FILE  write a Prometheus-style metrics dump on exit
                      (FILE.json next to it with the JSON exposition)
  --trace_out FILE    record spans, write Chrome trace_event JSON on exit
                      (merge several with tools/trace_merge.py)
  --log_level LEVEL   debug|info|warning|error|off (default info)
  --admin_port N      serve-db/serve-broker: embedded admin HTTP endpoint
                      (/metrics, /statusz, /tracez); 0 = ephemeral port

Language models are read/written in the #QBSLM v1 text format.
)");
  return 2;
}

// Minimal flag parser: --key value and --key=value pairs (repeatable keys
// collected).
std::multimap<std::string, std::string> ParseFlags(int argc, char** argv,
                                                   int start) {
  std::multimap<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      continue;
    }
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.emplace(arg.substr(2, eq - 2), arg.substr(eq + 1));
    } else if (i + 1 < argc) {
      flags.emplace(arg.substr(2), argv[++i]);
    } else {
      std::fprintf(stderr, "flag needs a value: %s\n", arg.c_str());
    }
  }
  return flags;
}

std::string FlagOr(const std::multimap<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// Observability flags accept both separator spellings (--metrics_out and
// --metrics-out).
std::string ObsFlag(const std::multimap<std::string, std::string>& flags,
                    std::string key) {
  std::string value = FlagOr(flags, key, "");
  if (!value.empty()) return value;
  for (char& c : key) {
    if (c == '_') c = '-';
  }
  return FlagOr(flags, key, "");
}

// Applies --log_level / --trace_out before the command runs.
void SetUpObservability(const std::multimap<std::string, std::string>& flags) {
  std::string level = ObsFlag(flags, "log_level");
  if (!level.empty()) {
    SetMinLogLevel(ParseLogLevel(level, GetMinLogLevel()));
  }
  if (!ObsFlag(flags, "trace_out").empty()) {
    TraceRecorder::Global().set_enabled(true);
  }
}

// The --admin_port flag: the port to serve the embedded admin HTTP
// endpoint on (0 = ephemeral), or -1 (disabled) when the flag is absent.
int32_t AdminPortFlag(const std::multimap<std::string, std::string>& flags) {
  std::string value = ObsFlag(flags, "admin_port");
  if (value.empty()) return -1;
  try {
    unsigned long port = std::stoul(value);
    if (port <= 65535) return static_cast<int32_t>(port);
  } catch (...) {
  }
  std::fprintf(stderr, "bad --admin_port '%s'; admin endpoint disabled\n",
               value.c_str());
  return -1;
}

// Writes --metrics_out / --trace_out files after the command ran. Failures
// are reported but do not change the command's exit code: observability
// output must never turn a successful run into a failed one.
// `process_name` labels the trace dump so tools/trace_merge.py can name
// each process in a stitched multi-process timeline.
void DumpObservability(const std::multimap<std::string, std::string>& flags,
                       const std::string& process_name) {
  std::string metrics_path = ObsFlag(flags, "metrics_out");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
    } else {
      MetricRegistry::Default().ExportPrometheus(out);
    }
    std::ofstream json(metrics_path + ".json");
    if (!json) {
      std::fprintf(stderr, "cannot write %s.json\n", metrics_path.c_str());
    } else {
      MetricRegistry::Default().ExportJson(json);
      json << "\n";
    }
  }
  std::string trace_path = ObsFlag(flags, "trace_out");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    } else {
      TraceRecorder::Global().DumpChromeTrace(out, process_name);
      out << "\n";
      std::fprintf(stderr, "trace: %zu spans -> %s\n",
                   TraceRecorder::Global().size(), trace_path.c_str());
    }
  }
}

Result<LanguageModel> LoadModelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LanguageModel::Load(in);
}

Result<std::unique_ptr<SearchEngine>> BuildTrecEngine(
    const std::string& path) {
  auto engine = std::make_unique<SearchEngine>("trec:" + path);
  Status add_ok = Status::OK();
  auto stats = ParseTrecFile(
      path, [&](const std::string& docno, const std::string& text) {
        if (add_ok.ok()) add_ok = engine->AddDocument(docno, text);
      });
  if (!stats.ok()) return stats.status();
  QBS_RETURN_IF_ERROR(add_ok);
  engine->FinishLoading();
  return engine;
}

Result<std::unique_ptr<SearchEngine>> BuildEngineFromFlags(
    const std::multimap<std::string, std::string>& flags) {
  std::string synthetic = FlagOr(flags, "synthetic", "");
  std::string trec = FlagOr(flags, "trec", "");
  if (!synthetic.empty()) {
    SyntheticCorpusSpec spec;
    if (synthetic == "cacm") {
      spec = CacmLikeSpec();
    } else if (synthetic == "wsj88") {
      spec = Wsj88LikeSpec();
    } else if (synthetic == "trec123") {
      spec = Trec123LikeSpec();
    } else if (synthetic == "supportkb") {
      spec = SupportKbLikeSpec();
    } else {
      return Status::InvalidArgument("unknown synthetic preset: " + synthetic);
    }
    return BuildSyntheticEngine(spec);
  }
  if (!trec.empty()) return BuildTrecEngine(trec);
  return Status::InvalidArgument("sample requires --synthetic or --trec");
}

TermMetric MetricFromName(const std::string& name) {
  if (name == "df") return TermMetric::kDf;
  if (name == "ctf") return TermMetric::kCtf;
  return TermMetric::kAvgTf;
}

int CmdSample(const std::multimap<std::string, std::string>& flags) {
  auto engine = BuildEngineFromFlags(flags);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "database '%s': %u documents\n",
               (*engine)->name().c_str(), (*engine)->num_docs());

  SamplerOptions opts;
  opts.docs_per_query = std::stoul(FlagOr(flags, "docs-per-query", "4"));
  opts.stopping.max_documents = std::stoul(FlagOr(flags, "docs", "300"));
  opts.seed = std::stoull(FlagOr(flags, "seed", "7"));
  std::string strategy = FlagOr(flags, "strategy", "random");
  if (strategy == "df") {
    opts.strategy = SelectionStrategy::kDfLearned;
  } else if (strategy == "ctf") {
    opts.strategy = SelectionStrategy::kCtfLearned;
  } else if (strategy == "avg_tf") {
    opts.strategy = SelectionStrategy::kAvgTfLearned;
  } else {
    opts.strategy = SelectionStrategy::kRandomLearned;
  }
  // Bootstrap the first query term from the database itself (any plausible
  // dictionary word works in practice; this avoids shipping a wordlist).
  {
    LanguageModel actual = (*engine)->ActualLanguageModel();
    Rng rng(opts.seed);
    auto term = RandomEligibleTerm(actual, opts.filter, rng);
    if (!term.has_value()) {
      std::fprintf(stderr, "database has no eligible query terms\n");
      return 1;
    }
    opts.initial_term = *term;
  }

  auto result = QueryBasedSampler(engine->get(), opts).Run();
  if (!result.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "sampled %zu documents with %zu queries (%zu failed); learned "
               "%zu terms; stop: %s\n",
               result->documents_examined, result->queries_run,
               result->failed_queries, result->learned.vocabulary_size(),
               result->stop_reason.c_str());

  std::string out_path = FlagOr(flags, "out", "");
  Status save_status;
  if (out_path.empty()) {
    save_status = result->learned.Save(std::cout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    save_status = result->learned.Save(out);
  }
  if (!save_status.ok()) {
    std::fprintf(stderr, "%s\n", save_status.ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdEstimate(const std::multimap<std::string, std::string>& flags) {
  auto engine = BuildEngineFromFlags(flags);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  SizeEstimateOptions opts;
  opts.docs_per_run = std::stoul(FlagOr(flags, "capture", "200"));
  {
    LanguageModel actual = (*engine)->ActualLanguageModel();
    Rng rng(std::stoull(FlagOr(flags, "seed", "7")));
    auto term = RandomEligibleTerm(actual, TermFilter{}, rng);
    if (!term.has_value()) {
      std::fprintf(stderr, "database has no eligible query terms\n");
      return 1;
    }
    opts.initial_term = *term;
  }
  auto est = EstimateDatabaseSize(engine->get(), opts);
  if (!est.ok()) {
    std::fprintf(stderr, "%s\n", est.status().ToString().c_str());
    return 1;
  }
  std::printf("captures: %zu + %zu documents, overlap %zu, %zu queries\n",
              est->capture1, est->capture2, est->overlap, est->queries_run);
  std::printf("estimated database size: %.0f documents (actual: %u)\n",
              est->estimated_docs, (*engine)->num_docs());
  return 0;
}

int CmdExport(const std::multimap<std::string, std::string>& flags) {
  auto engine = BuildEngineFromFlags(flags);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  LanguageModel actual = (*engine)->ActualLanguageModel();
  std::string out_path = FlagOr(flags, "out", "");
  Status save_status;
  if (out_path.empty()) {
    save_status = actual.Save(std::cout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    save_status = actual.Save(out);
  }
  if (!save_status.ok()) {
    std::fprintf(stderr, "%s\n", save_status.ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdStats(const std::multimap<std::string, std::string>& flags) {
  auto range = flags.equal_range("trec");
  if (range.first == range.second) return Usage();
  for (auto it = range.first; it != range.second; ++it) {
    auto engine = BuildTrecEngine(it->second);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 1;
    }
    CorpusStats stats = ComputeCorpusStats(**engine);
    std::printf("%s: %s, %s docs, %s unique terms, %s total terms\n",
                it->second.c_str(), HumanBytes(stats.bytes).c_str(),
                WithThousands(stats.num_docs).c_str(),
                WithThousands(stats.unique_terms).c_str(),
                WithThousands(stats.total_terms).c_str());
  }
  return 0;
}

int CmdSummarize(const std::multimap<std::string, std::string>& flags) {
  std::string path = FlagOr(flags, "model", "");
  if (path.empty()) return Usage();
  auto model = LoadModelFile(path);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  SummaryOptions opts;
  opts.metric = MetricFromName(FlagOr(flags, "metric", "avg_tf"));
  opts.top_k = std::stoul(FlagOr(flags, "top", "25"));
  DatabaseSummary summary = SummarizeDatabase(path, *model, opts);
  for (const auto& [term, score] : summary.terms) {
    std::printf("%-24s %10.3f\n", term.c_str(), score);
  }
  return 0;
}

int CmdCompare(const std::multimap<std::string, std::string>& flags) {
  auto learned = LoadModelFile(FlagOr(flags, "learned", ""));
  auto actual = LoadModelFile(FlagOr(flags, "actual", ""));
  if (!learned.ok() || !actual.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!learned.ok() ? learned.status() : actual.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  // Learned models are raw; put them in the actual (stemmed) term space.
  LmComparison cmp = CompareLanguageModels(learned->StemCollapsed(), *actual);
  std::printf("vocabulary learned : %.2f%%\n", cmp.pct_vocab_learned * 100);
  std::printf("ctf ratio          : %.2f%%\n", cmp.ctf_ratio * 100);
  std::printf("spearman (df)      : %.4f\n", cmp.spearman_df);
  std::printf("spearman (tie-corr): %.4f\n", cmp.spearman_df_tie_corrected);
  std::printf("common terms       : %zu\n", cmp.common_terms);
  return 0;
}

// Parses "host:port" (host may be a name or numeric IPv4).
Result<RemoteDatabaseOptions> ParseRemoteAddress(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return Status::InvalidArgument("--remote expects HOST:PORT, got '" +
                                   spec + "'");
  }
  unsigned long port = 0;
  try {
    port = std::stoul(spec.substr(colon + 1));
  } catch (...) {
    port = 0;
  }
  if (port == 0 || port > 65535) {
    return Status::InvalidArgument("bad port in --remote '" + spec + "'");
  }
  RemoteDatabaseOptions opts;
  opts.host = spec.substr(0, colon);
  opts.port = static_cast<uint16_t>(port);
  return opts;
}

// `select --remote` / `select --fed`: the query goes to a serve-broker
// or serve-fed process; analysis and ranking happen server-side.
// `federation` additionally prints the v5 reply's partial/down-shard/
// per-shard-epoch fields — against a plain broker they are simply
// absent (not partial, no shards).
int CmdSelectRemote(const std::multimap<std::string, std::string>& flags,
                    const std::string& query, const std::string& spec,
                    bool federation) {
  auto remote_opts = ParseRemoteAddress(spec);
  if (!remote_opts.ok()) {
    std::fprintf(stderr, "%s\n", remote_opts.status().ToString().c_str());
    return 2;
  }
  RemoteSelector selector(static_cast<WireClientOptions>(*remote_opts));
  Status status = selector.Connect();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot reach broker at %s: %s\n", spec.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  auto selection =
      selector.Select(query, FlagOr(flags, "ranker", "cori"),
                      std::stoul(FlagOr(flags, "top", "0")));
  if (!selection.ok()) {
    std::fprintf(stderr, "%s\n", selection.status().ToString().c_str());
    return 1;
  }
  std::printf("ranking from %s (epoch %llu):\n", selector.name().c_str(),
              static_cast<unsigned long long>(selection->epoch));
  for (size_t i = 0; i < selection->scores.size(); ++i) {
    std::printf("%2zu. %-24s %12.6f\n", i + 1,
                selection->scores[i].db_name.c_str(),
                selection->scores[i].score);
  }
  if (federation) {
    if (selection->partial) {
      std::string down;
      for (const std::string& shard : selection->down_shards) {
        if (!down.empty()) down += ", ";
        down += shard;
      }
      std::printf("PARTIAL result: shard(s) down: %s\n", down.c_str());
    }
    for (const ShardEpoch& se : selection->shard_epochs) {
      std::printf("shard %-24s epoch %llu\n", se.shard.c_str(),
                  static_cast<unsigned long long>(se.epoch));
    }
  }
  return 0;
}

int CmdSelect(const std::multimap<std::string, std::string>& flags) {
  std::string query = FlagOr(flags, "query", "");
  if (query.empty()) return Usage();
  std::string fed = FlagOr(flags, "fed", "");
  if (!fed.empty()) return CmdSelectRemote(flags, query, fed, true);
  std::string remote = FlagOr(flags, "remote", "");
  if (!remote.empty()) return CmdSelectRemote(flags, query, remote, false);
  DatabaseCollection dbs;
  auto range = flags.equal_range("model");
  for (auto it = range.first; it != range.second; ++it) {
    size_t eq = it->second.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "--model expects NAME=FILE, got %s\n",
                   it->second.c_str());
      return 2;
    }
    auto model = LoadModelFile(it->second.substr(eq + 1));
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    dbs.Add(it->second.substr(0, eq), std::move(*model));
  }
  if (dbs.size() == 0) return Usage();

  std::string ranker_name = FlagOr(flags, "ranker", "cori");
  auto ranker = MakeRanker(ranker_name, &dbs);
  if (ranker == nullptr) {
    // Same valid set the broker's Select RPC reports (KnownRankerList).
    std::fprintf(stderr, "unknown ranker '%s'; valid rankers: %s\n",
                 ranker_name.c_str(), KnownRankerList().c_str());
    return 2;
  }
  // Query terms go through the raw pipeline (models are raw learned LMs).
  std::vector<std::string> terms = Analyzer::Raw().Analyze(query);
  auto ranking = ranker->Rank(terms);
  for (size_t i = 0; i < ranking.size(); ++i) {
    std::printf("%2zu. %-24s %12.6f\n", i + 1, ranking[i].db_name.c_str(),
                ranking[i].score);
  }
  return 0;
}

int CmdPackModels(const std::multimap<std::string, std::string>& flags) {
  std::string out_path = FlagOr(flags, "out", "");
  if (out_path.empty()) return Usage();
  ModelStoreWriter::Options opts;
  std::string block_size = FlagOr(flags, "block-size", "");
  if (!block_size.empty()) {
    opts.block_size = static_cast<uint32_t>(std::stoul(block_size));
  }
  ModelStoreWriter writer(opts);
  auto range = flags.equal_range("model");
  for (auto it = range.first; it != range.second; ++it) {
    size_t eq = it->second.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "--model expects NAME=FILE, got %s\n",
                   it->second.c_str());
      return 2;
    }
    auto model = LoadModelFile(it->second.substr(eq + 1));
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    Status added = writer.Add(it->second.substr(0, eq), *model);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.ToString().c_str());
      return 1;
    }
  }
  if (writer.num_models() == 0) return Usage();
  Status written = writer.WriteToFile(out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("packed %zu model(s) into %s\n", writer.num_models(),
              out_path.c_str());
  return 0;
}

int CmdInspectStore(const std::multimap<std::string, std::string>& flags) {
  std::string path = FlagOr(flags, "store", "");
  if (path.empty()) return Usage();
  MappedModelStore::OpenOptions opts;
  // `--no-verify true` (any value) skips checksums and the dictionary
  // walk — structural header checks only.
  opts.verify = flags.find("no-verify") == flags.end();
  auto store = MappedModelStore::Open(path, opts);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: model store v%u, %zu model(s), %llu bytes%s\n",
              path.c_str(), (*store)->version(), (*store)->num_models(),
              static_cast<unsigned long long>((*store)->file_size()),
              opts.verify ? " (verified)" : " (NOT verified)");
  for (size_t i = 0; i < (*store)->num_models(); ++i) {
    const MappedLanguageModel& m = (*store)->model(i);
    std::printf("  %-24s %8zu terms %10llu total %8llu docs\n",
                (*store)->name(i).c_str(), m.vocabulary_size(),
                static_cast<unsigned long long>(m.total_term_count()),
                static_cast<unsigned long long>(m.num_docs()));
  }
  return 0;
}

// Builds every --synthetic / --trec engine named on the command line, in
// flag order (synthetic presets first, matching multimap grouping).
Result<std::vector<std::unique_ptr<SearchEngine>>> BuildFederation(
    const std::multimap<std::string, std::string>& flags) {
  std::vector<std::unique_ptr<SearchEngine>> engines;
  auto synthetic = flags.equal_range("synthetic");
  for (auto it = synthetic.first; it != synthetic.second; ++it) {
    std::multimap<std::string, std::string> one{{"synthetic", it->second}};
    QBS_ASSIGN_OR_RETURN(std::unique_ptr<SearchEngine> engine,
                         BuildEngineFromFlags(one));
    engines.push_back(std::move(engine));
  }
  auto trec = flags.equal_range("trec");
  for (auto it = trec.first; it != trec.second; ++it) {
    QBS_ASSIGN_OR_RETURN(std::unique_ptr<SearchEngine> engine,
                         BuildTrecEngine(it->second));
    engines.push_back(std::move(engine));
  }
  return engines;
}

int CmdService(const std::multimap<std::string, std::string>& flags) {
  auto engines = BuildFederation(flags);
  if (!engines.ok()) {
    std::fprintf(stderr, "%s\n", engines.status().ToString().c_str());
    return 1;
  }

  ServiceOptions opts;
  opts.sampler.stopping.max_documents =
      std::stoul(FlagOr(flags, "docs", "200"));
  opts.sampler.docs_per_query =
      std::stoul(FlagOr(flags, "docs-per-query", "4"));
  opts.num_threads = std::stoul(FlagOr(flags, "threads", "4"));
  opts.model_dir = FlagOr(flags, "model-dir", "");
  SamplingService service(opts);
  for (auto& engine : *engines) {
    Status status = service.AddDatabase(engine.get());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  auto remotes = flags.equal_range("remote");
  for (auto it = remotes.first; it != remotes.second; ++it) {
    auto remote_opts = ParseRemoteAddress(it->second);
    if (!remote_opts.ok()) {
      std::fprintf(stderr, "%s\n", remote_opts.status().ToString().c_str());
      return 1;
    }
    auto remote = std::make_unique<RemoteTextDatabase>(*remote_opts);
    // Connect eagerly so a wrong address fails here, attributably, not
    // as a sampling error later.
    Status status = remote->Connect();
    if (!status.ok()) {
      std::fprintf(stderr, "cannot reach remote database at %s: %s\n",
                   it->second.c_str(), status.ToString().c_str());
      return 1;
    }
    status = service.AddDatabase(std::move(remote));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (service.size() == 0) {
    std::fprintf(stderr,
                 "service requires at least one --synthetic, --trec, or "
                 "--remote database\n");
    return 2;
  }

  Status refresh = service.RefreshAll();
  std::fputs(service.StatusReport().c_str(), stdout);
  if (!refresh.ok()) {
    std::fprintf(stderr, "%s\n", refresh.ToString().c_str());
    return 1;
  }

  std::string query = FlagOr(flags, "query", "");
  if (!query.empty()) {
    auto ranking = service.Select(query, FlagOr(flags, "ranker", "cori"));
    if (!ranking.ok()) {
      std::fprintf(stderr, "%s\n", ranking.status().ToString().c_str());
      return 1;
    }
    std::printf("ranking for \"%s\":\n", query.c_str());
    for (size_t i = 0; i < ranking->size(); ++i) {
      std::printf("%2zu. %-24s %12.6f\n", i + 1,
                  (*ranking)[i].db_name.c_str(), (*ranking)[i].score);
    }
  }
  return 0;
}

int CmdServeDb(const std::multimap<std::string, std::string>& flags) {
  auto engine = BuildEngineFromFlags(flags);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  DbServerOptions opts;
  opts.host = FlagOr(flags, "host", "127.0.0.1");
  opts.port = static_cast<uint16_t>(std::stoul(FlagOr(flags, "port", "0")));
  opts.num_workers = std::stoul(FlagOr(flags, "threads", "4"));
  opts.admin_port = AdminPortFlag(flags);
  DbServer server(engine->get(), opts);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  // Scripts read this line to learn the ephemeral port.
  std::printf("serving '%s' on %s\n", (*engine)->name().c_str(),
              server.address().c_str());
  if (server.admin_server() != nullptr) {
    std::printf("admin on http://%s/\n",
                server.admin_server()->address().c_str());
  }
  std::fflush(stdout);

  // Serve until stdin closes (Ctrl-D, or the supervising process exits),
  // then shut down gracefully.
  while (std::getchar() != EOF) {
  }
  server.Stop();
  return 0;
}

int CmdServeBroker(const std::multimap<std::string, std::string>& flags) {
  auto engines = BuildFederation(flags);
  if (!engines.ok()) {
    std::fprintf(stderr, "%s\n", engines.status().ToString().c_str());
    return 1;
  }

  ServiceOptions opts;
  opts.sampler.stopping.max_documents =
      std::stoul(FlagOr(flags, "docs", "200"));
  opts.sampler.docs_per_query =
      std::stoul(FlagOr(flags, "docs-per-query", "4"));
  opts.num_threads = std::stoul(FlagOr(flags, "threads", "4"));
  opts.model_dir = FlagOr(flags, "model-dir", "");
  opts.store_path = FlagOr(flags, "store", "");
  SamplingService service(opts);
  for (auto& engine : *engines) {
    Status status = service.AddDatabase(engine.get());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  auto remotes = flags.equal_range("remote");
  for (auto it = remotes.first; it != remotes.second; ++it) {
    auto remote_opts = ParseRemoteAddress(it->second);
    if (!remote_opts.ok()) {
      std::fprintf(stderr, "%s\n", remote_opts.status().ToString().c_str());
      return 1;
    }
    auto remote = std::make_unique<RemoteTextDatabase>(*remote_opts);
    Status status = remote->Connect();
    if (!status.ok()) {
      std::fprintf(stderr, "cannot reach remote database at %s: %s\n",
                   it->second.c_str(), status.ToString().c_str());
      return 1;
    }
    status = service.AddDatabase(std::move(remote));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (service.size() == 0 && opts.store_path.empty()) {
    std::fprintf(stderr,
                 "serve-broker requires at least one --synthetic, --trec, or "
                 "--remote database (or --store to restore a packed one)\n");
    return 2;
  }

  // Instant restart: a valid --store file is mmapped and published as
  // the first snapshot, and the expensive sampling pass is skipped. Any
  // load failure (missing, corrupt, future version) falls back to
  // sampling from scratch, which then repacks the store — unless there
  // is nothing to sample, which makes the load failure fatal.
  bool restored = false;
  if (!opts.store_path.empty()) {
    Status loaded = service.LoadStore();
    if (loaded.ok()) {
      restored = true;
      std::fprintf(stderr, "restored models from %s; skipping sampling\n",
                   opts.store_path.c_str());
    } else if (service.size() == 0) {
      std::fprintf(stderr, "cannot restore from %s (%s) and no databases "
                   "to sample\n",
                   opts.store_path.c_str(), loaded.ToString().c_str());
      return 1;
    } else {
      std::fprintf(stderr, "cannot restore from %s (%s); sampling instead\n",
                   opts.store_path.c_str(), loaded.ToString().c_str());
    }
  }
  if (!restored) {
    // Learn the models up front; the broker serves from whatever snapshot
    // the refresh published (a partial federation still serves).
    Status refresh = service.RefreshAll();
    std::fputs(service.StatusReport().c_str(), stderr);
    if (!refresh.ok()) {
      std::fprintf(stderr, "%s\n", refresh.ToString().c_str());
    }
  }

  SelectionBroker broker(&service.registry());
  // Followers replicate this broker's snapshot over the wire (v5
  // snapshot_fetch, `qbs fetch-snapshot`) instead of re-sampling.
  SnapshotProvider snapshots(&service.registry());
  BrokerServerOptions server_opts;
  server_opts.host = FlagOr(flags, "host", "127.0.0.1");
  server_opts.port =
      static_cast<uint16_t>(std::stoul(FlagOr(flags, "port", "0")));
  server_opts.num_workers = std::stoul(FlagOr(flags, "threads", "4"));
  server_opts.admission.max_inflight =
      std::stoul(FlagOr(flags, "max-inflight", "64"));
  server_opts.admin_port = AdminPortFlag(flags);
  server_opts.snapshot_source = [&snapshots] { return snapshots.Get(); };
  BrokerServer server(&broker, server_opts);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  // Scripts read this line to learn the ephemeral port.
  std::printf("serving broker over %zu database(s) on %s\n", service.size(),
              server.address().c_str());
  if (server.admin_server() != nullptr) {
    std::printf("admin on http://%s/\n",
                server.admin_server()->address().c_str());
  }
  std::fflush(stdout);

  while (std::getchar() != EOF) {
  }
  server.Stop();
  return 0;
}

int CmdServeFed(const std::multimap<std::string, std::string>& flags) {
  std::string shards_flag = FlagOr(flags, "shards", "");
  if (shards_flag.empty()) {
    std::fprintf(stderr,
                 "serve-fed requires --shards HOST:PORT,HOST:PORT,...\n");
    return 2;
  }
  FederatedSelectorOptions fed_opts;
  size_t start = 0;
  while (start <= shards_flag.size()) {
    size_t comma = shards_flag.find(',', start);
    if (comma == std::string::npos) comma = shards_flag.size();
    std::string shard = shards_flag.substr(start, comma - start);
    start = comma + 1;
    if (shard.empty()) continue;
    // Reuse the --remote validator: same HOST:PORT grammar.
    auto parsed = ParseRemoteAddress(shard);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad shard '%s': %s\n", shard.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    fed_opts.shards.push_back(std::move(shard));
  }
  if (fed_opts.shards.empty()) {
    std::fprintf(stderr, "serve-fed: --shards lists no shards\n");
    return 2;
  }
  fed_opts.fanout_threads = std::stoul(FlagOr(flags, "threads", "8"));
  FederatedSelector selector(fed_opts);

  FederationServerOptions server_opts;
  server_opts.host = FlagOr(flags, "host", "127.0.0.1");
  server_opts.port =
      static_cast<uint16_t>(std::stoul(FlagOr(flags, "port", "0")));
  server_opts.num_workers = std::stoul(FlagOr(flags, "threads", "4"));
  server_opts.admission.max_inflight =
      std::stoul(FlagOr(flags, "max-inflight", "64"));
  server_opts.admin_port = AdminPortFlag(flags);
  FederationServer server(&selector, server_opts);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  // Scripts read this line to learn the ephemeral port.
  std::printf("serving federation over %zu shard(s) on %s\n",
              fed_opts.shards.size(), server.address().c_str());
  if (server.admin_server() != nullptr) {
    std::printf("admin on http://%s/\n",
                server.admin_server()->address().c_str());
  }
  std::fflush(stdout);

  while (std::getchar() != EOF) {
  }
  server.Stop();
  return 0;
}

int CmdFetchSnapshot(const std::multimap<std::string, std::string>& flags) {
  std::string spec = FlagOr(flags, "remote", "");
  std::string out_path = FlagOr(flags, "out", "");
  if (spec.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "fetch-snapshot requires --remote HOST:PORT and --out "
                 "STORE\n");
    return 2;
  }
  auto remote_opts = ParseRemoteAddress(spec);
  if (!remote_opts.ok()) {
    std::fprintf(stderr, "%s\n", remote_opts.status().ToString().c_str());
    return 2;
  }
  WireClient client(static_cast<WireClientOptions>(*remote_opts));
  SnapshotFetchOptions fetch_opts;
  std::string chunk = FlagOr(flags, "chunk-bytes", "");
  if (!chunk.empty()) fetch_opts.chunk_bytes = std::stoull(chunk);
  auto fetched = FetchSnapshotToFile(client, out_path, fetch_opts);
  if (!fetched.ok()) {
    std::fprintf(stderr, "%s\n", fetched.status().ToString().c_str());
    return 1;
  }
  std::printf("fetched snapshot epoch %llu (%llu bytes) from %s into %s\n",
              static_cast<unsigned long long>(fetched->epoch),
              static_cast<unsigned long long>(fetched->bytes), spec.c_str(),
              out_path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  SetUpObservability(flags);
  int rc;
  if (cmd == "sample") {
    rc = CmdSample(flags);
  } else if (cmd == "export") {
    rc = CmdExport(flags);
  } else if (cmd == "estimate") {
    rc = CmdEstimate(flags);
  } else if (cmd == "pack-models") {
    rc = CmdPackModels(flags);
  } else if (cmd == "inspect-store") {
    rc = CmdInspectStore(flags);
  } else if (cmd == "stats") {
    rc = CmdStats(flags);
  } else if (cmd == "summarize") {
    rc = CmdSummarize(flags);
  } else if (cmd == "compare") {
    rc = CmdCompare(flags);
  } else if (cmd == "select") {
    rc = CmdSelect(flags);
  } else if (cmd == "service") {
    rc = CmdService(flags);
  } else if (cmd == "serve-db") {
    rc = CmdServeDb(flags);
  } else if (cmd == "serve-broker") {
    rc = CmdServeBroker(flags);
  } else if (cmd == "serve-fed") {
    rc = CmdServeFed(flags);
  } else if (cmd == "fetch-snapshot") {
    rc = CmdFetchSnapshot(flags);
  } else {
    return Usage();
  }
  DumpObservability(flags, "qbs " + cmd);
  return rc;
}

}  // namespace
}  // namespace qbs

int main(int argc, char** argv) { return qbs::Main(argc, argv); }

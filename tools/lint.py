#!/usr/bin/env python3
"""Repo-invariant lint for qbs.

Enforces the structural invariants clang-tidy cannot express:

  guard    every header's include guard is QBS_<PATH>_H_ (path relative
           to the include root, so src/util/thread_pool.h guards with
           QBS_UTIL_THREAD_POOL_H_)
  cout     no naked std::cout in library or test code (src/, tests/);
           stdout belongs to tools/, examples/ and bench/ binaries only
  cmake    every .cc under src/ is listed in its directory's
           CMakeLists.txt, every .cc under tests/ or bench/ in that
           tree's top-level CMakeLists.txt (an unlisted file silently
           never builds), and every src/ subdirectory with its own
           CMakeLists.txt is add_subdirectory()'d from
           src/CMakeLists.txt (an unwired directory's targets silently
           never exist)
  log      no QBS_LOG in headers under src/ — headers are included into
           hot paths and must not force the logging machinery (and its
           ostringstream) on every includer
  metricdoc  every qbs_* metric name registered in src/ (GetCounter /
           GetGauge / GetHistogram / WithLabel) appears in
           docs/OBSERVABILITY.md — an undocumented metric is invisible
           to the people dashboarding on that table
  mman     <sys/mman.h> is included only under src/storage/ and
           src/mstore/ — memory mapping is an on-disk-format concern,
           and a stray mmap elsewhere bypasses the validated, typed
           open paths those modules provide (docs/STORAGE.md)
  mutex    every src/ file declaring a mutex member (qbs Mutex or a
           std:: mutex flavor) includes util/mutex.h or
           util/thread_annotations.h, so the declaration *can* carry
           QBS_GUARDED_BY annotations — a lock declared without the
           annotation headers is invisible to clang's thread-safety
           analysis (see docs/ANALYSIS.md)
  wire-version  docs/PROTOCOL.md's version-history table has a row for
           every protocol version up to kWireProtocolVersion
           (src/net/wire.h) — a version bump must not ship without
           documenting what changed on the wire
  format   clang-format --dry-run is clean (skipped with a notice when
           clang-format is not installed; `--fix` rewrites in place)

Exit status: 0 clean, 1 violations found, 2 usage/internal error.

`--self-test` seeds one violation per check into a scratch tree and
verifies each is caught (and that a clean tree passes); it is wired into
ctest so the linter itself stays honest.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
# Directories scanned for C++ sources, relative to the repo root.
SCAN_DIRS = ("src", "tests", "tools", "bench", "examples")
# std::cout is the interface of these binaries, not a lint violation.
COUT_ALLOWED_DIRS = ("tools", "examples", "bench")
# log.h *defines* QBS_LOG; every other header must not use it.
LOG_HEADER_EXEMPT = ("src/obs/log.h",)
# The only src/ trees allowed to touch raw file descriptors and mmap;
# everything else goes through their typed, validated interfaces.
RAW_IO_ALLOWED_PREFIXES = ("src/storage/", "src/mstore/")


def find_repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def cxx_files(root):
    for scan in SCAN_DIRS:
        top = os.path.join(root, scan)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def rel(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def expected_guard(relpath):
    """src/util/thread_pool.h -> QBS_UTIL_THREAD_POOL_H_ ; directories
    outside src/ keep their prefix (bench/harness/experiment.h ->
    QBS_BENCH_HARNESS_EXPERIMENT_H_)."""
    stem = relpath[len("src/"):] if relpath.startswith("src/") else relpath
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    return "QBS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def check_guards(root):
    violations = []
    for path in cxx_files(root):
        relpath = rel(root, path)
        if not relpath.endswith((".h", ".hpp")):
            continue
        guard = expected_guard(relpath)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        if f"#ifndef {guard}" not in text or f"#define {guard}" not in text:
            violations.append(
                (relpath, 1, f"include guard must be {guard} "
                             f"(#ifndef/#define pair)"))
    return violations


def check_cout(root):
    violations = []
    for path in cxx_files(root):
        relpath = rel(root, path)
        if relpath.split("/", 1)[0] in COUT_ALLOWED_DIRS:
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            for lineno, line in enumerate(f, 1):
                stripped = line.split("//", 1)[0]
                if "std::cout" in stripped:
                    violations.append(
                        (relpath, lineno,
                         "naked std::cout in library/test code; report via "
                         "Status, QBS_LOG, or a caller-supplied ostream"))
    return violations


def check_cmake_lists(root):
    violations = []
    src = os.path.join(root, "src")
    if os.path.isdir(src):
        for dirpath, dirnames, filenames in os.walk(src):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            cc_files = sorted(
                n for n in filenames if n.endswith((".cc", ".cpp")))
            if not cc_files:
                continue
            cmake_path = os.path.join(dirpath, "CMakeLists.txt")
            if not os.path.isfile(cmake_path):
                violations.append(
                    (rel(root, dirpath), 1,
                     "directory holds .cc files but has no CMakeLists.txt"))
                continue
            with open(cmake_path, encoding="utf-8", errors="replace") as f:
                cmake = f.read()
            for name in cc_files:
                if not re.search(r"\b" + re.escape(name) + r"\b", cmake):
                    violations.append(
                        (rel(root, os.path.join(dirpath, name)), 1,
                         f"not listed in {rel(root, cmake_path)}; "
                         f"the file never builds"))
    # Every immediate src/ child with its own CMakeLists.txt must be
    # add_subdirectory()'d from src/CMakeLists.txt, or its targets are
    # silently never configured. Skipped when src/ itself has no
    # CMakeLists.txt (flat layouts wire subdirectories elsewhere).
    src_cmake = os.path.join(src, "CMakeLists.txt")
    if os.path.isdir(src) and os.path.isfile(src_cmake):
        with open(src_cmake, encoding="utf-8", errors="replace") as f:
            src_cmake_text = f.read()
        for name in sorted(os.listdir(src)):
            child = os.path.join(src, name)
            if name.startswith(".") or not os.path.isdir(child):
                continue
            if not os.path.isfile(os.path.join(child, "CMakeLists.txt")):
                continue
            if not re.search(
                    r"add_subdirectory\s*\(\s*" + re.escape(name) + r"\s*\)",
                    src_cmake_text):
                violations.append(
                    (rel(root, child), 1,
                     "has a CMakeLists.txt but src/CMakeLists.txt never "
                     "add_subdirectory()s it; its targets never exist"))
    # tests/ and bench/ register every binary in one top-level
    # CMakeLists.txt; subdirectory sources are referenced by relative
    # path, so matching on the basename covers both layouts.
    for top_name in ("tests", "bench"):
        top = os.path.join(root, top_name)
        if not os.path.isdir(top):
            continue
        cc_paths = []
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            cc_paths.extend(
                os.path.join(dirpath, n) for n in sorted(filenames)
                if n.endswith((".cc", ".cpp")))
        if not cc_paths:
            continue
        cmake_path = os.path.join(top, "CMakeLists.txt")
        if not os.path.isfile(cmake_path):
            violations.append(
                (top_name, 1,
                 "directory holds .cc files but has no CMakeLists.txt"))
            continue
        with open(cmake_path, encoding="utf-8", errors="replace") as f:
            cmake = f.read()
        for path in cc_paths:
            name = os.path.basename(path)
            # Registration helpers take the target name without the
            # extension (qbs_add_test(util_test)), so accept the stem.
            stem = os.path.splitext(name)[0]
            if not (re.search(r"\b" + re.escape(name) + r"\b", cmake) or
                    re.search(r"\b" + re.escape(stem) + r"\b", cmake)):
                violations.append(
                    (rel(root, path), 1,
                     f"not listed in {rel(root, cmake_path)}; "
                     f"the file never builds"))
    return violations


def check_log_in_headers(root):
    violations = []
    for path in cxx_files(root):
        relpath = rel(root, path)
        if not (relpath.startswith("src/") and relpath.endswith((".h", ".hpp"))):
            continue
        if relpath in LOG_HEADER_EXEMPT:
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            for lineno, line in enumerate(f, 1):
                stripped = line.split("//", 1)[0]
                if re.search(r"\bQBS_LOG(_IF)?\s*\(", stripped):
                    violations.append(
                        (relpath, lineno,
                         "QBS_LOG in a header drags logging into every "
                         "includer's hot path; move it to the .cc"))
    return violations


def check_mman_includes(root):
    violations = []
    for path in cxx_files(root):
        relpath = rel(root, path)
        if not relpath.startswith("src/"):
            continue
        if relpath.startswith(RAW_IO_ALLOWED_PREFIXES):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            for lineno, line in enumerate(f, 1):
                stripped = line.split("//", 1)[0]
                if re.search(r'#\s*include\s*<sys/mman\.h>', stripped):
                    violations.append(
                        (relpath, lineno,
                         "<sys/mman.h> outside src/storage/ and "
                         "src/mstore/; mmap belongs behind "
                         "MappedModelStore / the storage layer"))
    return violations


METRIC_DOC_PATH = "docs/OBSERVABILITY.md"
# A metric registration: the qbs_* name handed to the registry (or to
# WithLabel, whose base name is what the docs table lists). \s* crosses
# the line break clang-format puts after the open paren.
METRIC_REGISTRATION_RE = re.compile(
    r'\b(?:GetCounter|GetGauge|GetHistogram|WithLabel)\s*\(\s*'
    r'"(qbs_[A-Za-z0-9_]+)"')


def check_metric_docs(root):
    doc_path = os.path.join(root, METRIC_DOC_PATH)
    doc_text = ""
    if os.path.isfile(doc_path):
        with open(doc_path, encoding="utf-8", errors="replace") as f:
            doc_text = f.read()
    violations = []
    reported = set()
    for path in cxx_files(root):
        relpath = rel(root, path)
        if not relpath.startswith("src/"):
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        for match in METRIC_REGISTRATION_RE.finditer(text):
            name = match.group(1)
            if name in reported or name in doc_text:
                continue
            reported.add(name)
            lineno = text.count("\n", 0, match.start()) + 1
            violations.append(
                (relpath, lineno,
                 f"metric '{name}' is registered but not documented in "
                 f"{METRIC_DOC_PATH}"))
    return violations


# A mutex *declaration* (member, static, or local): the type followed by
# an identifier. `\bMutex\b` does not match MutexLock, and `Mutex&`
# (a reference return/parameter) has no following identifier-with-space.
MUTEX_DECL_RE = re.compile(
    r"\b(?:std::(?:shared_|recursive_|recursive_timed_|timed_)?mutex"
    r"|Mutex)\s+[A-Za-z_]\w*\s*[;={]")
MUTEX_EXEMPT = ("src/util/mutex.h", "src/util/thread_annotations.h")
MUTEX_REQUIRED_INCLUDES = ('#include "util/mutex.h"',
                           '#include "util/thread_annotations.h"')


def check_mutex_annotations(root):
    violations = []
    for path in cxx_files(root):
        relpath = rel(root, path)
        if not relpath.startswith("src/") or relpath in MUTEX_EXEMPT:
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        if any(inc in text for inc in MUTEX_REQUIRED_INCLUDES):
            continue
        for lineno, line in enumerate(text.splitlines(), 1):
            stripped = line.split("//", 1)[0]
            if MUTEX_DECL_RE.search(stripped):
                violations.append(
                    (relpath, lineno,
                     "declares a mutex without including util/mutex.h or "
                     "util/thread_annotations.h; the lock cannot carry "
                     "QBS_GUARDED_BY and is invisible to -Wthread-safety"))
    return violations


WIRE_HEADER_PATH = "src/net/wire.h"
PROTOCOL_DOC_PATH = "docs/PROTOCOL.md"
WIRE_VERSION_RE = re.compile(r"kWireProtocolVersion\s*=\s*(\d+)")


def check_wire_version_history(root):
    """Every version up to kWireProtocolVersion has a version-history
    row in PROTOCOL.md, so a protocol bump cannot ship undocumented."""
    wire_path = os.path.join(root, WIRE_HEADER_PATH)
    if not os.path.isfile(wire_path):
        return []  # tree has no wire layer (e.g. lint self-test seeds)
    with open(wire_path, encoding="utf-8", errors="replace") as f:
        wire_text = f.read()
    match = WIRE_VERSION_RE.search(wire_text)
    if match is None:
        return [(WIRE_HEADER_PATH, 1,
                 "kWireProtocolVersion not found; the wire-version check "
                 "cannot pin the version history")]
    version = int(match.group(1))
    lineno = wire_text.count("\n", 0, match.start()) + 1
    doc_text = ""
    doc_path = os.path.join(root, PROTOCOL_DOC_PATH)
    if os.path.isfile(doc_path):
        with open(doc_path, encoding="utf-8", errors="replace") as f:
            doc_text = f.read()
    # Only rows inside the "Version history" section count — the doc
    # has other tables whose first column is also a small integer
    # (status codes, method values).
    section = re.search(r"#+\s*Version history(.*?)(?:\n#|\Z)", doc_text,
                        re.DOTALL | re.IGNORECASE)
    history = section.group(1) if section else ""
    violations = []
    for v in range(1, version + 1):
        if not re.search(rf"^\|\s*{v}\s*\|", history, re.MULTILINE):
            violations.append(
                (WIRE_HEADER_PATH, lineno,
                 f"kWireProtocolVersion is {version} but {PROTOCOL_DOC_PATH} "
                 f"has no version-history row for v{v}; a protocol bump "
                 f"must document what changed on the wire"))
    return violations


def clang_format_exe():
    return shutil.which("clang-format")


def check_format(root, fix=False):
    exe = clang_format_exe()
    if exe is None:
        print("lint: clang-format not installed; format check skipped",
              file=sys.stderr)
        return []
    files = list(cxx_files(root))
    if fix:
        subprocess.run([exe, "-i", "--style=file"] + files, cwd=root,
                       check=True)
        return []
    violations = []
    for path in files:
        proc = subprocess.run(
            [exe, "--dry-run", "-Werror", "--style=file", path],
            cwd=root, capture_output=True, text=True)
        if proc.returncode != 0:
            violations.append(
                (rel(root, path), 1,
                 "not clang-format clean (run tools/lint.py --fix)"))
    return violations


CHECKS = {
    "guard": check_guards,
    "cout": check_cout,
    "cmake": check_cmake_lists,
    "log": check_log_in_headers,
    "mman": check_mman_includes,
    "metricdoc": check_metric_docs,
    "mutex": check_mutex_annotations,
    "wire-version": check_wire_version_history,
}


def run_lint(root, fix=False, checks=None):
    selected = checks or (list(CHECKS) + ["format"])
    violations = []
    for name in selected:
        if name == "format":
            violations += [(p, l, f"[format] {m}")
                           for p, l, m in check_format(root, fix=fix)]
        else:
            violations += [(p, l, f"[{name}] {m}")
                           for p, l, m in CHECKS[name](root)]
    for path, lineno, message in violations:
        print(f"{path}:{lineno}: {message}")
    return 1 if violations else 0


# --- self test -----------------------------------------------------------

CLEAN_HEADER = """\
#ifndef QBS_UTIL_CLEAN_H_
#define QBS_UTIL_CLEAN_H_
namespace qbs {}
#endif  // QBS_UTIL_CLEAN_H_
"""


def seed_tree(root):
    """A minimal tree that passes every check."""
    util = os.path.join(root, "src", "util")
    os.makedirs(util)
    with open(os.path.join(util, "clean.h"), "w") as f:
        f.write(CLEAN_HEADER)
    with open(os.path.join(util, "clean.cc"), "w") as f:
        f.write('#include "util/clean.h"\n')
    with open(os.path.join(util, "CMakeLists.txt"), "w") as f:
        f.write("add_library(qbs_util clean.cc)\n")
    with open(os.path.join(root, "src", "CMakeLists.txt"), "w") as f:
        f.write("add_subdirectory(util)\n")
    tests = os.path.join(root, "tests")
    os.makedirs(tests)
    with open(os.path.join(tests, "clean_test.cc"), "w") as f:
        f.write('#include "util/clean.h"\n')
    with open(os.path.join(tests, "CMakeLists.txt"), "w") as f:
        f.write("add_executable(clean_test clean_test.cc)\n")
    docs = os.path.join(root, "docs")
    os.makedirs(docs)
    with open(os.path.join(docs, "OBSERVABILITY.md"), "w") as f:
        f.write("| `qbs_documented_total` | documented |\n")


def self_test():
    failures = []

    def expect(condition, label):
        print(f"  {'ok' if condition else 'FAIL'}: {label}")
        if not condition:
            failures.append(label)

    with tempfile.TemporaryDirectory() as tmp:
        seed_tree(tmp)
        expect(run_lint(tmp, checks=list(CHECKS)) == 0, "clean tree passes")

    seeds = {
        "guard": [("src/util/bad_guard.h",
                   "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n")],
        "cout": [("src/util/chatty.cc",
                  '#include <iostream>\nvoid F() { std::cout << 1; }\n'),
                 ("tests/chatty_test.cc",
                  '#include <iostream>\nvoid F() { std::cout << 1; }\n')],
        "cmake": [("src/util/orphan.cc", "// never listed\n"),
                  ("tests/orphan_test.cc", "// never listed\n"),
                  # A src/ subdirectory src/CMakeLists.txt never wires in.
                  ("src/orphanmod/CMakeLists.txt",
                   "add_library(qbs_orphanmod orphanmod.cc)\n"),
                  # The shape the fed subsystem shipped with: its own
                  # CMakeLists.txt that src/CMakeLists.txt must
                  # add_subdirectory() or qbs_fed silently never exists.
                  ("src/fed/CMakeLists.txt",
                   "add_library(qbs_fed shard_map.cc)\n")],
        "log": [("src/util/hot.h",
                 "#ifndef QBS_UTIL_HOT_H_\n#define QBS_UTIL_HOT_H_\n"
                 'inline void F() { QBS_LOG(INFO) << "x"; }\n#endif\n')],
        "mman": [("src/util/sneaky_map.cc",
                  "#include <sys/mman.h>\nvoid F() {}\n")],
        "metricdoc": [("src/util/metric.cc",
                       'void F(MetricRegistry& r) {\n'
                       '  r.GetCounter(\n'
                       '      "qbs_seeded_bogus_total", "help");\n}\n')],
        "mutex": [("src/util/locky.h",
                   "#ifndef QBS_UTIL_LOCKY_H_\n#define QBS_UTIL_LOCKY_H_\n"
                   "#include <mutex>\n"
                   "class Locky { std::mutex mu_; };\n#endif\n"),
                  ("src/util/locky.cc",
                   '#include "util/locky.h"\n'
                   "void F() { static Mutex mu; }\n")],
        # A wire.h whose version has no history rows at all.
        "wire-version": [("src/net/wire.h",
                          "#ifndef QBS_NET_WIRE_H_\n#define QBS_NET_WIRE_H_\n"
                          "inline constexpr uint32_t kWireProtocolVersion"
                          " = 1;\n#endif\n")],
    }
    for check, cases in seeds.items():
        for path, content in cases:
            with tempfile.TemporaryDirectory() as tmp:
                seed_tree(tmp)
                full = os.path.join(tmp, path)
                os.makedirs(os.path.dirname(full), exist_ok=True)
                with open(full, "w") as f:
                    f.write(content)
                expect(run_lint(tmp, checks=[check]) == 1,
                       f"seeded {path} trips '{check}'")

    # wire-version, both directions: a bump past the documented history
    # trips; adding the missing row makes it pass again.
    with tempfile.TemporaryDirectory() as tmp:
        seed_tree(tmp)
        net = os.path.join(tmp, "src", "net")
        os.makedirs(net)
        with open(os.path.join(net, "wire.h"), "w") as f:
            f.write("#ifndef QBS_NET_WIRE_H_\n#define QBS_NET_WIRE_H_\n"
                    "inline constexpr uint32_t kWireProtocolVersion = 2;\n"
                    "#endif\n")
        protocol = os.path.join(tmp, "docs", "PROTOCOL.md")
        with open(protocol, "w") as f:
            f.write("### Version history\n\n| version | contents |\n"
                    "|---------|----------|\n| 1 | framing |\n")
        expect(run_lint(tmp, checks=["wire-version"]) == 1,
               "undocumented protocol bump trips 'wire-version'")
        with open(protocol, "a") as f:
            f.write("| 2 | batched RPCs |\n")
        expect(run_lint(tmp, checks=["wire-version"]) == 0,
               "documented version history passes 'wire-version'")

    if clang_format_exe() is not None:
        with tempfile.TemporaryDirectory() as tmp:
            seed_tree(tmp)
            with open(os.path.join(tmp, ".clang-format"), "w") as f:
                f.write("BasedOnStyle: Google\n")
            with open(os.path.join(tmp, "src", "util", "ugly.cc"), "w") as f:
                f.write("int  F(   ){return 1 ;}\n")
            expect(run_lint(tmp, checks=["format"]) == 1,
                   "unformatted file trips 'format'")
            expect(run_lint(tmp, fix=True, checks=["format"]) == 0 and
                   run_lint(tmp, checks=["format"]) == 0,
                   "--fix makes 'format' pass")

    print(f"self-test: {len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--fix", action="store_true",
                        help="apply clang-format fixes in place")
    parser.add_argument("--check", action="append", dest="checks",
                        choices=list(CHECKS) + ["format"],
                        help="run only the named check (repeatable)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each check catches a seeded violation")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = os.path.abspath(args.root) if args.root else find_repo_root()
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"lint: {root} does not look like the repo root", file=sys.stderr)
        return 2
    return run_lint(root, fix=args.fix, checks=args.checks)


if __name__ == "__main__":
    sys.exit(main())
